// subsel — command-line front end for the selection library.
//
//   subsel generate   --type=cifar|imagenet|toy --scale=0.1 --out=data/cifar
//   subsel info       --data=data/cifar
//   subsel solvers
//   subsel objectives
//   subsel select     --data=data/cifar --fraction=0.1 --alpha=0.9
//                     --solver=pipeline [--objective=NAME] [--machines=8]
//                     [--rounds=8] [--no-adaptive] [--disk]
//                     [--bounding=none|exact|uniform|weighted] [--sample=0.3]
//                     [--saturation=1.0] [--self-sim=1.0] [--unweighted]
//                     [--cost-file=F --cost-budget=B]
//                     [--group-file=F --group-cap=N]
//                     [--report=FILE] --out=subset.ids
//   subsel score      --data=data/cifar --subset=subset.ids --alpha=0.9
//                     [--objective=NAME] [--distributed]
//   subsel serve      --socket=PATH --data=[NAME=]PREFIX [--data=... ...]
//                     [--disk] [--cache-blocks=N] [--block-edges=N]
//                     [--disk-shards=N] [--queue-capacity=N]
//                     [--max-concurrent=N] [--threads=N]
//                     [--default-deadline-ms=N] [--max-request-bytes=N]
//                     [--cost-file=F] [--group-file=F]
//
// `serve` runs the long-lived selection daemon: every --data dataset is
// loaded once and stays resident (in memory, or behind the out-of-core
// block cache with --disk) while concurrent clients send newline-delimited
// JSON selection requests over the Unix socket (protocol: src/serve/wire.h,
// README "Serving"). SIGTERM/SIGINT drain gracefully: in-flight requests
// finish or degrade, new ones are rejected with reason "draining".
//
// Every solver in the registry (see `subsel solvers`) runs through the same
// SelectionRequest/SelectionReport schema, under any registered objective
// (see `subsel objectives` for the solver×objective support rules);
// --report writes the full JSON report. Datasets are the binary format of
// data/dataset_io.h; subsets are plain one-id-per-line text files.
//
// Robustness controls (see README "Robustness"):
//   --deadline-ms=N       wall-clock budget; expired runs return the best
//                         valid selection so far, flagged "degraded"
//   --checkpoint-file=F   crash-consistent round checkpoints (+ resume)
//   --checkpoint-every=N  save every Nth round (default 1)
//   --resume-from=F       resume from F (alias for --checkpoint-file)
//   --failpoints=SPEC     arm deterministic fault injection, e.g.
//                         "disk.pread=prob(0.01,7);pool.task=nth(3)"
//                         (SUBSEL_FAILPOINTS env var works too)
//
// Exit codes (each failure class is distinguishable by scripts):
//   0  success
//   1  usage or validation error (bad flags, bad request, bad failpoint spec)
//   2  generic runtime failure
//   3  disk/data format or I/O error (graph::DiskFormatError)
//   4  deadline expired with no feasible selection (degraded run, empty S)
//   5  worker task failure surfaced at a join point (TaskError / injected
//      fault that exhausted its handling path)
#include <csignal>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/objective_registry.h"
#include "api/solver_registry.h"
#include "beam/beam_scoring.h"
#include "common/failpoint.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "data/dataset_io.h"
#include "data/datasets.h"
#include "graph/disk_ground_set.h"
#include "serve/server.h"
#include "serve/socket_server.h"

namespace {

using namespace subsel;

/// --name=value / --name flag accessor over argv. Numeric accessors validate
/// that the whole value parses (strtod/strtoull full-consume) — a malformed
/// `--fraction=0.1x` or `--machines=abc` is a usage error, never a silent 0.
class CliArgs {
 public:
  CliArgs(int argc, char** argv) : argc_(argc), argv_(argv) {}

  std::optional<std::string> get(const std::string& name) const {
    const std::string prefix = "--" + name + "=";
    for (int i = 2; i < argc_; ++i) {
      if (std::strncmp(argv_[i], prefix.c_str(), prefix.size()) == 0) {
        return std::string(argv_[i] + prefix.size());
      }
    }
    return std::nullopt;
  }

  std::string require(const std::string& name) const {
    auto value = get(name);
    if (!value.has_value()) {
      throw std::invalid_argument("missing required --" + name + "=...");
    }
    return *value;
  }

  double get_double(const std::string& name, double fallback) const {
    auto value = get(name);
    if (!value.has_value()) return fallback;
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(value->c_str(), &end);
    if (end == value->c_str() || *end != '\0' || errno == ERANGE) {
      throw std::invalid_argument("--" + name + "=" + *value +
                                  " is not a valid number");
    }
    return parsed;
  }

  std::size_t get_size(const std::string& name, std::size_t fallback) const {
    auto value = get(name);
    if (!value.has_value()) return fallback;
    // strtoull accepts "-1" by wrapping; reject any sign explicitly.
    const char* text = value->c_str();
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE || text[0] == '-' ||
        text[0] == '+') {
      throw std::invalid_argument("--" + name + "=" + *value +
                                  " is not a valid non-negative integer");
    }
    return static_cast<std::size_t>(parsed);
  }

  /// Every occurrence of --name=value, in argv order (for repeatable flags
  /// like serve's --data).
  std::vector<std::string> get_all(const std::string& name) const {
    const std::string prefix = "--" + name + "=";
    std::vector<std::string> values;
    for (int i = 2; i < argc_; ++i) {
      if (std::strncmp(argv_[i], prefix.c_str(), prefix.size()) == 0) {
        values.emplace_back(argv_[i] + prefix.size());
      }
    }
    return values;
  }

  bool has_flag(const std::string& name) const {
    const std::string flag = "--" + name;
    for (int i = 2; i < argc_; ++i) {
      if (flag == argv_[i]) return true;
    }
    return false;
  }

 private:
  int argc_;
  char** argv_;
};

int usage() {
  std::fprintf(stderr,
               "usage: subsel <command> [options]\n"
               "  generate   --type=cifar|imagenet|toy --out=PREFIX [--scale=F]"
               " [--seed=N]\n"
               "  info       --data=PREFIX\n"
               "  solvers                            list registered solvers\n"
               "  objectives                         list registered objectives\n"
               "  select     --data=PREFIX (--k=N | --fraction=F)"
               " [--objective=NAME]\n"
               "             [--alpha=F] [--saturation=F] [--self-sim=F]"
               " [--unweighted]\n"
               "             [--solver=NAME] [--machines=N] [--rounds=N]"
               " [--no-adaptive]\n"
               "             [--bounding=none|exact|uniform|weighted]"
               " [--sample=F]\n"
               "             [--epsilon=F] [--shards=N] [--disk]"
               " [--cache-blocks=N]\n"
               "             [--block-edges=N] [--disk-shards=N]"
               " [--prefetch-depth=N]\n"
               "             [--worker-memory-kb=N] [--seed=N] [--report=FILE]\n"
               "             [--deadline-ms=N] [--checkpoint-file=F]"
               " [--checkpoint-every=N]\n"
               "             [--resume-from=F] [--failpoints=SPEC]\n"
               "             [--cost-file=F --cost-budget=B]"
               " [--group-file=F --group-cap=N]\n"
               "             --out=FILE\n"
               "  score      --data=PREFIX --subset=FILE [--objective=NAME]"
               " [--alpha=F]\n"
               "             [--distributed]\n"
               "  serve      --socket=PATH --data=[NAME=]PREFIX [--data=...]"
               " [--disk]\n"
               "             [--cache-blocks=N] [--block-edges=N]"
               " [--disk-shards=N]\n"
               "             [--queue-capacity=N] [--max-concurrent=N]"
               " [--threads=N]\n"
               "             [--default-deadline-ms=N]"
               " [--max-request-bytes=N]\n"
               "             [--cost-file=F] [--group-file=F]\n");
  return 1;
}

int cmd_generate(const CliArgs& args) {
  const std::string type = args.require("type");
  const std::string out = args.require("out");
  const double scale = args.get_double("scale", 0.1);
  const auto seed = static_cast<std::uint64_t>(args.get_size("seed", 42));

  data::Dataset dataset;
  if (type == "cifar") {
    dataset = data::cifar_proxy(scale, seed);
  } else if (type == "imagenet") {
    dataset = data::imagenet_proxy(scale, seed);
  } else if (type == "toy") {
    dataset = data::toy_dataset(args.get_size("points", 2000),
                                args.get_size("classes", 10), seed);
  } else {
    std::fprintf(stderr, "unknown --type=%s (cifar|imagenet|toy)\n", type.c_str());
    return 1;
  }
  data::save_dataset(dataset, out);
  std::printf("wrote %zu points (%zu-d, avg degree %.1f) to %s[.graph]\n",
              dataset.size(), dataset.embeddings.dim(),
              dataset.graph.average_degree(), out.c_str());
  return 0;
}

int cmd_info(const CliArgs& args) {
  const auto dataset = data::load_dataset(args.require("data"));
  double min_utility = dataset.utilities.empty() ? 0.0 : dataset.utilities[0];
  double max_utility = min_utility;
  for (double u : dataset.utilities) {
    min_utility = std::min(min_utility, u);
    max_utility = std::max(max_utility, u);
  }
  std::uint32_t num_classes = 0;
  for (std::uint32_t label : dataset.labels) {
    num_classes = std::max(num_classes, label + 1);
  }
  std::printf("dataset:    %s\n", dataset.name.c_str());
  std::printf("points:     %zu\n", dataset.size());
  std::printf("dimensions: %zu\n", dataset.embeddings.dim());
  std::printf("classes:    %u\n", num_classes);
  std::printf("avg degree: %.2f\n", dataset.graph.average_degree());
  std::printf("utilities:  [%.4f, %.4f]\n", min_utility, max_utility);
  return 0;
}

int cmd_solvers() {
  const auto solvers = api::SolverRegistry::instance().list();
  std::printf("kernel backend: %s (detected: %s)\n\n",
              subsel::simd::active_backend_name(),
              subsel::simd::backend_name(subsel::simd::detected_backend()));
  std::printf("%zu registered solvers:\n\n", solvers.size());
  for (const auto& info : solvers) {
    std::string flags;
    if (info.caps.distributed) flags += " distributed";
    if (info.caps.streaming) flags += " streaming";
    if (!info.caps.needs_full_graph) flags += " no-full-graph";
    if (info.caps.cancellable) flags += " cancellable";
    if (info.caps.checkpointable) flags += " checkpointable";
    if (info.caps.constrained) flags += " constrained";
    if (flags.empty()) flags = " centralized";
    std::printf("%-20s guarantee: %-28s memory: %s\n", info.name.c_str(),
                info.guarantee.c_str(), info.memory_regime.c_str());
    std::printf("%-20s flags:%s\n", "", flags.c_str());
    std::printf("%-20s %s\n\n", "", info.description.c_str());
  }
  return 0;
}

int cmd_objectives() {
  const auto objectives = api::ObjectiveRegistry::instance().list();
  const auto solvers = api::SolverRegistry::instance().list();
  std::printf("kernel backend: %s\n\n", subsel::simd::active_backend_name());
  std::printf("%zu registered objectives:\n\n", objectives.size());
  for (const auto& info : objectives) {
    std::string flags;
    if (info.caps.linear_priority_updates) flags += " closed-form-updates";
    else flags += " lazy-gain-path";
    if (info.caps.incremental_state) flags += " incremental-state";
    if (info.caps.utility_bounds) flags += " utility-bounds";
    if (info.caps.distributed_scoring) flags += " distributed-scoring";
    if (info.caps.monotone) flags += " monotone";
    std::printf("%-20s %s\n", info.name.c_str(), info.formula.c_str());
    std::printf("%-20s flags:%s\n", "", flags.c_str());
    std::printf("%-20s %s\n", "", info.description.c_str());

    // Per-solver support, derived from the same rule request validation
    // applies: fully supported / supported once bounding is disabled /
    // unsupported.
    std::string supported, bounding_off, unsupported;
    for (const auto& solver : solvers) {
      const bool with_bounding =
          api::incompatibility_reason(solver.caps, info.caps, true).empty();
      const bool without_bounding =
          api::incompatibility_reason(solver.caps, info.caps, false).empty();
      auto append = [&solver](std::string& list) {
        if (!list.empty()) list += ", ";
        list += solver.name;
      };
      if (with_bounding) append(supported);
      else if (without_bounding) append(bounding_off);
      else append(unsupported);
    }
    if (!supported.empty()) {
      std::printf("%-20s solvers: %s\n", "", supported.c_str());
    }
    if (!bounding_off.empty()) {
      std::printf("%-20s with --bounding=none: %s\n", "", bounding_off.c_str());
    }
    if (!unsupported.empty()) {
      std::printf("%-20s unsupported: %s\n", "", unsupported.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_select(const CliArgs& args) {
  const std::string data_path = args.require("data");
  const std::string out = args.require("out");

  // --disk keeps the adjacency on disk behind a sharded LRU block cache;
  // only the per-point scalars are loaded. Default materializes the whole
  // dataset. --disk-shards stripes the cache locks (1 = the old single
  // mutex); --prefetch-depth controls how far ahead of the solve loop the
  // round plans are paged in.
  const bool disk = args.has_flag("disk");
  data::Dataset dataset;
  std::unique_ptr<graph::GroundSet> disk_ground_set;
  if (disk) {
    auto scalars = data::load_dataset_scalars(data_path);
    graph::DiskGroundSetConfig cache;
    cache.max_cached_blocks = args.get_size("cache-blocks", 64);
    cache.block_edges = args.get_size("block-edges", cache.block_edges);
    cache.num_shards = args.get_size("disk-shards", cache.num_shards);
    disk_ground_set = std::make_unique<graph::DiskGroundSet>(
        data_path + ".graph", std::move(scalars.utilities), cache);
  } else {
    dataset = data::load_dataset(data_path);
  }
  const auto in_memory_ground_set =
      disk ? graph::InMemoryGroundSet(dataset.graph, dataset.utilities)
           : dataset.ground_set();
  const graph::GroundSet& ground_set =
      disk ? *disk_ground_set
           : static_cast<const graph::GroundSet&>(in_memory_ground_set);

  api::SelectionRequest request;
  request.ground_set = &ground_set;
  request.k = args.get_size("k", 0);
  request.fraction = args.get_double("fraction", 0.0);
  request.objective_name = args.get("objective").value_or("pairwise");
  request.objective = core::ObjectiveParams::from_alpha(args.get_double("alpha", 0.9));
  request.facility_location.self_similarity = args.get_double("self-sim", 1.0);
  request.facility_location.utility_weighted = !args.has_flag("unweighted");
  request.coverage.saturation = args.get_double("saturation", 1.0);
  request.coverage.self_similarity = args.get_double("self-sim", 1.0);
  request.coverage.utility_weighted = !args.has_flag("unweighted");
  request.seed = static_cast<std::uint64_t>(args.get_size("seed", 23));
  request.solver = args.get("solver").value_or("pipeline");
  // Back-compat: --engine=memory|dataflow predates --solver.
  if (const auto engine = args.get("engine"); engine.has_value()) {
    if (*engine == "dataflow") {
      request.solver = "dataflow";
    } else if (*engine != "memory") {
      std::fprintf(stderr, "unknown --engine=%s (memory|dataflow)\n",
                   engine->c_str());
      return 1;
    }
  }

  request.deadline_ms =
      static_cast<std::uint64_t>(args.get_size("deadline-ms", 0));
  request.distributed.num_machines = args.get_size("machines", 8);
  request.distributed.num_rounds = args.get_size("rounds", 8);
  request.distributed.adaptive_partitioning = !args.has_flag("no-adaptive");
  request.distributed.stochastic_epsilon = args.get_double("epsilon", 0.1);
  request.distributed.prefetch_depth = args.get_size("prefetch-depth", 2);
  request.distributed.checkpoint_file = args.get("checkpoint-file").value_or("");
  request.distributed.checkpoint_every = args.get_size("checkpoint-every", 1);
  request.distributed.resume_from = args.get("resume-from").value_or("");
  request.bounding.prefetch_depth = request.distributed.prefetch_depth;
  request.streaming.epsilon = args.get_double("epsilon", 0.1);

  // Selection constraints: one-value-per-line sidecar files (line i =
  // element i). Consistency (sizes, budget present, caps cover groups) is
  // validated by the registry before dispatch.
  if (const auto cost_file = args.get("cost-file"); cost_file.has_value()) {
    request.constraints.costs = data::load_value_file(*cost_file, "cost");
  }
  request.constraints.cost_budget = args.get_double("cost-budget", 0.0);
  if (const auto group_file = args.get("group-file"); group_file.has_value()) {
    request.constraints.groups = data::load_group_file(*group_file);
  }
  request.constraints.group_cap = args.get_size("group-cap", 0);
  // Constraints compose with every solver except the bounding pre-pass and
  // the dataflow substrate; default bounding off on constrained runs unless
  // the user pinned it, so `--solver=pipeline --cost-budget=...` just works.
  if (request.constraints.any() && !args.get("bounding").has_value()) {
    request.bounding.enabled = false;
  }

  const std::string bounding = args.get("bounding").value_or("uniform");
  if (bounding == "none") {
    request.bounding.enabled = false;
  } else if (bounding == "exact") {
    request.bounding.sampling = core::BoundingSampling::kNone;
  } else if (bounding == "uniform") {
    request.bounding.sampling = core::BoundingSampling::kUniform;
  } else if (bounding == "weighted") {
    request.bounding.sampling = core::BoundingSampling::kWeighted;
  } else {
    std::fprintf(stderr, "unknown --bounding=%s\n", bounding.c_str());
    return 1;
  }
  request.bounding.sample_fraction = args.get_double("sample", 0.3);
  request.dataflow.num_shards = args.get_size("shards", 64);
  request.dataflow.worker_memory_bytes =
      args.get_size("worker-memory-kb", 0) * 1024;

  const api::SelectionReport report = api::select(request);
  data::save_subset(report.selected, out);

  std::printf("solver %s: selected %zu / %zu points in %s -> %s\n",
              report.solver.c_str(), report.selected.size(), report.num_points,
              format_duration(report.total_seconds).c_str(), out.c_str());
  std::printf("objective %s: f(S) = %.6f\n", report.objective_name.c_str(),
              report.objective);
  if (report.constraints.has_value()) {
    const auto& summary = *report.constraints;
    std::printf("constraints: feasible=%s", summary.feasible ? "yes" : "NO");
    if (summary.cost_budget > 0.0) {
      std::printf(", cost %.4f / budget %.4f", summary.selected_cost,
                  summary.cost_budget);
    }
    if (summary.num_groups > 0) {
      std::printf(", %zu capped groups", summary.num_groups);
    }
    if (summary.num_blocked > 0) {
      std::printf(", %zu blocked ids", summary.num_blocked);
    }
    std::printf("\n");
  }
  if (report.bounding.has_value()) {
    std::printf("bounding: included %zu, excluded %zu (%zu grow / %zu shrink"
                " rounds)\n",
                report.bounding->included, report.bounding->excluded,
                report.bounding->grow_rounds, report.bounding->shrink_rounds);
  }
  if (!report.rounds.empty()) {
    std::printf("greedy rounds: %zu (peak partition %.2f MB)\n",
                report.rounds.size(),
                static_cast<double>(report.peak_partition_bytes) / 1e6);
  }
  if (report.disk_cache.has_value()) {
    const auto& cache = *report.disk_cache;
    const double accesses = static_cast<double>(cache.hits + cache.misses);
    std::printf("disk cache: %zu shards, %.1f%% hit rate (%llu hits, %llu"
                " misses), %llu/%llu blocks prefetched, peak %zu/%zu blocks"
                " resident\n",
                cache.num_shards,
                accesses > 0.0 ? 100.0 * static_cast<double>(cache.hits) / accesses
                               : 0.0,
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                static_cast<unsigned long long>(cache.prefetch_loaded),
                static_cast<unsigned long long>(cache.prefetch_issued),
                cache.resident_blocks_high_water, cache.max_cached_blocks);
    if (cache.read_retries > 0 || cache.prefetch_degraded > 0) {
      std::printf("disk faults: %llu transient read retries, %llu prefetch"
                  " blocks degraded to demand misses\n",
                  static_cast<unsigned long long>(cache.read_retries),
                  static_cast<unsigned long long>(cache.prefetch_degraded));
    }
  }
  if (report.preempted) std::printf("run preempted before completion\n");
  if (report.degraded) {
    std::printf("run degraded: %s\n", report.degraded_reason.c_str());
  }

  if (const auto report_path = args.get("report"); report_path.has_value()) {
    std::ofstream report_file(*report_path, std::ios::trunc);
    report_file << report.to_json() << '\n';
    report_file.close();  // flush before checking, or buffered errors hide
    if (!report_file) {
      std::fprintf(stderr, "cannot write --report=%s\n", report_path->c_str());
      return 2;
    }
    std::printf("report written to %s\n", report_path->c_str());
  }
  // A degraded run that still produced a selection is a (qualified) success;
  // one that produced nothing within the deadline is its own failure class.
  if (report.degraded && report.selected.empty() && report.k_requested > 0) {
    std::fprintf(stderr,
                 "deadline expired before any selection was feasible\n");
    return 4;
  }
  return 0;
}

int cmd_score(const CliArgs& args) {
  const auto dataset = data::load_dataset(args.require("data"));
  const auto subset = data::load_subset(args.require("subset"));
  const auto params =
      core::ObjectiveParams::from_alpha(args.get_double("alpha", 0.9));
  const auto ground_set = dataset.ground_set();

  // Build the scoring kernel through the registry, like `select` does.
  api::SelectionRequest request;
  request.ground_set = &ground_set;
  request.objective_name = args.get("objective").value_or("pairwise");
  request.objective = params;
  request.facility_location.self_similarity = args.get_double("self-sim", 1.0);
  request.facility_location.utility_weighted = !args.has_flag("unweighted");
  request.coverage.saturation = args.get_double("saturation", 1.0);
  request.coverage.self_similarity = args.get_double("self-sim", 1.0);
  request.coverage.utility_weighted = !args.has_flag("unweighted");
  const auto kernel = api::ObjectiveRegistry::instance().make(request);

  double score = 0.0;
  if (args.has_flag("distributed")) {
    if (!kernel->caps().distributed_scoring) {
      std::fprintf(stderr,
                   "--distributed scoring needs an edge-decomposable"
                   " objective; \"%s\" has none\n",
                   request.objective_name.c_str());
      return 1;
    }
    dataflow::Pipeline pipeline;
    score = beam::beam_score(pipeline, ground_set, subset, params);
  } else {
    score = kernel->evaluate(std::span<const core::NodeId>(subset));
  }
  std::printf("f(S) = %.6f over %zu points (objective=%s, alpha=%.2f%s)\n",
              score, subset.size(), request.objective_name.c_str(), params.alpha,
              args.has_flag("distributed") ? ", distributed" : "");
  return 0;
}

// Signal handlers may only touch lock-free state; the accept loop polls
// this flag (poll() also returns EINTR on the signal, so the reaction is
// prompt even on an idle listener).
std::atomic<bool> g_serve_stop{false};

void request_serve_stop(int) { g_serve_stop.store(true); }

int cmd_serve(const CliArgs& args) {
  const std::string socket_path = args.require("socket");
  const auto data_flags = args.get_all("data");
  if (data_flags.empty()) {
    throw std::invalid_argument("serve needs at least one --data=[NAME=]PREFIX");
  }

  serve::ServerConfig config;
  config.queue_capacity = args.get_size("queue-capacity", 128);
  config.max_concurrent = args.get_size("max-concurrent", 2);
  config.pool_threads = args.get_size("threads", 0);
  config.default_deadline_ms = static_cast<std::uint64_t>(
      args.get_size("default-deadline-ms", 0));
  config.limits.max_request_bytes =
      args.get_size("max-request-bytes", config.limits.max_request_bytes);

  const bool disk = args.has_flag("disk");
  for (const std::string& entry : data_flags) {
    serve::DatasetSpec spec;
    // "--data=NAME=PREFIX" serves the dataset under NAME; a bare prefix is
    // served under its basename ("data/cifar" -> "cifar").
    const std::size_t equals = entry.find('=');
    if (equals != std::string::npos) {
      spec.name = entry.substr(0, equals);
      spec.path = entry.substr(equals + 1);
    } else {
      spec.path = entry;
      const std::size_t slash = entry.find_last_of('/');
      spec.name = slash == std::string::npos ? entry : entry.substr(slash + 1);
    }
    spec.disk = disk;
    spec.cache.max_cached_blocks = args.get_size("cache-blocks", 64);
    spec.cache.block_edges = args.get_size("block-edges", spec.cache.block_edges);
    spec.cache.num_shards = args.get_size("disk-shards", spec.cache.num_shards);
    // Constraint sidecars apply to every served dataset (the common case is
    // one dataset per daemon); requests opt in per-request via cost_budget /
    // group_cap.
    spec.cost_file = args.get("cost-file").value_or("");
    spec.group_file = args.get("group-file").value_or("");
    config.datasets.push_back(std::move(spec));
  }

  serve::SelectionServer server(config);
  serve::SocketServer transport(server, socket_path);

  struct sigaction action {};
  action.sa_handler = request_serve_stop;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  for (const auto& info : server.dataset_infos()) {
    std::printf("dataset %s: %zu points (%s)\n", info.name.c_str(),
                info.num_points, info.disk ? "disk-resident" : "in-memory");
  }
  // The CI smoke job (and any supervisor) waits for this line before
  // sending traffic; flush so it is visible through a pipe immediately.
  std::printf("listening on %s\n", socket_path.c_str());
  std::fflush(stdout);

  transport.run(&g_serve_stop);

  const auto counters = server.counters();
  std::printf("drained: %llu accepted, %llu completed, %llu degraded,"
              " %llu rejected, %llu errors (queue high-water %zu)\n",
              static_cast<unsigned long long>(counters.accepted),
              static_cast<unsigned long long>(counters.completed),
              static_cast<unsigned long long>(counters.degraded),
              static_cast<unsigned long long>(counters.rejected),
              static_cast<unsigned long long>(counters.errors),
              counters.queue_depth_high_water);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const CliArgs args(argc, argv);
  try {
    // Fault injection arms before anything can hit a site: the env var
    // first (covers every path, including dataset loading), then the
    // explicit flag, which wins over the environment.
    failpoint::arm_from_env();
    if (const auto spec = args.get("failpoints"); spec.has_value()) {
      failpoint::arm_from_spec(*spec);
    }
    if (command == "generate") return cmd_generate(args);
    if (command == "info") return cmd_info(args);
    if (command == "solvers") return cmd_solvers();
    if (command == "objectives") return cmd_objectives();
    if (command == "select") return cmd_select(args);
    if (command == "score") return cmd_score(args);
    if (command == "serve") return cmd_serve(args);
    return usage();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage();
  } catch (const graph::DiskFormatError& e) {
    std::fprintf(stderr, "disk error: %s\n", e.what());
    return 3;
  } catch (const TaskError& e) {
    std::fprintf(stderr, "worker error: %s\n", e.what());
    return 5;
  } catch (const failpoint::FailpointError& e) {
    // An injected fault that no layer absorbed is reported like the worker
    // failure it stands in for.
    std::fprintf(stderr, "injected fault: %s\n", e.what());
    return 5;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
