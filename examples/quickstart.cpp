// Quickstart: the public API in one file.
//
//   1. Build (or bring) a dataset: embeddings -> utilities -> kNN graph.
//   2. Describe what you want as a SelectionRequest: ground set, budget, an
//      objective name from the ObjectiveRegistry (pairwise f(S) = αΣu − βΣs
//      by default; facility location and saturated coverage ship too), and a
//      solver name from the SolverRegistry.
//   3. api::select() runs it and returns a SelectionReport with the ids, the
//      exactly recomputed objective, and per-stage timings — the same schema
//      for every solver and every objective (`subsel solvers` /
//      `subsel objectives` list them all).
//
// Run:  ./build/examples/quickstart
#include <cstdio>

#include "api/solver_registry.h"
#include "data/datasets.h"

int main() {
  using namespace subsel;

  // 1. A small synthetic dataset: 2000 points in 8 clusters, margin
  //    utilities from a simulated coarse classifier, symmetrized 10-NN
  //    cosine graph. Substitute your own embeddings/utilities/graph by
  //    filling a data::Dataset (or implementing graph::GroundSet directly,
  //    see larger_than_memory.cpp).
  const data::Dataset dataset = data::toy_dataset(/*num_points=*/2000,
                                                  /*num_classes=*/8,
                                                  /*seed=*/42);
  std::printf("dataset: %zu points, %zu-d embeddings, avg degree %.1f\n",
              dataset.size(), dataset.embeddings.dim(),
              dataset.graph.average_degree());

  // 2. The request: select a 10 % subset under α = 0.9 (utility 9:1 over
  //    diversity, the paper's default; β is always 1 − α) with the "pipeline"
  //    solver — approximate bounding (30 % uniform neighborhood sampling)
  //    followed by the multi-round distributed greedy.
  const auto ground_set = dataset.ground_set();
  api::SelectionRequest request;
  request.ground_set = &ground_set;
  request.fraction = 0.1;
  request.objective = core::ObjectiveParams::from_alpha(0.9);
  request.solver = "pipeline";
  request.bounding.sampling = core::BoundingSampling::kUniform;
  request.bounding.sample_fraction = 0.3;
  request.distributed.num_machines = 8;
  request.distributed.num_rounds = 4;

  // 3. Run it. The report's `objective` is always f(S) recomputed exactly on
  //    the full ground set, so numbers are comparable across solvers.
  const api::SelectionReport report = api::select(request);
  std::printf("selected %zu points, f(S) = %.3f\n", report.selected.size(),
              report.objective);
  if (report.bounding.has_value()) {
    std::printf("  bounding: included %zu, excluded %zu (%zu grow / %zu shrink"
                " rounds)\n",
                report.bounding->included, report.bounding->excluded,
                report.bounding->grow_rounds, report.bounding->shrink_rounds);
  }
  for (const api::StageTiming& timing : report.timings) {
    std::printf("  stage %-10s %.1f ms\n", timing.stage.c_str(),
                timing.seconds * 1e3);
  }
  std::printf("  greedy: %zu distributed round(s)\n", report.rounds.size());

  // 4. Compare with the centralized gold standard — same request, different
  //    solver name. Expect the distributed result within a few percent of
  //    the (1 − 1/e)-optimal lazy greedy.
  api::SelectionRequest centralized = request;
  centralized.solver = "lazy-greedy";
  const api::SelectionReport gold = api::select(centralized);
  std::printf("lazy greedy (centralized): f(S) = %.3f -> distributed reaches"
              " %.1f%%\n",
              gold.objective, 100.0 * report.objective / gold.objective);

  // 5. Swap the objective, keep everything else: the same solvers maximize
  //    any kernel in the ObjectiveRegistry (`subsel objectives` lists them).
  //    Facility location scores every point by its best selected
  //    representative — exemplar selection instead of the pairwise
  //    utility/diversity trade-off. The bounding pre-pass is
  //    pairwise-specific, so this request disables it and the distributed
  //    greedy runs the lazy marginal-gain path instead of the closed-form
  //    priority queue.
  api::SelectionRequest exemplar = request;
  exemplar.objective_name = "facility-location";
  exemplar.bounding.enabled = false;
  const api::SelectionReport fl_report = api::select(exemplar);
  std::printf("facility-location: f(S) = %.3f with the same %s solver\n",
              fl_report.objective, fl_report.solver.c_str());
  return 0;
}
