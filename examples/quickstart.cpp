// Quickstart: the public API in one file.
//
//   1. Build (or bring) a dataset: embeddings -> utilities -> kNN graph.
//   2. Wrap it in a GroundSet and pick an objective f(S) = αΣu − βΣs.
//   3. Select a subset with the end-to-end pipeline (bounding + distributed
//      greedy), and compare against the centralized gold standard.
//
// Run:  ./build/examples/quickstart
#include <cstdio>

#include "core/selection_pipeline.h"
#include "data/datasets.h"

int main() {
  using namespace subsel;

  // 1. A small synthetic dataset: 2000 points in 8 clusters, margin
  //    utilities from a simulated coarse classifier, symmetrized 10-NN
  //    cosine graph. Substitute your own embeddings/utilities/graph by
  //    filling a data::Dataset (or implementing graph::GroundSet directly,
  //    see larger_than_memory.cpp).
  const data::Dataset dataset = data::toy_dataset(/*num_points=*/2000,
                                                  /*num_classes=*/8,
                                                  /*seed=*/42);
  std::printf("dataset: %zu points, %zu-d embeddings, avg degree %.1f\n",
              dataset.size(), dataset.embeddings.dim(),
              dataset.graph.average_degree());

  // 2. The pairwise submodular objective. α = 0.9 weighs utility 9:1 over
  //    diversity (the paper's default); β is always 1 − α.
  const auto params = core::ObjectiveParams::from_alpha(0.9);

  // 3. Select a 10 % subset. The pipeline first runs approximate bounding
  //    (30 % uniform neighborhood sampling), then finishes whatever budget
  //    remains with the multi-round distributed greedy.
  const std::size_t k = dataset.size() / 10;
  core::SelectionPipelineConfig config;
  config.objective = params;
  config.use_bounding = true;
  config.bounding.sampling = core::BoundingSampling::kUniform;
  config.bounding.sample_fraction = 0.3;
  config.greedy.num_machines = 8;
  config.greedy.num_rounds = 4;
  config.greedy.adaptive_partitioning = true;

  const auto ground_set = dataset.ground_set();
  const auto result = core::select_subset(ground_set, k, config);

  std::printf("selected %zu points, f(S) = %.3f\n", result.selected.size(),
              result.objective);
  if (result.bounding.has_value()) {
    std::printf("  bounding: included %zu, excluded %zu (%zu grow / %zu shrink"
                " rounds, %.1f ms)\n",
                result.bounding->included, result.bounding->excluded,
                result.bounding->grow_rounds, result.bounding->shrink_rounds,
                result.bounding_seconds * 1e3);
  }
  std::printf("  greedy: %zu distributed round(s), %.1f ms\n",
              result.greedy_rounds.size(), result.greedy_seconds * 1e3);

  // 4. Compare with centralized greedy — the (1 − 1/e) reference the paper
  //    normalizes against. Expect the distributed result within a few
  //    percent.
  const auto centralized =
      core::centralized_greedy(dataset.graph, dataset.utilities, params, k);
  std::printf("centralized greedy: f(S) = %.3f -> distributed reaches %.1f%%\n",
              centralized.objective,
              100.0 * result.objective / centralized.objective);
  return 0;
}
