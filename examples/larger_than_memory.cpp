// Larger-than-memory selection — the paper's headline capability: select a
// subset that does NOT fit in any single machine's memory, from a ground set
// that does not either.
//
// The ground set here is virtual (data::PerturbedGroundSet): utilities and
// neighborhoods are generated on demand from seeded hashes, so the resident
// footprint is O(base dataset), not O(points). The example
//   1. quantifies the DRAM a materialized run would need,
//   2. runs approximate bounding, which decides most points without any
//      machine holding the subset,
//   3. finishes the remaining budget with the multi-round distributed
//      greedy and reports the peak per-partition working set — the largest
//      amount of memory any "machine" actually used,
//   4. re-scores the selection through the dataflow (Apache-Beam-style)
//      engine under an explicit per-worker memory budget, proving the
//      Section-5 claim that scoring needs no resident subset either.
//
// Run:  ./build/examples/larger_than_memory [--base=2000] [--perturb=500]
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "beam/beam_scoring.h"
#include "core/bounding.h"
#include "core/distributed_greedy.h"
#include "data/perturbed.h"

int main(int argc, char** argv) {
  using namespace subsel;

  std::size_t base_points = 2000;
  std::size_t perturbations = 500;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--base=", 7) == 0) {
      base_points = static_cast<std::size_t>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--perturb=", 10) == 0) {
      perturbations = static_cast<std::size_t>(std::atoll(argv[i] + 10));
    }
  }

  // 1. The virtual ground set: every base point expands into `perturbations`
  //    on-the-fly variants (paper: 1.3M base x 10k = 13B points).
  const data::Dataset base = data::toy_dataset(base_points, 100, 21);
  data::PerturbedConfig config;
  config.perturbations_per_point = perturbations;
  const data::PerturbedGroundSet ground_set(base, config);

  const std::size_t n = ground_set.num_points();
  const std::size_t k = n / 2;  // a 50 % subset cannot fit "one machine" either
  std::printf("virtual ground set: %zu points (base %zu x %zu perturbations)\n",
              n, base_points, perturbations);
  std::printf("materialized, this would need %.2f GB of DRAM; resident base"
              " data is %.1f MB\n",
              static_cast<double>(ground_set.bytes_if_materialized()) / 1e9,
              static_cast<double>(base.embeddings.rows() * base.embeddings.dim() *
                                  sizeof(float)) /
                  1e6);

  // 2. Approximate bounding (30 % uniform sampling): most of the ground set
  //    is decided here, in embarrassingly parallel passes.
  core::BoundingConfig bounding_config;
  bounding_config.objective = core::ObjectiveParams::from_alpha(0.9);
  bounding_config.sampling = core::BoundingSampling::kUniform;
  bounding_config.sample_fraction = 0.3;
  auto bounding = core::bound(ground_set, k, bounding_config);
  std::printf("\nbounding: included %zu (%.1f%%), excluded %zu (%.1f%%),"
              " %zu points still open\n",
              bounding.included, 100.0 * bounding.included / n, bounding.excluded,
              100.0 * bounding.excluded / n, bounding.k_remaining);

  // 3. Distributed greedy on whatever bounding left open.
  std::vector<core::NodeId> selected;
  if (bounding.complete()) {
    selected = bounding.state.selected_ids();
    std::printf("bounding completed the subset on its own — no greedy needed\n");
  } else {
    core::DistributedGreedyConfig greedy_config;
    greedy_config.objective = bounding_config.objective;
    greedy_config.num_machines = 16;
    greedy_config.num_rounds = 4;
    const auto result =
        core::distributed_greedy(ground_set, k, greedy_config, &bounding.state);
    selected = result.selected;
    std::size_t peak = 0;
    for (const auto& round : result.rounds) {
      peak = std::max(peak, round.peak_partition_bytes);
    }
    std::printf("distributed greedy: f(S) = %.1f over %zu rounds; peak"
                " per-partition working set %.2f MB (vs %.2f GB materialized)\n",
                result.objective, result.rounds.size(),
                static_cast<double>(peak) / 1e6,
                static_cast<double>(ground_set.bytes_if_materialized()) / 1e9);
  }
  std::printf("selected %zu of %zu points\n", selected.size(), n);

  // 4. Score the subset through the dataflow engine with a hard per-worker
  //    memory budget — no worker ever holds the subset (Section 5).
  dataflow::PipelineOptions options;
  options.num_shards = 256;
  options.worker_memory_bytes = 8ull * 1024 * 1024;
  dataflow::Pipeline pipeline(options);
  const double score = beam::beam_score(pipeline, ground_set, selected,
                                        bounding_config.objective);
  std::printf("\ndistributed scoring under an 8 MB/worker budget: f(S) = %.1f,"
              " peak shard working set %.2f MB\n",
              score, static_cast<double>(pipeline.peak_shard_bytes()) / 1e6);
  return 0;
}
