// Larger-than-memory selection — the paper's headline capability: select a
// subset that does NOT fit in any single machine's memory, from a ground set
// that does not either.
//
// The ground set here is virtual (data::PerturbedGroundSet): utilities and
// neighborhoods are generated on demand from seeded hashes, so the resident
// footprint is O(base dataset), not O(points). The example
//   1. quantifies the DRAM a materialized run would need,
//   2. runs the full "pipeline" solver through the unified API — approximate
//      bounding decides most points, the multi-round distributed greedy
//      finishes the budget — watching round progress through the
//      SolverContext progress callback,
//   3. reads the bounding/round/memory statistics off the SelectionReport:
//      the peak per-partition working set is the largest amount of memory any
//      "machine" actually used,
//   4. re-scores the selection through the dataflow (Apache-Beam-style)
//      engine under an explicit per-worker memory budget, proving the
//      Section-5 claim that scoring needs no resident subset either.
//
// Run:  ./build/examples/larger_than_memory [--base=2000] [--perturb=500]
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "api/solver_registry.h"
#include "beam/beam_scoring.h"
#include "data/perturbed.h"

int main(int argc, char** argv) {
  using namespace subsel;

  std::size_t base_points = 2000;
  std::size_t perturbations = 500;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--base=", 7) == 0) {
      base_points = static_cast<std::size_t>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--perturb=", 10) == 0) {
      perturbations = static_cast<std::size_t>(std::atoll(argv[i] + 10));
    }
  }

  // 1. The virtual ground set: every base point expands into `perturbations`
  //    on-the-fly variants (paper: 1.3M base x 10k = 13B points).
  const data::Dataset base = data::toy_dataset(base_points, 100, 21);
  data::PerturbedConfig config;
  config.perturbations_per_point = perturbations;
  const data::PerturbedGroundSet ground_set(base, config);

  const std::size_t n = ground_set.num_points();
  const std::size_t k = n / 2;  // a 50 % subset cannot fit "one machine" either
  std::printf("virtual ground set: %zu points (base %zu x %zu perturbations)\n",
              n, base_points, perturbations);
  std::printf("materialized, this would need %.2f GB of DRAM; resident base"
              " data is %.1f MB\n",
              static_cast<double>(ground_set.bytes_if_materialized()) / 1e9,
              static_cast<double>(base.embeddings.rows() * base.embeddings.dim() *
                                  sizeof(float)) /
                  1e6);

  // 2. One request against the "pipeline" solver: 30 %-sampled approximate
  //    bounding, then 4 rounds of distributed greedy over 16 machines. The
  //    progress callback is the operational hook long cluster jobs need —
  //    the same channel a driver would use to decide to cancel.
  api::SelectionRequest request;
  request.ground_set = &ground_set;
  request.k = k;
  request.objective = core::ObjectiveParams::from_alpha(0.9);
  request.solver = "pipeline";
  request.bounding.sampling = core::BoundingSampling::kUniform;
  request.bounding.sample_fraction = 0.3;
  request.distributed.num_machines = 16;
  request.distributed.num_rounds = 4;

  api::SolverContext context;
  context.set_progress([](const ProgressEvent& event) {
    std::printf("  progress: %.*s %zu/%zu (%zu survivors)\n",
                static_cast<int>(event.stage.size()), event.stage.data(),
                event.step, event.total_steps, event.items);
  });
  const api::SelectionReport report = api::select(request, context);

  // 3. Everything the run did, off the one report.
  if (report.bounding.has_value()) {
    std::printf("\nbounding: included %zu (%.1f%%), excluded %zu (%.1f%%)\n",
                report.bounding->included,
                100.0 * static_cast<double>(report.bounding->included) /
                    static_cast<double>(n),
                report.bounding->excluded,
                100.0 * static_cast<double>(report.bounding->excluded) /
                    static_cast<double>(n));
  }
  if (report.rounds.empty()) {
    std::printf("bounding completed the subset on its own — no greedy needed\n");
  } else {
    std::printf("distributed greedy: f(S) = %.1f over %zu rounds; peak"
                " per-partition working set %.2f MB (vs %.2f GB materialized)\n",
                report.objective, report.rounds.size(),
                static_cast<double>(report.peak_partition_bytes) / 1e6,
                static_cast<double>(ground_set.bytes_if_materialized()) / 1e9);
  }
  std::printf("selected %zu of %zu points\n", report.selected.size(), n);

  // 4. Score the subset through the dataflow engine with a hard per-worker
  //    memory budget — no worker ever holds the subset (Section 5).
  dataflow::PipelineOptions options;
  options.num_shards = 256;
  options.worker_memory_bytes = 8ull * 1024 * 1024;
  dataflow::Pipeline pipeline(options);
  const double score = beam::beam_score(pipeline, ground_set, report.selected,
                                        request.objective);
  std::printf("\ndistributed scoring under an 8 MB/worker budget: f(S) = %.1f,"
              " peak shard working set %.2f MB\n",
              score, static_cast<double>(pipeline.peak_shard_bytes()) / 1e6);
  return 0;
}
