// Serving: a client session against the selection daemon, end to end.
//
// This example is self-contained: it starts the daemon stack in-process
// (resident toy dataset -> SelectionServer -> Unix-socket transport), then
// talks to it exactly like an external client of `subsel serve` would —
// newline-delimited JSON over the socket, responses matched by id:
//
//   1. an interactive request with a comfortable deadline -> "complete"
//   2. a batch request with a ~zero deadline -> "degraded": still a VALID
//      selection (best so far when the budget ran out), flagged with a
//      machine-readable reason — the deadline contract of README "Serving"
//   3. a "stats" request -> server counters + resident datasets
//
// Against a real daemon, skip the setup block and point ServeClient at the
// daemon's --socket path.
//
// Run:  ./build/examples/serve_client
#include <cstdio>
#include <filesystem>
#include <thread>

#include "data/datasets.h"
#include "graph/ground_set.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/socket_server.h"

int main() {
  using namespace subsel;

  // --- daemon setup (what `subsel serve --data=toy=...` does) ---
  const data::Dataset dataset = data::toy_dataset(/*num_points=*/2000,
                                                  /*num_classes=*/8,
                                                  /*seed=*/42);
  const graph::InMemoryGroundSet ground_set(dataset.graph, dataset.utilities);

  serve::ServerConfig config;
  config.max_concurrent = 2;
  serve::SelectionServer server(config);
  server.register_ground_set("toy", &ground_set);

  const std::string socket_path =
      (std::filesystem::temp_directory_path() / "subsel_example.sock").string();
  serve::SocketServer transport(server, socket_path);
  std::thread accept_thread([&transport] { transport.run(); });
  std::printf("daemon: toy dataset resident (%zu points), listening on %s\n",
              dataset.size(), socket_path.c_str());

  {
    // --- the client session ---
    serve::ServeClient client(socket_path);

    // 1. Interactive request, 2 s budget: plenty for 2000 points.
    serve::ServeRequest fast;
    fast.id = "interactive-1";
    fast.priority = serve::Priority::kInteractive;
    fast.deadline_ms = 2000;
    fast.dataset = "toy";
    fast.k = 200;
    const auto fast_response = client.call(fast);
    std::printf("[%s] status=%s: %zu ids, f(S)=%.4f (queue %.1f ms,"
                " solve %.1f ms)\n",
                fast_response.id.c_str(), fast_response.status.c_str(),
                fast_response.selected_count, fast_response.objective,
                fast_response.latency.queue_seconds * 1e3,
                fast_response.latency.solve_seconds * 1e3);

    // 2. Batch request with a 1 ms budget: the deadline expires mid-solve,
    //    and the daemon returns the best VALID selection it had — degraded,
    //    never an error, never a broken subset.
    serve::ServeRequest tight = fast;
    tight.id = "batch-tight";
    tight.priority = serve::Priority::kBatch;
    tight.deadline_ms = 1;
    const auto tight_response = client.call(tight);
    std::printf("[%s] status=%s reason=%s: %zu ids still valid\n",
                tight_response.id.c_str(), tight_response.status.c_str(),
                tight_response.reason.c_str(), tight_response.selected_count);

    // 3. Server-side counters: every response carries them, and a stats
    //    request returns them on demand.
    serve::ServeRequest stats;
    stats.kind = serve::ServeRequest::Kind::kStats;
    stats.id = "stats-1";
    const auto stats_response = client.call(stats);
    const serve::JsonValue* counters = stats_response.document.find("server");
    std::printf("[%s] status=%s: accepted=%.0f completed=%.0f degraded=%.0f\n",
                stats_response.id.c_str(), stats_response.status.c_str(),
                counters->find("accepted")->as_number(),
                counters->find("completed")->as_number(),
                counters->find("degraded")->as_number());
  }  // client disconnects here

  // --- graceful drain (what SIGTERM does to `subsel serve`) ---
  transport.stop();
  accept_thread.join();
  std::printf("daemon drained cleanly\n");
  return 0;
}
