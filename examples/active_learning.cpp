// Iterative active learning with selection rounds and utility refresh.
//
// The margin utilities of Section 6 come from a *coarse* model; in practice
// one alternates: select an informative batch -> label/train on it -> the
// model sharpens -> previously-uncertain points become easy -> re-score
// utilities -> select the next batch. This example simulates that loop:
// each acquisition round, the classifier's class centers get less noisy
// (simulating training on the acquired data), utilities are recomputed for
// the unlabeled pool, and the distributed pipeline picks the next batch.
//
// Watch two trends across rounds: mean margin utility of the pool falls
// (the model gets confident), and the acquired batches keep covering new
// classes instead of re-mining the same boundary.
//
// Run:  ./build/examples/active_learning [--rounds=4]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <set>

#include "api/solver_registry.h"
#include "data/datasets.h"
#include "data/synthetic.h"
#include "data/utility_model.h"
#include "graph/knn.h"

int main(int argc, char** argv) {
  using namespace subsel;

  std::size_t rounds = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      rounds = static_cast<std::size_t>(std::atoll(argv[i] + 9));
    }
  }

  // The unlabeled pool: embeddings + similarity graph are fixed across
  // acquisition rounds; only the utilities change as the model improves.
  data::ClusteredEmbeddingConfig pool_config;
  pool_config.num_points = 6000;
  pool_config.num_classes = 24;
  pool_config.seed = 77;
  const auto pool = data::generate_clustered_embeddings(pool_config);
  graph::KnnConfig knn;
  const auto graph = graph::build_similarity_graph(pool.points, knn);

  const std::size_t batch = pool_config.num_points / 20;  // 5 % per round
  std::printf("pool: %zu points, %zu classes; acquiring %zu points x %zu"
              " rounds\n\n",
              pool_config.num_points, pool_config.num_classes, batch, rounds);
  std::printf("%-6s %-14s %-12s %-14s %-12s\n", "round", "center noise",
              "mean margin", "new classes", "batch f(S)");

  std::set<std::uint32_t> seen_classes;
  std::vector<std::uint8_t> labeled(pool_config.num_points, 0);
  const auto params = core::ObjectiveParams::from_alpha(0.7);
  // One context across all acquisition rounds: the subproblem arenas warmed
  // by round 1 are reused by every later selection.
  api::SolverContext context;

  for (std::size_t round = 0; round < rounds; ++round) {
    // The model sharpens as it trains on the acquired batches: its believed
    // class centers converge to the true ones.
    data::CoarseClassifierConfig classifier_config;
    classifier_config.center_noise =
        0.30 / static_cast<double>(round + 1);  // 0.30, 0.15, 0.10, ...
    classifier_config.seed = 7 + round;
    const data::CoarseClassifier classifier(pool.centers, classifier_config);

    // Re-score the pool; already-labeled points get zero utility so the
    // selection never re-acquires them.
    std::vector<double> utilities =
        data::compute_margin_utilities(pool.points, classifier);
    const double mean_margin =
        std::accumulate(utilities.begin(), utilities.end(), 0.0) /
        static_cast<double>(utilities.size());
    for (std::size_t i = 0; i < labeled.size(); ++i) {
      if (labeled[i] != 0) utilities[i] = 0.0;
    }

    // Select the next batch with bounding + distributed greedy ("pipeline").
    graph::InMemoryGroundSet ground_set(graph, utilities);
    api::SelectionRequest request;
    request.ground_set = &ground_set;
    request.k = batch;
    request.objective = params;
    request.solver = "pipeline";
    request.bounding.sampling = core::BoundingSampling::kUniform;
    request.bounding.sample_fraction = 0.3;
    request.distributed.num_machines = 4;
    request.distributed.num_rounds = 4;
    const api::SelectionReport result = api::select(request, context);

    std::size_t new_classes = 0;
    for (core::NodeId v : result.selected) {
      labeled[static_cast<std::size_t>(v)] = 1;
      if (seen_classes.insert(pool.labels[static_cast<std::size_t>(v)]).second) {
        ++new_classes;
      }
    }
    std::printf("%-6zu %-14.3f %-12.4f %-14zu %-12.2f\n", round + 1,
                classifier_config.center_noise, mean_margin, new_classes,
                result.objective);
  }

  const auto total_labeled = static_cast<std::size_t>(
      std::count(labeled.begin(), labeled.end(), std::uint8_t{1}));
  std::printf("\nacquired %zu unique points covering %zu/%zu classes\n",
              total_labeled, seen_classes.size(), pool_config.num_classes);
  return 0;
}
