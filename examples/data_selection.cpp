// Training-data selection end to end — the paper's motivating workload
// (Section 1): given a large labeled pool with embeddings and a coarse
// model's uncertainty scores, pick the k most informative-and-diverse points
// to train on.
//
// Walks the full CIFAR-100-proxy flow of Section 6 on the unified API: one
// SelectionRequest template, dispatched to several registry solvers (random,
// GreeDi, the paper's pipeline) for apples-to-apples comparison, an α sweep
// showing the utility/diversity trade-off, distributed (dataflow) re-scoring
// of the result, and a per-class coverage report.
//
// Run:  ./build/examples/data_selection [--scale=0.1]
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "api/solver_registry.h"
#include "beam/beam_scoring.h"
#include "data/datasets.h"

namespace {

using namespace subsel;

/// #distinct classes covered and min/max per-class counts of a selection.
struct CoverageReport {
  std::size_t classes_covered = 0;
  std::size_t smallest_class = 0;
  std::size_t largest_class = 0;
};

CoverageReport coverage(const std::vector<core::NodeId>& selected,
                        const std::vector<std::uint32_t>& labels,
                        std::size_t num_classes) {
  std::vector<std::size_t> counts(num_classes, 0);
  for (core::NodeId v : selected) ++counts[labels[static_cast<std::size_t>(v)]];
  CoverageReport report;
  report.smallest_class = selected.size();
  for (std::size_t count : counts) {
    if (count > 0) {
      ++report.classes_covered;
      report.smallest_class = std::min(report.smallest_class, count);
      report.largest_class = std::max(report.largest_class, count);
    }
  }
  if (report.classes_covered == 0) report.smallest_class = 0;
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) scale = std::atof(argv[i] + 8);
  }

  const data::Dataset dataset = data::cifar_proxy(scale);
  const std::size_t k = dataset.size() / 10;
  const std::size_t num_classes =
      1 + *std::max_element(dataset.labels.begin(), dataset.labels.end());
  std::printf("pool: %zu points, %zu classes; selecting k = %zu (10%%)\n",
              dataset.size(), num_classes, k);

  const auto ground_set = dataset.ground_set();
  const auto params = core::ObjectiveParams::from_alpha(0.9);
  core::PairwiseObjective objective(ground_set, params);

  std::printf("\n%-28s %12s %8s %8s %8s\n", "method", "f(S) @a=0.9", "classes",
              "min/cls", "max/cls");

  const auto report_line = [&](const char* name,
                               const std::vector<core::NodeId>& selected) {
    const CoverageReport rep = coverage(selected, dataset.labels, num_classes);
    std::printf("%-28s %12.2f %8zu %8zu %8zu\n", name,
                objective.evaluate(selected), rep.classes_covered,
                rep.smallest_class, rep.largest_class);
  };

  // Baseline 1: top-k by utility alone — ignores diversity, so it piles up
  // on the most ambiguous class boundaries. (Not a registry solver: it is
  // not even submodular maximization, just a sort.)
  std::vector<core::NodeId> by_utility(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    by_utility[i] = static_cast<core::NodeId>(i);
  }
  std::sort(by_utility.begin(), by_utility.end(),
            [&](core::NodeId a, core::NodeId b) {
              return dataset.utilities[a] > dataset.utilities[b];
            });
  by_utility.resize(k);
  report_line("top-k by utility", by_utility);

  // Everything else is one request, fanned out across registry solvers. One
  // SolverContext shares the thread pool and subproblem arenas across runs.
  api::SelectionRequest request;
  request.ground_set = &ground_set;
  request.k = k;
  request.objective = params;
  request.bounding.sampling = core::BoundingSampling::kUniform;
  request.bounding.sample_fraction = 0.3;
  request.distributed.num_machines = 8;
  request.distributed.num_rounds = 8;
  api::SolverContext context;

  api::SelectionReport selected;  // the pipeline run, reused below
  api::SelectionReport greedi;    // for its merge-cost stats
  for (const auto& [solver, label] :
       {std::pair<const char*, const char*>{"random", "random"},
        {"greedi", "GreeDi (central merge)"},
        {"pipeline", "bounding + dist. greedy"}}) {
    request.solver = solver;
    request.seed = 99;
    api::SelectionReport report = api::select(request, context);
    report_line(label, report.selected);
    if (request.solver == std::string("pipeline")) selected = std::move(report);
    if (request.solver == std::string("greedi")) greedi = std::move(report);
  }

  // GreeDi's hidden cost, straight from the report: the m*k-candidate merge
  // one machine must hold (the requirement the paper's algorithm removes).
  for (const auto& [name, value] : greedi.extra) {
    if (name == "merge_candidates") {
      std::printf("%-28s %.0f candidates on the merge machine\n",
                  "  (GreeDi merge cost)", value);
    }
  }

  // α sweep: smaller α = more diversity pressure = flatter class histogram.
  std::printf("\nutility/diversity trade-off (bounding + distributed greedy):\n");
  std::printf("%-8s %12s %8s %8s %8s\n", "alpha", "f_a(S)", "classes", "min/cls",
              "max/cls");
  request.solver = "pipeline";
  for (const double alpha : {0.9, 0.5, 0.1}) {
    request.objective = core::ObjectiveParams::from_alpha(alpha);
    const api::SelectionReport run = api::select(request, context);
    const CoverageReport rep = coverage(run.selected, dataset.labels, num_classes);
    std::printf("%-8.1f %12.2f %8zu %8zu %8zu\n", alpha, run.objective,
                rep.classes_covered, rep.smallest_class, rep.largest_class);
  }

  // Distributed re-scoring (Section 5): validate the selection's objective
  // via dataflow joins, without a resident subset.
  dataflow::Pipeline pipeline;
  const double distributed_score =
      beam::beam_score(pipeline, ground_set, selected.selected, params);
  std::printf("\ndistributed re-score of the selection: %.2f (in-memory %.2f)\n",
              distributed_score, selected.objective);

  // Objective sweep: the same pool and the same solvers under different
  // selection *scenarios*. Facility location wants every point represented
  // by a similar selected exemplar; saturated coverage wants every point's
  // neighborhood mass covered up to τ. Both are registered kernels, so the
  // only change versus the runs above is the objective name (bounding off:
  // the pre-pass is pairwise-specific). Class coverage tightens noticeably
  // under both, since neither ever pays for picking two near-duplicates.
  std::printf("\nselection scenarios (same pool, --objective=NAME):\n");
  std::printf("%-28s %12s %8s %8s %8s\n", "objective", "f_obj(S)", "classes",
              "min/cls", "max/cls");
  request.objective = params;
  request.solver = "distributed-greedy";
  for (const char* objective_name :
       {"pairwise", "facility-location", "saturated-coverage"}) {
    request.objective_name = objective_name;
    const api::SelectionReport run = api::select(request, context);
    const CoverageReport rep = coverage(run.selected, dataset.labels, num_classes);
    std::printf("%-28s %12.2f %8zu %8zu %8zu\n", objective_name, run.objective,
                rep.classes_covered, rep.smallest_class, rep.largest_class);
  }
  return 0;
}
