// Out-of-core operations: a materialized dataset whose adjacency stays on
// disk, selected by a run that gets preempted and resumes.
//
// The paper's production setting is long jobs (10-48 h, Appendix D) on
// shared clusters where workers are preempted and no machine holds the
// data. This example demonstrates the operational pieces on a materialized
// (not virtual) dataset:
//   1. persist a dataset with the binary IO, then reopen only its per-point
//      scalars — the adjacency is served from disk through a bounded LRU
//      block cache (graph::DiskGroundSet);
//   2. run the multi-round greedy with round checkpointing, preempt it
//      mid-run (stop_after_round), and resume to completion — bit-identical
//      to an uninterrupted run;
//   3. report the cache hit rate and the resident footprint vs the full
//      adjacency size.
//
// Run:  ./build/examples/out_of_core [--points=20000]
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "core/distributed_greedy.h"
#include "data/dataset_io.h"
#include "data/datasets.h"
#include "graph/disk_ground_set.h"

int main(int argc, char** argv) {
  using namespace subsel;

  std::size_t points = 20000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--points=", 9) == 0) {
      points = static_cast<std::size_t>(std::atoll(argv[i] + 9));
    }
  }

  const auto scratch =
      std::filesystem::temp_directory_path() / "subsel_out_of_core";
  std::filesystem::create_directories(scratch);
  const std::string data_path = (scratch / "dataset").string();

  // 1. Build once, persist, and forget the in-memory copy.
  {
    const data::Dataset dataset = data::toy_dataset(points, 50, 99);
    data::save_dataset(dataset, data_path);
    std::printf("persisted %zu points to %s[.graph]\n", dataset.size(),
                data_path.c_str());
  }

  // Reopen scalars only; adjacency stays on disk behind a 32-block cache.
  auto scalars = data::load_dataset_scalars(data_path);
  graph::DiskGroundSetConfig cache;
  cache.block_edges = 2048;
  cache.max_cached_blocks = 32;
  const graph::DiskGroundSet ground_set(data_path + ".graph",
                                        std::move(scalars.utilities), cache);
  const std::size_t edge_bytes = ground_set.num_edges() * sizeof(graph::Edge);
  std::printf("adjacency on disk: %.2f MB; resident (scalars + cache): %.2f MB\n",
              static_cast<double>(edge_bytes) / 1e6,
              static_cast<double>(ground_set.resident_bytes()) / 1e6);

  // 2. Checkpointed run, preempted after 2 of 6 rounds...
  const std::size_t k = points / 10;
  core::DistributedGreedyConfig config;
  config.objective = core::ObjectiveParams::from_alpha(0.9);
  config.num_machines = 8;
  config.num_rounds = 6;
  config.checkpoint_file = (scratch / "run.ckpt").string();
  config.stop_after_round = 2;
  const auto partial = core::distributed_greedy(ground_set, k, config);
  std::printf("\npreempted after round %zu (checkpoint at %s)\n",
              partial.rounds.back().round, config.checkpoint_file.c_str());

  // ... then resumed to completion.
  config.stop_after_round = 0;
  const auto resumed = core::distributed_greedy(ground_set, k, config);
  std::printf("resumed %zu round(s) later: selected %zu points, f(S) = %.2f\n",
              resumed.resumed_rounds, resumed.selected.size(), resumed.objective);

  // Sanity: identical to an uninterrupted run (per-round RNG streams).
  config.checkpoint_file.clear();
  const auto uninterrupted = core::distributed_greedy(ground_set, k, config);
  std::printf("uninterrupted run selects the identical subset: %s\n",
              resumed.selected == uninterrupted.selected ? "yes" : "NO (bug!)");

  // 3. Cache behavior.
  const double total_accesses =
      static_cast<double>(ground_set.cache_hits() + ground_set.cache_misses());
  std::printf("\nedge-cache hit rate: %.1f%% over %.0f block accesses\n",
              100.0 * static_cast<double>(ground_set.cache_hits()) / total_accesses,
              total_accesses);

  std::filesystem::remove_all(scratch);
  return 0;
}
