// Out-of-core operations: a materialized dataset whose adjacency stays on
// disk, selected by a run that gets preempted — twice, two different ways —
// and resumes.
//
// The paper's production setting is long jobs (10-48 h, Appendix D) on
// shared clusters where workers are preempted and no machine holds the
// data. This example demonstrates the operational pieces on a materialized
// (not virtual) dataset, all through the unified API:
//   1. persist a dataset with the binary IO, then reopen only its per-point
//      scalars — the adjacency is served from disk through the sharded,
//      prefetching block cache (graph::DiskGroundSet: striped locks, worker
//      reads never funnel through one mutex; the solver round loops page
//      each round's partition plan in ahead of the solve);
//   2. run the multi-round "distributed-greedy" solver with round
//      checkpointing and preempt it mid-run two ways: a scheduled
//      stop_after_round, then a cooperative cancellation fired from the
//      progress callback (what a SIGTERM handler would call); resume to
//      completion — bit-identical to an uninterrupted run;
//   3. report the cache hit rate and the resident footprint vs the full
//      adjacency size.
//
// Run:  ./build/examples/out_of_core [--points=20000]
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "api/solver_registry.h"
#include "data/dataset_io.h"
#include "data/datasets.h"
#include "graph/disk_ground_set.h"

int main(int argc, char** argv) {
  using namespace subsel;

  std::size_t points = 20000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--points=", 9) == 0) {
      points = static_cast<std::size_t>(std::atoll(argv[i] + 9));
    }
  }

  const auto scratch =
      std::filesystem::temp_directory_path() / "subsel_out_of_core";
  std::filesystem::create_directories(scratch);
  const std::string data_path = (scratch / "dataset").string();

  // 1. Build once, persist, and forget the in-memory copy.
  {
    const data::Dataset dataset = data::toy_dataset(points, 50, 99);
    data::save_dataset(dataset, data_path);
    std::printf("persisted %zu points to %s[.graph]\n", dataset.size(),
                data_path.c_str());
  }

  // Reopen scalars only; adjacency stays on disk behind a 32-block cache
  // striped over 8 shards (the CLI spells these --cache-blocks,
  // --block-edges, --disk-shards).
  auto scalars = data::load_dataset_scalars(data_path);
  graph::DiskGroundSetConfig cache;
  cache.block_edges = 2048;
  cache.max_cached_blocks = 32;
  cache.num_shards = 8;
  const graph::DiskGroundSet ground_set(data_path + ".graph",
                                        std::move(scalars.utilities), cache);
  const std::size_t edge_bytes = ground_set.num_edges() * sizeof(graph::Edge);
  std::printf("adjacency on disk: %.2f MB; resident (scalars + cache): %.2f MB\n",
              static_cast<double>(edge_bytes) / 1e6,
              static_cast<double>(ground_set.resident_bytes()) / 1e6);

  // 2a. Checkpointed run, preempted after 2 of 6 rounds by a scheduled stop.
  api::SelectionRequest request;
  request.ground_set = &ground_set;
  request.k = points / 10;
  request.objective = core::ObjectiveParams::from_alpha(0.9);
  request.solver = "distributed-greedy";
  request.distributed.num_machines = 8;
  request.distributed.num_rounds = 6;
  request.distributed.prefetch_depth = 2;  // page 2 partitions ahead (CLI:
                                           // --prefetch-depth)
  request.distributed.checkpoint_file = (scratch / "run.ckpt").string();
  request.distributed.stop_after_round = 2;

  const api::SelectionReport partial = api::select(request);
  std::printf("\nscheduled stop: preempted=%s after %zu round(s) (checkpoint"
              " at %s)\n",
              partial.preempted ? "yes" : "no", partial.rounds.size(),
              request.distributed.checkpoint_file.c_str());

  // 2b. Resume... and preempt again, this time cooperatively: the progress
  //     callback cancels after one more round, exactly what a preemption
  //     signal handler on a shared cluster would do.
  request.distributed.stop_after_round = 0;
  {
    api::SolverContext context;
    context.set_progress([&context](const ProgressEvent& event) {
      if (event.step >= 4) context.cancel().request_stop();
    });
    const api::SelectionReport cancelled = api::select(request, context);
    std::printf("cooperative cancel: preempted=%s after round 4\n",
                cancelled.preempted ? "yes" : "no");
  }

  // 2c. ...then resumed to completion with a fresh context.
  const api::SelectionReport resumed = api::select(request);
  double resumed_rounds = 0;
  for (const auto& [name, value] : resumed.extra) {
    if (name == "resumed_rounds") resumed_rounds = value;
  }
  std::printf("resumed from round %.0f: selected %zu points, f(S) = %.2f\n",
              resumed_rounds, resumed.selected.size(), resumed.objective);

  // Sanity: identical to an uninterrupted run (per-round RNG streams).
  request.distributed.checkpoint_file.clear();
  const api::SelectionReport uninterrupted = api::select(request);
  std::printf("uninterrupted run selects the identical subset: %s\n",
              resumed.selected == uninterrupted.selected ? "yes" : "NO (bug!)");

  // 3. Cache behavior: the uninterrupted run's SelectionReport carries the
  //    per-run counter deltas; the ground set keeps the lifetime totals.
  if (uninterrupted.disk_cache.has_value()) {
    const auto& run = *uninterrupted.disk_cache;
    std::printf("\nlast run: %llu hits / %llu misses, %llu blocks prefetched,"
                " peak %zu/%zu blocks resident across %zu shards\n",
                static_cast<unsigned long long>(run.hits),
                static_cast<unsigned long long>(run.misses),
                static_cast<unsigned long long>(run.prefetch_loaded),
                run.resident_blocks_high_water, run.max_cached_blocks,
                run.num_shards);
  }
  const graph::DiskCacheStats totals = ground_set.stats();
  const double total_accesses = static_cast<double>(totals.hits + totals.misses);
  std::printf("lifetime edge-cache hit rate: %.1f%% over %.0f block accesses\n",
              total_accesses > 0.0
                  ? 100.0 * static_cast<double>(totals.hits) / total_accesses
                  : 0.0,
              total_accesses);

  std::filesystem::remove_all(scratch);
  return 0;
}
