// String-keyed registry of every selection solver in the repo.
//
// An entry is a name, human-facing metadata (description, guarantee,
// capability flags — what `subsel solvers` prints), and an adapter closure
// that maps (SelectionRequest, SolverContext) onto one of the library's
// engines and normalizes its result into a SelectionReport. The built-in
// solvers are registered on first access of instance(); downstream code can
// register additional ones (the conformance suite in tests/api runs against
// whatever is registered, so extensions inherit the test coverage).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "api/objective_registry.h"
#include "api/selection_api.h"
#include "core/objective_kernel.h"

namespace subsel::api {

struct SolverCapabilities {
  /// Needs the whole similarity graph reachable (random access); streaming
  /// solvers that only do one pass clear this.
  bool needs_full_graph = true;
  /// Processes the ground set as a one-pass stream with sublinear memory.
  bool streaming = false;
  /// Partition-parallel: work splits across "machines" (pool workers).
  bool distributed = false;
  /// Honors SolverContext::cancel() at round boundaries.
  bool cancellable = false;
  /// Supports round checkpoint/resume via DistributedOptions::checkpoint_file.
  bool checkpointable = false;

  // What the solver demands of the objective. Checked against the objective's
  // ObjectiveKernelCaps when a request is validated, so an unsupported
  // solver×objective combination fails with a clear error before anything
  // runs.
  /// Runs the bounding pre-pass when request.bounding.enabled — requires an
  /// objective with utility-bound support (caps().utility_bounds).
  bool bounding_stage = false;
  /// Scores f(S) with the Section 5 distributed joins — requires an
  /// edge-decomposable objective (caps().distributed_scoring).
  bool needs_distributed_scoring = false;

  /// Honors a core::ConstraintSet (knapsack / partition matroid / blocked
  /// ids): the solver's acceptance loop consults a ConstraintTracker and the
  /// returned selection is feasible. Defaults to false so solvers registered
  /// by downstream code are rejected up-front on constrained requests instead
  /// of silently ignoring the budgets.
  bool constrained = false;
};

/// Why `solver` cannot run `objective` under `request` — empty string when
/// the combination is valid. The single source of truth for request
/// validation, `subsel objectives`' support matrix, and the bench objective
/// matrix.
std::string incompatibility_reason(const SolverCapabilities& solver,
                                   const core::ObjectiveKernelCaps& objective,
                                   bool bounding_enabled);
/// As above, additionally validating a constrained request (`constrained` =
/// the request carries a non-empty ConstraintSet). The 3-arg overload is the
/// unconstrained special case.
std::string incompatibility_reason(const SolverCapabilities& solver,
                                   const core::ObjectiveKernelCaps& objective,
                                   bool bounding_enabled, bool constrained);

struct SolverInfo {
  std::string name;
  std::string description;
  /// Approximation guarantee, for the solver table ("1-1/e", "1/2-eps", ...).
  std::string guarantee;
  /// Memory regime of the most loaded machine ("O(n)", "O(m*k) merge", ...).
  std::string memory_regime;
  SolverCapabilities caps;
};

class SolverRegistry {
 public:
  /// The adapter closure: maps (request, context, kernel, constraints) onto
  /// one of the library's engines. The kernel is the already-built,
  /// already-validated objective instance for request.objective_name over
  /// request.ground_set; the constraints are the already-validated resolved
  /// ConstraintSet of the request (nullptr on unconstrained runs — the
  /// common case — so adapters forward it verbatim).
  using SolverFn = std::function<SelectionReport(
      const SelectionRequest&, SolverContext&, const core::ObjectiveKernel&,
      const core::ConstraintSet*)>;

  /// The process-wide registry, with all built-in solvers registered.
  static SolverRegistry& instance();

  /// Registers (or replaces) a solver. Not thread-safe against concurrent
  /// run()/list(); register at startup.
  void register_solver(SolverInfo info, SolverFn fn);

  bool contains(const std::string& name) const;
  /// Metadata for `name`, or nullptr when unknown.
  const SolverInfo* info(const std::string& name) const;
  /// All registered solvers, sorted by name.
  std::vector<SolverInfo> list() const;

  /// Dispatches `request.solver`, fills the report's common fields (exact
  /// objective recompute through the request's kernel, total wall time,
  /// config echo), and returns it. Throws std::invalid_argument on an
  /// unknown solver or objective name (the message lists the known ones), an
  /// invalid request, or an unsupported solver×objective combination.
  SelectionReport run(const SelectionRequest& request, SolverContext& context) const;

 private:
  struct Entry {
    SolverInfo info;
    SolverFn fn;
  };
  std::map<std::string, Entry> entries_;
};

/// Convenience: run `request` on the global registry with a fresh context.
SelectionReport select(const SelectionRequest& request);
/// Convenience: run `request` on the global registry with `context`.
SelectionReport select(const SelectionRequest& request, SolverContext& context);

}  // namespace subsel::api
