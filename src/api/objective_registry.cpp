#include "api/objective_registry.h"

#include <stdexcept>
#include <utility>

#include "core/coverage_kernel.h"
#include "core/facility_location_kernel.h"

namespace subsel::api {
namespace {

void register_builtins(ObjectiveRegistry& registry) {
  // Caps literals mirror each kernel class's caps() — asserted equal by the
  // tests/api conformance suite so the metadata cannot drift from the code.
  registry.register_objective(
      {"pairwise",
       "The paper's Section 3 objective: utility sum minus similarity"
       " penalties over selected neighbor pairs; alpha/beta set the balance",
       "f(S) = alpha*sum_{v in S} u(v) - beta*sum_{{v1,v2} in E, v1,v2 in S}"
       " s(v1,v2)",
       {/*linear_priority_updates=*/true, /*utility_bounds=*/true,
        /*distributed_scoring=*/true, /*monotone=*/false,
        /*incremental_state=*/true}},
      [](const SelectionRequest& request) {
        return std::make_unique<core::PairwiseKernel>(*request.ground_set,
                                                      request.objective);
      });

  registry.register_objective(
      {"facility-location",
       "Max-based coverage: every point is scored by its best selected"
       " representative on the similarity graph (exemplar selection)",
       "f(S) = sum_{v in V} w(v) * max_{s in S} sigma(v,s)",
       {/*linear_priority_updates=*/false, /*utility_bounds=*/false,
        /*distributed_scoring=*/false, /*monotone=*/true,
        /*incremental_state=*/true}},
      [](const SelectionRequest& request) {
        core::FacilityLocationParams params;
        params.self_similarity = request.facility_location.self_similarity;
        params.utility_weighted = request.facility_location.utility_weighted;
        return std::make_unique<core::FacilityLocationKernel>(*request.ground_set,
                                                              params);
      });

  registry.register_objective(
      {"saturated-coverage",
       "Truncated-sum coverage: points accumulate similarity mass from"
       " selected neighbors, saturating at the threshold tau",
       "f(S) = sum_{v in V} w(v) * min(tau, sum_{s in S cap N(v)} s(v,s)"
       " + sigma_self*[v in S])",
       {/*linear_priority_updates=*/false, /*utility_bounds=*/false,
        /*distributed_scoring=*/false, /*monotone=*/true,
        /*incremental_state=*/true}},
      [](const SelectionRequest& request) {
        core::SaturatedCoverageParams params;
        params.saturation = request.coverage.saturation;
        params.self_similarity = request.coverage.self_similarity;
        params.utility_weighted = request.coverage.utility_weighted;
        return std::make_unique<core::SaturatedCoverageKernel>(*request.ground_set,
                                                               params);
      });
}

}  // namespace

ObjectiveRegistry& ObjectiveRegistry::instance() {
  static ObjectiveRegistry registry = [] {
    ObjectiveRegistry built;
    register_builtins(built);
    return built;
  }();
  return registry;
}

void ObjectiveRegistry::register_objective(ObjectiveInfo info,
                                           KernelFactory factory) {
  const std::string name = info.name;
  entries_[name] = Entry{std::move(info), std::move(factory)};
}

bool ObjectiveRegistry::contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

const ObjectiveInfo* ObjectiveRegistry::info(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second.info;
}

std::vector<ObjectiveInfo> ObjectiveRegistry::list() const {
  std::vector<ObjectiveInfo> infos;
  infos.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) infos.push_back(entry.info);
  return infos;
}

std::unique_ptr<core::ObjectiveKernel> ObjectiveRegistry::make(
    const SelectionRequest& request) const {
  if (request.ground_set == nullptr) {
    throw std::invalid_argument("SelectionRequest: ground_set is null");
  }
  const auto it = entries_.find(request.objective_name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& [name, entry] : entries_) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    throw std::invalid_argument("unknown objective \"" + request.objective_name +
                                "\" (known: " + known + ")");
  }
  return it->second.factory(request);
}

}  // namespace subsel::api
