#include "api/solver_registry.h"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <utility>

#include "baselines/baselines.h"
#include "baselines/streaming.h"
#include "beam/beam_pipeline.h"
#include "common/simd.h"
#include "common/timer.h"
#include "core/selection_pipeline.h"
#include "dataflow/pipeline.h"
#include "graph/disk_ground_set.h"
#include "graph/overlay_ground_set.h"

namespace subsel::api {
namespace {

/// The wall-clock budget governing this run: the request's (clock started at
/// solver dispatch) when set, else whatever the caller armed on the context.
Deadline effective_deadline(const SelectionRequest& request,
                            const SolverContext& context) {
  return request.deadline_ms > 0 ? Deadline::after_ms(request.deadline_ms)
                                 : context.deadline();
}

/// Resolves checkpoint_file vs resume_from (the latter is an alias; two
/// different paths are a contradiction the round loop cannot honor).
std::string effective_checkpoint_file(const DistributedOptions& options) {
  if (!options.resume_from.empty() && !options.checkpoint_file.empty() &&
      options.resume_from != options.checkpoint_file) {
    throw std::invalid_argument(
        "checkpoint_file and resume_from name different files; the round loop"
        " resumes from and saves to one checkpoint — set just one of them");
  }
  return options.checkpoint_file.empty() ? options.resume_from
                                         : options.checkpoint_file;
}

/// Maps the request's option blocks onto the core round-loop config and wires
/// in the context's shared state (pool, arenas, cancellation, progress) plus
/// the objective kernel.
core::DistributedGreedyConfig greedy_config(const SelectionRequest& request,
                                            SolverContext& context,
                                            const core::ObjectiveKernel& kernel,
                                            const core::ConstraintSet* constraints) {
  core::DistributedGreedyConfig config;
  config.constraints = constraints;
  config.objective = request.objective;
  config.kernel = &kernel;
  config.num_machines = request.distributed.num_machines;
  config.num_rounds = request.distributed.num_rounds;
  config.adaptive_partitioning = request.distributed.adaptive_partitioning;
  config.partition_solver = request.distributed.partition_solver;
  config.stochastic_epsilon = request.distributed.stochastic_epsilon;
  config.checkpoint_file = effective_checkpoint_file(request.distributed);
  config.checkpoint_every = request.distributed.checkpoint_every;
  config.stop_after_round = request.distributed.stop_after_round;
  config.prefetch_depth = request.distributed.prefetch_depth;
  config.seed = request.seed;
  config.pool = context.pool();
  config.arena_pool = &context.arenas();
  config.cancel = context.cancel();
  config.progress = context.progress();
  config.deadline = effective_deadline(request, context);
  return config;
}

core::SelectionPipelineConfig pipeline_config(const SelectionRequest& request,
                                              SolverContext& context,
                                              const core::ObjectiveKernel& kernel,
                                              const core::ConstraintSet* constraints) {
  core::SelectionPipelineConfig config;
  config.objective = request.objective;
  config.kernel = &kernel;
  config.use_bounding = request.bounding.enabled;
  config.bounding.sampling = request.bounding.sampling;
  config.bounding.sample_fraction = request.bounding.sample_fraction;
  config.bounding.prefetch_depth = request.bounding.prefetch_depth;
  config.bounding.seed = request.seed;
  config.bounding.pool = context.pool();
  config.bounding.deadline = effective_deadline(request, context);
  config.greedy = greedy_config(request, context, kernel, constraints);
  return config;
}

void absorb_pipeline_result(core::SelectionPipelineResult&& result,
                            SelectionReport& report) {
  report.selected = std::move(result.selected);
  report.solver_objective = result.objective;
  report.preempted = result.preempted;
  report.degraded = result.degraded;
  report.degraded_reason = std::move(result.degraded_reason);
  report.rounds = std::move(result.greedy_rounds);
  if (result.bounding.has_value()) {
    report.bounding = BoundingSummary{
        result.bounding->included, result.bounding->excluded,
        result.bounding->grow_rounds, result.bounding->shrink_rounds};
    report.timings.push_back({"bounding", result.bounding_seconds});
  }
  report.timings.push_back({"greedy", result.greedy_seconds});
}

SelectionReport run_pipeline(const SelectionRequest& request,
                             SolverContext& context,
                             const core::ObjectiveKernel& kernel,
                             const core::ConstraintSet* constraints) {
  SelectionReport report;
  absorb_pipeline_result(
      core::select_subset(*request.ground_set, request.resolved_k(),
                          pipeline_config(request, context, kernel, constraints)),
      report);
  return report;
}

SelectionReport run_distributed_greedy(const SelectionRequest& request,
                                       SolverContext& context,
                                       const core::ObjectiveKernel& kernel,
                                       const core::ConstraintSet* constraints) {
  auto result = core::distributed_greedy(
      *request.ground_set, request.resolved_k(),
      greedy_config(request, context, kernel, constraints));
  SelectionReport report;
  report.selected = std::move(result.selected);
  report.solver_objective = result.objective;
  report.preempted = result.preempted;
  report.degraded = result.degraded;
  report.degraded_reason = std::move(result.degraded_reason);
  report.rounds = std::move(result.rounds);
  if (result.resumed_rounds > 0) {
    report.extra.emplace_back("resumed_rounds",
                              static_cast<double>(result.resumed_rounds));
  }
  return report;
}

SelectionReport run_dataflow(const SelectionRequest& request,
                             SolverContext& context,
                             const core::ObjectiveKernel& kernel,
                             const core::ConstraintSet* constraints) {
  dataflow::PipelineOptions options;
  options.num_shards = request.dataflow.num_shards;
  options.worker_memory_bytes = request.dataflow.worker_memory_bytes;
  options.pool = context.pool();
  dataflow::Pipeline pipeline(options);
  SelectionReport report;
  absorb_pipeline_result(
      beam::beam_select_subset(pipeline, *request.ground_set,
                               request.resolved_k(),
                               pipeline_config(request, context, kernel,
                                               constraints)),
      report);
  report.extra.emplace_back("peak_shard_bytes",
                            static_cast<double>(pipeline.peak_shard_bytes()));
  return report;
}

SelectionReport run_greedi(const SelectionRequest& request, SolverContext& context,
                           const core::ObjectiveKernel& kernel,
                           const core::ConstraintSet* constraints,
                           baselines::PartitionScheme scheme) {
  baselines::GreeDiConfig config;
  config.objective = request.objective;
  config.kernel = &kernel;
  config.num_machines = request.distributed.num_machines;
  config.scheme = scheme;
  config.seed = request.seed;
  config.pool = context.pool();
  config.constraints = constraints;
  auto result = baselines::greedi(*request.ground_set, request.resolved_k(), config);
  SelectionReport report;
  report.selected = std::move(result.selected);
  report.solver_objective = result.objective;
  report.peak_resident_elements = result.merge_candidates;
  report.peak_partition_bytes = result.peak_partition_bytes;
  report.peak_kernel_state_bytes = result.peak_state_bytes;
  report.extra.emplace_back("merge_candidates",
                            static_cast<double>(result.merge_candidates));
  report.extra.emplace_back("merge_bytes", static_cast<double>(result.merge_bytes));
  return report;
}

/// Centralized baselines hold the whole ground set on one machine; their
/// engine bytes map onto the partition/state memory stats so no solver
/// reports zeros it shouldn't.
SelectionReport from_greedy_result(core::GreedyResult&& result,
                                   std::size_t resident_elements = 0) {
  SelectionReport report;
  report.degraded = result.degraded;
  if (result.degraded) {
    report.degraded_reason = "deadline expired after " +
                             std::to_string(result.selected.size()) +
                             " selections; returning the greedy prefix";
  }
  report.selected = std::move(result.selected);
  report.solver_objective = result.objective;
  report.peak_partition_bytes = result.materialized_bytes;
  report.peak_kernel_state_bytes = result.kernel_state_bytes;
  report.peak_resident_elements = resident_elements;
  return report;
}

SelectionReport run_sieve(const SelectionRequest& request, SolverContext& context,
                          const core::ObjectiveKernel& kernel,
                          const core::ConstraintSet* constraints) {
  baselines::SieveStreamingConfig config;
  config.objective = request.objective;
  config.kernel = &kernel;
  config.epsilon = request.streaming.epsilon;
  config.apply_monotonicity_offset = request.streaming.monotonicity_offset;
  config.seed = request.seed;
  config.deadline = effective_deadline(request, context);
  config.constraints = constraints;
  auto result =
      baselines::sieve_streaming(*request.ground_set, request.resolved_k(), config);
  SelectionReport report;
  report.selected = std::move(result.selected);
  report.solver_objective = result.objective;
  report.peak_resident_elements = result.peak_resident_elements;
  report.degraded = result.degraded;
  if (result.degraded) {
    report.degraded_reason =
        "deadline expired mid-stream; returning the best sieve over the"
        " prefix seen";
  }
  report.extra.emplace_back("num_sieves", static_cast<double>(result.num_sieves));
  return report;
}

SelectionReport run_sample_and_prune(const SelectionRequest& request,
                                     SolverContext& context,
                                     const core::ObjectiveKernel& kernel,
                                     const core::ConstraintSet* constraints) {
  baselines::SamplePruneConfig config;
  config.objective = request.objective;
  config.kernel = &kernel;
  config.machine_capacity = request.sample_prune.machine_capacity;
  config.max_rounds = request.sample_prune.max_rounds;
  config.seed = request.seed;
  config.deadline = effective_deadline(request, context);
  config.constraints = constraints;
  auto result =
      baselines::sample_and_prune(*request.ground_set, request.resolved_k(), config);
  SelectionReport report;
  report.selected = std::move(result.selected);
  report.solver_objective = result.objective;
  report.peak_resident_elements = result.peak_resident_elements;
  report.peak_partition_bytes = result.materialized_bytes;
  report.peak_kernel_state_bytes = result.kernel_state_bytes;
  report.degraded = result.degraded;
  if (result.degraded) {
    report.degraded_reason = "deadline expired after " +
                             std::to_string(result.rounds) +
                             " sample-and-prune rounds; returning the partial"
                             " solution";
  }
  report.extra.emplace_back("rounds", static_cast<double>(result.rounds));
  return report;
}

void register_builtins(SolverRegistry& registry) {
  using baselines::PartitionScheme;

  SolverCapabilities round_based;
  round_based.distributed = true;
  round_based.cancellable = true;
  round_based.checkpointable = true;
  round_based.constrained = true;

  SolverCapabilities pipeline_caps = round_based;
  pipeline_caps.bounding_stage = true;
  registry.register_solver(
      {"pipeline",
       "Bounding pre-pass + multi-round distributed greedy — the paper's"
       " deployed end-to-end system",
       "1-1/e vs centralized (empirical)", "O(|V|/m) per machine", pipeline_caps},
      run_pipeline);

  registry.register_solver(
      {"distributed-greedy",
       "Pure multi-round partition greedy (Algorithm 6), no bounding, no"
       " central merge",
       "1-1/e vs centralized (empirical)", "O(|V|/m) per machine", round_based},
      run_distributed_greedy);

  SolverCapabilities dataflow_caps = round_based;
  dataflow_caps.checkpointable = false;  // beam rounds re-run from scratch
  dataflow_caps.bounding_stage = true;
  dataflow_caps.needs_distributed_scoring = true;
  // The beam substrate's stage fusion predates the constraint seam.
  dataflow_caps.constrained = false;
  registry.register_solver(
      {"dataflow",
       "The full pipeline on the Beam-style dataflow substrate with enforced"
       " per-worker memory budgets",
       "1-1/e vs centralized (empirical)", "per-worker budget, enforced",
       dataflow_caps},
      run_dataflow);

  SolverCapabilities merge_based;
  merge_based.distributed = true;
  merge_based.constrained = true;
  registry.register_solver(
      {"greedi",
       "GreeDi (Mirzasoleiman et al.): per-partition greedy over contiguous"
       " partitions, then one centralized merge of m*k candidates",
       "(1-1/e)/min(sqrt(k),m)", "O(m*k) central merge", merge_based},
      [](const SelectionRequest& request, SolverContext& context,
         const core::ObjectiveKernel& kernel,
         const core::ConstraintSet* constraints) {
        return run_greedi(request, context, kernel, constraints,
                          PartitionScheme::kContiguous);
      });

  registry.register_solver(
      {"randgreedi",
       "RandGreeDi (Barbosa et al.): GreeDi with uniform random partitioning",
       "(1-1/e)/2 in expectation", "O(m*k) central merge", merge_based},
      [](const SelectionRequest& request, SolverContext& context,
         const core::ObjectiveKernel& kernel,
         const core::ConstraintSet* constraints) {
        return run_greedi(request, context, kernel, constraints,
                          PartitionScheme::kRandom);
      });

  SolverCapabilities centralized_caps;
  centralized_caps.constrained = true;
  registry.register_solver(
      {"lazy-greedy",
       "Lazy greedy (Minoux): centralized Algorithm 2 with stale-gain"
       " re-evaluation; the gold-standard output",
       "1-1/e", "O(n) one machine", centralized_caps},
      [](const SelectionRequest& request, SolverContext& context,
         const core::ObjectiveKernel& kernel,
         const core::ConstraintSet* constraints) {
        return from_greedy_result(
            baselines::lazy_greedy(kernel, request.resolved_k(),
                                   effective_deadline(request, context),
                                   constraints),
            request.ground_set->num_points());
      });

  registry.register_solver(
      {"stochastic-greedy",
       "Stochastic greedy (lazier-than-lazy): each step scans a random"
       " (n/k)ln(1/eps) sample",
       "1-1/e-eps in expectation", "O(n) one machine", centralized_caps},
      [](const SelectionRequest& request, SolverContext& context,
         const core::ObjectiveKernel& kernel,
         const core::ConstraintSet* constraints) {
        return from_greedy_result(
            baselines::stochastic_greedy(kernel, request.resolved_k(),
                                         request.distributed.stochastic_epsilon,
                                         request.seed,
                                         effective_deadline(request, context),
                                         constraints),
            request.ground_set->num_points());
      });

  registry.register_solver(
      {"threshold-greedy",
       "Threshold greedy (Badanidiyuru & Vondrak): descending geometric"
       " threshold sweep",
       "1-1/e-eps", "O(n) one machine", centralized_caps},
      [](const SelectionRequest& request, SolverContext& context,
         const core::ObjectiveKernel& kernel,
         const core::ConstraintSet* constraints) {
        return from_greedy_result(
            baselines::threshold_greedy(kernel, request.resolved_k(),
                                        request.streaming.epsilon,
                                        effective_deadline(request, context),
                                        constraints),
            request.ground_set->num_points());
      });

  SolverCapabilities streaming_caps;
  streaming_caps.needs_full_graph = false;
  streaming_caps.streaming = true;
  streaming_caps.constrained = true;
  registry.register_solver(
      {"sieve-streaming",
       "SieveStreaming (Badanidiyuru et al.): one pass over a random"
       " permutation, O(k log(k)/eps) resident elements",
       "1/2-eps", "O(k log(k)/eps) resident", streaming_caps},
      run_sieve);

  SolverCapabilities sample_prune_caps;
  sample_prune_caps.distributed = true;
  sample_prune_caps.constrained = true;
  registry.register_solver(
      {"sample-and-prune",
       "SAMPLE&PRUNE (Kumar et al.): MapReduce rounds of sample, greedy"
       " extend, prune",
       "constant factor", "O(k*n^delta) coordinator", sample_prune_caps},
      run_sample_and_prune);

  SolverCapabilities random_caps;
  random_caps.needs_full_graph = false;
  random_caps.constrained = true;
  registry.register_solver(
      {"random",
       "Uniform random subset without replacement — the floor every"
       " normalized score is measured against",
       "none", "O(k)", random_caps},
      [](const SelectionRequest& request, SolverContext&,
         const core::ObjectiveKernel& kernel,
         const core::ConstraintSet* constraints) {
        return from_greedy_result(baselines::random_selection(
            kernel, request.resolved_k(), request.seed, constraints));
      });
}

}  // namespace

std::string incompatibility_reason(const SolverCapabilities& solver,
                                   const core::ObjectiveKernelCaps& objective,
                                   bool bounding_enabled) {
  return incompatibility_reason(solver, objective, bounding_enabled,
                                /*constrained=*/false);
}

std::string incompatibility_reason(const SolverCapabilities& solver,
                                   const core::ObjectiveKernelCaps& objective,
                                   bool bounding_enabled, bool constrained) {
  if (solver.needs_distributed_scoring && !objective.distributed_scoring) {
    return "the solver scores f(S) with the Section 5 distributed joins,"
           " which need an edge-decomposable objective";
  }
  if (solver.bounding_stage && bounding_enabled && !objective.utility_bounds) {
    return "the bounding pre-pass needs utility-bound support"
           " (Section 4.1 Umin/Umax); disable bounding (--bounding=none) or"
           " use the pairwise objective";
  }
  if (constrained && !solver.constrained) {
    return "the solver's acceptance loop does not consult a"
           " ConstraintTracker, so it would silently ignore the knapsack/"
           "matroid/blocked budgets; pick a constrained-capable solver";
  }
  if (constrained && solver.bounding_stage && bounding_enabled) {
    return "the bounding pre-pass is unconstrained and can exclude the only"
           " feasible candidates; disable bounding (--bounding=none) to run"
           " with selection constraints";
  }
  return "";
}

SolverRegistry& SolverRegistry::instance() {
  static SolverRegistry registry = [] {
    SolverRegistry built;
    register_builtins(built);
    return built;
  }();
  return registry;
}

void SolverRegistry::register_solver(SolverInfo info, SolverFn fn) {
  const std::string name = info.name;
  entries_[name] = Entry{std::move(info), std::move(fn)};
}

bool SolverRegistry::contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

const SolverInfo* SolverRegistry::info(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second.info;
}

std::vector<SolverInfo> SolverRegistry::list() const {
  std::vector<SolverInfo> infos;
  infos.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) infos.push_back(entry.info);
  return infos;
}

SelectionReport SolverRegistry::run(const SelectionRequest& request,
                                    SolverContext& context) const {
  const auto it = entries_.find(request.solver);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& [name, entry] : entries_) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    throw std::invalid_argument("unknown solver \"" + request.solver +
                                "\" (known: " + known + ")");
  }
  const std::size_t k = request.resolved_k();  // validates request up front

  // Resolve the request's constraint block into a validated ConstraintSet.
  // Overlay deletions fold into the blocked set so every solver skips dead
  // points; a fully empty result stays nullptr and keeps the solver on its
  // bit-identical unconstrained path.
  core::ConstraintSet constraint_set;
  constraint_set.costs = request.constraints.costs;
  constraint_set.cost_budget = request.constraints.cost_budget;
  constraint_set.groups = request.constraints.groups;
  constraint_set.group_caps = request.constraints.group_caps;
  constraint_set.blocked = request.constraints.blocked;
  if (constraint_set.has_matroid() && constraint_set.group_caps.empty() &&
      request.constraints.group_cap > 0) {
    const std::uint32_t max_group = *std::max_element(
        constraint_set.groups.begin(), constraint_set.groups.end());
    constraint_set.group_caps.assign(max_group + 1,
                                     request.constraints.group_cap);
  }
  if (const auto* overlay = dynamic_cast<const graph::OverlayGroundSet*>(
          request.ground_set)) {
    const std::vector<NodeId> dead = overlay->deleted_ids();
    constraint_set.blocked.insert(constraint_set.blocked.end(), dead.begin(),
                                  dead.end());
  }
  const core::ConstraintSet* constraints = nullptr;
  if (!constraint_set.empty()) {
    constraint_set.validate(request.ground_set->num_points());
    constraints = &constraint_set;
  }

  // Build the objective (throws on an unknown name or bad options), then
  // check the solver can actually run it.
  const std::unique_ptr<core::ObjectiveKernel> kernel =
      ObjectiveRegistry::instance().make(request);
  const std::string reason = incompatibility_reason(
      it->second.info.caps, kernel->caps(), request.bounding.enabled,
      constraints != nullptr);
  if (!reason.empty()) {
    throw std::invalid_argument("solver \"" + request.solver +
                                "\" cannot run objective \"" +
                                request.objective_name + "\": " + reason);
  }

  // Out-of-core runs report the cache's behavior over exactly this run:
  // snapshot the monotonic counters before and diff after.
  const auto* disk_set =
      dynamic_cast<const graph::DiskGroundSet*>(request.ground_set);
  graph::DiskCacheStats disk_before;
  if (disk_set != nullptr) disk_before = disk_set->stats();

  Timer total;
  SelectionReport report = it->second.fn(request, context, *kernel, constraints);
  const double solve_seconds = total.elapsed_seconds();

  if (disk_set != nullptr) {
    disk_set->drain_prefetch();  // count stragglers before snapshotting
    const graph::DiskCacheStats after = disk_set->stats();
    // Saturating deltas: hit counts can dip transiently when another
    // instance takes over a thread's deferred tally mid-run, and an
    // unsigned wrap would report ~1.8e19 hits.
    const auto delta = [](std::uint64_t now, std::uint64_t before) {
      return now >= before ? now - before : 0;
    };
    DiskCacheSummary summary;
    summary.num_shards = disk_set->num_shards();
    summary.hits = delta(after.hits, disk_before.hits);
    summary.misses = delta(after.misses, disk_before.misses);
    summary.prefetch_issued =
        delta(after.prefetch_issued, disk_before.prefetch_issued);
    summary.prefetch_loaded =
        delta(after.prefetch_loaded, disk_before.prefetch_loaded);
    summary.read_retries = delta(after.read_retries, disk_before.read_retries);
    summary.prefetch_degraded =
        delta(after.prefetch_degraded, disk_before.prefetch_degraded);
    summary.resident_blocks_high_water = after.resident_blocks_high_water;
    summary.max_cached_blocks = disk_set->max_cached_blocks();
    summary.resident_bytes = disk_set->resident_bytes();
    report.disk_cache = summary;
  }

  report.solver = request.solver;
  report.objective_name = request.objective_name;
  report.kernel_backend = simd::active_backend_name();
  report.num_points = request.ground_set->num_points();
  report.k_requested = k;
  report.objective_params = request.objective;
  report.seed = request.seed;
  report.distributed_echo = request.distributed;
  report.bounding_echo = request.bounding;
  report.dataflow_echo = request.dataflow;
  report.streaming_echo = request.streaming;
  report.sample_prune_echo = request.sample_prune;
  report.facility_location_echo = request.facility_location;
  report.coverage_echo = request.coverage;

  std::sort(report.selected.begin(), report.selected.end());
  if (constraints != nullptr) {
    ConstraintSummary summary;
    summary.cost_budget = constraints->cost_budget;
    summary.selected_cost =
        constraints->cost_of(std::span<const NodeId>(report.selected));
    summary.num_groups = constraints->group_caps.size();
    summary.num_blocked = constraints->blocked.size();
    summary.feasible =
        constraints->feasible_subset(std::span<const NodeId>(report.selected));
    report.constraints = summary;
  }
  if (report.timings.empty()) report.timings.push_back({"solve", solve_seconds});
  for (const core::RoundStats& round : report.rounds) {
    report.peak_partition_bytes =
        std::max(report.peak_partition_bytes, round.peak_partition_bytes);
    report.peak_kernel_state_bytes =
        std::max(report.peak_kernel_state_bytes, round.peak_state_bytes);
    // One machine holds one partition: its residency is the round input
    // spread over the round's partitions.
    if (round.num_partitions > 0) {
      report.peak_resident_elements = std::max(
          report.peak_resident_elements,
          (round.input_size + round.num_partitions - 1) / round.num_partitions);
    }
  }

  // The uniform, cross-solver comparable number: f(S) recomputed from
  // scratch on the full ground set through the objective kernel, never the
  // solver's internal accounting.
  report.objective =
      report.selected.empty()
          ? 0.0
          : kernel->evaluate(std::span<const NodeId>(report.selected),
                             context.pool());
  report.total_seconds = total.elapsed_seconds();
  return report;
}

SelectionReport select(const SelectionRequest& request) {
  SolverContext context;
  return SolverRegistry::instance().run(request, context);
}

SelectionReport select(const SelectionRequest& request, SolverContext& context) {
  return SolverRegistry::instance().run(request, context);
}

}  // namespace subsel::api
