// One request/response schema for every selection engine in the repo.
//
// The library grew ~10 divergent entry points (core::select_subset,
// core::distributed_greedy, beam::beam_select_subset, the baselines::
// family); each caller — CLI, examples, benches — re-implemented dispatch,
// timing, and reporting. This façade collapses them behind three types:
//
//   SelectionRequest : what to select — ground set, budget (k or fraction),
//                      objective, seed, solver name, per-solver options.
//   SelectionReport  : what happened — the ids, the *exactly recomputed*
//                      objective (PairwiseObjective over the full ground
//                      set, never the solver's internal accounting),
//                      per-stage timings, round/memory statistics, a config
//                      echo, and JSON serialization.
//   SolverContext    : shared execution state — the thread pool, the
//                      reusable SubproblemArenaPool, a progress callback,
//                      and a cooperative cancellation token threaded into
//                      the round loops.
//
// Solvers are looked up by string in the SolverRegistry (solver_registry.h);
// `subsel solvers` lists them. The original free functions remain the
// implementations — the registry entries are thin adapters over them.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/run_control.h"
#include "common/thread_pool.h"
#include "core/bounding.h"
#include "core/constraints.h"
#include "core/distributed_greedy.h"
#include "core/objective.h"
#include "core/subproblem_arena.h"
#include "graph/ground_set.h"

namespace subsel::api {

using core::NodeId;

/// Options for the multi-round distributed greedy and for the partition-based
/// baselines (GreeDi reads num_machines; stochastic greedy reads
/// stochastic_epsilon).
struct DistributedOptions {
  std::size_t num_machines = 8;
  std::size_t num_rounds = 8;
  bool adaptive_partitioning = true;
  core::PartitionSolver partition_solver = core::PartitionSolver::kPriorityQueue;
  double stochastic_epsilon = 0.1;
  /// Round checkpoint/resume file (empty disables); see distributed_greedy.h.
  /// Checkpoints are crash-consistent: written to a temp file, fsynced, then
  /// atomically renamed, so a kill mid-write leaves the previous one intact.
  std::string checkpoint_file;
  /// Save the checkpoint only every Nth round (1 = every round). Resume picks
  /// up from the last *saved* round; rounds after it are re-run.
  std::size_t checkpoint_every = 1;
  /// Checkpoint to resume from. An alias for `checkpoint_file` for callers
  /// that only restart: when `checkpoint_file` is empty this path is used for
  /// both resume and subsequent saves; setting both to different paths is
  /// rejected (the round loop reads and writes one file).
  std::string resume_from;
  /// Graceful preemption after this many rounds of this invocation (0 = off).
  std::size_t stop_after_round = 0;
  /// Out-of-core pipelining: partitions of each round's plan handed to
  /// GroundSet::prefetch ahead of the solve loop (0 disables; no-op for
  /// resident ground sets). Never affects selections.
  std::size_t prefetch_depth = 2;
};

/// Bounding pre-pass options (solvers "pipeline" and "dataflow").
struct BoundingOptions {
  bool enabled = true;
  core::BoundingSampling sampling = core::BoundingSampling::kUniform;
  double sample_fraction = 0.3;
  /// Leading worker chunks of each bounding pass handed to
  /// GroundSet::prefetch (0 disables; no-op for resident ground sets).
  std::size_t prefetch_depth = 2;
};

/// Dataflow substrate options (solver "dataflow").
struct DataflowOptions {
  std::size_t num_shards = 64;
  /// Per-worker memory budget in bytes; 0 disables enforcement.
  std::size_t worker_memory_bytes = 0;
};

/// Options for the streaming/threshold baselines.
struct StreamingOptions {
  double epsilon = 0.1;
  /// Apply the Appendix-A monotonicity offset (sieve-streaming only).
  bool monotonicity_offset = false;
};

/// Options for the SAMPLE&PRUNE baseline.
struct SamplePruneOptions {
  std::size_t machine_capacity = 0;  // 0 -> 4·k
  std::size_t max_rounds = 64;
};

/// Selection constraints beyond the cardinality budget k. All families
/// compose; an all-default block means "unconstrained" and keeps every
/// solver on its bit-identical pre-constraint path. The registry validates
/// the resolved core::ConstraintSet against the ground set before dispatch
/// and rejects solvers whose capabilities do not include constrained
/// selection with a typed incompatibility_reason.
struct ConstraintOptions {
  /// Knapsack: one cost per ground-set element plus a positive budget.
  std::vector<double> costs;
  double cost_budget = 0.0;
  /// Partition matroid: one group id per element, capped per group either
  /// explicitly (`group_caps[g]`) or uniformly (`group_cap` for every group
  /// when `group_caps` is empty).
  std::vector<std::uint32_t> groups;
  std::vector<std::size_t> group_caps;
  std::size_t group_cap = 0;
  /// Ids that may never be selected. OverlayGroundSet deletions are folded
  /// in automatically by the registry; listing them here too is harmless.
  std::vector<NodeId> blocked;

  bool any() const noexcept {
    return cost_budget > 0.0 || !groups.empty() || !blocked.empty();
  }
};

/// Options for the "facility-location" objective (max-based coverage).
struct FacilityLocationOptions {
  double self_similarity = 1.0;
  bool utility_weighted = true;
};

/// Options for the "saturated-coverage" objective (truncated sum coverage).
struct CoverageOptions {
  double saturation = 1.0;
  double self_similarity = 1.0;
  bool utility_weighted = true;
};

struct SelectionRequest {
  /// Non-owning; must outlive the run. Any GroundSet implementation works
  /// (in-memory, disk-backed, virtual).
  const graph::GroundSet* ground_set = nullptr;
  /// Subset budget: an absolute k, or (when k == 0) a fraction of the ground
  /// set in (0, 1].
  std::size_t k = 0;
  double fraction = 0.0;
  /// ObjectiveRegistry key; `subsel objectives` enumerates. Each objective
  /// reads only its own option block below; solver×objective compatibility is
  /// validated before anything runs (see SolverCapabilities).
  std::string objective_name = "pairwise";
  /// Options for the "pairwise" objective — validated (alpha > 0, beta >= 0)
  /// when the kernel is built.
  core::ObjectiveParams objective;
  FacilityLocationOptions facility_location;
  CoverageOptions coverage;
  std::uint64_t seed = 23;
  /// Wall-clock budget in milliseconds (0 = unlimited), measured from solver
  /// dispatch. Solvers that support graceful degradation return their best
  /// valid selection so far with `SelectionReport.degraded` set instead of
  /// running past the budget; the checkpoint (if any) is kept so a later run
  /// can resume to full quality. Overrides any context-level deadline.
  std::uint64_t deadline_ms = 0;
  /// Registry key; `SolverRegistry::list()` / `subsel solvers` enumerate.
  std::string solver = "pipeline";
  /// Per-solver options; each solver reads only the blocks relevant to it.
  DistributedOptions distributed;
  BoundingOptions bounding;
  DataflowOptions dataflow;
  StreamingOptions streaming;
  SamplePruneOptions sample_prune;
  /// Selection constraints (knapsack / partition matroid / blocked ids).
  ConstraintOptions constraints;

  /// The absolute budget this request resolves to; throws on an unset or
  /// out-of-range budget or a missing ground set.
  std::size_t resolved_k() const {
    if (ground_set == nullptr) {
      throw std::invalid_argument("SelectionRequest: ground_set is null");
    }
    const std::size_t n = ground_set->num_points();
    if (k > 0) {
      if (k > n) throw std::invalid_argument("SelectionRequest: k exceeds |V|");
      return k;
    }
    // Negated comparison so NaN also fails validation instead of falling
    // through to an undefined float->size_t cast.
    if (!(fraction > 0.0 && fraction <= 1.0)) {
      throw std::invalid_argument(
          "SelectionRequest: need k >= 1 or fraction in (0, 1]");
    }
    return static_cast<std::size_t>(fraction * static_cast<double>(n));
  }
};

struct StageTiming {
  std::string stage;
  double seconds = 0.0;
};

/// Compact bounding echo (the full BoundingResult carries the per-point
/// SelectionState, which has no business in a report).
struct BoundingSummary {
  std::size_t included = 0;
  std::size_t excluded = 0;
  std::size_t grow_rounds = 0;
  std::size_t shrink_rounds = 0;
};

/// Echo of an active constraint configuration plus how the returned
/// selection sits against it (absent for unconstrained runs).
struct ConstraintSummary {
  double cost_budget = 0.0;
  /// Total cost of `selected` under the request's costs (0 when the
  /// knapsack family is inactive).
  double selected_cost = 0.0;
  std::size_t num_groups = 0;   // distinct capped groups
  std::size_t num_blocked = 0;  // blocked ids (overlay deletions included)
  /// Post-hoc feasibility of the returned selection — always true by
  /// construction; recorded so reports are self-auditing.
  bool feasible = true;
};

/// Out-of-core cache behavior of the run, filled when the request's ground
/// set is a graph::DiskGroundSet (counter deltas over this run; the
/// high-water mark and budget are absolute).
struct DiskCacheSummary {
  std::size_t num_shards = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_loaded = 0;
  /// Transient read faults absorbed by the retry/backoff loop over this run.
  std::uint64_t read_retries = 0;
  /// Prefetch blocks abandoned after an I/O fault (degraded into demand
  /// misses; never affects results).
  std::uint64_t prefetch_degraded = 0;
  /// Peak blocks resident at once (absolute, never exceeds the budget).
  std::size_t resident_blocks_high_water = 0;
  std::size_t max_cached_blocks = 0;
  /// DRAM the disk-backed set keeps resident (scalars + cache at capacity).
  std::size_t resident_bytes = 0;
};

struct SelectionReport {
  std::string solver;
  /// Which registered objective the run maximized.
  std::string objective_name = "pairwise";
  /// Which vectorized gain-kernel backend the run's solves dispatched to
  /// ("scalar", "avx2", "neon" — the widest one the CPU supports unless
  /// SUBSEL_FORCE_SCALAR pinned it down). Diagnostics only: every backend
  /// produces bit-identical selections and objectives.
  std::string kernel_backend = "scalar";
  std::size_t num_points = 0;
  std::size_t k_requested = 0;
  core::ObjectiveParams objective_params;
  std::uint64_t seed = 0;

  /// Ascending unique ids; |selected| <= k (streaming baselines may return
  /// fewer), empty when preempted.
  std::vector<NodeId> selected;
  /// f(selected) recomputed exactly with the objective kernel on the full
  /// ground set — comparable across every solver (same objective).
  double objective = 0.0;
  /// Whatever the solver itself reported (subproblem-local accounting for
  /// greedy variants); kept for diagnosing solver-internal drift.
  double solver_objective = 0.0;
  /// The run was cancelled or stopped before completing.
  bool preempted = false;
  /// The deadline expired mid-run and the solver degraded gracefully:
  /// `selected` still holds a valid selection (possibly smaller or less
  /// optimized than a full run's), unlike `preempted` which returns nothing.
  bool degraded = false;
  /// Human-readable cause when `degraded` (which stage, how far it got).
  std::string degraded_reason;

  std::vector<StageTiming> timings;
  double total_seconds = 0.0;

  /// Round statistics for the multi-round solvers (empty otherwise).
  std::vector<core::RoundStats> rounds;
  std::optional<BoundingSummary> bounding;
  /// Present iff the request carried constraints (or the ground set is an
  /// overlay with deletions, which the registry folds into blocked ids).
  std::optional<ConstraintSummary> constraints;
  /// Present iff the run was out-of-core (graph::DiskGroundSet-backed).
  std::optional<DiskCacheSummary> disk_cache;
  /// Largest materialized per-partition subproblem (multi-round solvers) or
  /// the engine's materialized working set (centralized baselines).
  std::size_t peak_partition_bytes = 0;
  /// Peak elements resident on one machine: partition size for the
  /// round-based solvers, sieve/merge/coordinator residency for the rest.
  std::size_t peak_resident_elements = 0;
  /// Largest flat kernel incremental state behind one solve unit (0 for the
  /// closed-form pairwise path and pure-oracle paths).
  std::size_t peak_kernel_state_bytes = 0;
  /// Solver-specific scalar stats (e.g. GreeDi merge_candidates).
  std::vector<std::pair<std::string, double>> extra;

  /// A config echo of the request, so a report alone reproduces its run.
  DistributedOptions distributed_echo;
  BoundingOptions bounding_echo;
  DataflowOptions dataflow_echo;
  StreamingOptions streaming_echo;
  SamplePruneOptions sample_prune_echo;
  FacilityLocationOptions facility_location_echo;
  CoverageOptions coverage_echo;

  /// Schema-stable JSON document ("subsel.selection_report.v1").
  std::string to_json() const;
};

/// Shared execution state passed to every solver: which threads to run on,
/// which arenas to reuse, how to report progress, and how to stop. One
/// context can serve many sequential runs (arena reuse across runs is the
/// point); it must not be shared by concurrent runs.
class SolverContext {
 public:
  SolverContext() = default;
  /// `pool` may be nullptr (solvers then use the process-global pool); the
  /// pool must outlive the context.
  explicit SolverContext(ThreadPool* pool) : pool_(pool) {}

  ThreadPool* pool() const noexcept { return pool_; }
  core::SubproblemArenaPool& arenas() noexcept { return arenas_; }

  /// Cancellation token threaded into every round loop the solver runs.
  const CancellationToken& cancel() const noexcept { return cancel_; }

  void set_progress(ProgressFn fn) { progress_ = std::move(fn); }
  const ProgressFn& progress() const noexcept { return progress_; }

  /// Wall-clock budget threaded into every solver run on this context.
  /// A deadline is an absolute point in time — set it right before the run
  /// it should govern (a reused context keeps ticking across runs).
  /// `SelectionRequest.deadline_ms` takes precedence when non-zero.
  void set_deadline(Deadline deadline) noexcept { deadline_ = deadline; }
  const Deadline& deadline() const noexcept { return deadline_; }

 private:
  ThreadPool* pool_ = nullptr;
  core::SubproblemArenaPool arenas_;
  CancellationToken cancel_;
  ProgressFn progress_;
  Deadline deadline_;
};

}  // namespace subsel::api
