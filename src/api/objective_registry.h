// String-keyed registry of every objective kernel the API can build —
// the objective-side mirror of SolverRegistry.
//
// An entry is a name, human-facing metadata (description, the f(S) formula,
// capability flags — what `subsel objectives` prints), and a factory that
// instantiates a core::ObjectiveKernel over a request's ground set from the
// request's typed per-objective options. Built-ins ("pairwise",
// "facility-location", "saturated-coverage") are registered on first access
// of instance(); downstream code can register more — the conformance suite
// in tests/api runs against whatever is registered, so extensions inherit
// the submodularity/monotonicity/consistency coverage.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/selection_api.h"
#include "core/objective_kernel.h"

namespace subsel::api {

struct ObjectiveInfo {
  std::string name;
  std::string description;
  /// The f(S) form, for the objective table.
  std::string formula;
  core::ObjectiveKernelCaps caps;
};

class ObjectiveRegistry {
 public:
  /// Builds a kernel over request.ground_set from the request's option
  /// blocks. Factories must validate their options (throw
  /// std::invalid_argument) so a bad request fails before any solver runs.
  using KernelFactory = std::function<std::unique_ptr<core::ObjectiveKernel>(
      const SelectionRequest&)>;

  /// The process-wide registry, with all built-in objectives registered.
  static ObjectiveRegistry& instance();

  /// Registers (or replaces) an objective. Not thread-safe against concurrent
  /// make()/list(); register at startup.
  void register_objective(ObjectiveInfo info, KernelFactory factory);

  bool contains(const std::string& name) const;
  /// Metadata for `name`, or nullptr when unknown.
  const ObjectiveInfo* info(const std::string& name) const;
  /// All registered objectives, sorted by name.
  std::vector<ObjectiveInfo> list() const;

  /// Instantiates request.objective_name over request.ground_set. Throws
  /// std::invalid_argument on an unknown name (the message lists the known
  /// ones), a null ground set, or invalid objective options.
  std::unique_ptr<core::ObjectiveKernel> make(const SelectionRequest& request) const;

 private:
  struct Entry {
    ObjectiveInfo info;
    KernelFactory factory;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace subsel::api
