#include "api/selection_api.h"

#include "common/json.h"

namespace subsel::api {
namespace {

const char* sampling_name(core::BoundingSampling sampling) {
  switch (sampling) {
    case core::BoundingSampling::kNone: return "none";
    case core::BoundingSampling::kUniform: return "uniform";
    case core::BoundingSampling::kWeighted: return "weighted";
  }
  return "unknown";
}

const char* partition_solver_name(core::PartitionSolver solver) {
  switch (solver) {
    case core::PartitionSolver::kPriorityQueue: return "priority-queue";
    case core::PartitionSolver::kStochastic: return "stochastic";
  }
  return "unknown";
}

}  // namespace

std::string SelectionReport::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("schema").value("subsel.selection_report.v1");
  // Bumped when an existing field changes meaning; additions keep it.
  json.key("schema_version").value(1);
  json.key("solver").value(solver);
  json.key("objective_name").value(objective_name);
  json.key("kernel_backend").value(kernel_backend);
  json.key("num_points").value(num_points);
  json.key("k_requested").value(k_requested);
  json.key("objective_params").begin_object();
  json.key("alpha").value(objective_params.alpha);
  json.key("beta").value(objective_params.beta);
  json.end_object();
  json.key("seed").value(seed);
  json.key("preempted").value(preempted);
  json.key("degraded").value(degraded);
  json.key("degraded_reason").value(degraded_reason);

  json.key("objective").value(objective);
  json.key("solver_objective").value(solver_objective);
  json.key("selected_count").value(selected.size());
  json.key("selected").begin_array();
  for (NodeId id : selected) json.value(static_cast<std::uint64_t>(id));
  json.end_array();

  json.key("timings").begin_array();
  for (const StageTiming& timing : timings) {
    json.begin_object();
    json.key("stage").value(timing.stage);
    json.key("seconds").value(timing.seconds);
    json.end_object();
  }
  json.end_array();
  json.key("total_seconds").value(total_seconds);

  json.key("rounds").begin_array();
  for (const core::RoundStats& round : rounds) {
    json.begin_object();
    json.key("round").value(round.round);
    json.key("input_size").value(round.input_size);
    json.key("target_size").value(round.target_size);
    json.key("num_partitions").value(round.num_partitions);
    json.key("output_size").value(round.output_size);
    json.key("peak_partition_bytes").value(round.peak_partition_bytes);
    json.key("peak_state_bytes").value(round.peak_state_bytes);
    json.end_object();
  }
  json.end_array();

  if (bounding.has_value()) {
    json.key("bounding").begin_object();
    json.key("included").value(bounding->included);
    json.key("excluded").value(bounding->excluded);
    json.key("grow_rounds").value(bounding->grow_rounds);
    json.key("shrink_rounds").value(bounding->shrink_rounds);
    json.end_object();
  }

  if (constraints.has_value()) {
    json.key("constraints").begin_object();
    json.key("cost_budget").value(constraints->cost_budget);
    json.key("selected_cost").value(constraints->selected_cost);
    json.key("num_groups").value(constraints->num_groups);
    json.key("num_blocked").value(constraints->num_blocked);
    json.key("feasible").value(constraints->feasible);
    json.end_object();
  }

  json.key("memory").begin_object();
  json.key("peak_partition_bytes").value(peak_partition_bytes);
  json.key("peak_resident_elements").value(peak_resident_elements);
  json.key("peak_kernel_state_bytes").value(peak_kernel_state_bytes);
  json.end_object();

  if (disk_cache.has_value()) {
    json.key("disk_cache").begin_object();
    json.key("num_shards").value(disk_cache->num_shards);
    json.key("hits").value(disk_cache->hits);
    json.key("misses").value(disk_cache->misses);
    json.key("prefetch_issued").value(disk_cache->prefetch_issued);
    json.key("prefetch_loaded").value(disk_cache->prefetch_loaded);
    json.key("read_retries").value(disk_cache->read_retries);
    json.key("prefetch_degraded").value(disk_cache->prefetch_degraded);
    json.key("resident_blocks_high_water")
        .value(disk_cache->resident_blocks_high_water);
    json.key("max_cached_blocks").value(disk_cache->max_cached_blocks);
    json.key("resident_bytes").value(disk_cache->resident_bytes);
    json.end_object();
  }

  json.key("extra").begin_object();
  for (const auto& [name, value] : extra) json.key(name).value(value);
  json.end_object();

  // Full config echo: a report alone documents how to reproduce its run.
  json.key("config").begin_object();
  json.key("distributed").begin_object();
  json.key("num_machines").value(distributed_echo.num_machines);
  json.key("num_rounds").value(distributed_echo.num_rounds);
  json.key("adaptive_partitioning").value(distributed_echo.adaptive_partitioning);
  json.key("partition_solver")
      .value(partition_solver_name(distributed_echo.partition_solver));
  json.key("stochastic_epsilon").value(distributed_echo.stochastic_epsilon);
  json.key("checkpoint_file").value(distributed_echo.checkpoint_file);
  json.key("checkpoint_every").value(distributed_echo.checkpoint_every);
  json.key("resume_from").value(distributed_echo.resume_from);
  json.key("stop_after_round").value(distributed_echo.stop_after_round);
  json.key("prefetch_depth").value(distributed_echo.prefetch_depth);
  json.end_object();
  json.key("bounding").begin_object();
  json.key("enabled").value(bounding_echo.enabled);
  json.key("sampling").value(sampling_name(bounding_echo.sampling));
  json.key("sample_fraction").value(bounding_echo.sample_fraction);
  json.key("prefetch_depth").value(bounding_echo.prefetch_depth);
  json.end_object();
  json.key("dataflow").begin_object();
  json.key("num_shards").value(dataflow_echo.num_shards);
  json.key("worker_memory_bytes").value(dataflow_echo.worker_memory_bytes);
  json.end_object();
  json.key("streaming").begin_object();
  json.key("epsilon").value(streaming_echo.epsilon);
  json.key("monotonicity_offset").value(streaming_echo.monotonicity_offset);
  json.end_object();
  json.key("sample_prune").begin_object();
  json.key("machine_capacity").value(sample_prune_echo.machine_capacity);
  json.key("max_rounds").value(sample_prune_echo.max_rounds);
  json.end_object();
  json.key("objective").begin_object();
  json.key("name").value(objective_name);
  json.key("facility_location").begin_object();
  json.key("self_similarity").value(facility_location_echo.self_similarity);
  json.key("utility_weighted").value(facility_location_echo.utility_weighted);
  json.end_object();
  json.key("coverage").begin_object();
  json.key("saturation").value(coverage_echo.saturation);
  json.key("self_similarity").value(coverage_echo.self_similarity);
  json.key("utility_weighted").value(coverage_echo.utility_weighted);
  json.end_object();
  json.end_object();
  json.end_object();

  json.end_object();
  return json.str();
}

}  // namespace subsel::api
