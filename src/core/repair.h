// Incremental repair of an existing selection after ground-set mutations or
// constraint changes — the dynamic-maintenance counterpart of solving from
// scratch.
//
// repair_selection() patches a prior selection in two phases:
//   1. KEEP: walk the previous ids ascending, dropping any that are no
//      longer selectable — deleted overlay points (detected automatically
//      when the kernel's ground set is an OverlayGroundSet), blocked ids,
//      budget/cap violators against the constraint tracker, and overflow
//      past k. Survivors are committed and seed the tracker.
//   2. TOP-UP: lazy greedy over the remaining live feasible candidates,
//      conditioned on the kept set through the kernel's exact marginal-gain
//      oracle, until the selection is back to k points (or no feasible
//      candidate remains — constrained repairs may legally end short).
//
// Because phase 2 is plain conditioned greedy, the repaired selection
// carries the classic (1−1/e)-style quality of greedy-from-scratch on the
// surviving instance; the conformance suite checks the repaired objective
// against a from-scratch solve within that bound. An unmutated, unconstrained
// repair of a greedy selection is a fixpoint (drops nothing, adds nothing).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/run_control.h"
#include "core/constraints.h"
#include "core/objective_kernel.h"

namespace subsel::core {

struct RepairConfig {
  /// Constraints the repaired selection must satisfy (global ids, validated;
  /// non-owning). The registry also folds overlay deletions into
  /// ConstraintSet::blocked, but repair detects those on its own even
  /// without constraints.
  const ConstraintSet* constraints = nullptr;
  /// Wall-clock budget. Expiry stops the top-up early and returns the valid
  /// (merely smaller) selection repaired so far, flagged degraded.
  Deadline deadline;
};

struct RepairResult {
  /// The repaired selection, ascending, feasible, size <= k.
  std::vector<NodeId> selected;
  /// f(selected) via the kernel's exact evaluate.
  double objective = 0.0;
  std::size_t kept = 0;     // previous ids that survived
  std::size_t dropped = 0;  // previous ids removed (dead/blocked/infeasible/overflow)
  std::size_t added = 0;    // fresh ids greedily topped up
  /// Exact marginal-gain evaluations spent in the top-up (the repair-vs-
  /// re-solve work metric the bench reports).
  std::size_t gain_evaluations = 0;
  bool degraded = false;
  std::string degraded_reason;
};

/// Repairs `previous` (any order, duplicates tolerated) into a feasible
/// selection of up to k points under `kernel`'s objective. See file comment.
RepairResult repair_selection(const ObjectiveKernel& kernel,
                              std::span<const NodeId> previous, std::size_t k,
                              const RepairConfig& config = {});

}  // namespace subsel::core
