#include "core/objective.h"

#include <atomic>
#include <cmath>
#include <stdexcept>

namespace subsel::core {
namespace {
ThreadPool& pool_or_global(ThreadPool* pool) {
  return pool != nullptr ? *pool : global_thread_pool();
}
}  // namespace

void ObjectiveParams::validate() const {
  if (!std::isfinite(alpha) || alpha <= 0.0) {
    throw std::invalid_argument(
        "ObjectiveParams: alpha must be finite and > 0 (pair_scale divides"
        " by it)");
  }
  if (!std::isfinite(beta) || beta < 0.0) {
    throw std::invalid_argument(
        "ObjectiveParams: beta must be finite and >= 0 (negative beta breaks"
        " submodularity)");
  }
}

std::vector<std::uint8_t> membership_bitmap(std::size_t num_points,
                                            std::span<const NodeId> subset) {
  std::vector<std::uint8_t> membership(num_points, 0);
  for (NodeId v : subset) {
    if (v < 0 || static_cast<std::size_t>(v) >= num_points) {
      throw std::out_of_range("membership_bitmap: id out of range");
    }
    if (membership[static_cast<std::size_t>(v)] != 0) {
      throw std::invalid_argument("membership_bitmap: duplicate id");
    }
    membership[static_cast<std::size_t>(v)] = 1;
  }
  return membership;
}

double PairwiseObjective::evaluate(std::span<const NodeId> subset,
                                   ThreadPool* pool) const {
  return evaluate(membership_bitmap(ground_set_->num_points(), subset), pool);
}

double PairwiseObjective::evaluate(const std::vector<std::uint8_t>& membership,
                                   ThreadPool* pool) const {
  if (membership.size() != ground_set_->num_points()) {
    throw std::invalid_argument("PairwiseObjective::evaluate: bitmap size mismatch");
  }
  const std::size_t n = membership.size();
  ThreadPool& workers = pool_or_global(pool);

  // Chunked parallel reduction; each unordered pair is counted once by
  // charging it to the smaller endpoint.
  const std::size_t num_chunks = std::max<std::size_t>(1, workers.size() * 4);
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<double> partial_unary(num_chunks, 0.0);
  std::vector<double> partial_pairs(num_chunks, 0.0);

  workers.parallel_for(num_chunks, [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    double unary = 0.0;
    double pairs = 0.0;
    std::vector<graph::Edge> scratch;
    for (std::size_t i = begin; i < end; ++i) {
      if (membership[i] == 0) continue;
      const auto v = static_cast<NodeId>(i);
      unary += ground_set_->utility(v);
      for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
        if (e.neighbor > v && membership[static_cast<std::size_t>(e.neighbor)] != 0) {
          pairs += e.weight;
        }
      }
    }
    partial_unary[c] = unary;
    partial_pairs[c] = pairs;
  });

  double unary = 0.0, pairs = 0.0;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    unary += partial_unary[c];
    pairs += partial_pairs[c];
  }
  return params_.alpha * unary - params_.beta * pairs;
}

double PairwiseObjective::marginal_gain(const std::vector<std::uint8_t>& membership,
                                        NodeId v) const {
  if (membership[static_cast<std::size_t>(v)] != 0) {
    throw std::invalid_argument("marginal_gain: v already in S");
  }
  double gain = params_.alpha * ground_set_->utility(v);
  std::vector<graph::Edge> scratch;
  for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
    if (membership[static_cast<std::size_t>(e.neighbor)] != 0) {
      gain -= params_.beta * e.weight;
    }
  }
  return gain;
}

double PairwiseObjective::monotonicity_offset(ThreadPool* pool) const {
  const std::size_t n = ground_set_->num_points();
  ThreadPool& workers = pool_or_global(pool);
  const std::size_t num_chunks = std::max<std::size_t>(1, workers.size() * 4);
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<double> partial_max(num_chunks, 0.0);
  workers.parallel_for(num_chunks, [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    double best = 0.0;
    std::vector<graph::Edge> scratch;
    for (std::size_t i = begin; i < end; ++i) {
      double sum = 0.0;
      ground_set_->visit_neighbors(static_cast<NodeId>(i), scratch,
                                   [&sum](const graph::Edge& e) { sum += e.weight; });
      best = std::max(best, sum);
    }
    partial_max[c] = best;
  });
  double best = 0.0;
  for (double value : partial_max) best = std::max(best, value);
  return params_.pair_scale() * best;
}

}  // namespace subsel::core
