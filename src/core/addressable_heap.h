// Addressable binary max-heap — the priority queue of Algorithm 2.
//
// Supports popmax and decrease_weight_by on arbitrary live elements, which is
// all the pairwise-submodular greedy needs: pop the best point, then lower
// the priorities of its still-queued neighbors by (β/α)·s. Elements are dense
// local ids [0, n); ties break toward the smaller id so that every greedy
// implementation in this repo (heap, lazy, naive reference) picks identical
// subsets and can be compared exactly in tests.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <utility>
#include <vector>

namespace subsel::core {

class AddressableMaxHeap {
 public:
  using LocalId = std::uint32_t;
  static constexpr std::uint32_t kNotInHeap = std::numeric_limits<std::uint32_t>::max();

  /// An empty heap; fill it with assign().
  AddressableMaxHeap() = default;

  /// Builds the heap over ids [0, priorities.size()) in O(n).
  explicit AddressableMaxHeap(std::span<const double> priorities) {
    assign(priorities);
  }

  /// Rebuilds the heap over ids [0, priorities.size()) in O(n), reusing the
  /// existing storage — arena-held heaps call this once per subproblem instead
  /// of reallocating.
  void assign(std::span<const double> priorities) {
    priorities_.assign(priorities.begin(), priorities.end());
    const auto n = static_cast<std::uint32_t>(priorities_.size());
    heap_.resize(n);
    position_.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      heap_[i] = i;
      position_[i] = i;
    }
    size_ = n;
    for (std::uint32_t i = n / 2; i-- > 0;) {
      sift_down(i);
    }
  }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  bool contains(LocalId id) const noexcept { return position_[id] != kNotInHeap; }

  /// Current priority of a (possibly popped) element.
  double priority(LocalId id) const noexcept { return priorities_[id]; }

  /// The max element without removing it.
  LocalId peek() const noexcept {
    assert(!empty());
    return heap_[0];
  }

  /// Removes and returns the element with the highest priority (smallest id on
  /// ties).
  LocalId pop_max() noexcept {
    assert(!empty());
    const LocalId top = heap_[0];
    swap_slots(0, static_cast<std::uint32_t>(size_ - 1));
    position_[top] = kNotInHeap;
    --size_;
    if (size_ > 0) sift_down(0);
    return top;
  }

  /// priorities[id] -= delta for a live element (delta >= 0), restoring heap
  /// order. Mirrors Algorithm 2's decrease_weight_by.
  void decrease_weight_by(LocalId id, double delta) noexcept {
    assert(contains(id));
    priorities_[id] -= delta;
    sift_down(position_[id]);
  }

  /// Batched decrease: applies priorities[id] -= delta for every (id, delta)
  /// pair — entries whose id is no longer in the heap are skipped — then
  /// restores heap order with ONE bottom-up pass (touched slots sifted in
  /// decreasing slot order, Floyd-style) instead of per-edge sift-downs.
  /// Deltas are applied in input order, so the float results are bit-identical
  /// to the equivalent sequence of decrease_weight_by calls; pop order is
  /// identical too because the (priority, id) order popped is a total order
  /// independent of the internal array layout. One greedy pop's whole neighbor
  /// update becomes a single restore pass.
  void decrease_many(std::span<const std::pair<LocalId, double>> updates) {
    touched_slots_.clear();
    for (const auto& [id, delta] : updates) {
      if (!contains(id)) continue;
      priorities_[id] -= delta;
      touched_slots_.push_back(position_[id]);
    }
    if (touched_slots_.size() == 1) {
      sift_down(touched_slots_.front());
      return;
    }
    // Decreasing slot order: sifting slot s only moves elements inside s's
    // subtree (all indices > s), so the recorded positions of the still-
    // unprocessed (smaller) slots stay valid, and every touched slot sees
    // fully-restored subtrees below it — the restricted Floyd heapify.
    std::sort(touched_slots_.begin(), touched_slots_.end(),
              std::greater<std::uint32_t>());
    for (const std::uint32_t slot : touched_slots_) sift_down(slot);
  }

  /// Fused CSR-edge decrease: for every edge in [edges, edges + count),
  /// priorities[edge.neighbor] -= scale · edge.weight when the neighbor is
  /// still queued, restoring heap order per edge. Exactly the operations, in
  /// exactly the order, of the seed greedy's per-edge decrease_weight_by loop
  /// — selections and objectives stay bit-identical to it — but reading the
  /// CSR slice directly, with no staging vector and no sort. This replaced
  /// decrease_many in the round loop's pop path: on the low-degree
  /// subproblems the paper's graphs produce, decrease_many's update staging
  /// and touched-slot sort cost more than the per-edge sift-downs it saved
  /// (the 0.91× solve regression in BENCH_micro_core.json).
  template <typename Edge>
  void decrease_edges(const Edge* edges, std::size_t count,
                      double scale) noexcept {
    for (std::size_t e = 0; e < count; ++e) {
      const auto id = static_cast<LocalId>(edges[e].neighbor);
      if (!contains(id)) continue;
      priorities_[id] -= scale * static_cast<double>(edges[e].weight);
      sift_down(position_[id]);
    }
  }

  /// Re-inserts a previously popped element with a new priority. The batched
  /// lazy greedy pops a run of stale tops, re-evaluates them in one
  /// gains_batch call, and pushes them back; pop/peek order stays the
  /// (priority, id) total order regardless of insertion order, so batching
  /// cannot change which element is accepted.
  void push(LocalId id, double priority) noexcept {
    assert(!contains(id));
    priorities_[id] = priority;
    heap_[size_] = id;
    position_[id] = static_cast<std::uint32_t>(size_);
    ++size_;
    sift_up(static_cast<std::uint32_t>(size_ - 1));
  }

  /// Generic priority update (increase or decrease) for a live element.
  void update(LocalId id, double new_priority) noexcept {
    assert(contains(id));
    const double old = priorities_[id];
    priorities_[id] = new_priority;
    if (new_priority > old) {
      sift_up(position_[id]);
    } else {
      sift_down(position_[id]);
    }
  }

 private:
  /// True if element a must sit above element b.
  bool outranks(LocalId a, LocalId b) const noexcept {
    if (priorities_[a] != priorities_[b]) return priorities_[a] > priorities_[b];
    return a < b;
  }

  void swap_slots(std::uint32_t i, std::uint32_t j) noexcept {
    std::swap(heap_[i], heap_[j]);
    position_[heap_[i]] = i;
    position_[heap_[j]] = j;
  }

  void sift_up(std::uint32_t slot) noexcept {
    while (slot > 0) {
      const std::uint32_t parent = (slot - 1) / 2;
      if (!outranks(heap_[slot], heap_[parent])) return;
      swap_slots(slot, parent);
      slot = parent;
    }
  }

  void sift_down(std::uint32_t slot) noexcept {
    for (;;) {
      const std::uint32_t left = 2 * slot + 1;
      if (left >= size_) return;
      std::uint32_t best = left;
      const std::uint32_t right = left + 1;
      if (right < size_ && outranks(heap_[right], heap_[left])) best = right;
      if (!outranks(heap_[best], heap_[slot])) return;
      swap_slots(slot, best);
      slot = best;
    }
  }

  std::vector<double> priorities_;
  std::vector<LocalId> heap_;       // heap_[slot] = id
  std::vector<std::uint32_t> position_;  // position_[id] = slot or kNotInHeap
  std::vector<std::uint32_t> touched_slots_;  // decrease_many scratch
  std::size_t size_ = 0;
};

}  // namespace subsel::core
