// The pairwise submodular objective of Section 3:
//
//   f(S) = α · Σ_{v∈S} u(v)  −  β · Σ_{{v1,v2}∈E; v1,v2∈S} s(v1,v2)
//
// where the pairwise sum runs over *unordered* neighbor pairs inside S (the
// CSR graph stores each undirected edge in both directions; evaluation counts
// it once, matching the priority-queue accounting of Algorithm 2 where each
// pair is charged exactly when its second endpoint is popped).
//
// With s >= 0 and β >= 0 the function is always submodular; monotonicity can
// be enforced with the constant unary offset δ of Appendix A.
#pragma once

#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "graph/ground_set.h"

namespace subsel::core {

using graph::GroundSet;
using graph::NodeId;

struct ObjectiveParams {
  double alpha = 0.9;
  double beta = 0.1;  // the paper always uses beta = 1 - alpha

  /// The β/α factor used in priority updates and utility bounds; callers must
  /// ensure alpha > 0 (the paper's smallest setting is 0.1).
  double pair_scale() const noexcept { return beta / alpha; }

  /// Throws std::invalid_argument unless alpha > 0 and beta >= 0 (both
  /// finite). pair_scale() divides by alpha, so a malformed alpha would
  /// otherwise propagate inf/NaN into every heap priority instead of failing
  /// fast with a clear error.
  void validate() const;

  static ObjectiveParams from_alpha(double alpha) { return {alpha, 1.0 - alpha}; }
};

class PairwiseObjective {
 public:
  /// The ground set must outlive the objective. Throws std::invalid_argument
  /// on malformed params (see ObjectiveParams::validate).
  PairwiseObjective(const GroundSet& ground_set, ObjectiveParams params)
      : ground_set_(&ground_set), params_(params) {
    params_.validate();
  }

  const ObjectiveParams& params() const noexcept { return params_; }

  /// f(S) for S given as a list of ids (need not be sorted; duplicates are
  /// invalid). Builds a membership bitmap internally — O(|V|) memory.
  double evaluate(std::span<const NodeId> subset, ThreadPool* pool = nullptr) const;

  /// f(S) for S given as a 0/1 membership bitmap of size num_points().
  double evaluate(const std::vector<std::uint8_t>& membership,
                  ThreadPool* pool = nullptr) const;

  /// Marginal gain f(S ∪ {v}) − f(S) for v ∉ S (membership bitmap).
  double marginal_gain(const std::vector<std::uint8_t>& membership, NodeId v) const;

  /// The Appendix-A offset δ = (β/α) · max_v Σ_j s(v,j): adding δ to every
  /// utility makes the objective monotone non-decreasing.
  double monotonicity_offset(ThreadPool* pool = nullptr) const;

 private:
  const GroundSet* ground_set_;
  ObjectiveParams params_;
};

/// Builds a membership bitmap from an id list (throws on out-of-range or
/// duplicate ids).
std::vector<std::uint8_t> membership_bitmap(std::size_t num_points,
                                            std::span<const NodeId> subset);

}  // namespace subsel::core
