// Exact and approximate bounding (Sections 4.1–4.3, Algorithms 3–5).
//
// Bounding iteratively tightens two per-point bounds over the unassigned
// ground set V (given the partial solution S′ and remaining budget k):
//
//   Umin(v) = u(v) − (β/α) Σ_{v2 ∈ V ∪ S′, (v,v2)∈E} s(v,v2)   (Def. 4.1)
//   Umax(v) = u(v) − (β/α) Σ_{v2 ∈ S′,     (v,v2)∈E} s(v,v2)   (Def. 4.2)
//
// Grow (Alg. 3): points with Umin(v) > U^k_max must be in the optimal set
// (Lemma 4.3) — select them. Shrink (Alg. 4): points with Umax(v) < U^k_min
// cannot be in it (Lemma 4.4) — discard them. Alg. 5 alternates shrink-to-
// convergence and grow-to-convergence until a fixed point.
//
// Approximate bounding (Sec. 4.2) replaces Umin with the *expected utility*
// Uexp (Def. 4.5), which only subtracts a sampled fraction p of the
// unassigned neighbors (uniformly, or weighted by similarity); neighbors
// already in S′ are always subtracted. Theorem 4.6 bounds the quality loss.
//
// Everything here runs one parallel pass per round over the unassigned
// points; no step needs the subset resident on a single "machine" beyond the
// one-byte-per-point state vector (see beam/ for the dataflow formulation).
#pragma once

#include <cstdint>
#include <vector>

#include "common/run_control.h"
#include "common/thread_pool.h"
#include "core/objective.h"
#include "core/selection_state.h"
#include "graph/ground_set.h"

namespace subsel::core {

enum class BoundingSampling : std::uint8_t {
  kNone = 0,     // exact bounding: Umin uses all non-discarded neighbors
  kUniform = 1,  // each unassigned neighbor kept i.i.d. with probability p
  kWeighted = 2, // inclusion probability proportional to edge similarity,
                 // scaled so the expected sampled count is p·deg
};

struct BoundingConfig {
  /// α/β balance of the objective; pair_scale() = β/α enters Umin/Umax.
  ObjectiveParams objective;
  BoundingSampling sampling = BoundingSampling::kNone;
  /// Neighborhood sample fraction p (Theorem 4.6); ignored for kNone.
  double sample_fraction = 1.0;
  /// Safety cap on the total number of grow+shrink rounds.
  std::size_t max_rounds = 10'000;
  std::uint64_t seed = 17;
  /// Out-of-core pipelining: every bounding pass hands its first
  /// `prefetch_depth` worker chunks to GroundSet::prefetch as asynchronous
  /// page-in hints before the parallel pass starts, so a disk-backed ground
  /// set batches the pass's leading block I/O. No-op for resident ground
  /// sets; 0 disables. Never affects decisions.
  std::size_t prefetch_depth = 2;
  ThreadPool* pool = nullptr;
  /// Wall-clock budget, checked between passes. Bounding decisions are
  /// monotone (selected stays selected, discarded stays discarded), so
  /// stopping early just leaves a smaller pre-pass for the solver — the
  /// result is still valid, flagged `degraded`.
  Deadline deadline;
};

struct BoundingResult {
  SelectionState state;
  /// Points moved into the subset / removed from the ground set.
  std::size_t included = 0;
  std::size_t excluded = 0;
  /// Number of Grow / Shrink invocations, counting the final non-changing one
  /// of each convergence loop (matching how Table 2 reports "1 / 1" for runs
  /// that make no decision).
  std::size_t grow_rounds = 0;
  std::size_t shrink_rounds = 0;
  /// Budget still open after bounding: k − |included|.
  std::size_t k_remaining = 0;
  /// True when the deadline cut the alternation short of its fixed point.
  bool degraded = false;

  bool complete() const noexcept { return k_remaining == 0; }
};

/// Runs Algorithm 5 on `ground_set` for a target subset size k.
BoundingResult bound(const GroundSet& ground_set, std::size_t k,
                     const BoundingConfig& config);

/// One Grow pass (Alg. 3) on an existing state; returns #points selected.
/// Exposed for tests and for the beam/ driver.
std::size_t grow_step(const GroundSet& ground_set, SelectionState& state,
                      std::size_t& k_remaining, const BoundingConfig& config,
                      std::uint64_t round_salt);

/// One Shrink pass (Alg. 4); returns #points discarded.
std::size_t shrink_step(const GroundSet& ground_set, SelectionState& state,
                        std::size_t k_remaining, const BoundingConfig& config,
                        std::uint64_t round_salt);

namespace detail {

/// Deterministic neighbor-sampling decision for approximate bounding: whether
/// edge (v -> neighbor) is included in this round's Uexp sum. Hash-derived so
/// the distributed (beam) and in-memory paths agree bit-for-bit.
bool sample_neighbor(const BoundingConfig& config, std::uint64_t round_salt, NodeId v,
                     NodeId neighbor, float weight, double mean_weight);

/// Computes Umin (or Uexp under sampling) and Umax for all unassigned points;
/// assigned points get NaN. Buffers are resized to num_points().
void compute_utility_bounds(const GroundSet& ground_set, const SelectionState& state,
                            const BoundingConfig& config, std::uint64_t round_salt,
                            std::vector<double>& u_min, std::vector<double>& u_max);

}  // namespace detail

}  // namespace subsel::core
