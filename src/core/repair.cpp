#include "core/repair.h"

#include <algorithm>
#include <optional>
#include <queue>

#include "graph/overlay_ground_set.h"

namespace subsel::core {
namespace {

struct Candidate {
  double gain = 0.0;
  NodeId id = 0;
  std::size_t version = 0;  // |additions| when gain was computed

  /// Max-heap order: higher gain first, smaller id on ties — the same
  /// tie-break every solver in this repo uses.
  friend bool operator<(const Candidate& a, const Candidate& b) {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.id > b.id;
  }
};

}  // namespace

RepairResult repair_selection(const ObjectiveKernel& kernel,
                              std::span<const NodeId> previous, std::size_t k,
                              const RepairConfig& config) {
  const GroundSet& ground_set = kernel.ground_set();
  const std::size_t n = ground_set.num_points();
  k = std::min(k, n);
  const auto* overlay = dynamic_cast<const graph::OverlayGroundSet*>(&ground_set);

  std::optional<ConstraintTracker> tracker;
  if (config.constraints != nullptr && !config.constraints->empty()) {
    tracker.emplace(*config.constraints);
  }
  const auto selectable = [&](NodeId v) {
    if (v < 0 || static_cast<std::size_t>(v) >= n) return false;
    if (overlay != nullptr && !overlay->is_live(v)) return false;
    return !tracker || tracker->feasible(v);
  };

  RepairResult result;
  std::vector<std::uint8_t> in_subset(n, 0);

  // Phase 1 — keep what still stands, ascending so the surviving prefix is
  // deterministic regardless of the previous selection's pick order.
  std::vector<NodeId> sorted(previous.begin(), previous.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (const NodeId v : sorted) {
    if (result.selected.size() < k && selectable(v)) {
      result.selected.push_back(v);
      in_subset[static_cast<std::size_t>(v)] = 1;
      if (tracker) tracker->accept(v);
      ++result.kept;
    } else {
      ++result.dropped;
    }
  }

  // Phase 2 — lazy-greedy top-up conditioned on the kept set. The heap holds
  // possibly-stale gains; a top is re-evaluated through the exact oracle
  // before acceptance (stale values only ever overestimate, submodularity).
  if (result.selected.size() < k) {
    std::priority_queue<Candidate> heap;
    for (std::size_t i = 0; i < n; ++i) {
      const auto v = static_cast<NodeId>(i);
      if (in_subset[i] != 0 || !selectable(v)) continue;
      ++result.gain_evaluations;
      heap.push(Candidate{kernel.marginal_gain(in_subset, v), v, 0});
    }
    while (result.selected.size() < k && !heap.empty()) {
      if (config.deadline.expired()) {
        result.degraded = true;
        result.degraded_reason =
            "deadline expired during repair top-up; returning the selection"
            " repaired so far";
        break;
      }
      const Candidate top = heap.top();
      heap.pop();
      if (tracker && !tracker->feasible(top.id)) continue;  // dropped for good
      if (top.version != result.added) {
        ++result.gain_evaluations;
        heap.push(Candidate{kernel.marginal_gain(in_subset, top.id), top.id,
                            result.added});
        continue;
      }
      in_subset[static_cast<std::size_t>(top.id)] = 1;
      result.selected.push_back(top.id);
      if (tracker) tracker->accept(top.id);
      ++result.added;
    }
  }

  std::sort(result.selected.begin(), result.selected.end());
  result.objective =
      kernel.evaluate(std::span<const NodeId>(result.selected), nullptr);
  return result;
}

}  // namespace subsel::core
