#include "core/greedy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "common/rng.h"
#include "common/simd.h"

#include "core/addressable_heap.h"

namespace subsel::core {

const Subproblem& materialize_subproblem(const GroundSet& ground_set,
                                         std::span<const NodeId> members,
                                         ObjectiveParams params,
                                         const SelectionState* state,
                                         SubproblemArena& arena) {
  Subproblem& sub = arena.subproblem();
  sub.global_ids.assign(members.begin(), members.end());
  std::sort(sub.global_ids.begin(), sub.global_ids.end());
  if (std::adjacent_find(sub.global_ids.begin(), sub.global_ids.end()) !=
      sub.global_ids.end()) {
    throw std::invalid_argument("materialize_subproblem: duplicate member");
  }

  const std::size_t n = sub.global_ids.size();
  sub.priorities.resize(n);
  sub.offsets.resize(n + 1);
  sub.offsets[0] = 0;
  sub.edges.clear();

  // O(1) membership via the epoch-stamped scatter map; ground sets too large
  // for the dense map (virtual billion-point sets) keep the binary search.
  const bool dense = arena.begin_membership_epoch(ground_set.num_points());
  if (dense) {
    for (std::size_t i = 0; i < n; ++i) {
      arena.insert_member(sub.global_ids[i], static_cast<std::uint32_t>(i));
    }
  }

  const double pair_scale = params.pair_scale();
  std::vector<graph::Edge>& scratch = arena.edge_scratch();
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId v = sub.global_ids[i];
    double priority = ground_set.utility(v);
    for (const graph::Edge& e : ground_set.neighbors_span(v, scratch)) {
      if (state != nullptr && state->is_selected(e.neighbor)) {
        priority -= pair_scale * e.weight;
        continue;
      }
      std::uint32_t local = SubproblemArena::kNotMember;
      if (dense) {
        local = arena.local_of(e.neighbor);
      } else {
        const auto it = std::lower_bound(sub.global_ids.begin(),
                                         sub.global_ids.end(), e.neighbor);
        if (it != sub.global_ids.end() && *it == e.neighbor) {
          local = static_cast<std::uint32_t>(it - sub.global_ids.begin());
        }
      }
      if (local != SubproblemArena::kNotMember) {
        sub.edges.push_back(Subproblem::LocalEdge{local, e.weight});
      }
    }
    sub.priorities[i] = priority;
    sub.offsets[i + 1] = static_cast<std::int64_t>(sub.edges.size());
  }
  ++sub.topology_epoch;
  return sub;
}

Subproblem& materialize_subproblem_topology(const GroundSet& ground_set,
                                            std::span<const NodeId> members,
                                            SubproblemArena& arena) {
  Subproblem& sub = arena.subproblem();
  sub.global_ids.assign(members.begin(), members.end());
  std::sort(sub.global_ids.begin(), sub.global_ids.end());
  if (std::adjacent_find(sub.global_ids.begin(), sub.global_ids.end()) !=
      sub.global_ids.end()) {
    throw std::invalid_argument("materialize_subproblem_topology: duplicate member");
  }

  const std::size_t n = sub.global_ids.size();
  sub.priorities.resize(n);  // filled by the kernel's SubproblemScorer
  sub.offsets.resize(n + 1);
  sub.offsets[0] = 0;
  sub.edges.clear();

  const bool dense = arena.begin_membership_epoch(ground_set.num_points());
  if (dense) {
    for (std::size_t i = 0; i < n; ++i) {
      arena.insert_member(sub.global_ids[i], static_cast<std::uint32_t>(i));
    }
  }

  std::vector<graph::Edge>& scratch = arena.edge_scratch();
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId v = sub.global_ids[i];
    for (const graph::Edge& e : ground_set.neighbors_span(v, scratch)) {
      std::uint32_t local = SubproblemArena::kNotMember;
      if (dense) {
        local = arena.local_of(e.neighbor);
      } else {
        const auto it = std::lower_bound(sub.global_ids.begin(),
                                         sub.global_ids.end(), e.neighbor);
        if (it != sub.global_ids.end() && *it == e.neighbor) {
          local = static_cast<std::uint32_t>(it - sub.global_ids.begin());
        }
      }
      if (local != SubproblemArena::kNotMember) {
        sub.edges.push_back(Subproblem::LocalEdge{local, e.weight});
      }
    }
    sub.offsets[i + 1] = static_cast<std::int64_t>(sub.edges.size());
  }
  ++sub.topology_epoch;
  return sub;
}

Subproblem materialize_subproblem(const GroundSet& ground_set,
                                  std::vector<NodeId> members,
                                  ObjectiveParams params,
                                  const SelectionState* state) {
  // One-shot convenience path: binary-search membership, no arena. Building
  // a dense scatter map for a single materialization would cost
  // O(num_points) memory for no amortization; repeated callers (the round
  // loops) use the arena overload.
  return reference::materialize_subproblem(ground_set, std::move(members),
                                           params, state);
}

GreedyResult greedy_on_subproblem(const Subproblem& subproblem, std::size_t k,
                                  ObjectiveParams params) {
  const std::size_t n = subproblem.size();
  k = std::min(k, n);
  GreedyResult result;
  result.selected.reserve(k);

  AddressableMaxHeap heap(subproblem.priorities);
  const double pair_scale = params.pair_scale();
  double priority_sum = 0.0;
  while (result.selected.size() < k) {
    const auto v1 = heap.pop_max();
    priority_sum += heap.priority(v1);
    result.selected.push_back(subproblem.global_ids[v1]);
    const auto begin = static_cast<std::size_t>(subproblem.offsets[v1]);
    const auto end = static_cast<std::size_t>(subproblem.offsets[v1 + 1]);
    for (std::size_t e = begin; e < end; ++e) {
      const auto& edge = subproblem.edges[e];
      if (heap.contains(edge.neighbor)) {
        heap.decrease_weight_by(edge.neighbor, pair_scale * edge.weight);
      }
    }
  }
  result.objective = params.alpha * priority_sum;
  return result;
}

GreedyResult greedy_on_subproblem(const Subproblem& subproblem, std::size_t k,
                                  ObjectiveParams params, SubproblemArena& arena,
                                  ConstraintTracker* tracker) {
  const std::size_t n = subproblem.size();
  k = std::min(k, n);
  GreedyResult result;
  result.selected.reserve(k);

  AddressableMaxHeap& heap = arena.heap();
  heap.assign(subproblem.priorities);
  const double pair_scale = params.pair_scale();
  double priority_sum = 0.0;
  // Constrained pops that the tracker rejects are dropped for good (monotone
  // infeasibility), which can drain the heap before k accepts — hence the
  // empty() guard, unreachable when tracker == nullptr.
  while (result.selected.size() < k && !heap.empty()) {
    const auto v1 = heap.pop_max();
    if (tracker != nullptr && !tracker->feasible(subproblem.global_ids[v1])) {
      continue;
    }
    priority_sum += heap.priority(v1);
    result.selected.push_back(subproblem.global_ids[v1]);
    if (tracker != nullptr) tracker->accept(subproblem.global_ids[v1]);
    const auto begin = static_cast<std::size_t>(subproblem.offsets[v1]);
    const auto end = static_cast<std::size_t>(subproblem.offsets[v1 + 1]);
    // Fused per-edge decrease straight off the CSR slice (popped neighbors
    // are skipped inside) — bit-identical to the seed per-edge loop.
    heap.decrease_edges(subproblem.edges.data() + begin, end - begin, pair_scale);
  }
  result.objective = params.alpha * priority_sum;
  return result;
}

GreedyResult lazy_greedy_on_subproblem(const Subproblem& subproblem, std::size_t k,
                                       SubproblemScorer& scorer,
                                       SubproblemArena& arena,
                                       ConstraintTracker* tracker) {
  const std::size_t n = subproblem.size();
  k = std::min(k, n);
  GreedyResult result;
  result.selected.reserve(k);

  AddressableMaxHeap& heap = arena.heap();
  heap.assign(subproblem.priorities);
  // version[v] = |selection| when v's heap priority was last computed; the
  // top of the heap is only trusted when its gain is fresh.
  std::vector<std::uint32_t> version(n, 0);
  while (result.selected.size() < k && !heap.empty()) {
    const auto v1 = heap.peek();
    if (tracker != nullptr && !tracker->feasible(subproblem.global_ids[v1])) {
      heap.pop_max();  // monotone infeasibility: dropped for good
      continue;
    }
    const auto selection_size = static_cast<std::uint32_t>(result.selected.size());
    if (version[v1] == selection_size) {
      heap.pop_max();
      result.objective += heap.priority(v1);
      result.selected.push_back(subproblem.global_ids[v1]);
      if (tracker != nullptr) tracker->accept(subproblem.global_ids[v1]);
      scorer.select(v1);
      continue;
    }
    version[v1] = selection_size;
    // Submodularity: the fresh gain can only be lower, so update-in-place
    // keeps the heap a valid upper-bound structure.
    heap.update(v1, scorer.gain(v1));
  }
  return result;
}

GreedyResult stochastic_greedy_on_subproblem(const Subproblem& subproblem,
                                             std::size_t k, SubproblemScorer& scorer,
                                             double epsilon, std::uint64_t seed,
                                             ConstraintTracker* tracker) {
  const std::size_t n = subproblem.size();
  k = std::min(k, n);
  GreedyResult result;
  result.selected.reserve(k);
  if (k == 0) return result;
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    throw std::invalid_argument("stochastic_greedy_on_subproblem: epsilon in (0,1)");
  }

  // Same live-set bookkeeping and Rng stream as the pairwise overload; only
  // the scoring differs (fresh scorer gains instead of maintained
  // priorities).
  std::vector<std::uint32_t> live(n);
  for (std::uint32_t i = 0; i < n; ++i) live[i] = i;
  const std::size_t sample_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(static_cast<double>(n) /
                                            static_cast<double>(k) *
                                            std::log(1.0 / epsilon))));
  Rng rng(seed);
  while (result.selected.size() < k) {
    if (tracker != nullptr) {
      // Sampled steps must never pick an infeasible best-of-sample, so the
      // live set is compacted to feasible candidates before each draw.
      std::erase_if(live, [&](std::uint32_t v) {
        return !tracker->feasible(subproblem.global_ids[v]);
      });
      if (live.empty()) break;
    }
    const std::size_t live_count = live.size();
    const std::size_t draw = std::min(sample_size, live_count);
    for (std::size_t i = 0; i < draw; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.uniform_index(live_count - i));
      std::swap(live[i], live[j]);
    }
    std::size_t best_slot = 0;
    double best_gain = scorer.gain(live[0]);
    for (std::size_t i = 1; i < draw; ++i) {
      const double gain = scorer.gain(live[i]);
      if (gain > best_gain ||
          (gain == best_gain && live[i] < live[best_slot])) {
        best_gain = gain;
        best_slot = i;
      }
    }
    const std::uint32_t v1 = live[best_slot];
    result.objective += best_gain;
    result.selected.push_back(subproblem.global_ids[v1]);
    if (tracker != nullptr) tracker->accept(subproblem.global_ids[v1]);
    scorer.select(v1);
    live[best_slot] = live.back();
    live.pop_back();
  }
  return result;
}

GreedyResult incremental_greedy_on_subproblem(const Subproblem& subproblem,
                                              std::size_t k,
                                              KernelIncrementalState& state,
                                              SubproblemArena& arena,
                                              ConstraintTracker* tracker) {
  const std::size_t n = subproblem.size();
  k = std::min(k, n);
  GreedyResult result;
  result.selected.reserve(k);

  AddressableMaxHeap& heap = arena.heap();
  heap.assign(subproblem.priorities);
  // version[v] = |selection| when v's heap priority was last computed — the
  // same freshness rule as the scorer driver, on arena scratch.
  std::vector<std::uint32_t>& version = arena.version_scratch();
  version.assign(n, 0);
  std::vector<std::uint32_t>& batch = arena.candidate_scratch();
  std::vector<double>& fresh = arena.gain_scratch();
  // Refresh batches ramp 1 -> 2 -> 4 ... up to kGainRefreshBatch while the
  // top keeps coming up stale after an accept, and reset on every accept:
  // easy accepts pay zero speculative evaluations, deeply stale stretches
  // amortize toward one virtual call (and one heap restore) per
  // kGainRefreshBatch candidates.
  std::size_t batch_limit = 1;
  while (result.selected.size() < k && !heap.empty()) {
    const auto top = heap.peek();
    if (tracker != nullptr && !tracker->feasible(subproblem.global_ids[top])) {
      heap.pop_max();  // monotone infeasibility: dropped for good
      continue;
    }
    const auto selection_size = static_cast<std::uint32_t>(result.selected.size());
    if (version[top] == selection_size) {
      heap.pop_max();
      result.objective += heap.priority(top);
      result.selected.push_back(subproblem.global_ids[top]);
      if (tracker != nullptr) tracker->accept(subproblem.global_ids[top]);
      state.select(top);
      batch_limit = 1;
      continue;
    }
    if (batch_limit == 1) {
      // Single stale top: refresh in place (one sift), exactly like the
      // scorer driver.
      version[top] = selection_size;
      heap.update(top, state.gain(top));
      batch_limit = 2;
      continue;
    }
    // Pop the run of stale tops (the current best upper bounds), refresh them
    // all with one batched evaluation, and push them back. Submodularity
    // makes every fresh gain <= its stale key, so this is a batched decrease;
    // the (priority, id) pop order is independent of the refresh schedule, so
    // the accepted element each step matches the one-at-a-time driver.
    batch.clear();
    while (batch.size() < batch_limit && !heap.empty() &&
           version[heap.peek()] != selection_size) {
      const auto v = heap.pop_max();
      version[v] = selection_size;
      batch.push_back(v);
    }
    fresh.resize(batch.size());
    state.gains_batch(batch, fresh);
    for (std::size_t i = 0; i < batch.size(); ++i) heap.push(batch[i], fresh[i]);
    batch_limit = std::min(kGainRefreshBatch, batch_limit * 2);
  }
  return result;
}

GreedyResult stochastic_greedy_on_subproblem(const Subproblem& subproblem,
                                             std::size_t k,
                                             KernelIncrementalState& state,
                                             double epsilon, std::uint64_t seed,
                                             SubproblemArena& arena,
                                             ConstraintTracker* tracker) {
  const std::size_t n = subproblem.size();
  k = std::min(k, n);
  GreedyResult result;
  result.selected.reserve(k);
  if (k == 0) return result;
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    throw std::invalid_argument("stochastic_greedy_on_subproblem: epsilon in (0,1)");
  }

  // Same live-set bookkeeping and Rng stream as the scorer overload; the
  // sample's gains come from one gains_batch call per step.
  std::vector<std::uint32_t> live(n);
  for (std::uint32_t i = 0; i < n; ++i) live[i] = i;
  const std::size_t sample_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(static_cast<double>(n) /
                                            static_cast<double>(k) *
                                            std::log(1.0 / epsilon))));
  std::vector<double>& gains = arena.gain_scratch();
  Rng rng(seed);
  while (result.selected.size() < k) {
    if (tracker != nullptr) {
      // Sampled steps must never pick an infeasible best-of-sample, so the
      // live set is compacted to feasible candidates before each draw.
      std::erase_if(live, [&](std::uint32_t v) {
        return !tracker->feasible(subproblem.global_ids[v]);
      });
      if (live.empty()) break;
    }
    const std::size_t live_count = live.size();
    const std::size_t draw = std::min(sample_size, live_count);
    for (std::size_t i = 0; i < draw; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.uniform_index(live_count - i));
      std::swap(live[i], live[j]);
    }
    gains.resize(draw);
    state.gains_batch(std::span<const std::uint32_t>(live.data(), draw), gains);
    std::size_t best_slot = 0;
    for (std::size_t i = 1; i < draw; ++i) {
      if (gains[i] > gains[best_slot] ||
          (gains[i] == gains[best_slot] && live[i] < live[best_slot])) {
        best_slot = i;
      }
    }
    const std::uint32_t v1 = live[best_slot];
    result.objective += gains[best_slot];
    result.selected.push_back(subproblem.global_ids[v1]);
    if (tracker != nullptr) tracker->accept(subproblem.global_ids[v1]);
    state.select(v1);
    live[best_slot] = live.back();
    live.pop_back();
  }
  return result;
}

GreedyResult solve_partition(const GroundSet& ground_set,
                             std::span<const NodeId> members, std::size_t k,
                             const ObjectiveKernel& kernel,
                             const SelectionState* state, SubproblemArena& arena,
                             PartitionSolver partition_solver,
                             double stochastic_epsilon, std::uint64_t seed,
                             std::size_t* materialized_bytes,
                             std::size_t* state_bytes, GainEngine gain_engine,
                             const ConstraintSet* constraints) {
  const auto finish = [&](GreedyResult result, std::size_t sub_bytes,
                          std::size_t kernel_bytes) {
    result.materialized_bytes = sub_bytes;
    result.kernel_state_bytes = kernel_bytes;
    if (materialized_bytes != nullptr) *materialized_bytes = sub_bytes;
    if (state_bytes != nullptr) *state_bytes = kernel_bytes;
    return result;
  };

  // Constrained solves track budgets over the whole run: already-selected
  // points (bounding survivors, earlier rounds) count via the state seed.
  std::optional<ConstraintTracker> tracker;
  ConstraintTracker* tracker_ptr = nullptr;
  if (constraints != nullptr && !constraints->empty()) {
    tracker.emplace(*constraints);
    if (state != nullptr) tracker->seed(state->selected_ids());
    tracker_ptr = &*tracker;
  }

  if (const ObjectiveParams* params = kernel.pairwise_params()) {
    // Closed-form path — the exact pre-kernel machine code.
    const Subproblem& sub =
        materialize_subproblem(ground_set, members, *params, state, arena);
    return finish(
        partition_solver == PartitionSolver::kStochastic
            ? stochastic_greedy_on_subproblem(sub, k, *params, stochastic_epsilon,
                                              seed, tracker_ptr)
            : greedy_on_subproblem(sub, k, *params, arena, tracker_ptr),
        sub.byte_size(), 0);
  }
  Subproblem& sub = materialize_subproblem_topology(ground_set, members, arena);
  if (gain_engine != GainEngine::kScorerReference) {
    // Incremental states bind their vectorized backend at construction, so a
    // scoped scalar override here pins this whole solve to the portable
    // fallback (the kIncrementalScalar forcing seam).
    std::optional<simd::ScopedBackendOverride> force_scalar;
    if (gain_engine == GainEngine::kIncrementalScalar) {
      force_scalar.emplace(simd::Backend::kScalar);
    }
    if (const std::unique_ptr<KernelIncrementalState> incremental =
            kernel.make_incremental_state(arena)) {
      // The sampled driver evaluates strictly through gains_batch, so the
      // O(n·deg) initial-priority pass is skipped for it.
      const bool sampled = partition_solver == PartitionSolver::kStochastic;
      incremental->reset(sub, state, /*init_priorities=*/!sampled);
      return finish(
          sampled ? stochastic_greedy_on_subproblem(sub, k, *incremental,
                                                    stochastic_epsilon, seed,
                                                    arena, tracker_ptr)
                  : incremental_greedy_on_subproblem(sub, k, *incremental, arena,
                                                     tracker_ptr),
          sub.byte_size(), incremental->state_bytes());
    }
  }
  const std::unique_ptr<SubproblemScorer> scorer = kernel.make_scorer();
  scorer->reset(sub, state);
  return finish(partition_solver == PartitionSolver::kStochastic
                    ? stochastic_greedy_on_subproblem(sub, k, *scorer,
                                                      stochastic_epsilon, seed,
                                                      tracker_ptr)
                    : lazy_greedy_on_subproblem(sub, k, *scorer, arena, tracker_ptr),
                sub.byte_size(), 0);
}

namespace reference {

Subproblem materialize_subproblem(const GroundSet& ground_set,
                                  std::vector<NodeId> members,
                                  ObjectiveParams params,
                                  const SelectionState* state) {
  std::sort(members.begin(), members.end());
  if (std::adjacent_find(members.begin(), members.end()) != members.end()) {
    throw std::invalid_argument("materialize_subproblem: duplicate member");
  }

  Subproblem sub;
  sub.global_ids = std::move(members);
  const std::size_t n = sub.global_ids.size();
  sub.priorities.resize(n);
  sub.offsets.assign(n + 1, 0);

  const double pair_scale = params.pair_scale();
  std::vector<graph::Edge> scratch;
  // First pass: adjusted utilities + intra-subset edge counts.
  std::vector<Subproblem::LocalEdge> local_edges;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId v = sub.global_ids[i];
    double priority = ground_set.utility(v);
    ground_set.neighbors(v, scratch);
    for (const graph::Edge& e : scratch) {
      if (state != nullptr && state->is_selected(e.neighbor)) {
        priority -= pair_scale * e.weight;
        continue;
      }
      const auto it = std::lower_bound(sub.global_ids.begin(), sub.global_ids.end(),
                                       e.neighbor);
      if (it != sub.global_ids.end() && *it == e.neighbor) {
        local_edges.push_back(Subproblem::LocalEdge{
            static_cast<std::uint32_t>(it - sub.global_ids.begin()), e.weight});
      }
    }
    sub.priorities[i] = priority;
    sub.offsets[i + 1] = static_cast<std::int64_t>(local_edges.size());
  }
  sub.edges = std::move(local_edges);
  return sub;
}

GreedyResult greedy_on_subproblem(const Subproblem& subproblem, std::size_t k,
                                  ObjectiveParams params) {
  return core::greedy_on_subproblem(subproblem, k, params);
}

}  // namespace reference

GreedyResult stochastic_greedy_on_subproblem(const Subproblem& subproblem,
                                             std::size_t k, ObjectiveParams params,
                                             double epsilon, std::uint64_t seed,
                                             ConstraintTracker* tracker) {
  const std::size_t n = subproblem.size();
  k = std::min(k, n);
  GreedyResult result;
  result.selected.reserve(k);
  if (k == 0) return result;
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    throw std::invalid_argument("stochastic_greedy_on_subproblem: epsilon in (0,1)");
  }

  // Priorities double as marginal gains (pairwise structure); no heap — each
  // step scans only the sampled candidates.
  std::vector<double> priorities = subproblem.priorities;
  std::vector<std::uint32_t> live(n);
  std::vector<std::uint32_t> slot_of(n);  // live-array position per local id
  for (std::uint32_t i = 0; i < n; ++i) {
    live[i] = i;
    slot_of[i] = i;
  }

  const std::size_t sample_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(static_cast<double>(n) /
                                            static_cast<double>(k) *
                                            std::log(1.0 / epsilon))));
  Rng rng(seed);
  const double pair_scale = params.pair_scale();
  double priority_sum = 0.0;

  while (result.selected.size() < k) {
    if (tracker != nullptr) {
      // Compact the live set to feasible candidates before drawing, keeping
      // slot_of consistent for the edge-update loop below.
      std::erase_if(live, [&](std::uint32_t v) {
        const bool drop = !tracker->feasible(subproblem.global_ids[v]);
        if (drop) slot_of[v] = static_cast<std::uint32_t>(-1);
        return drop;
      });
      for (std::size_t i = 0; i < live.size(); ++i) {
        slot_of[live[i]] = static_cast<std::uint32_t>(i);
      }
      if (live.empty()) break;
    }
    const std::size_t live_count = live.size();
    const std::size_t draw = std::min(sample_size, live_count);
    // Partial Fisher-Yates over the live array; slots [0, draw) become the
    // sample.
    for (std::size_t i = 0; i < draw; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.uniform_index(live_count - i));
      std::swap(live[i], live[j]);
      slot_of[live[i]] = static_cast<std::uint32_t>(i);
      slot_of[live[j]] = static_cast<std::uint32_t>(j);
    }
    std::size_t best_slot = 0;
    for (std::size_t i = 1; i < draw; ++i) {
      const std::uint32_t candidate = live[i];
      const std::uint32_t incumbent = live[best_slot];
      if (priorities[candidate] > priorities[incumbent] ||
          (priorities[candidate] == priorities[incumbent] &&
           candidate < incumbent)) {
        best_slot = i;
      }
    }
    const std::uint32_t v1 = live[best_slot];
    priority_sum += priorities[v1];
    result.selected.push_back(subproblem.global_ids[v1]);
    if (tracker != nullptr) tracker->accept(subproblem.global_ids[v1]);

    // Remove v1 from the live set (swap-pop, positions maintained).
    live[best_slot] = live.back();
    slot_of[live[best_slot]] = static_cast<std::uint32_t>(best_slot);
    live.pop_back();
    slot_of[v1] = static_cast<std::uint32_t>(-1);

    const auto begin = static_cast<std::size_t>(subproblem.offsets[v1]);
    const auto end = static_cast<std::size_t>(subproblem.offsets[v1 + 1]);
    for (std::size_t e = begin; e < end; ++e) {
      const auto& edge = subproblem.edges[e];
      if (slot_of[edge.neighbor] != static_cast<std::uint32_t>(-1)) {
        priorities[edge.neighbor] -= pair_scale * edge.weight;
      }
    }
  }
  result.objective = params.alpha * priority_sum;
  return result;
}

GreedyResult centralized_greedy(const graph::SimilarityGraph& graph,
                                const std::vector<double>& utilities,
                                ObjectiveParams params, std::size_t k) {
  if (graph.num_nodes() != utilities.size()) {
    throw std::invalid_argument("centralized_greedy: size mismatch");
  }
  const std::size_t n = graph.num_nodes();
  k = std::min(k, n);
  GreedyResult result;
  result.selected.reserve(k);

  AddressableMaxHeap heap(utilities);
  const double pair_scale = params.pair_scale();
  double priority_sum = 0.0;
  while (result.selected.size() < k) {
    const auto v1 = heap.pop_max();
    priority_sum += heap.priority(v1);
    result.selected.push_back(static_cast<NodeId>(v1));
    for (const graph::Edge& edge : graph.neighbors(static_cast<NodeId>(v1))) {
      const auto local = static_cast<AddressableMaxHeap::LocalId>(edge.neighbor);
      if (heap.contains(local)) {
        heap.decrease_weight_by(local, pair_scale * edge.weight);
      }
    }
  }
  result.objective = params.alpha * priority_sum;
  return result;
}

GreedyResult naive_greedy(const GroundSet& ground_set, ObjectiveParams params,
                          std::size_t k) {
  const std::size_t n = ground_set.num_points();
  k = std::min(k, n);
  GreedyResult result;
  result.selected.reserve(k);

  std::vector<std::uint8_t> in_subset(n, 0);
  PairwiseObjective objective(ground_set, params);
  double total = 0.0;
  for (std::size_t step = 0; step < k; ++step) {
    double best_gain = -std::numeric_limits<double>::infinity();
    NodeId best = -1;
    for (std::size_t i = 0; i < n; ++i) {
      if (in_subset[i] != 0) continue;
      const double gain = objective.marginal_gain(in_subset, static_cast<NodeId>(i));
      if (gain > best_gain) {  // strict: first maximizer wins = smallest id
        best_gain = gain;
        best = static_cast<NodeId>(i);
      }
    }
    in_subset[static_cast<std::size_t>(best)] = 1;
    result.selected.push_back(best);
    total += best_gain;
  }
  result.objective = total;
  return result;
}

GreedyResult naive_greedy(const ObjectiveKernel& kernel, std::size_t k) {
  const std::size_t n = kernel.ground_set().num_points();
  k = std::min(k, n);
  GreedyResult result;
  result.selected.reserve(k);

  std::vector<std::uint8_t> in_subset(n, 0);
  double total = 0.0;
  for (std::size_t step = 0; step < k; ++step) {
    double best_gain = -std::numeric_limits<double>::infinity();
    NodeId best = -1;
    for (std::size_t i = 0; i < n; ++i) {
      if (in_subset[i] != 0) continue;
      const double gain = kernel.marginal_gain(in_subset, static_cast<NodeId>(i));
      if (gain > best_gain) {  // strict: first maximizer wins = smallest id
        best_gain = gain;
        best = static_cast<NodeId>(i);
      }
    }
    in_subset[static_cast<std::size_t>(best)] = 1;
    result.selected.push_back(best);
    total += best_gain;
  }
  result.objective = total;
  return result;
}

}  // namespace subsel::core
