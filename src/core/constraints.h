// Composable selection constraints beyond the cardinality budget k.
//
// A ConstraintSet describes, over GLOBAL node ids, any combination of
//   - a knapsack budget: per-element costs plus a total cost budget,
//   - a partition matroid: per-element group ids plus per-group caps
//     (fairness quotas: "at most cap_g elements from group g"),
//   - a blocked set: elements that may never be selected (the registry uses
//     this to surface OverlayGroundSet deletions to every solver).
//
// All three are DOWNWARD CLOSED (every subset of a feasible set is feasible)
// and MONOTONE INFEASIBLE under growth: once an element cannot be added to
// the current selection, it can never become addable as the selection grows
// — spent cost only increases and group counts only increase. The greedy
// drivers rely on this to drop infeasible heap pops permanently instead of
// re-queueing them.
//
// ConstraintSet is immutable shared configuration; ConstraintTracker is the
// cheap per-solve mutable view (spent cost + per-group counts) providing
// O(1) feasible / accept / remove. Solvers that never see a ConstraintSet
// (constraints == nullptr, the default everywhere) are bit-identical to the
// pre-constraint code paths — checkpoints, golden fixtures, and the SIMD
// parity contract all depend on that.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/similarity_graph.h"

namespace subsel::core {

using graph::NodeId;

/// Immutable constraint configuration over global node ids. Empty vectors
/// mean "this constraint family is inactive"; a default-constructed set is
/// `empty()` and equivalent to passing no constraints at all.
struct ConstraintSet {
  /// Knapsack: active when `cost_budget > 0`. `costs` must then have one
  /// entry per ground-set element (validate() enforces this).
  std::vector<double> costs;
  double cost_budget = 0.0;

  /// Partition matroid: active when `groups` is non-empty (one group id per
  /// element). `group_caps[g]` bounds group g; it must cover every group id
  /// appearing in `groups`.
  std::vector<std::uint32_t> groups;
  std::vector<std::size_t> group_caps;

  /// Elements that may never be selected (deleted overlay points, explicit
  /// exclusions). Sorted ascending, deduplicated by validate().
  std::vector<NodeId> blocked;

  bool has_knapsack() const noexcept { return cost_budget > 0.0; }
  bool has_matroid() const noexcept { return !groups.empty(); }
  bool has_blocked() const noexcept { return !blocked.empty(); }
  bool empty() const noexcept {
    return !has_knapsack() && !has_matroid() && !has_blocked();
  }

  /// Throws std::invalid_argument when the set is inconsistent for a ground
  /// set of `num_points` elements (size mismatches, negative costs, group id
  /// without a cap, blocked id out of range). Sorts + dedups `blocked`.
  void validate(std::size_t num_points);

  /// Single source of truth for the knapsack acceptance comparison, shared
  /// by the tracker and the brute-force oracle so float-sum ordering can
  /// never make them disagree about a marginal element.
  bool fits_cost(double spent, double element_cost) const noexcept {
    return spent + element_cost <= cost_budget + kCostSlack * cost_budget;
  }

  /// Total cost of a subset (0 when the knapsack family is inactive).
  double cost_of(std::span<const NodeId> subset) const noexcept;

  /// True iff `subset` (assumed duplicate-free) satisfies every active
  /// family. Cardinality is the caller's business.
  bool feasible_subset(std::span<const NodeId> subset) const;

  /// Stable identity of the constraint configuration, mixed into checkpoint
  /// run fingerprints — but only when `!empty()`, so unconstrained runs keep
  /// their pre-constraint fingerprints and can resume old checkpoints.
  std::uint64_t fingerprint() const noexcept;

  static constexpr double kCostSlack = 1e-9;
};

/// Mutable per-solve view over one ConstraintSet: the spent cost, per-group
/// selection counts, and a blocked bitmap. feasible/accept/remove are O(1).
/// Cheap to copy (sieve-streaming keeps one per sieve).
class ConstraintTracker {
 public:
  /// `constraints` must outlive the tracker and must already be validated
  /// against the ground set the ids come from.
  explicit ConstraintTracker(const ConstraintSet& constraints);

  /// Counts an already-committed selection (pre-selected survivors from a
  /// bounding stage or a previous round) against the budgets. Infeasible
  /// seeds are counted anyway — seeding never throws — so repair-style
  /// callers must filter first via feasible().
  void seed(std::span<const NodeId> selected);

  /// Would adding `v` to the tracked selection stay feasible? Blocked
  /// elements are never feasible.
  bool feasible(NodeId v) const noexcept {
    const auto i = static_cast<std::size_t>(v);
    if (i < blocked_.size() && blocked_[i]) return false;
    if (constraints_->has_knapsack() &&
        !constraints_->fits_cost(spent_cost_,
                                 constraints_->costs[static_cast<std::size_t>(v)])) {
      return false;
    }
    if (constraints_->has_matroid()) {
      const auto g = constraints_->groups[static_cast<std::size_t>(v)];
      if (group_counts_[g] >= constraints_->group_caps[g]) return false;
    }
    return true;
  }

  void accept(NodeId v) noexcept {
    if (constraints_->has_knapsack()) {
      spent_cost_ += constraints_->costs[static_cast<std::size_t>(v)];
    }
    if (constraints_->has_matroid()) {
      ++group_counts_[constraints_->groups[static_cast<std::size_t>(v)]];
    }
  }

  /// Un-counts a previously accepted element (repair drops, never blocked
  /// bookkeeping — blocked membership is static).
  void remove(NodeId v) noexcept {
    if (constraints_->has_knapsack()) {
      spent_cost_ -= constraints_->costs[static_cast<std::size_t>(v)];
    }
    if (constraints_->has_matroid()) {
      --group_counts_[constraints_->groups[static_cast<std::size_t>(v)]];
    }
  }

  double spent_cost() const noexcept { return spent_cost_; }
  const ConstraintSet& constraints() const noexcept { return *constraints_; }

 private:
  const ConstraintSet* constraints_;
  double spent_cost_ = 0.0;
  std::vector<std::size_t> group_counts_;
  std::vector<std::uint8_t> blocked_;  // bitmap over [0, num_points)
};

}  // namespace subsel::core
