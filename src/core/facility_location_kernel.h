// Facility location over the similarity graph: max-based coverage.
//
//   f(S) = Σ_{v∈V} w(v) · max_{s∈S} σ(v,s),
//
// where σ(v,s) is the graph similarity s(v,s) for an edge (v,s), the
// self-similarity constant for s = v, and 0 otherwise; w(v) is the point's
// utility (weighted mode, the default — high-utility points demand to be
// represented) or 1. Every point is scored by its best selected
// representative, the classic exemplar/coreset objective (k-medoids'
// submodular cousin). Monotone and submodular for non-negative similarities.
//
// Marginal gains are NOT linear in the selected neighborhood (the max
// saturates), so there is no closed-form decrease-key; instead the kernel
// provides incremental state: flat best/second-best cover arrays per element,
// updated in O(deg(selected)) per pick, so a candidate's gain is an O(deg)
// flat scan instead of the O(deg^2) exact oracle. The second-best array rides
// along at one extra compare per update; it is what makes a future
// removal/swap (local-search) step O(deg) instead of a full recompute, and it
// is counted in state_bytes. The bounding pre-pass (pairwise Umin/Umax math)
// still does not apply.
#pragma once

#include "core/objective_kernel.h"

namespace subsel::core {

struct FacilityLocationParams {
  /// σ(v,v): how well a selected point covers itself. Graph similarities in
  /// this repo live in (0, 1], so 1 = "perfectly".
  double self_similarity = 1.0;
  /// Weight each point's coverage by its utility u(v); false weights every
  /// point equally.
  bool utility_weighted = true;

  /// self_similarity must be finite and >= 0.
  void validate() const;
};

class FacilityLocationKernel final : public ObjectiveKernel {
 public:
  /// The ground set must outlive the kernel; throws on invalid params.
  FacilityLocationKernel(const graph::GroundSet& ground_set,
                         FacilityLocationParams params);

  std::string_view name() const noexcept override { return "facility-location"; }
  ObjectiveKernelCaps caps() const noexcept override {
    return {/*linear_priority_updates=*/false, /*utility_bounds=*/false,
            /*distributed_scoring=*/false, /*monotone=*/true,
            /*incremental_state=*/true,
            /*simd_backend=*/simd::active_backend_name()};
  }
  const graph::GroundSet& ground_set() const noexcept override {
    return *ground_set_;
  }

  double evaluate(const std::vector<std::uint8_t>& membership,
                  ThreadPool* pool = nullptr) const override;
  using ObjectiveKernel::evaluate;

  double marginal_gain(const std::vector<std::uint8_t>& membership,
                       NodeId v) const override;

  double singleton_value(NodeId v) const override;

  std::uint64_t config_fingerprint() const noexcept override {
    return fingerprint_mix(
        fingerprint_mix(0xf1a0ULL, params_.self_similarity),
        static_cast<std::uint64_t>(params_.utility_weighted ? 1 : 0));
  }

  std::unique_ptr<SubproblemScorer> make_scorer() const override;
  std::unique_ptr<KernelIncrementalState> make_incremental_state(
      SubproblemArena& arena) const override;

  const FacilityLocationParams& params() const noexcept { return params_; }

 private:
  double point_weight(NodeId v) const {
    return params_.utility_weighted ? ground_set_->utility(v) : 1.0;
  }
  /// Current coverage of v under `membership`: best σ(v, ·) over selected.
  double coverage_of(const std::vector<std::uint8_t>& membership, NodeId v,
                     std::vector<graph::Edge>& scratch) const;

  const graph::GroundSet* ground_set_;
  FacilityLocationParams params_;
};

}  // namespace subsel::core
