// Centralized greedy maximization of pairwise submodular functions
// (Algorithms 1 and 2 of the paper).
//
// For f(S) = α Σ u(v) − β Σ s(v1,v2), the marginal gain of v given S is
// α·(u(v) − (β/α) Σ_{j∈S, (v,j)∈E} s(v,j)), so the greedy can keep a priority
// queue initialized with the utilities and, on every pop, lower the priority
// of the popped point's still-queued neighbors by (β/α)·s — no full gain
// recomputation (Algorithm 2). This is the (1−1/e) gold standard the paper
// normalizes every distributed result against.
//
// The same routine runs inside each partition of the distributed algorithm;
// `Subproblem` materializes a partition (or any id subset) with
// cross-partition edges dropped and utilities optionally conditioned on an
// already-selected partial solution.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/constraints.h"
#include "core/objective.h"
#include "core/objective_kernel.h"
#include "core/selection_state.h"
#include "core/subproblem_arena.h"
#include "graph/ground_set.h"
#include "graph/similarity_graph.h"

namespace subsel::core {

/// Centralized algorithm run inside each partition. The paper's default is
/// the priority-queue Algorithm 2; stochastic greedy trades a (1-1/e-eps)
/// expected guarantee for O(n log(1/eps)) gain evaluations per partition
/// ("any centralized version of the algorithm" — Section 3).
enum class PartitionSolver : std::uint8_t {
  kPriorityQueue = 0,
  kStochastic = 1,
};

struct GreedyResult {
  /// Selected ids in pick order (global ids).
  std::vector<NodeId> selected;
  /// α · Σ (priority at pop time) = f(selected) *within the subproblem*,
  /// i.e. ignoring edges that the subproblem dropped. When utilities were
  /// conditioned on a partial solution S′, this additionally accounts for
  /// edges into S′. For the exact global objective re-evaluate with
  /// PairwiseObjective.
  double objective = 0.0;
  /// Bytes of the materialized subproblem CSR backing the solve (0 for
  /// pure-oracle paths that never materialize one).
  std::size_t materialized_bytes = 0;
  /// Bytes of flat kernel incremental state backing the solve (0 for the
  /// closed-form pairwise path and oracle paths).
  std::size_t kernel_state_bytes = 0;
  /// True when a deadline cut the solve short; `selected` then holds the
  /// valid (merely smaller) prefix chosen before time ran out.
  bool degraded = false;
};

/// Materializes the subproblem induced by `members` (any order; sorted
/// internally). Edges to non-members are dropped — exactly the "discard any
/// neighborhood relation across partitions" rule of Section 4.4. If `state`
/// is given, member utilities are conditioned on its selected points (edges
/// into S′ keep influencing marginal gains, Definition 4.2-style).
/// One-shot convenience overload (binary-search membership); the round loops
/// use the arena overload below.
Subproblem materialize_subproblem(const GroundSet& ground_set,
                                  std::vector<NodeId> members,
                                  ObjectiveParams params,
                                  const SelectionState* state = nullptr);

/// Hot-path variant: materializes into `arena`'s reusable storage and returns
/// a reference to it (valid until the arena's next materialize). Membership
/// tests use the arena's epoch-stamped scatter map (O(1) per edge, no
/// per-partition clearing) when the ground set is small enough for the dense
/// map, and binary search over the member list otherwise; neighborhoods are
/// read through the zero-copy GroundSet::neighbors_span path. Selections are
/// identical to the by-value overload.
const Subproblem& materialize_subproblem(const GroundSet& ground_set,
                                         std::span<const NodeId> members,
                                         ObjectiveParams params,
                                         const SelectionState* state,
                                         SubproblemArena& arena);

/// Algorithm 2 on a subproblem; selects min(k, size) points.
GreedyResult greedy_on_subproblem(const Subproblem& subproblem, std::size_t k,
                                  ObjectiveParams params);

/// Hot-path variant: runs on the arena's reusable heap (no per-partition
/// allocation) and applies each pop's neighbor updates with one batched
/// decrease_many restore pass. Bit-identical selections and objectives to the
/// arena-free overload. `subproblem` may be (and typically is) the arena's
/// own subproblem.
///
/// All subproblem drivers take an optional ConstraintTracker (global-id
/// space). When given, a popped candidate that the tracker rejects is dropped
/// permanently — valid because every ConstraintSet family is monotone
/// infeasible under selection growth — and the solve may legitimately return
/// fewer than k points once no feasible candidate remains. With
/// tracker == nullptr every driver is bit-identical to its pre-constraint
/// behavior.
GreedyResult greedy_on_subproblem(const Subproblem& subproblem, std::size_t k,
                                  ObjectiveParams params, SubproblemArena& arena,
                                  ConstraintTracker* tracker = nullptr);

/// Stochastic greedy (Mirzasoleiman et al. 2015) on a subproblem: each step
/// examines a uniform sample of ceil(n/k * ln(1/eps)) live candidates
/// instead of all of them, exploiting the same pairwise priority structure
/// as Algorithm 2 (priorities == marginal gains, updated on neighbor pops).
/// (1 - 1/e - eps) in expectation; the paper notes any centralized variant
/// can run inside a partition (Section 3, "Related optimizations").
GreedyResult stochastic_greedy_on_subproblem(const Subproblem& subproblem,
                                             std::size_t k, ObjectiveParams params,
                                             double epsilon, std::uint64_t seed,
                                             ConstraintTracker* tracker = nullptr);

/// Topology-only arena materialization for the kernel fallback path: global
/// ids + member-restricted CSR, with `priorities` sized but left for the
/// kernel's SubproblemScorer to fill (SubproblemScorer::reset). Shares the
/// epoch-stamped scatter-map membership machinery of the pairwise overload.
Subproblem& materialize_subproblem_topology(const GroundSet& ground_set,
                                            std::span<const NodeId> members,
                                            SubproblemArena& arena);

/// Lazy greedy (Minoux) over kernel-supplied gains — the fallback partition
/// solver for kernels without closed-form priority updates. The heap holds
/// possibly-stale gains; the top is re-evaluated through the scorer before
/// being accepted, which is exact for any submodular kernel (stale values
/// only ever overestimate). `scorer` must already be reset() on `subproblem`
/// (its initial gains are read from subproblem.priorities). Ties break
/// toward smaller local ids, like every other solver in this repo.
GreedyResult lazy_greedy_on_subproblem(const Subproblem& subproblem, std::size_t k,
                                       SubproblemScorer& scorer,
                                       SubproblemArena& arena,
                                       ConstraintTracker* tracker = nullptr);

/// Stochastic greedy over kernel-supplied gains: each step scans a uniform
/// sample of ceil(n/k·ln(1/eps)) live candidates, evaluating each through the
/// scorer. Sampling sequence matches the pairwise overload (same Rng stream),
/// so kernels differ only in scoring.
GreedyResult stochastic_greedy_on_subproblem(const Subproblem& subproblem,
                                             std::size_t k, SubproblemScorer& scorer,
                                             double epsilon, std::uint64_t seed,
                                             ConstraintTracker* tracker = nullptr);

/// Batched lazy greedy over flat incremental kernel state — the hot-path
/// replacement of the scorer driver. Stale heap tops are popped in runs of up
/// to kGainRefreshBatch, re-evaluated with ONE gains_batch call (flat loops,
/// no per-candidate virtual dispatch), and pushed back with their fresh
/// gains. Because heap pop/peek order is the (priority, id) total order and
/// fresh gains can only be lower than stale ones (submodularity), the
/// accepted element each step is identical to the one-at-a-time scorer
/// driver's — selections and objectives match lazy_greedy_on_subproblem
/// bit-for-bit when the state mirrors the scorer's arithmetic. `state` must
/// already be reset() on `subproblem`.
GreedyResult incremental_greedy_on_subproblem(const Subproblem& subproblem,
                                              std::size_t k,
                                              KernelIncrementalState& state,
                                              SubproblemArena& arena,
                                              ConstraintTracker* tracker = nullptr);

/// Candidates the batched lazy driver re-evaluates per gains_batch call.
inline constexpr std::size_t kGainRefreshBatch = 32;

/// Stochastic greedy over incremental state: the drawn sample is evaluated
/// with one gains_batch call per step. Same Rng stream and tie-breaking as
/// the scorer overload, so selections coincide when the state mirrors the
/// scorer's arithmetic.
GreedyResult stochastic_greedy_on_subproblem(const Subproblem& subproblem,
                                             std::size_t k,
                                             KernelIncrementalState& state,
                                             double epsilon, std::uint64_t seed,
                                             SubproblemArena& arena,
                                             ConstraintTracker* tracker = nullptr);

/// Which gain machinery solve_partition runs for kernels without closed-form
/// priority updates. kAuto prefers the kernel's flat incremental state
/// (batched gains, O(deg) delta updates) and falls back to the virtual
/// scorer; kScorerReference forces the scorer — the equivalence oracle the
/// parity tests and the --kernel-hotpath bench hold the fast path against;
/// kIncrementalScalar runs the incremental state but pins its vectorized
/// inner loops to the portable scalar backend (the same effect as
/// SUBSEL_FORCE_SCALAR=1, scoped to one solve) — the forcing seam the
/// SIMD-vs-scalar parity suite and the --simd-matrix bench are built on.
/// All three engines produce bit-identical selections and objectives.
enum class GainEngine : std::uint8_t {
  kAuto = 0,
  kScorerReference = 1,
  kIncrementalScalar = 2,
};

/// The one partition-solve entry point the round loops (distributed greedy,
/// GreeDi, beam) call: materializes `members` and selects min(k, size) points
/// under `kernel`. Pairwise-family kernels (pairwise_params() != nullptr)
/// take the exact pre-kernel arena fast path — bit-identical selections and
/// objectives, zero added hot-path work; other kernels run the batched
/// incremental-state driver (or the lazy/sampled scorer fallback, see
/// GainEngine). `materialized_bytes`/`state_bytes`, when non-null, receive
/// the subproblem's byte size and the flat kernel-state byte size (the
/// round-stats memory numbers; both are also set on the returned
/// GreedyResult).
///
/// `constraints` (global-id space, validated) activates constrained
/// acceptance in whichever driver runs: a fresh ConstraintTracker is seeded
/// from `state`'s already-selected points (they count against budgets and
/// caps) and candidates it rejects are skipped permanently, so the result may
/// hold fewer than k points. nullptr (the default) is bit-identical to the
/// unconstrained code paths.
GreedyResult solve_partition(const GroundSet& ground_set,
                             std::span<const NodeId> members, std::size_t k,
                             const ObjectiveKernel& kernel,
                             const SelectionState* state, SubproblemArena& arena,
                             PartitionSolver partition_solver,
                             double stochastic_epsilon, std::uint64_t seed,
                             std::size_t* materialized_bytes = nullptr,
                             std::size_t* state_bytes = nullptr,
                             GainEngine gain_engine = GainEngine::kAuto,
                             const ConstraintSet* constraints = nullptr);

/// Algorithm 2 on a full materialized dataset (fast path, no id translation).
GreedyResult centralized_greedy(const graph::SimilarityGraph& graph,
                                const std::vector<double>& utilities,
                                ObjectiveParams params, std::size_t k);

/// Reference implementation of Algorithm 1: recomputes every marginal gain
/// each step (O(n·k) gain evaluations). Used by tests to validate the
/// priority-queue implementation; ties break toward smaller ids, matching
/// AddressableMaxHeap.
GreedyResult naive_greedy(const GroundSet& ground_set, ObjectiveParams params,
                          std::size_t k);

/// Reference greedy over an arbitrary kernel: recomputes every marginal gain
/// each step through the kernel's exact oracle. The equivalence baseline the
/// conformance tests hold the lazy/scorer machinery against.
GreedyResult naive_greedy(const ObjectiveKernel& kernel, std::size_t k);

/// The seed (pre-arena) implementations, kept verbatim as the equivalence
/// oracle for the zero-copy/arena fast path and as the perf baseline recorded
/// in BENCH_micro_core.json: per-edge std::lower_bound membership, a fresh
/// edge-copy buffer, and a freshly allocated heap with per-edge sift-downs.
namespace reference {

Subproblem materialize_subproblem(const GroundSet& ground_set,
                                  std::vector<NodeId> members,
                                  ObjectiveParams params,
                                  const SelectionState* state = nullptr);

GreedyResult greedy_on_subproblem(const Subproblem& subproblem, std::size_t k,
                                  ObjectiveParams params);

}  // namespace reference

}  // namespace subsel::core
