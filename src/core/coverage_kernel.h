// Saturated (truncated) weighted coverage over the similarity graph:
//
//   f(S) = Σ_{v∈V} w(v) · min(τ, C_v(S)),
//   C_v(S) = σ_self·1[v∈S] + Σ_{s∈S∩N(v)} s(v,s),
//
// i.e. every point accumulates similarity mass from its selected neighbors
// (plus a self term when it is selected itself), but its contribution
// saturates at the threshold τ — once a point is "covered enough", more
// representatives of it add nothing. A concave function of a non-negative
// modular function, hence monotone submodular. τ interpolates between a
// modular objective (τ = ∞) and a cardinality-like coverage (τ small).
//
// Like facility location, the saturation makes marginal gains non-linear in
// the selected neighborhood, so there is no closed-form decrease-key;
// instead the kernel provides incremental state: a flat residual-capacity
// view (accumulated mass per element, residual = tau - mass) updated in
// O(deg(selected)) per pick. A candidate's gain is an O(deg) flat scan that
// skips already-saturated neighbors (residual 0 contributes exactly nothing),
// instead of the O(deg^2) exact oracle.
#pragma once

#include "core/objective_kernel.h"

namespace subsel::core {

struct SaturatedCoverageParams {
  /// The saturation threshold τ (> 0). Similarities in this repo live in
  /// (0, 1], so 1.0 ≈ "one strong or a few weak representatives suffice".
  double saturation = 1.0;
  /// The self-coverage mass a point receives when selected.
  double self_similarity = 1.0;
  /// Weight each point's covered mass by its utility u(v).
  bool utility_weighted = true;

  /// saturation must be > 0, self_similarity >= 0, both finite.
  void validate() const;
};

class SaturatedCoverageKernel final : public ObjectiveKernel {
 public:
  /// The ground set must outlive the kernel; throws on invalid params.
  SaturatedCoverageKernel(const graph::GroundSet& ground_set,
                          SaturatedCoverageParams params);

  std::string_view name() const noexcept override { return "saturated-coverage"; }
  ObjectiveKernelCaps caps() const noexcept override {
    return {/*linear_priority_updates=*/false, /*utility_bounds=*/false,
            /*distributed_scoring=*/false, /*monotone=*/true,
            /*incremental_state=*/true,
            /*simd_backend=*/simd::active_backend_name()};
  }
  const graph::GroundSet& ground_set() const noexcept override {
    return *ground_set_;
  }

  double evaluate(const std::vector<std::uint8_t>& membership,
                  ThreadPool* pool = nullptr) const override;
  using ObjectiveKernel::evaluate;

  double marginal_gain(const std::vector<std::uint8_t>& membership,
                       NodeId v) const override;

  double singleton_value(NodeId v) const override;

  std::uint64_t config_fingerprint() const noexcept override {
    return fingerprint_mix(
        fingerprint_mix(fingerprint_mix(0x5a7cULL, params_.saturation),
                        params_.self_similarity),
        static_cast<std::uint64_t>(params_.utility_weighted ? 1 : 0));
  }

  std::unique_ptr<SubproblemScorer> make_scorer() const override;
  std::unique_ptr<KernelIncrementalState> make_incremental_state(
      SubproblemArena& arena) const override;

  const SaturatedCoverageParams& params() const noexcept { return params_; }

 private:
  double point_weight(NodeId v) const {
    return params_.utility_weighted ? ground_set_->utility(v) : 1.0;
  }
  /// C_v(S): v's accumulated (unsaturated) coverage mass under `membership`.
  double mass_of(const std::vector<std::uint8_t>& membership, NodeId v,
                 std::vector<graph::Edge>& scratch) const;

  const graph::GroundSet* ground_set_;
  SaturatedCoverageParams params_;
};

}  // namespace subsel::core
