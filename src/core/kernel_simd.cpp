#include "core/kernel_simd.h"

#include <algorithm>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SUBSEL_KSIMD_HAVE_AVX2 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define SUBSEL_KSIMD_HAVE_NEON 1
#endif

namespace subsel::core::ksimd {
namespace {

// ---------------------------------------------------------------------------
// Portable scalar backend. The reference arithmetic: 4 independent
// accumulator lanes, edge i of the slice into lane i mod 4, reduced as
// self + ((l0 + l1) + (l2 + l3)). The vector backends below perform exactly
// these operations in exactly this association.
// ---------------------------------------------------------------------------

double cover_gain_scalar(const std::uint32_t* nbr, const double* pw,
                         std::size_t count, const double* wcover,
                         double self_term) {
  double lanes[kLanes] = {0.0, 0.0, 0.0, 0.0};
  std::size_t e = 0;
  for (; e + kLanes <= count; e += kLanes) {
    lanes[0] += std::max(0.0, pw[e + 0] - wcover[nbr[e + 0]]);
    lanes[1] += std::max(0.0, pw[e + 1] - wcover[nbr[e + 1]]);
    lanes[2] += std::max(0.0, pw[e + 2] - wcover[nbr[e + 2]]);
    lanes[3] += std::max(0.0, pw[e + 3] - wcover[nbr[e + 3]]);
  }
  for (std::size_t lane = 0; e < count; ++e, ++lane) {
    lanes[lane] += std::max(0.0, pw[e] - wcover[nbr[e]]);
  }
  return self_term + ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]));
}

double resid_gain_scalar(const std::uint32_t* nbr, const double* pw,
                         std::size_t count, const double* resid,
                         double self_term) {
  double lanes[kLanes] = {0.0, 0.0, 0.0, 0.0};
  std::size_t e = 0;
  for (; e + kLanes <= count; e += kLanes) {
    lanes[0] += std::min(pw[e + 0], std::max(resid[nbr[e + 0]], 0.0));
    lanes[1] += std::min(pw[e + 1], std::max(resid[nbr[e + 1]], 0.0));
    lanes[2] += std::min(pw[e + 2], std::max(resid[nbr[e + 2]], 0.0));
    lanes[3] += std::min(pw[e + 3], std::max(resid[nbr[e + 3]], 0.0));
  }
  for (std::size_t lane = 0; e < count; ++e, ++lane) {
    lanes[lane] += std::min(pw[e], std::max(resid[nbr[e]], 0.0));
  }
  return self_term + ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]));
}

void gather_scalar(const double* values, const std::uint32_t* idx,
                   std::size_t count, double* out) {
  for (std::size_t i = 0; i < count; ++i) out[i] = values[idx[i]];
}

constexpr KernelSimdOps kScalarOps{cover_gain_scalar, resid_gain_scalar,
                                   gather_scalar, "scalar"};

// ---------------------------------------------------------------------------
// AVX2 backend. Compiled per-function with target attributes so the
// translation unit (and the rest of the binary) stays baseline x86-64;
// simd::active_backend() guarantees these run only on AVX2 hardware.
// max/min lane semantics match the scalar std::max/std::min forms here
// because pw >= +0.0 and subtraction never yields -0.0, so the operand-order
// asymmetries of vmaxpd/vminpd on signed zeros cannot surface.
// ---------------------------------------------------------------------------

#if defined(SUBSEL_KSIMD_HAVE_AVX2)

__attribute__((target("avx2"))) double cover_gain_avx2(
    const std::uint32_t* nbr, const double* pw, std::size_t count,
    const double* wcover, double self_term) {
  __m256d acc = _mm256_setzero_pd();
  const __m256d zero = _mm256_setzero_pd();
  std::size_t e = 0;
  for (; e + kLanes <= count; e += kLanes) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(nbr + e));
    const __m256d cov = _mm256_i32gather_pd(wcover, idx, sizeof(double));
    const __m256d w = _mm256_loadu_pd(pw + e);
    acc = _mm256_add_pd(acc, _mm256_max_pd(zero, _mm256_sub_pd(w, cov)));
  }
  alignas(32) double lanes[kLanes];
  _mm256_store_pd(lanes, acc);
  for (std::size_t lane = 0; e < count; ++e, ++lane) {
    lanes[lane] += std::max(0.0, pw[e] - wcover[nbr[e]]);
  }
  return self_term + ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]));
}

__attribute__((target("avx2"))) double resid_gain_avx2(
    const std::uint32_t* nbr, const double* pw, std::size_t count,
    const double* resid, double self_term) {
  __m256d acc = _mm256_setzero_pd();
  const __m256d zero = _mm256_setzero_pd();
  std::size_t e = 0;
  for (; e + kLanes <= count; e += kLanes) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(nbr + e));
    const __m256d r = _mm256_i32gather_pd(resid, idx, sizeof(double));
    const __m256d w = _mm256_loadu_pd(pw + e);
    acc = _mm256_add_pd(acc, _mm256_min_pd(w, _mm256_max_pd(r, zero)));
  }
  alignas(32) double lanes[kLanes];
  _mm256_store_pd(lanes, acc);
  for (std::size_t lane = 0; e < count; ++e, ++lane) {
    lanes[lane] += std::min(pw[e], std::max(resid[nbr[e]], 0.0));
  }
  return self_term + ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]));
}

__attribute__((target("avx2"))) void gather_avx2(const double* values,
                                                 const std::uint32_t* idx,
                                                 std::size_t count,
                                                 double* out) {
  std::size_t i = 0;
  for (; i + kLanes <= count; i += kLanes) {
    const __m128i ids =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    _mm256_storeu_pd(out + i, _mm256_i32gather_pd(values, ids, sizeof(double)));
  }
  for (; i < count; ++i) out[i] = values[idx[i]];
}

constexpr KernelSimdOps kAvx2Ops{cover_gain_avx2, resid_gain_avx2, gather_avx2,
                                 "avx2"};

#endif  // SUBSEL_KSIMD_HAVE_AVX2

// ---------------------------------------------------------------------------
// NEON backend (baseline on aarch64): two float64x2 registers emulate the
// 4-double lane group, so lane assignment and reduction order match the
// scalar contract exactly.
// ---------------------------------------------------------------------------

#if defined(SUBSEL_KSIMD_HAVE_NEON)

inline float64x2_t gather2_f64(const double* base, const std::uint32_t* idx) {
  float64x2_t v = vdupq_n_f64(base[idx[0]]);
  return vsetq_lane_f64(base[idx[1]], v, 1);
}

double cover_gain_neon(const std::uint32_t* nbr, const double* pw,
                       std::size_t count, const double* wcover,
                       double self_term) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  const float64x2_t zero = vdupq_n_f64(0.0);
  std::size_t e = 0;
  for (; e + kLanes <= count; e += kLanes) {
    const float64x2_t cov01 = gather2_f64(wcover, nbr + e);
    const float64x2_t cov23 = gather2_f64(wcover, nbr + e + 2);
    const float64x2_t w01 = vld1q_f64(pw + e);
    const float64x2_t w23 = vld1q_f64(pw + e + 2);
    acc01 = vaddq_f64(acc01, vmaxq_f64(zero, vsubq_f64(w01, cov01)));
    acc23 = vaddq_f64(acc23, vmaxq_f64(zero, vsubq_f64(w23, cov23)));
  }
  double lanes[kLanes];
  vst1q_f64(lanes + 0, acc01);
  vst1q_f64(lanes + 2, acc23);
  for (std::size_t lane = 0; e < count; ++e, ++lane) {
    lanes[lane] += std::max(0.0, pw[e] - wcover[nbr[e]]);
  }
  return self_term + ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]));
}

double resid_gain_neon(const std::uint32_t* nbr, const double* pw,
                       std::size_t count, const double* resid,
                       double self_term) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  const float64x2_t zero = vdupq_n_f64(0.0);
  std::size_t e = 0;
  for (; e + kLanes <= count; e += kLanes) {
    const float64x2_t r01 = gather2_f64(resid, nbr + e);
    const float64x2_t r23 = gather2_f64(resid, nbr + e + 2);
    const float64x2_t w01 = vld1q_f64(pw + e);
    const float64x2_t w23 = vld1q_f64(pw + e + 2);
    acc01 = vaddq_f64(acc01, vminq_f64(w01, vmaxq_f64(r01, zero)));
    acc23 = vaddq_f64(acc23, vminq_f64(w23, vmaxq_f64(r23, zero)));
  }
  double lanes[kLanes];
  vst1q_f64(lanes + 0, acc01);
  vst1q_f64(lanes + 2, acc23);
  for (std::size_t lane = 0; e < count; ++e, ++lane) {
    lanes[lane] += std::min(pw[e], std::max(resid[nbr[e]], 0.0));
  }
  return self_term + ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]));
}

constexpr KernelSimdOps kNeonOps{cover_gain_neon, resid_gain_neon,
                                 gather_scalar, "neon"};

#endif  // SUBSEL_KSIMD_HAVE_NEON

}  // namespace

const KernelSimdOps& ops_for(simd::Backend backend) noexcept {
  switch (backend) {
    case simd::Backend::kAvx2:
#if defined(SUBSEL_KSIMD_HAVE_AVX2)
      return kAvx2Ops;
#else
      break;
#endif
    case simd::Backend::kNeon:
#if defined(SUBSEL_KSIMD_HAVE_NEON)
      return kNeonOps;
#else
      break;
#endif
    case simd::Backend::kScalar:
      break;
  }
  return kScalarOps;
}

}  // namespace subsel::core::ksimd
