// The pluggable objective seam: everything a selection solver needs to know
// about the function it maximizes, captured in one interface.
//
// The repo's solvers historically hardwired the paper's pairwise objective
// f(S) = α·Σu(v) − β·Σs(v1,v2). An ObjectiveKernel decouples them from that
// choice. A kernel provides:
//
//  - exact `evaluate` / `marginal_gain` / `singleton_value` over the full
//    ground set (the cross-solver comparable numbers, and the fallback gain
//    oracle for the centralized/streaming baselines);
//  - a `gain_offset` making every marginal gain non-negative (the Appendix-A
//    monotonicity shift, 0 for inherently monotone kernels);
//  - the priority-queue hooks of the arena-backed hot path. Kernels whose
//    marginal gains are *linear in the selected neighborhood* — gain(v|S) =
//    α·(u(v) − (β/α)·Σ_{j∈S∩N(v)} s(v,j)) — expose their ObjectiveParams via
//    `pairwise_params()`, and the round loops run the exact same
//    materialize + batched-decrease-key machine code as before (bit-identical
//    selections, zero hot-path overhead). Every other kernel supplies flat,
//    arena-backed *incremental state* (make_incremental_state): per-element
//    cover/residual arrays updated in O(deg(selected)) per pick, with a
//    gains_batch bulk evaluator the batched lazy solve loop feeds candidate
//    runs through — one virtual call per batch, flat loops inside, instead of
//    one virtual SubproblemScorer call per candidate. The virtual
//    SubproblemScorer remains as the equivalence oracle (and the fallback for
//    external kernels that implement neither hook); both fallbacks are exact
//    for any submodular kernel: stale priorities only overestimate, so
//    re-checking the heap top suffices.
//
// Capability flags tell the API layer which solver×objective combinations are
// valid (e.g. the bounding pre-pass needs the pairwise Umin/Umax bounds), so
// invalid combos fail at request validation instead of deep inside a solver.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/simd.h"
#include "common/thread_pool.h"
#include "core/objective.h"
#include "core/selection_state.h"
#include "core/subproblem_arena.h"
#include "graph/ground_set.h"

namespace subsel::core {

/// What a kernel can do, consumed by the API layer's solver×objective
/// validation and printed by `subsel objectives`.
struct ObjectiveKernelCaps {
  /// Marginal gains are linear in the selected neighborhood, so the greedy
  /// can run closed-form batched decrease-keys (the Algorithm 2 hot path).
  /// Implies pairwise_params() != nullptr.
  bool linear_priority_updates = false;
  /// The Section 4.1 utility bounds (Umin/Umax) apply, so the bounding
  /// pre-pass (Algorithms 3-5) can run under this objective.
  bool utility_bounds = false;
  /// The Section 5 distributed scoring joins can compute f(S) without any
  /// worker holding S (the edge-decomposable pairwise form).
  bool distributed_scoring = false;
  /// Monotone non-decreasing without any offset (gain_offset() == 0).
  bool monotone = false;
  /// make_incremental_state() returns flat arena-backed per-element state, so
  /// solvers run O(deg) incremental gains + batched evaluation instead of the
  /// O(deg^2) exact oracle / per-candidate virtual scorer.
  bool incremental_state = false;
  /// The vectorized backend the kernel's incremental-state inner loops will
  /// dispatch to right now ("scalar", "avx2", "neon") — i.e.
  /// simd::active_backend_name() at the time caps() is called. All exact
  /// backends are bit-identical, so this is diagnostics, not semantics; it is
  /// echoed into SelectionReport JSON and `subsel objectives` so bench
  /// numbers are self-describing across machines.
  const char* simd_backend = "scalar";
};

/// FNV-1a step over a 64-bit value (or a double's bit pattern) — stable
/// across process restarts, unlike std::hash. The building block for
/// ObjectiveKernel::config_fingerprint overrides.
std::uint64_t fingerprint_mix(std::uint64_t hash, std::uint64_t value);
std::uint64_t fingerprint_mix(std::uint64_t hash, double value);

/// Per-subproblem stateful gain oracle for kernels without closed-form
/// priority updates. One scorer serves one subproblem at a time; `reset`
/// rebinds it. Not thread-safe — the round loops create one per partition
/// task (or reuse one per worker).
class SubproblemScorer {
 public:
  virtual ~SubproblemScorer() = default;

  /// Binds the scorer to a materialized subproblem and writes the initial
  /// marginal gains (empty local selection, conditioned on the selected
  /// points of `state` when given) into `sub.priorities`.
  virtual void reset(Subproblem& sub, const SelectionState* state) = 0;

  /// Marginal gain of selecting local id `v` given everything select()ed on
  /// this scorer since the last reset.
  virtual double gain(std::uint32_t v) const = 0;

  /// Commits the selection of local id `v`.
  virtual void select(std::uint32_t v) = 0;
};

/// Incremental, arena-backed kernel state — the devirtualized hot-path
/// successor of SubproblemScorer. All per-element state (cover/residual
/// masses, weights, gains) lives in flat SubproblemArena buffers reused
/// across partitions and rounds, selections apply O(deg(selected)) delta
/// updates, and gains_batch evaluates whole candidate runs behind ONE virtual
/// call with tight flat loops inside (SIMD-friendly, no per-element
/// dispatch). Implementations MUST mirror their SubproblemScorer's
/// floating-point arithmetic operation-for-operation so the two paths pick
/// identical subsets — the scorer stays as the equivalence oracle the parity
/// suite holds this state against.
///
/// Like the scorer: one state serves one subproblem at a time, `reset`
/// rebinds it, and it is not thread-safe (one per arena, and arenas are
/// checked out per worker). gains_batch is const and safe to call
/// concurrently between mutations.
class KernelIncrementalState {
 public:
  virtual ~KernelIncrementalState() = default;

  /// Binds the state to a materialized subproblem topology and, when
  /// `init_priorities` is set, writes the initial marginal gains
  /// (conditioned on the globally selected points of `state` when given)
  /// into `sub.priorities`. Callers that never read the priority vector —
  /// the sampled drivers and the full-ground-set baseline engine evaluate
  /// strictly through gain()/gains_batch() — pass false and skip that whole
  /// O(n·deg) pass.
  virtual void reset(Subproblem& sub, const SelectionState* state,
                     bool init_priorities = true) = 0;

  /// Exact marginal gain of local id `v` given everything select()ed since
  /// the last reset. O(deg(v)).
  virtual double gain(std::uint32_t v) const = 0;

  /// Bulk gains: out[i] = gain(candidates[i]) for every i, flat loops, no
  /// per-element virtual dispatch. `out.size() >= candidates.size()`.
  virtual void gains_batch(std::span<const std::uint32_t> candidates,
                           std::span<double> out) const = 0;

  /// Commits the selection of local id `v` with O(deg(v)) delta updates to
  /// the flat state.
  virtual void select(std::uint32_t v) = 0;

  /// Bytes of flat per-element state behind this subproblem (the report's
  /// peak_kernel_state_bytes).
  virtual std::size_t state_bytes() const noexcept = 0;

  /// Name of the vectorized backend this state bound at construction
  /// ("scalar", "avx2", "neon"). States capture simd::active_backend() when
  /// created, so a ScopedBackendOverride active at make_incremental_state
  /// time pins the state's arithmetic path for its whole lifetime.
  virtual const char* backend() const noexcept { return "scalar"; }
};

class ObjectiveKernel {
 public:
  virtual ~ObjectiveKernel() = default;

  /// Stable registry-style identifier ("pairwise", "facility-location", ...).
  virtual std::string_view name() const noexcept = 0;
  virtual ObjectiveKernelCaps caps() const noexcept = 0;
  /// The ground set this kernel scores over (kernels are bound to their data:
  /// a kernel is an objective *instance*, not a formula).
  virtual const graph::GroundSet& ground_set() const noexcept = 0;

  /// f(S) for S given as a 0/1 membership bitmap of size num_points().
  virtual double evaluate(const std::vector<std::uint8_t>& membership,
                          ThreadPool* pool = nullptr) const = 0;

  /// f(S) for S given as an id list (builds a bitmap internally).
  double evaluate(std::span<const NodeId> subset, ThreadPool* pool = nullptr) const {
    return evaluate(membership_bitmap(ground_set().num_points(), subset), pool);
  }

  /// f(S ∪ {v}) − f(S) for v ∉ S.
  virtual double marginal_gain(const std::vector<std::uint8_t>& membership,
                               NodeId v) const = 0;

  /// f({v}) — the first-step gain, used by the threshold/sieve baselines.
  virtual double singleton_value(NodeId v) const = 0;

  /// Additive per-element gain shift δ' such that marginal_gain + δ' >= 0 for
  /// every (S, v). 0 for monotone kernels; α·δ (Appendix A) for pairwise.
  virtual double gain_offset(ThreadPool* pool = nullptr) const {
    (void)pool;
    return 0.0;
  }

  /// Non-null iff caps().linear_priority_updates: the exact parameters the
  /// Algorithm 2 fast path should run with. The fast path is bit-identical to
  /// the pre-kernel ObjectiveParams overloads.
  virtual const ObjectiveParams* pairwise_params() const noexcept { return nullptr; }

  /// Hash of everything that parameterizes this kernel instance (not the
  /// ground set). Mixed into distributed_greedy's checkpoint fingerprint
  /// together with name() so a checkpoint written under one objective
  /// configuration never resumes a run under another — override whenever the
  /// kernel has tunable parameters.
  virtual std::uint64_t config_fingerprint() const noexcept { return 0; }

  /// Fresh scorer for the lazy fallback path. Every kernel must provide one
  /// (linear kernels included — tests use it to validate the lazy driver
  /// against the closed-form path). With incremental state available this is
  /// the *reference* implementation: the parity suite asserts the incremental
  /// state reproduces it selection-for-selection.
  virtual std::unique_ptr<SubproblemScorer> make_scorer() const = 0;

  /// Fresh incremental state whose flat buffers live in `arena` (reused
  /// across every partition/round the arena serves), or nullptr when the
  /// kernel only implements the scorer — solvers then fall back to the
  /// per-candidate scorer path. Non-null iff caps().incremental_state.
  virtual std::unique_ptr<KernelIncrementalState> make_incremental_state(
      SubproblemArena& arena) const {
    (void)arena;
    return nullptr;
  }
};

/// The paper's pairwise objective as the first kernel: a thin adapter over
/// PairwiseObjective whose fast path is the existing arena machinery.
class PairwiseKernel final : public ObjectiveKernel {
 public:
  /// Validates params (alpha > 0, beta >= 0, both finite) — a malformed
  /// --alpha=0 must fail fast instead of pushing inf/NaN into heap
  /// priorities via pair_scale().
  PairwiseKernel(const graph::GroundSet& ground_set, ObjectiveParams params);

  std::string_view name() const noexcept override { return "pairwise"; }
  ObjectiveKernelCaps caps() const noexcept override {
    return {/*linear_priority_updates=*/true, /*utility_bounds=*/true,
            /*distributed_scoring=*/true, /*monotone=*/false,
            /*incremental_state=*/true,
            /*simd_backend=*/simd::active_backend_name()};
  }
  const graph::GroundSet& ground_set() const noexcept override {
    return *ground_set_;
  }

  double evaluate(const std::vector<std::uint8_t>& membership,
                  ThreadPool* pool = nullptr) const override {
    return objective_.evaluate(membership, pool);
  }
  using ObjectiveKernel::evaluate;

  double marginal_gain(const std::vector<std::uint8_t>& membership,
                       NodeId v) const override {
    return objective_.marginal_gain(membership, v);
  }

  double singleton_value(NodeId v) const override {
    return params_.alpha * ground_set_->utility(v);
  }

  /// α·δ — the shift the sieve/threshold baselines add per accepted element.
  double gain_offset(ThreadPool* pool = nullptr) const override {
    return params_.alpha * objective_.monotonicity_offset(pool);
  }

  const ObjectiveParams* pairwise_params() const noexcept override {
    return &params_;
  }

  std::uint64_t config_fingerprint() const noexcept override;

  std::unique_ptr<SubproblemScorer> make_scorer() const override;
  /// Maintained pairwise gains as flat state. The round loops never use it
  /// (pairwise_params() wins), but the parity suite and generic gain engines
  /// do.
  std::unique_ptr<KernelIncrementalState> make_incremental_state(
      SubproblemArena& arena) const override;

  const PairwiseObjective& objective() const noexcept { return objective_; }

 private:
  const graph::GroundSet* ground_set_;
  ObjectiveParams params_;
  PairwiseObjective objective_;
};

/// Resolves the objective for a legacy-compatible config surface: returns
/// `*kernel` when the caller supplied one, otherwise constructs a
/// PairwiseKernel over (ground_set, params) into `storage` (validating the
/// params) and returns that. The single spelling of the "explicit kernel
/// wins, else legacy pairwise params" rule used by every round loop and
/// baseline.
const ObjectiveKernel& resolve_kernel(const ObjectiveKernel* kernel,
                                      const graph::GroundSet& ground_set,
                                      ObjectiveParams params,
                                      std::optional<PairwiseKernel>& storage);

}  // namespace subsel::core
