// End-to-end subset selection as deployed in the paper (Section 4 intro):
// run (approximate) bounding first; if it does not complete the subset,
// finish with the multi-round distributed greedy over the surviving points.
#pragma once

#include <optional>
#include <string>

#include "core/bounding.h"
#include "core/distributed_greedy.h"

namespace subsel::core {

struct SelectionPipelineConfig {
  ObjectiveParams objective;
  /// Objective kernel; non-owning, must outlive the run and be bound to the
  /// same ground set. Null runs the legacy pairwise path under `objective`.
  /// The bounding pre-pass requires caps().utility_bounds (the Section 4.1
  /// Umin/Umax math is pairwise) — select_subset throws on a kernel without
  /// it unless bounding is disabled.
  const ObjectiveKernel* kernel = nullptr;
  /// Bounding pre-pass; disable to run pure distributed greedy.
  bool use_bounding = true;
  BoundingConfig bounding;
  DistributedGreedyConfig greedy;
};

struct SelectionPipelineResult {
  std::vector<NodeId> selected;  // exactly k ids, ascending
  double objective = 0.0;
  /// Bounding statistics (empty optional when bounding was disabled).
  std::optional<BoundingResult> bounding;
  /// Greedy round statistics (empty when bounding completed the subset).
  std::vector<RoundStats> greedy_rounds;
  double bounding_seconds = 0.0;
  double greedy_seconds = 0.0;
  /// True when the greedy stage was preempted (stop_after_round or the
  /// cancellation token); `selected` is then empty.
  bool preempted = false;
  /// True when a deadline cut either stage short (bounding stopped before its
  /// fixed point, or greedy skipped rounds). Unlike `preempted`, `selected`
  /// still holds a valid size-k selection — just a less-optimized one.
  bool degraded = false;
  std::string degraded_reason;
};

/// Selects k points from the ground set. The objective params in
/// `config.objective` override the ones embedded in the stage configs so the
/// stages can never disagree.
SelectionPipelineResult select_subset(const GroundSet& ground_set, std::size_t k,
                                      SelectionPipelineConfig config);

}  // namespace subsel::core
