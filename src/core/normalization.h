// The score normalization of Section 6: within one parameter group (dataset,
// α/β, target size k), the centralized greedy objective maps to 100 % and the
// lowest observed objective to 0 %, so "one percent point" reads as gain over
// the worst case, and scores above 100 highlight runs that beat centralized
// greedy (bounding occasionally does, Table 2).
#pragma once

#include <algorithm>
#include <vector>

namespace subsel::core {

class ScoreNormalizer {
 public:
  /// `centralized` is the reference objective; `observed` must contain every
  /// score of the parameter group (the minimum defines 0 %).
  ScoreNormalizer(double centralized, const std::vector<double>& observed)
      : centralized_(centralized), lowest_(centralized) {
    for (double value : observed) lowest_ = std::min(lowest_, value);
  }

  double normalize(double objective) const {
    const double range = centralized_ - lowest_;
    if (range <= 0.0) return 100.0;  // degenerate group: everything ties
    return 100.0 * (objective - lowest_) / range;
  }

  double centralized() const noexcept { return centralized_; }
  double lowest() const noexcept { return lowest_; }

 private:
  double centralized_;
  double lowest_;
};

}  // namespace subsel::core
