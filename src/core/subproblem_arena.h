// Reusable per-worker storage for the distributed-greedy hot path.
//
// Every round of Algorithm 6 materializes one subproblem per partition and
// runs the centralized greedy on it. The seed implementation paid, per
// partition per round, a fresh CSR/heap allocation plus a binary search over
// the sorted member list for every edge. The arena removes both costs:
//
//  - `Subproblem` buffers (ids/priorities/offsets/edges) and the
//    AddressableMaxHeap live in the arena and are reused across all
//    partitions and rounds a worker processes — allocation converges to zero
//    after the first (largest) round;
//  - membership is an epoch-stamped global→local scatter map: one 64-bit
//    stamp per ground-set point packing (epoch, local id). Bumping the epoch
//    invalidates the whole map in O(1), so there is no per-partition
//    clearing, and per-edge membership tests are a single indexed load
//    instead of an O(log n) binary search.
//
// The scatter map is dense in the number of ground-set points, so it is only
// engaged below kDenseMembershipLimit; virtual ground sets with billions of
// points (data/perturbed.h) fall back to binary search over the member list.
//
// Arenas are not thread safe; SubproblemArenaPool hands one arena at a time
// to each pool worker and recycles them across rounds.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "core/addressable_heap.h"
#include "graph/similarity_graph.h"

namespace subsel::core {

/// A self-contained greedy instance over a subset of the ground set.
struct Subproblem {
  /// Ascending global ids; local id = index into this vector.
  std::vector<graph::NodeId> global_ids;
  /// Initial priorities: u(v), minus (β/α)·Σ s(v,j) over already-selected
  /// neighbors j when conditioned on a partial solution.
  std::vector<double> priorities;
  /// CSR adjacency restricted to members (local ids).
  std::vector<std::int64_t> offsets;
  struct LocalEdge {
    std::uint32_t neighbor;
    float weight;
  };
  std::vector<LocalEdge> edges;
  /// Bumped whenever global_ids/offsets/edges are rebuilt (materialize does
  /// this). Incremental states key their cached derived layouts (SoA columns,
  /// premultiplied weights) on (subproblem address, epoch), so repeated
  /// resets against the same materialization skip the O(edges) rebuild.
  /// Callers that mutate the topology by hand must bump it themselves.
  std::uint64_t topology_epoch = 0;

  std::size_t size() const noexcept { return global_ids.size(); }
  std::size_t byte_size() const noexcept {
    return global_ids.size() * (sizeof(graph::NodeId) + sizeof(double)) +
           offsets.size() * sizeof(std::int64_t) + edges.size() * sizeof(LocalEdge);
  }
};

class SubproblemArena {
 public:
  static constexpr std::uint32_t kNotMember =
      std::numeric_limits<std::uint32_t>::max();
  /// Largest ground set (in points) for which the dense scatter map is used:
  /// 8 B/point of stamps, so 64 MB per arena at the limit. Beyond it (the
  /// virtual multi-billion-point ground sets) membership falls back to binary
  /// search over the sorted member list.
  static constexpr std::size_t kDenseMembershipLimit = std::size_t{1} << 23;

  /// The reusable subproblem storage this arena owns. Valid until the next
  /// materialize call on the same arena.
  Subproblem& subproblem() noexcept { return subproblem_; }
  const Subproblem& subproblem() const noexcept { return subproblem_; }

  /// Reusable heap for greedy_on_subproblem.
  AddressableMaxHeap& heap() noexcept { return heap_; }

  /// Scratch for GroundSet::neighbors_span copying fallbacks.
  std::vector<graph::Edge>& edge_scratch() noexcept { return edge_scratch_; }

  /// Scratch for batching one pop's neighbor updates into decrease_many.
  std::vector<std::pair<AddressableMaxHeap::LocalId, double>>&
  update_scratch() noexcept {
    return update_scratch_;
  }

  /// Reusable flat per-element buffer for ObjectiveKernel incremental state
  /// (best/second-best cover arrays, residual-mass arrays, weights, gains).
  /// Kernels index slots however they like; the deque keeps references to
  /// already-handed-out buffers stable when a later slot grows the set.
  /// Like the subproblem storage, the buffers are reused across every
  /// partition and round the arena serves — steady-state allocation is zero.
  std::vector<double>& kernel_state_buffer(std::size_t slot) {
    while (kernel_state_.size() <= slot) kernel_state_.emplace_back();
    return kernel_state_[slot];
  }

  /// Reusable index buffers for the structure-of-arrays kernel layouts
  /// (per-edge neighbor columns consumed by the vectorized gain loops).
  /// Same slot/stability/reuse contract as kernel_state_buffer.
  std::vector<std::uint32_t>& kernel_index_buffer(std::size_t slot) {
    while (kernel_index_.size() <= slot) kernel_index_.emplace_back();
    return kernel_index_[slot];
  }

  /// Bytes currently held by the kernel-state buffers (the report's
  /// peak_kernel_state_bytes input).
  std::size_t kernel_state_bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& buffer : kernel_state_) total += buffer.size() * sizeof(double);
    for (const auto& buffer : kernel_index_) {
      total += buffer.size() * sizeof(std::uint32_t);
    }
    return total;
  }

  /// Scratch for the batched lazy solve loop (per-element freshness stamps,
  /// the stale-candidate batch, and its freshly evaluated gains).
  std::vector<std::uint32_t>& version_scratch() noexcept { return version_scratch_; }
  std::vector<std::uint32_t>& candidate_scratch() noexcept {
    return candidate_scratch_;
  }
  std::vector<double>& gain_scratch() noexcept { return gain_scratch_; }

  /// Starts a fresh membership epoch over global ids [0, num_points).
  /// Returns true when the dense scatter map is engaged (num_points within
  /// kDenseMembershipLimit); false tells the caller to use its fallback.
  /// O(1) amortized: no clearing, just an epoch bump — the stamp array is
  /// (re)allocated only on first use or growth, and zero-filled only when the
  /// 32-bit epoch counter wraps.
  bool begin_membership_epoch(std::size_t num_points) {
    if (num_points > kDenseMembershipLimit) return false;
    if (stamps_.size() < num_points) stamps_.resize(num_points, 0);
    if (++epoch_ == 0) {  // wrapped: stale stamps could alias the new epoch
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
    return true;
  }

  /// Registers `global` as member `local` of the current epoch.
  void insert_member(graph::NodeId global, std::uint32_t local) noexcept {
    stamps_[static_cast<std::size_t>(global)] =
        (static_cast<std::uint64_t>(epoch_) << 32) | local;
  }

  /// Local id of `global` in the current epoch, or kNotMember.
  std::uint32_t local_of(graph::NodeId global) const noexcept {
    const std::uint64_t stamp = stamps_[static_cast<std::size_t>(global)];
    return (stamp >> 32) == epoch_ ? static_cast<std::uint32_t>(stamp)
                                   : kNotMember;
  }

 private:
  Subproblem subproblem_;
  AddressableMaxHeap heap_;
  std::vector<graph::Edge> edge_scratch_;
  std::vector<std::pair<AddressableMaxHeap::LocalId, double>> update_scratch_;
  std::deque<std::vector<double>> kernel_state_;
  std::deque<std::vector<std::uint32_t>> kernel_index_;
  std::vector<std::uint32_t> version_scratch_;
  std::vector<std::uint32_t> candidate_scratch_;
  std::vector<double> gain_scratch_;
  std::vector<std::uint64_t> stamps_;  // (epoch << 32) | local id
  std::uint32_t epoch_ = 0;
};

/// Thread-safe checkout pool: one arena per concurrently-running partition
/// task, recycled across all rounds of a run. Grows to the worker count of
/// the executing pool and no further.
class SubproblemArenaPool {
 public:
  SubproblemArena* acquire() {
    // The per-partition allocation seam: "arena.alloc" stands in for an
    // allocation failure inside a worker task. The FailpointError propagates
    // through parallel_for's typed-rethrow contract to the driver.
    SUBSEL_FAILPOINT("arena.alloc");
    std::lock_guard lock(mutex_);
    if (!free_.empty()) {
      SubproblemArena* arena = free_.back();
      free_.pop_back();
      return arena;
    }
    arenas_.push_back(std::make_unique<SubproblemArena>());
    return arenas_.back().get();
  }

  void release(SubproblemArena* arena) {
    std::lock_guard lock(mutex_);
    free_.push_back(arena);
  }

  /// RAII checkout.
  class Lease {
   public:
    explicit Lease(SubproblemArenaPool& pool)
        : pool_(&pool), arena_(pool.acquire()) {}
    ~Lease() { pool_->release(arena_); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    SubproblemArena& operator*() const noexcept { return *arena_; }
    SubproblemArena* operator->() const noexcept { return arena_; }

   private:
    SubproblemArenaPool* pool_;
    SubproblemArena* arena_;
  };

 private:
  std::mutex mutex_;
  std::vector<std::unique_ptr<SubproblemArena>> arenas_;
  std::vector<SubproblemArena*> free_;
};

}  // namespace subsel::core
