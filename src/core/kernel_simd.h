// Vectorized inner-loop primitives for the ObjectiveKernel incremental
// states and their scorer oracles.
//
// The three coverage-style gain loops in this repo share one shape: walk a
// candidate's CSR edge slice, combine a contiguous premultiplied edge term
// with a gathered per-node state value, and accumulate. The primitives here
// implement that shape once per backend (portable scalar, AVX2, NEON) under a
// single arithmetic contract:
//
//  - LANE-SPLIT ACCUMULATION. Edge i of a candidate's slice (0-based within
//    the slice) accumulates into lane i mod 4; the result is
//    self_term + ((lane0 + lane1) + (lane2 + lane3)). Every backend performs
//    the same IEEE-754 operations in the same per-lane order, so gains —
//    and therefore selections and objectives — are BIT-IDENTICAL across
//    scalar/AVX2/NEON. The scorer oracles mirror the same lane order inline.
//  - PREMULTIPLIED TERMS. Edge weights arrive premultiplied by the covered
//    node's weight (pw[e] = fl(weight[u] * w_e)), and per-node state is kept
//    in the same premultiplied space (weighted cover, weighted residual).
//    This removes the per-edge multiply entirely: the loops are one gather,
//    one subtract/min, one max, one add per element — no FMA, so no
//    fp-contraction hazard, and monotone ops (max/min, multiply by a
//    non-negative constant) commute with the premultiplication exactly.
//
// Dispatch is by function-pointer table chosen once per state construction
// from simd::active_backend(); the AVX2 bodies are compiled per-function with
// target attributes so the binary stays baseline x86-64.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/simd.h"

namespace subsel::core::ksimd {

/// Accumulator lanes per gain loop; fixed by the arithmetic contract (AVX2
/// register width in doubles), not by the machine the code runs on.
inline constexpr std::size_t kLanes = 4;

/// Facility-location gain body: self_term + Σ_e max(0.0, pw[e] - wcover[nbr[e]])
/// in lane-split order. `nbr`/`pw` point at the candidate's edge slice.
using CoverGainFn = double (*)(const std::uint32_t* nbr, const double* pw,
                               std::size_t count, const double* wcover,
                               double self_term);

/// Saturated-coverage gain body:
/// self_term + Σ_e min(pw[e], max(resid[nbr[e]], 0.0)) in lane-split order.
using ResidGainFn = double (*)(const std::uint32_t* nbr, const double* pw,
                               std::size_t count, const double* resid,
                               double self_term);

/// Bulk gather: out[i] = values[idx[i]] — the pairwise gains_batch body.
using GatherFn = void (*)(const double* values, const std::uint32_t* idx,
                          std::size_t count, double* out);

struct KernelSimdOps {
  CoverGainFn cover_gain;
  ResidGainFn resid_gain;
  GatherFn gather;
  const char* name;  // backend_name of the backend these ops implement
};

/// The op table for `backend`; requests for a backend this build cannot run
/// (e.g. NEON on x86) resolve to the scalar table.
const KernelSimdOps& ops_for(simd::Backend backend) noexcept;

/// Prefetch a candidate's SoA edge slice into cache. gains_batch
/// implementations call this a couple of candidates ahead so the slice
/// streams overlap the current candidate's arithmetic instead of serializing
/// in front of it — batched gain evaluation walks candidates in random order,
/// so without this both scalar and vector backends stall on the same DRAM
/// latency and the vector win disappears. Purely a timing hint: results are
/// unaffected.
inline void prefetch_edge_slice(const std::uint32_t* nbr, const double* pw,
                                std::size_t count) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  for (std::size_t e = 0; e < count; e += 8) {
    __builtin_prefetch(pw + e);
    __builtin_prefetch(nbr + e);
  }
#else
  (void)nbr;
  (void)pw;
  (void)count;
#endif
}

/// ops_for(simd::active_backend()).
inline const KernelSimdOps& active_ops() noexcept {
  return ops_for(simd::active_backend());
}

}  // namespace subsel::core::ksimd
