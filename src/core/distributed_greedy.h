// Distributed multi-round partition-based greedy (Section 4.4, Algorithm 6).
//
// Each round: randomly partition the surviving points over the machines, run
// the centralized greedy inside every partition in parallel (dropping edges
// that cross partitions), and union the per-partition selections as the next
// round's ground set. Round sizes follow a Δ schedule (linear interpolation
// with factor γ, default 0.75 as in Section 6.1); the last round's target is
// k by construction. Unlike GreeDi/RandGreeDi there is *no* final centralized
// merge — the union (subsampled to k for rounding slack) is the answer, so no
// machine ever has to hold the full subset.
//
// Adaptive partitioning (the paper's default ablation): the number of
// partitions used in a round is the minimum needed to fit that round's target
// under the per-machine capacity ⌈|V|/m⌉, which recovers more neighborhood
// edges as the data shrinks. Disable it to reproduce Figure 3/12/13.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/run_control.h"
#include "common/thread_pool.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "core/selection_state.h"
#include "graph/ground_set.h"

namespace subsel::core {

/// Round-size schedule Δ(|V|, r, round, k). Must satisfy Δ(·, r, r, k) = k.
using DeltaSchedule =
    std::function<std::size_t(std::size_t v0, std::size_t rounds, std::size_t round,
                              std::size_t k)>;

/// The paper's linear interpolation: Δ = ⌈γ·(r−round)·(|V|−k)/r⌉ + k
/// (Section 6.1, γ = 0.75; Appendix E ablates γ).
DeltaSchedule linear_delta(double gamma = 0.75);

struct DistributedGreedyConfig {
  /// Pairwise objective parameters, used when `kernel` is null (the
  /// pre-kernel configuration surface; unchanged behavior).
  ObjectiveParams objective;
  /// Objective kernel to maximize; non-owning, must outlive the run and be
  /// bound to the same ground set the solver is given. When set it overrides
  /// `objective` entirely: pairwise-family kernels run the identical arena
  /// fast path, others the lazy scorer fallback (see core/objective_kernel.h).
  const ObjectiveKernel* kernel = nullptr;
  /// m — machines available (= maximum parallel partitions).
  std::size_t num_machines = 8;
  /// r — rounds of partition/select/union.
  std::size_t num_rounds = 1;
  bool adaptive_partitioning = true;
  DeltaSchedule delta = linear_delta();
  std::uint64_t seed = 23;
  PartitionSolver partition_solver = PartitionSolver::kPriorityQueue;
  /// Sampling parameter for PartitionSolver::kStochastic.
  double stochastic_epsilon = 0.1;
  /// Out-of-core pipelining: at the start of every round, the first
  /// `prefetch_depth` partitions of the round's plan are handed to
  /// GroundSet::prefetch as asynchronous page-in hints on the worker pool,
  /// so a disk-backed ground set batches its block I/O (sorted, deduplicated)
  /// ahead of the solve loop instead of demand-missing one block at a time.
  /// No-op for resident ground sets; 0 disables. Never affects selections.
  std::size_t prefetch_depth = 2;
  /// Round checkpointing for long runs (the paper's jobs run 10-48 h on a
  /// shared cluster, Appendix D): after every round the surviving ids and
  /// round statistics are persisted to this file; a later call with an
  /// equivalent config resumes from the last completed round instead of
  /// restarting. Empty disables. The checkpoint is removed on completion.
  /// Writes are crash-consistent (write-temp, fsync, atomic rename): a kill
  /// at ANY instant leaves either the previous complete checkpoint or the
  /// new one, never a torn file.
  std::string checkpoint_file;
  /// Persist the checkpoint every N completed rounds (1 = every round, the
  /// default; 0 behaves as 1). Larger values trade recovery granularity for
  /// fewer fsyncs on fast rounds.
  std::size_t checkpoint_every = 1;
  /// Graceful-preemption hook: stop after this many completed rounds of
  /// THIS invocation (0 = run to the end). With a checkpoint_file, the next
  /// invocation picks up where this one stopped. The partial result has
  /// `preempted` set and `selected` left empty.
  std::size_t stop_after_round = 0;
  ThreadPool* pool = nullptr;
  /// Reusable per-worker arenas shared across invocations (e.g. the
  /// api::SolverContext pool); nullptr uses a run-local pool.
  SubproblemArenaPool* arena_pool = nullptr;
  /// Cooperative cancellation, checked once per round boundary. A run stopped
  /// this way returns with `preempted` set (and, with a checkpoint_file, can
  /// be resumed by a later invocation) — the same contract as
  /// stop_after_round, but triggered externally, e.g. from a progress
  /// callback or another thread.
  CancellationToken cancel;
  /// Per-round heartbeat (stage "round"); runs on the driver thread after
  /// each round completes and may call cancel.request_stop().
  ProgressFn progress;
  /// Wall-clock budget, checked at the same round boundaries as `cancel`.
  /// Expiry does NOT preempt: the run stops early and returns a VALID
  /// best-so-far selection (the current survivors subsampled to the budget)
  /// with `degraded` set — and keeps the checkpoint, so a later unhurried
  /// invocation can still resume and finish properly.
  Deadline deadline;
  /// Worst-case partitioning ablation (Section 6.4): if set, round 1 places
  /// exactly these points into one partition and splits the rest randomly.
  std::optional<std::vector<NodeId>> forced_first_partition;
  /// Composable selection constraints (knapsack / partition matroid /
  /// blocked), global-id space, validated; non-owning, must outlive the run.
  /// Partition solves enforce them locally every round, and the final step
  /// replaces the uniform rounding subsample with a constrained greedy solve
  /// over the surviving union so the RETURNED selection is globally feasible
  /// (and may therefore hold fewer than k points). The constraint fingerprint
  /// joins the checkpoint run identity only when set, so unconstrained runs
  /// keep their pre-constraint checkpoints. nullptr (default) is bit-identical
  /// to the unconstrained path.
  const ConstraintSet* constraints = nullptr;
};

struct RoundStats {
  std::size_t round = 0;
  std::size_t input_size = 0;       // |V_{round-1}|
  std::size_t target_size = 0;      // n_round from Δ
  std::size_t num_partitions = 0;   // m_round
  std::size_t output_size = 0;      // |V_round| after the union
  std::size_t peak_partition_bytes = 0;  // largest materialized subproblem
  /// Largest flat kernel incremental state behind one partition (0 for the
  /// closed-form pairwise path, which keeps no per-element kernel state).
  std::size_t peak_state_bytes = 0;
};

struct DistributedGreedyResult {
  /// Exactly k ids (ascending), including any points pre-selected by bounding.
  /// Empty if the run was preempted before the last round.
  std::vector<NodeId> selected;
  /// f(selected) evaluated on the full ground set (0 when preempted).
  double objective = 0.0;
  /// Stats of the rounds THIS invocation executed (resumed rounds excluded).
  std::vector<RoundStats> rounds;
  /// Rounds restored from the checkpoint instead of executed.
  std::size_t resumed_rounds = 0;
  /// True when stop_after_round or the cancellation token preempted the run
  /// before completion.
  bool preempted = false;
  /// True when the deadline expired mid-run: `selected` holds the best-so-
  /// far selection (still exactly min(k, survivors + pre-selected) ids,
  /// still objective-evaluated) instead of the full-quality result.
  bool degraded = false;
  /// Human-readable cause when degraded (e.g. which round the deadline hit).
  std::string degraded_reason;
};

/// Runs Algorithm 6 to select k points. If `initial` is given (the state left
/// by bounding), its selected points are kept (and condition the per-
/// partition utilities), its discarded points are never reconsidered, and the
/// rounds only fill the remaining budget.
DistributedGreedyResult distributed_greedy(const GroundSet& ground_set, std::size_t k,
                                           const DistributedGreedyConfig& config,
                                           const SelectionState* initial = nullptr);

}  // namespace subsel::core
