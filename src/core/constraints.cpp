#include "core/constraints.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/objective_kernel.h"  // fingerprint_mix

namespace subsel::core {

void ConstraintSet::validate(std::size_t num_points) {
  if (cost_budget < 0.0 || !std::isfinite(cost_budget)) {
    throw std::invalid_argument("constraint: cost_budget must be finite and >= 0");
  }
  if (has_knapsack()) {
    if (costs.size() != num_points) {
      throw std::invalid_argument(
          "constraint: costs has " + std::to_string(costs.size()) +
          " entries but the ground set has " + std::to_string(num_points));
    }
    for (const double c : costs) {
      if (c < 0.0 || !std::isfinite(c)) {
        throw std::invalid_argument("constraint: element costs must be finite and >= 0");
      }
    }
  } else if (!costs.empty()) {
    throw std::invalid_argument("constraint: costs given without a positive cost_budget");
  }
  if (has_matroid()) {
    if (groups.size() != num_points) {
      throw std::invalid_argument(
          "constraint: groups has " + std::to_string(groups.size()) +
          " entries but the ground set has " + std::to_string(num_points));
    }
    for (const auto g : groups) {
      if (g >= group_caps.size()) {
        throw std::invalid_argument("constraint: group id " + std::to_string(g) +
                                    " has no cap (group_caps has " +
                                    std::to_string(group_caps.size()) + " entries)");
      }
    }
  } else if (!group_caps.empty()) {
    throw std::invalid_argument("constraint: group_caps given without per-element groups");
  }
  std::sort(blocked.begin(), blocked.end());
  blocked.erase(std::unique(blocked.begin(), blocked.end()), blocked.end());
  for (const NodeId v : blocked) {
    if (v < 0 || static_cast<std::size_t>(v) >= num_points) {
      throw std::invalid_argument("constraint: blocked id " + std::to_string(v) +
                                  " out of range");
    }
  }
}

double ConstraintSet::cost_of(std::span<const NodeId> subset) const noexcept {
  if (!has_knapsack()) return 0.0;
  double total = 0.0;
  for (const NodeId v : subset) total += costs[static_cast<std::size_t>(v)];
  return total;
}

bool ConstraintSet::feasible_subset(std::span<const NodeId> subset) const {
  if (has_blocked()) {
    for (const NodeId v : subset) {
      if (std::binary_search(blocked.begin(), blocked.end(), v)) return false;
    }
  }
  if (has_knapsack()) {
    // Accumulate in ascending-id order so the verdict is independent of the
    // subset's element order; fits_cost adds the shared slack.
    std::vector<NodeId> sorted(subset.begin(), subset.end());
    std::sort(sorted.begin(), sorted.end());
    double spent = 0.0;
    for (const NodeId v : sorted) {
      if (!fits_cost(spent, costs[static_cast<std::size_t>(v)])) return false;
      spent += costs[static_cast<std::size_t>(v)];
    }
  }
  if (has_matroid()) {
    std::vector<std::size_t> counts(group_caps.size(), 0);
    for (const NodeId v : subset) {
      const auto g = groups[static_cast<std::size_t>(v)];
      if (++counts[g] > group_caps[g]) return false;
    }
  }
  return true;
}

std::uint64_t ConstraintSet::fingerprint() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fingerprint_mix(h, cost_budget);
  h = fingerprint_mix(h, static_cast<std::uint64_t>(costs.size()));
  for (const double c : costs) h = fingerprint_mix(h, c);
  h = fingerprint_mix(h, static_cast<std::uint64_t>(groups.size()));
  for (const auto g : groups) h = fingerprint_mix(h, static_cast<std::uint64_t>(g));
  h = fingerprint_mix(h, static_cast<std::uint64_t>(group_caps.size()));
  for (const auto cap : group_caps) h = fingerprint_mix(h, static_cast<std::uint64_t>(cap));
  h = fingerprint_mix(h, static_cast<std::uint64_t>(blocked.size()));
  for (const NodeId v : blocked) h = fingerprint_mix(h, static_cast<std::uint64_t>(v));
  return h;
}

ConstraintTracker::ConstraintTracker(const ConstraintSet& constraints)
    : constraints_(&constraints) {
  if (constraints.has_matroid()) {
    group_counts_.assign(constraints.group_caps.size(), 0);
  }
  if (constraints.has_blocked()) {
    const auto max_id = static_cast<std::size_t>(
        *std::max_element(constraints.blocked.begin(), constraints.blocked.end()));
    blocked_.assign(max_id + 1, 0);
    for (const NodeId v : constraints.blocked) {
      blocked_[static_cast<std::size_t>(v)] = 1;
    }
  }
}

void ConstraintTracker::seed(std::span<const NodeId> selected) {
  for (const NodeId v : selected) accept(v);
}

}  // namespace subsel::core
