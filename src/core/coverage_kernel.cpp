#include "core/coverage_kernel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/kernel_simd.h"

namespace subsel::core {
namespace {

ThreadPool& pool_or_global(ThreadPool* pool) {
  return pool != nullptr ? *pool : global_thread_pool();
}

// Both the scorer and the incremental state work in PREMULTIPLIED RESIDUAL
// space: per member u they track resid[u], initialized to fl(weight[u]·τ) and
// decremented by fl(weight[u]·s) for every selected contribution s, and a
// candidate's gain is
//
//   min(pself_v, max(resid[v], 0)) + Σ_e min(fl(w_u·s_e), max(resid[u], 0))
//
// with the edge sum in the lane-split order of core/kernel_simd.h. For w ≥ 0
// this is the same algebra as w·(min(τ, m+s) − min(τ, m)) — the residual
// form just replaces a multiply, two minima and a subtraction per edge with
// one min and one max over precomputed values, which is also exactly the
// shape vmaxpd/vminpd want. Saturated members need no skip branch: their
// residual is ≤ 0 and the max clamps the term to exactly +0.0. The scorer
// below is the reference: the incremental state and every vectorized backend
// must reproduce its gains bit-for-bit.

/// Maintains each member's premultiplied residual capacity; gain(v) sums the
/// saturated increments v would contribute to itself and its local
/// neighbors.
class SaturatedCoverageScorer final : public SubproblemScorer {
 public:
  SaturatedCoverageScorer(const graph::GroundSet& ground_set,
                          SaturatedCoverageParams params)
      : ground_set_(&ground_set), params_(params) {}

  void reset(Subproblem& sub, const SelectionState* state) override {
    sub_ = &sub;
    const std::size_t n = sub.size();
    resid_.resize(n);
    weight_.resize(n);
    std::vector<graph::Edge> scratch;
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId v = sub.global_ids[i];
      const double w = params_.utility_weighted ? ground_set_->utility(v) : 1.0;
      weight_[i] = w;
      double resid = w * params_.saturation;
      if (state != nullptr) {
        for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
          if (state->is_selected(e.neighbor)) {
            resid -= w * static_cast<double>(e.weight);
          }
        }
      }
      resid_[i] = resid;
    }
    sub.priorities.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) sub.priorities[i] = gain(i);
  }

  double gain(std::uint32_t v) const override {
    const double self_term = std::min(weight_[v] * params_.self_similarity,
                                      std::max(resid_[v], 0.0));
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    double lanes[ksimd::kLanes] = {0.0, 0.0, 0.0, 0.0};
    std::size_t lane = 0;
    for (std::size_t e = begin; e < end; ++e, ++lane) {
      const auto& edge = sub_->edges[e];
      lanes[lane & 3] +=
          std::min(weight_[edge.neighbor] * static_cast<double>(edge.weight),
                   std::max(resid_[edge.neighbor], 0.0));
    }
    return self_term + ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]));
  }

  void select(std::uint32_t v) override {
    resid_[v] -= weight_[v] * params_.self_similarity;
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    for (std::size_t e = begin; e < end; ++e) {
      const auto& edge = sub_->edges[e];
      resid_[edge.neighbor] -=
          weight_[edge.neighbor] * static_cast<double>(edge.weight);
    }
  }

 private:
  const graph::GroundSet* ground_set_;
  SaturatedCoverageParams params_;
  const Subproblem* sub_ = nullptr;
  std::vector<double> resid_;  // premultiplied residual capacity per member
  std::vector<double> weight_;
};

/// Flat-state twin of SaturatedCoverageScorer in structure-of-arrays form:
/// premultiplied residual capacity and self terms per member, plus — per edge
/// of the subproblem CSR — a neighbor column and a premultiplied edge-weight
/// column (pw[e] = fl(weight[u]·s_e), built once per reset), all in reusable
/// arena buffers. gain() is one call into the kernel_simd residual-gain
/// primitive (scalar/AVX2/NEON, bit-identical to the scorer's lane-split
/// loop); select() decrements the residuals of the picked point and its local
/// neighbors in O(deg). The backend is captured at construction from
/// simd::active_backend().
class SaturatedCoverageIncrementalState final : public KernelIncrementalState {
 public:
  SaturatedCoverageIncrementalState(const graph::GroundSet& ground_set,
                                    SaturatedCoverageParams params,
                                    SubproblemArena& arena)
      : ground_set_(&ground_set),
        params_(params),
        arena_(&arena),
        ops_(&ksimd::active_ops()),
        resid_(arena.kernel_state_buffer(0)),
        pself_(arena.kernel_state_buffer(1)),
        weight_(arena.kernel_state_buffer(2)),
        pw_(arena.kernel_state_buffer(3)),
        nbr_(arena.kernel_index_buffer(0)) {}

  void reset(Subproblem& sub, const SelectionState* state,
             bool init_priorities) override {
    // Weights, premultiplied self terms, and the SoA columns depend only on
    // the topology and ground-set utilities; repeated resets against the same
    // materialization skip the O(edges) rebuild (see the facility-location
    // state for the caching contract).
    const bool layout_cached =
        sub_ == &sub && cached_epoch_ == sub.topology_epoch;
    sub_ = &sub;
    cached_epoch_ = sub.topology_epoch;
    const std::size_t n = sub.size();
    resid_.resize(n);
    if (!layout_cached) {
      pself_.resize(n);
      weight_.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        const double w = params_.utility_weighted
                             ? ground_set_->utility(sub.global_ids[i])
                             : 1.0;
        weight_[i] = w;
        pself_[i] = w * params_.self_similarity;
      }
    }
    std::vector<graph::Edge>& scratch = arena_->edge_scratch();
    for (std::size_t i = 0; i < n; ++i) {
      const double w = weight_[i];
      double resid = w * params_.saturation;
      if (state != nullptr) {
        const NodeId v = sub.global_ids[i];
        for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
          if (state->is_selected(e.neighbor)) {
            resid -= w * static_cast<double>(e.weight);
          }
        }
      }
      resid_[i] = resid;
    }
    if (!layout_cached) {
      // SoA edge pass (see FacilityLocationIncrementalState): neighbor column
      // + premultiplied-weight column for the vectorized gain loops.
      const std::size_t num_edges = sub.edges.size();
      nbr_.resize(num_edges);
      pw_.resize(num_edges);
      const Subproblem::LocalEdge* edges = sub.edges.data();
      for (std::size_t e = 0; e < num_edges; ++e) {
        const std::uint32_t u = edges[e].neighbor;
        nbr_[e] = u;
        pw_[e] = weight_[u] * static_cast<double>(edges[e].weight);
      }
    }
    if (init_priorities) {
      sub.priorities.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) sub.priorities[i] = gain_of(i);
    }
  }

  double gain(std::uint32_t v) const override { return gain_of(v); }

  void gains_batch(std::span<const std::uint32_t> candidates,
                   std::span<double> out) const override {
    constexpr std::size_t kLookahead = 2;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (i + kLookahead < candidates.size()) {
        prefetch_slice(candidates[i + kLookahead]);
      }
      out[i] = gain_of(candidates[i]);
    }
  }

  void select(std::uint32_t v) override {
    resid_[v] -= pself_[v];
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    for (std::size_t e = begin; e < end; ++e) resid_[nbr_[e]] -= pw_[e];
  }

  std::size_t state_bytes() const noexcept override {
    return (resid_.size() + pself_.size() + weight_.size() + pw_.size()) *
               sizeof(double) +
           nbr_.size() * sizeof(std::uint32_t);
  }

  const char* backend() const noexcept override { return ops_->name; }

 private:
  double gain_of(std::uint32_t v) const {
    const double self_term = std::min(pself_[v], std::max(resid_[v], 0.0));
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    return ops_->resid_gain(nbr_.data() + begin, pw_.data() + begin, end - begin,
                            resid_.data(), self_term);
  }

  void prefetch_slice(std::uint32_t v) const {
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    ksimd::prefetch_edge_slice(nbr_.data() + begin, pw_.data() + begin,
                               end - begin);
  }

  const graph::GroundSet* ground_set_;
  SaturatedCoverageParams params_;
  SubproblemArena* arena_;
  const ksimd::KernelSimdOps* ops_;
  const Subproblem* sub_ = nullptr;
  std::uint64_t cached_epoch_ = 0;  // topology_epoch the layouts were built at
  std::vector<double>& resid_;   // premultiplied residual capacity per member
  std::vector<double>& pself_;   // fl(weight · self_similarity) per member
  std::vector<double>& weight_;
  std::vector<double>& pw_;          // premultiplied edge weights (SoA)
  std::vector<std::uint32_t>& nbr_;  // edge neighbor column (SoA)
};

}  // namespace

void SaturatedCoverageParams::validate() const {
  if (!std::isfinite(saturation) || saturation <= 0.0) {
    throw std::invalid_argument(
        "SaturatedCoverageParams: saturation must be finite and > 0");
  }
  if (!std::isfinite(self_similarity) || self_similarity < 0.0) {
    throw std::invalid_argument(
        "SaturatedCoverageParams: self_similarity must be finite and >= 0");
  }
}

SaturatedCoverageKernel::SaturatedCoverageKernel(const graph::GroundSet& ground_set,
                                                 SaturatedCoverageParams params)
    : ground_set_(&ground_set), params_(params) {
  params_.validate();
}

double SaturatedCoverageKernel::mass_of(const std::vector<std::uint8_t>& membership,
                                        NodeId v,
                                        std::vector<graph::Edge>& scratch) const {
  double mass =
      membership[static_cast<std::size_t>(v)] != 0 ? params_.self_similarity : 0.0;
  for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
    if (membership[static_cast<std::size_t>(e.neighbor)] != 0) mass += e.weight;
  }
  return mass;
}

double SaturatedCoverageKernel::evaluate(const std::vector<std::uint8_t>& membership,
                                         ThreadPool* pool) const {
  if (membership.size() != ground_set_->num_points()) {
    throw std::invalid_argument(
        "SaturatedCoverageKernel::evaluate: bitmap size mismatch");
  }
  const std::size_t n = membership.size();
  ThreadPool& workers = pool_or_global(pool);
  const std::size_t num_chunks = std::max<std::size_t>(1, workers.size() * 4);
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<double> partial(num_chunks, 0.0);
  workers.parallel_for(num_chunks, [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    double sum = 0.0;
    std::vector<graph::Edge> scratch;
    for (std::size_t i = begin; i < end; ++i) {
      const auto v = static_cast<NodeId>(i);
      sum += point_weight(v) *
             std::min(params_.saturation, mass_of(membership, v, scratch));
    }
    partial[c] = sum;
  });
  double total = 0.0;
  for (double value : partial) total += value;
  return total;
}

double SaturatedCoverageKernel::marginal_gain(
    const std::vector<std::uint8_t>& membership, NodeId v) const {
  if (membership[static_cast<std::size_t>(v)] != 0) {
    throw std::invalid_argument(
        "SaturatedCoverageKernel::marginal_gain: v already in S");
  }
  const double tau = params_.saturation;
  std::vector<graph::Edge> scratch, inner_scratch;
  const double own_mass = mass_of(membership, v, scratch);
  double gain = point_weight(v) * (std::min(tau, own_mass + params_.self_similarity) -
                                   std::min(tau, own_mass));
  for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
    const double mass = mass_of(membership, e.neighbor, inner_scratch);
    gain += point_weight(e.neighbor) *
            (std::min(tau, mass + static_cast<double>(e.weight)) -
             std::min(tau, mass));
  }
  return gain;
}

double SaturatedCoverageKernel::singleton_value(NodeId v) const {
  const double tau = params_.saturation;
  double total = point_weight(v) * std::min(tau, params_.self_similarity);
  std::vector<graph::Edge> scratch;
  for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
    total += point_weight(e.neighbor) *
             std::min(tau, static_cast<double>(e.weight));
  }
  return total;
}

std::unique_ptr<SubproblemScorer> SaturatedCoverageKernel::make_scorer() const {
  return std::make_unique<SaturatedCoverageScorer>(*ground_set_, params_);
}

std::unique_ptr<KernelIncrementalState>
SaturatedCoverageKernel::make_incremental_state(SubproblemArena& arena) const {
  return std::make_unique<SaturatedCoverageIncrementalState>(*ground_set_, params_,
                                                             arena);
}

}  // namespace subsel::core
