#include "core/coverage_kernel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace subsel::core {
namespace {

ThreadPool& pool_or_global(ThreadPool* pool) {
  return pool != nullptr ? *pool : global_thread_pool();
}

/// Maintains each member's accumulated coverage mass C_v; gain(v) sums the
/// saturated increments v would contribute to itself and its local
/// neighbors.
class SaturatedCoverageScorer final : public SubproblemScorer {
 public:
  SaturatedCoverageScorer(const graph::GroundSet& ground_set,
                          SaturatedCoverageParams params)
      : ground_set_(&ground_set), params_(params) {}

  void reset(Subproblem& sub, const SelectionState* state) override {
    sub_ = &sub;
    const std::size_t n = sub.size();
    mass_.assign(n, 0.0);
    weight_.resize(n);
    std::vector<graph::Edge> scratch;
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId v = sub.global_ids[i];
      weight_[i] = params_.utility_weighted ? ground_set_->utility(v) : 1.0;
      if (state != nullptr) {
        double mass = 0.0;
        for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
          if (state->is_selected(e.neighbor)) mass += e.weight;
        }
        mass_[i] = mass;
      }
    }
    sub.priorities.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) sub.priorities[i] = gain(i);
  }

  double gain(std::uint32_t v) const override {
    const double tau = params_.saturation;
    double total = weight_[v] * (std::min(tau, mass_[v] + params_.self_similarity) -
                                 std::min(tau, mass_[v]));
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    for (std::size_t e = begin; e < end; ++e) {
      const auto& edge = sub_->edges[e];
      const double mass = mass_[edge.neighbor];
      total += weight_[edge.neighbor] *
               (std::min(tau, mass + static_cast<double>(edge.weight)) -
                std::min(tau, mass));
    }
    return total;
  }

  void select(std::uint32_t v) override {
    mass_[v] += params_.self_similarity;
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    for (std::size_t e = begin; e < end; ++e) {
      const auto& edge = sub_->edges[e];
      mass_[edge.neighbor] += static_cast<double>(edge.weight);
    }
  }

 private:
  const graph::GroundSet* ground_set_;
  SaturatedCoverageParams params_;
  const Subproblem* sub_ = nullptr;
  std::vector<double> mass_;  // per-member C_v
  std::vector<double> weight_;
};

/// Flat-state twin of SaturatedCoverageScorer: accumulated mass (the
/// residual-capacity view: residual = tau - mass) plus weight per member, in
/// reusable arena buffers. gain() keeps the scorer's exact expression
/// min(tau, m+w) - min(tau, m) — mirrored operation-for-operation so the two
/// paths select identically — but skips saturated neighbors outright: with
/// m >= tau both minima are tau and the term is exactly +0.0, so the branch
/// changes nothing except the work done.
class SaturatedCoverageIncrementalState final : public KernelIncrementalState {
 public:
  SaturatedCoverageIncrementalState(const graph::GroundSet& ground_set,
                                    SaturatedCoverageParams params,
                                    SubproblemArena& arena)
      : ground_set_(&ground_set),
        params_(params),
        arena_(&arena),
        mass_(arena.kernel_state_buffer(0)),
        weight_(arena.kernel_state_buffer(1)) {}

  void reset(Subproblem& sub, const SelectionState* state,
             bool init_priorities) override {
    sub_ = &sub;
    const std::size_t n = sub.size();
    mass_.assign(n, 0.0);
    weight_.resize(n);
    std::vector<graph::Edge>& scratch = arena_->edge_scratch();
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId v = sub.global_ids[i];
      weight_[i] = params_.utility_weighted ? ground_set_->utility(v) : 1.0;
      if (state != nullptr) {
        double mass = 0.0;
        for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
          if (state->is_selected(e.neighbor)) mass += e.weight;
        }
        mass_[i] = mass;
      }
    }
    if (init_priorities) {
      sub.priorities.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) sub.priorities[i] = gain_of(i);
    }
  }

  double gain(std::uint32_t v) const override { return gain_of(v); }

  void gains_batch(std::span<const std::uint32_t> candidates,
                   std::span<double> out) const override {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      out[i] = gain_of(candidates[i]);
    }
  }

  void select(std::uint32_t v) override {
    mass_[v] += params_.self_similarity;
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    const Subproblem::LocalEdge* edges = sub_->edges.data();
    for (std::size_t e = begin; e < end; ++e) {
      mass_[edges[e].neighbor] += static_cast<double>(edges[e].weight);
    }
  }

  std::size_t state_bytes() const noexcept override {
    return (mass_.size() + weight_.size()) * sizeof(double);
  }

 private:
  double gain_of(std::uint32_t v) const {
    const double tau = params_.saturation;
    const double* mass = mass_.data();
    const double* weight = weight_.data();
    double total = weight[v] * (std::min(tau, mass[v] + params_.self_similarity) -
                                std::min(tau, mass[v]));
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    const Subproblem::LocalEdge* edges = sub_->edges.data();
    for (std::size_t e = begin; e < end; ++e) {
      const std::uint32_t u = edges[e].neighbor;
      const double m = mass[u];
      if (m >= tau) continue;  // no residual capacity: the term is exactly 0
      total += weight[u] * (std::min(tau, m + static_cast<double>(edges[e].weight)) -
                            std::min(tau, m));
    }
    return total;
  }

  const graph::GroundSet* ground_set_;
  SaturatedCoverageParams params_;
  SubproblemArena* arena_;
  const Subproblem* sub_ = nullptr;
  std::vector<double>& mass_;  // per-member C_v; residual capacity = tau - C_v
  std::vector<double>& weight_;
};

}  // namespace

void SaturatedCoverageParams::validate() const {
  if (!std::isfinite(saturation) || saturation <= 0.0) {
    throw std::invalid_argument(
        "SaturatedCoverageParams: saturation must be finite and > 0");
  }
  if (!std::isfinite(self_similarity) || self_similarity < 0.0) {
    throw std::invalid_argument(
        "SaturatedCoverageParams: self_similarity must be finite and >= 0");
  }
}

SaturatedCoverageKernel::SaturatedCoverageKernel(const graph::GroundSet& ground_set,
                                                 SaturatedCoverageParams params)
    : ground_set_(&ground_set), params_(params) {
  params_.validate();
}

double SaturatedCoverageKernel::mass_of(const std::vector<std::uint8_t>& membership,
                                        NodeId v,
                                        std::vector<graph::Edge>& scratch) const {
  double mass =
      membership[static_cast<std::size_t>(v)] != 0 ? params_.self_similarity : 0.0;
  for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
    if (membership[static_cast<std::size_t>(e.neighbor)] != 0) mass += e.weight;
  }
  return mass;
}

double SaturatedCoverageKernel::evaluate(const std::vector<std::uint8_t>& membership,
                                         ThreadPool* pool) const {
  if (membership.size() != ground_set_->num_points()) {
    throw std::invalid_argument(
        "SaturatedCoverageKernel::evaluate: bitmap size mismatch");
  }
  const std::size_t n = membership.size();
  ThreadPool& workers = pool_or_global(pool);
  const std::size_t num_chunks = std::max<std::size_t>(1, workers.size() * 4);
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<double> partial(num_chunks, 0.0);
  workers.parallel_for(num_chunks, [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    double sum = 0.0;
    std::vector<graph::Edge> scratch;
    for (std::size_t i = begin; i < end; ++i) {
      const auto v = static_cast<NodeId>(i);
      sum += point_weight(v) *
             std::min(params_.saturation, mass_of(membership, v, scratch));
    }
    partial[c] = sum;
  });
  double total = 0.0;
  for (double value : partial) total += value;
  return total;
}

double SaturatedCoverageKernel::marginal_gain(
    const std::vector<std::uint8_t>& membership, NodeId v) const {
  if (membership[static_cast<std::size_t>(v)] != 0) {
    throw std::invalid_argument(
        "SaturatedCoverageKernel::marginal_gain: v already in S");
  }
  const double tau = params_.saturation;
  std::vector<graph::Edge> scratch, inner_scratch;
  const double own_mass = mass_of(membership, v, scratch);
  double gain = point_weight(v) * (std::min(tau, own_mass + params_.self_similarity) -
                                   std::min(tau, own_mass));
  for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
    const double mass = mass_of(membership, e.neighbor, inner_scratch);
    gain += point_weight(e.neighbor) *
            (std::min(tau, mass + static_cast<double>(e.weight)) -
             std::min(tau, mass));
  }
  return gain;
}

double SaturatedCoverageKernel::singleton_value(NodeId v) const {
  const double tau = params_.saturation;
  double total = point_weight(v) * std::min(tau, params_.self_similarity);
  std::vector<graph::Edge> scratch;
  for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
    total += point_weight(e.neighbor) *
             std::min(tau, static_cast<double>(e.weight));
  }
  return total;
}

std::unique_ptr<SubproblemScorer> SaturatedCoverageKernel::make_scorer() const {
  return std::make_unique<SaturatedCoverageScorer>(*ground_set_, params_);
}

std::unique_ptr<KernelIncrementalState>
SaturatedCoverageKernel::make_incremental_state(SubproblemArena& arena) const {
  return std::make_unique<SaturatedCoverageIncrementalState>(*ground_set_, params_,
                                                             arena);
}

}  // namespace subsel::core
