#include "core/distributed_greedy.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <stdexcept>

#include "common/atomic_file.h"
#include "common/atomic_util.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/serialize.h"

namespace subsel::core {
namespace {

constexpr std::uint64_t kCheckpointMagic = 0x53554253454C4350ULL;  // "SUBSELCP"
/// Layout version after the magic. v2 added this field (the unversioned
/// original layout is retroactively v1; its files are rejected by the
/// version check and fall back to a clean restart, which is always safe —
/// checkpoints are ephemeral and removed on completion).
constexpr std::uint32_t kCheckpointVersion = 2;

ThreadPool& pool_or_global(ThreadPool* pool) {
  return pool != nullptr ? *pool : global_thread_pool();
}

/// Splits `ids` (already shuffled) into `parts` nearly-equal contiguous
/// slices — a balanced uniform random partition.
std::vector<std::vector<NodeId>> split_balanced(const std::vector<NodeId>& ids,
                                                std::size_t parts) {
  std::vector<std::vector<NodeId>> partitions(parts);
  const std::size_t base = ids.size() / parts;
  const std::size_t extra = ids.size() % parts;
  std::size_t cursor = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t count = base + (p < extra ? 1 : 0);
    partitions[p].assign(ids.begin() + static_cast<std::ptrdiff_t>(cursor),
                         ids.begin() + static_cast<std::ptrdiff_t>(cursor + count));
    cursor += count;
  }
  return partitions;
}

/// Run-identity key a checkpoint must match to be resumable: everything
/// that shapes the round trajectory except the Δ schedule (std::function is
/// not hashable; keeping it consistent is the caller's contract, as with
/// the ground set itself).
std::uint64_t run_fingerprint(std::size_t n, std::size_t v0, std::size_t k_open,
                              const DistributedGreedyConfig& config,
                              const ObjectiveKernel& kernel) {
  std::uint64_t h = 0x5ca1ab1e;
  auto mix = [&h](std::uint64_t value) { h = hash_combine(h, value); };
  mix(n);
  mix(v0);
  mix(k_open);
  mix(config.num_machines);
  mix(config.num_rounds);
  mix(config.adaptive_partitioning ? 1 : 0);
  mix(config.seed);
  mix(static_cast<std::uint64_t>(config.partition_solver));
  mix(static_cast<std::uint64_t>(config.stochastic_epsilon * 1e9));
  // The objective's full identity — name AND parameters: a checkpoint
  // written under one objective configuration must never resume a run under
  // another (rounds selected under different objectives would be silently
  // blended). FNV-1a, not std::hash, because checkpoint files outlive the
  // process. The null-kernel legacy path resolves to a PairwiseKernel first,
  // so both spellings of the same pairwise run stay interchangeable.
  std::uint64_t name_hash = 0xcbf29ce484222325ULL;
  for (const char c : kernel.name()) {
    name_hash = (name_hash ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
  }
  mix(name_hash);
  mix(kernel.config_fingerprint());
  // Constrained runs select under different budgets, so their checkpoints
  // must never cross-resume with unconstrained ones (or with other
  // constraint configurations). Unconstrained runs mix NOTHING here — their
  // fingerprints, and hence existing checkpoints, are unchanged.
  if (config.constraints != nullptr && !config.constraints->empty()) {
    mix(config.constraints->fingerprint());
  }
  return h;
}

void save_checkpoint(const std::string& path, std::uint64_t fingerprint,
                     std::size_t completed_round,
                     const std::vector<NodeId>& survivors) {
  // Serialize fully in memory, then publish crash-consistently: write-temp,
  // fsync, atomic rename, fsync the directory. A kill at any instant leaves
  // either the previous complete checkpoint or this one — never a torn file.
  // A failed write (including the injected "checkpoint.write" crash) keeps
  // the run going on the previous checkpoint; persistence is best-effort,
  // correctness of what IS on disk is not.
  BufferWriter writer;
  writer.write_pod(kCheckpointMagic);
  writer.write_pod(kCheckpointVersion);
  writer.write_pod(fingerprint);
  writer.write_pod<std::uint64_t>(completed_round);
  writer.write_vector(survivors);
  std::string error;
  if (!write_file_durable(path, writer.bytes().data(), writer.bytes().size(),
                          &error)) {
    LOG_WARN("checkpoint write failed (%s); continuing without", error.c_str());
  }
}

/// Returns the completed-round count and restores `survivors`, or 0 when no
/// usable checkpoint exists.
std::size_t load_checkpoint(const std::string& path, std::uint64_t fingerprint,
                            std::vector<NodeId>& survivors) {
  if (!std::filesystem::exists(path)) return 0;
  try {
    BinaryReader reader(path);
    if (reader.read_pod<std::uint64_t>() != kCheckpointMagic) return 0;
    if (reader.read_pod<std::uint32_t>() != kCheckpointVersion) {
      LOG_WARN("checkpoint %s has an unsupported layout version; ignoring",
               path.c_str());
      return 0;
    }
    if (reader.read_pod<std::uint64_t>() != fingerprint) {
      LOG_WARN("checkpoint %s belongs to a different run configuration; ignoring",
               path.c_str());
      return 0;
    }
    const auto completed = reader.read_pod<std::uint64_t>();
    std::vector<NodeId> restored = reader.read_vector<NodeId>();
    survivors = std::move(restored);
    return static_cast<std::size_t>(completed);
  } catch (const std::exception& e) {
    LOG_WARN("checkpoint read failed (%s); restarting from round 1", e.what());
    return 0;
  }
}

}  // namespace

DeltaSchedule linear_delta(double gamma) {
  if (gamma <= 0.0) throw std::invalid_argument("linear_delta: gamma must be > 0");
  return [gamma](std::size_t v0, std::size_t rounds, std::size_t round,
                 std::size_t k) -> std::size_t {
    if (v0 <= k) return k;
    const double remaining = static_cast<double>(rounds - round);
    const double span = static_cast<double>(v0 - k) / static_cast<double>(rounds);
    return static_cast<std::size_t>(std::ceil(gamma * remaining * span)) + k;
  };
}

DistributedGreedyResult distributed_greedy(const GroundSet& ground_set, std::size_t k,
                                           const DistributedGreedyConfig& config,
                                           const SelectionState* initial) {
  if (config.num_machines == 0 || config.num_rounds == 0) {
    throw std::invalid_argument("distributed_greedy: machines and rounds must be >= 1");
  }
  const std::size_t n = ground_set.num_points();
  k = std::min(k, n);

  // Resolve the objective: an explicit kernel wins; otherwise the legacy
  // pairwise params (whose kernel adapter runs the identical fast path).
  std::optional<PairwiseKernel> local_kernel;
  const ObjectiveKernel& kernel =
      resolve_kernel(config.kernel, ground_set, config.objective, local_kernel);

  // Open budget and surviving ground set, after any bounding pre-pass.
  std::vector<NodeId> pre_selected;
  std::vector<NodeId> survivors;
  if (initial != nullptr) {
    if (initial->size() != n) {
      throw std::invalid_argument("distributed_greedy: state size mismatch");
    }
    pre_selected = initial->selected_ids();
    if (pre_selected.size() > k) {
      throw std::invalid_argument("distributed_greedy: bounding selected more than k");
    }
    survivors = initial->unassigned_ids();
  } else {
    survivors.resize(n);
    for (std::size_t i = 0; i < n; ++i) survivors[i] = static_cast<NodeId>(i);
  }
  const std::size_t k_open = k - pre_selected.size();

  DistributedGreedyResult result;
  const std::size_t v0 = survivors.size();
  const std::size_t partition_cap =
      (v0 + config.num_machines - 1) / std::max<std::size_t>(1, config.num_machines);

  const std::uint64_t fingerprint = run_fingerprint(n, v0, k_open, config, kernel);
  std::size_t first_round = 1;
  if (!config.checkpoint_file.empty()) {
    const std::size_t completed =
        load_checkpoint(config.checkpoint_file, fingerprint, survivors);
    if (completed > 0) {
      first_round = completed + 1;
      result.resumed_rounds = completed;
      LOG_INFO("distributed_greedy: resumed after round %zu (%zu survivors)",
               completed, survivors.size());
    }
  }

  ThreadPool& workers = pool_or_global(config.pool);

  // Per-worker reusable arenas: subproblem CSR, scatter map, and heap storage
  // persist across every partition of every round instead of being
  // reallocated per partition — the round loop's only steady-state
  // allocations are the partition id lists themselves. A caller-provided
  // pool (api::SolverContext) extends the reuse across invocations.
  SubproblemArenaPool local_arena_pool;
  SubproblemArenaPool& arena_pool =
      config.arena_pool != nullptr ? *config.arena_pool : local_arena_pool;

  if (k_open > 0 && v0 > 0) {
    std::size_t executed = 0;
    for (std::size_t round = first_round; round <= config.num_rounds; ++round) {
      if (config.cancel.stop_requested()) {
        result.preempted = true;
        LOG_INFO("distributed_greedy: cancelled before round %zu", round);
        return result;
      }
      if (config.deadline.expired()) {
        // Graceful degradation, not preemption: fall through to the final
        // subsample so the caller still gets a VALID size-k selection from
        // the current survivors. The checkpoint is kept — an unhurried later
        // invocation can resume and finish the remaining rounds properly.
        result.degraded = true;
        result.degraded_reason = "deadline expired before round " +
                                 std::to_string(round) + " of " +
                                 std::to_string(config.num_rounds);
        LOG_INFO("distributed_greedy: %s; returning best-so-far selection",
                 result.degraded_reason.c_str());
        break;
      }
      RoundStats stats;
      stats.round = round;
      stats.input_size = survivors.size();

      std::size_t n_round = config.delta(v0, config.num_rounds, round, k_open);
      n_round = std::clamp<std::size_t>(n_round, k_open, survivors.size());
      stats.target_size = n_round;

      std::size_t m_round = config.num_machines;
      if (config.adaptive_partitioning) {
        m_round = (n_round + partition_cap - 1) / std::max<std::size_t>(1, partition_cap);
        m_round = std::clamp<std::size_t>(m_round, 1, config.num_machines);
      }
      m_round = std::min(m_round, survivors.size());
      stats.num_partitions = m_round;

      // Per-round RNG stream: a resumed run reproduces the exact shuffles an
      // uninterrupted run would have drawn from this round on.
      Rng rng(hash_combine(config.seed, round));

      // Random balanced partition, with the optional worst-case override in
      // round 1 (Section 6.4): one partition is exactly the forced set.
      std::vector<std::vector<NodeId>> partitions;
      if (round == 1 && config.forced_first_partition.has_value() &&
          m_round >= 2) {
        const auto& forced = *config.forced_first_partition;
        std::vector<std::uint8_t> is_forced(n, 0);
        for (NodeId v : forced) is_forced[static_cast<std::size_t>(v)] = 1;
        std::vector<NodeId> rest;
        rest.reserve(survivors.size());
        for (NodeId v : survivors) {
          if (is_forced[static_cast<std::size_t>(v)] == 0) rest.push_back(v);
        }
        rng.shuffle(std::span<NodeId>(rest));
        partitions = split_balanced(rest, m_round - 1);
        partitions.insert(partitions.begin(), forced);
      } else {
        rng.shuffle(std::span<NodeId>(survivors));
        partitions = split_balanced(survivors, m_round);
      }

      const std::size_t per_partition_target =
          (n_round + partitions.size() - 1) / partitions.size();

      // Page the front of the round's partition plan in ahead of the solves:
      // the prefetch tasks enter the pool queue before the solve tasks, so an
      // out-of-core ground set performs its block I/O batched and in file
      // order. One combined call, so the backend deduplicates and
      // budget-caps across the whole head instead of letting partition p+1's
      // prefetch evict partition p's freshly paged blocks. Purely a cache
      // hint — selections are unaffected.
      const std::size_t prefetch_parts =
          std::min(config.prefetch_depth, partitions.size());
      if (prefetch_parts == 1) {
        ground_set.prefetch(std::span<const NodeId>(partitions[0]), &workers);
      } else if (prefetch_parts > 1) {
        std::size_t head_size = 0;
        for (std::size_t p = 0; p < prefetch_parts; ++p) {
          head_size += partitions[p].size();
        }
        std::vector<NodeId> plan_head;
        plan_head.reserve(head_size);
        for (std::size_t p = 0; p < prefetch_parts; ++p) {
          plan_head.insert(plan_head.end(), partitions[p].begin(),
                           partitions[p].end());
        }
        ground_set.prefetch(std::span<const NodeId>(plan_head), &workers);
      }

      std::vector<std::vector<NodeId>> partition_results(partitions.size());
      std::atomic<std::size_t> peak_bytes{0};
      std::atomic<std::size_t> peak_state_bytes{0};
      workers.parallel_for(partitions.size(), [&](std::size_t p) {
        SubproblemArenaPool::Lease arena(arena_pool);
        GreedyResult local = solve_partition(
            ground_set, partitions[p], per_partition_target, kernel, initial,
            *arena, config.partition_solver, config.stochastic_epsilon,
            hash_combine(config.seed, 0x9e37ULL * round + p), nullptr, nullptr,
            GainEngine::kAuto, config.constraints);
        atomic_fetch_max(peak_bytes, local.materialized_bytes);
        atomic_fetch_max(peak_state_bytes, local.kernel_state_bytes);
        partition_results[p] = std::move(local.selected);
      });
      stats.peak_partition_bytes = peak_bytes.load();
      stats.peak_state_bytes = peak_state_bytes.load();

      survivors.clear();
      for (auto& part : partition_results) {
        survivors.insert(survivors.end(), part.begin(), part.end());
      }
      stats.output_size = survivors.size();
      result.rounds.push_back(stats);
      LOG_DEBUG("distributed_greedy round %zu: %zu -> %zu (m=%zu, target %zu)", round,
                stats.input_size, stats.output_size, m_round, n_round);

      const std::size_t checkpoint_every =
          std::max<std::size_t>(1, config.checkpoint_every);
      if (!config.checkpoint_file.empty() && round < config.num_rounds &&
          round % checkpoint_every == 0) {
        save_checkpoint(config.checkpoint_file, fingerprint, round, survivors);
      }
      if (config.progress) {
        config.progress(ProgressEvent{"round", round, config.num_rounds,
                                      survivors.size()});
      }
      ++executed;
      if (config.stop_after_round != 0 && executed >= config.stop_after_round &&
          round < config.num_rounds) {
        result.preempted = true;
        LOG_INFO("distributed_greedy: preempted after round %zu", round);
        return result;
      }
    }

    const bool constrained =
        config.constraints != nullptr && !config.constraints->empty();
    if (!constrained) {
      // Rounding can leave up to m_r extra points; subsample uniformly
      // (Alg. 6). Seeded independently of the per-round streams.
      if (survivors.size() > k_open) {
        Rng rng(hash_combine(config.seed, config.num_rounds + 1));
        rng.shuffle(std::span<NodeId>(survivors));
        survivors.resize(k_open);
      }
    } else {
      // Per-partition trackers only see their own accepts, so the surviving
      // union can over-commit a budget or group cap globally. One constrained
      // greedy pass over the union (conditioned on any pre-selected points,
      // which also seed its tracker) enforces every budget exactly; this
      // replaces the uniform rounding subsample and may return fewer than
      // k_open points when no feasible candidate remains.
      SubproblemArenaPool::Lease arena(arena_pool);
      GreedyResult final_solve = solve_partition(
          ground_set, survivors, k_open, kernel, initial, *arena,
          PartitionSolver::kPriorityQueue, config.stochastic_epsilon,
          hash_combine(config.seed, config.num_rounds + 1), nullptr, nullptr,
          GainEngine::kAuto, config.constraints);
      survivors = std::move(final_solve.selected);
    }
  } else {
    survivors.clear();
  }

  // A degraded (deadline-cut) run keeps its checkpoint: the best-so-far
  // answer was served, but the run itself is resumable to full quality.
  if (!config.checkpoint_file.empty() && !result.degraded) {
    std::error_code error;
    std::filesystem::remove(config.checkpoint_file, error);
  }

  result.selected = std::move(survivors);
  result.selected.insert(result.selected.end(), pre_selected.begin(),
                         pre_selected.end());
  std::sort(result.selected.begin(), result.selected.end());

  result.objective =
      kernel.evaluate(std::span<const NodeId>(result.selected), config.pool);
  return result;
}

}  // namespace subsel::core
