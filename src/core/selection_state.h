// Tri-state assignment of every ground-set point during selection.
//
// Bounding (Section 4.1/4.2) moves points from Unassigned to Selected (grow)
// or Discarded (shrink); the distributed greedy then completes the subset
// from the remaining Unassigned points. The state vector is the only
// per-point bookkeeping that must be globally visible — 1 byte per point, the
// footprint that remains even for larger-than-memory ground sets (the paper
// streams it through the dataflow joins; we keep it resident since one byte
// per point fits for every scale we simulate).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/similarity_graph.h"

namespace subsel::core {

using graph::NodeId;

enum class PointState : std::uint8_t {
  kUnassigned = 0,
  kSelected = 1,
  kDiscarded = 2,
};

class SelectionState {
 public:
  SelectionState() = default;
  explicit SelectionState(std::size_t num_points)
      : states_(num_points, PointState::kUnassigned),
        unassigned_(num_points) {}

  std::size_t size() const noexcept { return states_.size(); }

  PointState state(NodeId v) const noexcept {
    return states_[static_cast<std::size_t>(v)];
  }
  bool is_selected(NodeId v) const noexcept { return state(v) == PointState::kSelected; }
  bool is_discarded(NodeId v) const noexcept { return state(v) == PointState::kDiscarded; }
  bool is_unassigned(NodeId v) const noexcept {
    return state(v) == PointState::kUnassigned;
  }

  void select(NodeId v) noexcept { transition(v, PointState::kSelected); }
  void discard(NodeId v) noexcept { transition(v, PointState::kDiscarded); }

  std::size_t num_selected() const noexcept { return selected_; }
  std::size_t num_discarded() const noexcept { return discarded_; }
  std::size_t num_unassigned() const noexcept { return unassigned_; }

  /// All selected ids, ascending.
  std::vector<NodeId> selected_ids() const {
    return ids_in_state(PointState::kSelected);
  }
  /// All unassigned ids, ascending.
  std::vector<NodeId> unassigned_ids() const {
    return ids_in_state(PointState::kUnassigned);
  }

 private:
  void transition(NodeId v, PointState next) noexcept {
    PointState& slot = states_[static_cast<std::size_t>(v)];
    if (slot == next) return;
    switch (slot) {
      case PointState::kUnassigned: --unassigned_; break;
      case PointState::kSelected: --selected_; break;
      case PointState::kDiscarded: --discarded_; break;
    }
    slot = next;
    switch (next) {
      case PointState::kUnassigned: ++unassigned_; break;
      case PointState::kSelected: ++selected_; break;
      case PointState::kDiscarded: ++discarded_; break;
    }
  }

  std::vector<NodeId> ids_in_state(PointState wanted) const {
    std::vector<NodeId> ids;
    for (std::size_t i = 0; i < states_.size(); ++i) {
      if (states_[i] == wanted) ids.push_back(static_cast<NodeId>(i));
    }
    return ids;
  }

  std::vector<PointState> states_;
  std::size_t selected_ = 0;
  std::size_t discarded_ = 0;
  std::size_t unassigned_ = 0;
};

}  // namespace subsel::core
