#include "core/bounding.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "common/topk.h"

namespace subsel::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

ThreadPool& pool_or_global(ThreadPool* pool) {
  return pool != nullptr ? *pool : global_thread_pool();
}

/// Collects the values of unassigned points from a bounds array.
std::vector<double> unassigned_values(const SelectionState& state,
                                      const std::vector<double>& bounds) {
  std::vector<double> values;
  values.reserve(state.num_unassigned());
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (state.is_unassigned(static_cast<NodeId>(i))) values.push_back(bounds[i]);
  }
  return values;
}

}  // namespace

namespace detail {

bool sample_neighbor(const BoundingConfig& config, std::uint64_t round_salt, NodeId v,
                     NodeId neighbor, float weight, double mean_weight) {
  double probability;
  switch (config.sampling) {
    case BoundingSampling::kNone:
      return true;
    case BoundingSampling::kUniform:
      probability = config.sample_fraction;
      break;
    case BoundingSampling::kWeighted:
      // Inclusion probability proportional to the edge similarity, normalized
      // by the neighborhood mean so the expected sampled count stays p·deg.
      probability = mean_weight > 0.0
                        ? config.sample_fraction * static_cast<double>(weight) /
                              mean_weight
                        : config.sample_fraction;
      probability = std::min(probability, 1.0);
      break;
    default:
      return true;
  }
  const std::uint64_t h = hash_combine(
      hash_combine(hash_combine(config.seed, round_salt),
                   static_cast<std::uint64_t>(v)),
      static_cast<std::uint64_t>(neighbor));
  return hash_to_unit(h) < probability;
}

void compute_utility_bounds(const GroundSet& ground_set, const SelectionState& state,
                            const BoundingConfig& config, std::uint64_t round_salt,
                            std::vector<double>& u_min, std::vector<double>& u_max) {
  const std::size_t n = ground_set.num_points();
  u_min.assign(n, kNaN);
  u_max.assign(n, kNaN);
  const double pair_scale = config.objective.pair_scale();
  const bool sampling = config.sampling != BoundingSampling::kNone;

  ThreadPool& workers = pool_or_global(config.pool);
  const std::size_t num_chunks = std::max<std::size_t>(1, workers.size() * 4);
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;

  // Hand the pass's leading chunks to the ground set as async page-in hints
  // (no-op for resident sets): the hint tasks precede the pass chunks in the
  // pool queue, so an out-of-core backend does its leading block I/O batched
  // and in file order.
  if (config.prefetch_depth > 0) {
    const std::size_t hint_end =
        std::min(n, chunk * std::min(config.prefetch_depth, num_chunks));
    std::vector<NodeId> upcoming;
    upcoming.reserve(hint_end);
    for (std::size_t i = 0; i < hint_end; ++i) {
      if (state.is_unassigned(static_cast<NodeId>(i))) {
        upcoming.push_back(static_cast<NodeId>(i));
      }
    }
    ground_set.prefetch(std::span<const NodeId>(upcoming), &workers);
  }

  workers.parallel_for(num_chunks, [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    std::vector<graph::Edge> scratch;
    for (std::size_t i = begin; i < end; ++i) {
      const auto v = static_cast<NodeId>(i);
      if (!state.is_unassigned(v)) continue;
      const auto edges = ground_set.neighbors_span(v, scratch);

      // Weighted sampling normalizes by the mean similarity over the *live*
      // (non-discarded) neighborhood, which is what the distributed joins in
      // beam/ can observe — keeping both implementations bit-identical.
      double mean_weight = 0.0;
      if (config.sampling == BoundingSampling::kWeighted) {
        std::size_t live = 0;
        for (const graph::Edge& e : edges) {
          if (state.state(e.neighbor) != PointState::kDiscarded) {
            mean_weight += e.weight;
            ++live;
          }
        }
        if (live > 0) mean_weight /= static_cast<double>(live);
      }

      const double u = ground_set.utility(v);
      double min_bound = u;
      double max_bound = u;
      for (const graph::Edge& e : edges) {
        switch (state.state(e.neighbor)) {
          case PointState::kSelected:
            // Neighbors in S′ are always counted, in both bounds.
            min_bound -= pair_scale * e.weight;
            max_bound -= pair_scale * e.weight;
            break;
          case PointState::kUnassigned:
            if (!sampling || sample_neighbor(config, round_salt, v, e.neighbor,
                                             e.weight, mean_weight)) {
              min_bound -= pair_scale * e.weight;
            }
            break;
          case PointState::kDiscarded:
            break;  // removed from the ground set; affects neither bound
        }
      }
      u_min[i] = min_bound;
      u_max[i] = max_bound;
    }
  });
}

}  // namespace detail

std::size_t grow_step(const GroundSet& ground_set, SelectionState& state,
                      std::size_t& k_remaining, const BoundingConfig& config,
                      std::uint64_t round_salt) {
  if (k_remaining == 0) return 0;
  std::vector<double> u_min, u_max;
  detail::compute_utility_bounds(ground_set, state, config, round_salt, u_min, u_max);

  // Threshold = U^k_max, the k-th largest maximum utility (Alg. 3).
  const std::vector<double> max_values = unassigned_values(state, u_max);
  const double threshold = kth_largest(max_values, k_remaining);

  std::vector<NodeId> candidates;
  for (std::size_t i = 0; i < u_min.size(); ++i) {
    const auto v = static_cast<NodeId>(i);
    if (state.is_unassigned(v) && u_min[i] > threshold) candidates.push_back(v);
  }
  // Approximate bounding can over-grow; keep a uniform subsample of the right
  // size (Sec. 4.2). Exact bounding never exceeds k (Lemma 4.3).
  if (candidates.size() > k_remaining) {
    Rng rng(hash_combine(config.seed, round_salt ^ 0x6772ULL));
    rng.shuffle(std::span<NodeId>(candidates));
    candidates.resize(k_remaining);
  }
  for (NodeId v : candidates) state.select(v);
  k_remaining -= candidates.size();
  return candidates.size();
}

std::size_t shrink_step(const GroundSet& ground_set, SelectionState& state,
                        std::size_t k_remaining, const BoundingConfig& config,
                        std::uint64_t round_salt) {
  std::vector<double> u_min, u_max;
  detail::compute_utility_bounds(ground_set, state, config, round_salt, u_min, u_max);

  // Threshold = U^k_min, the k-th largest minimum utility (Alg. 4). With
  // k_remaining == 0 the threshold is +inf and every unassigned point is
  // discarded — the subset is already complete.
  const std::vector<double> min_values = unassigned_values(state, u_min);
  const double threshold = kth_largest(min_values, k_remaining);

  std::size_t discarded = 0;
  for (std::size_t i = 0; i < u_max.size(); ++i) {
    const auto v = static_cast<NodeId>(i);
    if (state.is_unassigned(v) && u_max[i] < threshold) {
      state.discard(v);
      ++discarded;
    }
  }
  assert(state.num_unassigned() >= k_remaining);
  return discarded;
}

BoundingResult bound(const GroundSet& ground_set, std::size_t k,
                     const BoundingConfig& config) {
  const std::size_t n = ground_set.num_points();
  BoundingResult result;
  result.state = SelectionState(n);
  result.k_remaining = std::min(k, n);
  if (result.k_remaining == 0) return result;

  std::uint64_t salt = 0;
  std::size_t total_rounds = 0;
  bool first_pass = true;

  // When the surviving ground set is exactly as large as the open budget,
  // every remaining point must be selected (shrink only removes points that
  // are provably outside S*, so the survivors are the subset). The strict
  // inequality in Lemma 4.3 alone can never certify the k-th point (ties with
  // its own threshold), so without this rule bounding stalls one point short
  // on instances it has in fact solved, e.g. k == |V| or edge-free graphs.
  auto complete_if_tight = [&result]() {
    if (result.k_remaining == 0 ||
        result.state.num_unassigned() != result.k_remaining) {
      return false;
    }
    for (NodeId v : result.state.unassigned_ids()) result.state.select(v);
    result.k_remaining = 0;
    return true;
  };

  // Alternate shrink-to-convergence and grow-to-convergence (Alg. 5). The
  // fixed point is detected without redundant passes: when a whole grow loop
  // changes nothing, the state is identical to the one the preceding shrink
  // loop already certified; and when a later shrink loop changes nothing, the
  // preceding grow loop's final no-change pass still holds. This matches the
  // round counts reported in Table 2.
  // Deadline between passes: every grow/shrink decision is monotone and
  // individually sound, so stopping at any pass boundary leaves a valid
  // (merely less-tightened) state for the solver to finish from.
  auto out_of_time = [&result, &config]() {
    if (!config.deadline.expired()) return false;
    result.degraded = true;
    return true;
  };

  for (;;) {
    std::size_t shrink_changes = 0;
    for (;;) {
      if (out_of_time()) break;
      ++result.shrink_rounds;
      const std::size_t changed =
          shrink_step(ground_set, result.state, result.k_remaining, config, ++salt);
      shrink_changes += changed;
      if (changed == 0 || ++total_rounds >= config.max_rounds) break;
    }
    if (complete_if_tight()) break;
    if (result.degraded) break;
    if (!first_pass && shrink_changes == 0) break;
    if (result.k_remaining == 0 || total_rounds >= config.max_rounds) break;

    std::size_t grow_changes = 0;
    for (;;) {
      if (out_of_time()) break;
      ++result.grow_rounds;
      const std::size_t changed =
          grow_step(ground_set, result.state, result.k_remaining, config, ++salt);
      grow_changes += changed;
      if (changed == 0 || result.k_remaining == 0 ||
          ++total_rounds >= config.max_rounds) {
        break;
      }
    }
    if (complete_if_tight()) break;
    if (result.degraded) break;
    if (grow_changes == 0 || result.k_remaining == 0 ||
        total_rounds >= config.max_rounds) {
      break;
    }
    first_pass = false;
  }

  result.included = result.state.num_selected();
  result.excluded = result.state.num_discarded();
  return result;
}

}  // namespace subsel::core
