#include "core/selection_pipeline.h"

#include <algorithm>

#include "common/rng.h"
#include "common/timer.h"

namespace subsel::core {

SelectionPipelineResult select_subset(const GroundSet& ground_set, std::size_t k,
                                      SelectionPipelineConfig config) {
  config.bounding.objective = config.objective;
  config.greedy.objective = config.objective;

  SelectionPipelineResult result;
  const SelectionState* initial = nullptr;
  if (config.use_bounding) {
    Timer timer;
    result.bounding = bound(ground_set, k, config.bounding);
    result.bounding_seconds = timer.elapsed_seconds();
    initial = &result.bounding->state;
  }

  if (initial != nullptr && result.bounding->complete()) {
    // Bounding found the entire subset; no greedy needed.
    result.selected = initial->selected_ids();
    PairwiseObjective objective(ground_set, config.objective);
    result.objective = objective.evaluate(result.selected, config.greedy.pool);
    return result;
  }

  Timer timer;
  DistributedGreedyResult greedy = distributed_greedy(ground_set, k, config.greedy,
                                                      initial);
  result.greedy_seconds = timer.elapsed_seconds();
  result.selected = std::move(greedy.selected);
  result.objective = greedy.objective;
  result.greedy_rounds = std::move(greedy.rounds);
  result.preempted = greedy.preempted;
  return result;
}

}  // namespace subsel::core
