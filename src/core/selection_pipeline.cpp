#include "core/selection_pipeline.h"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <string>

#include "common/rng.h"
#include "common/timer.h"

namespace subsel::core {

SelectionPipelineResult select_subset(const GroundSet& ground_set, std::size_t k,
                                      SelectionPipelineConfig config) {
  if (config.kernel != nullptr) {
    if (const ObjectiveParams* params = config.kernel->pairwise_params()) {
      // Keep the stage configs and the kernel in agreement: the kernel's own
      // parameters are the single source of truth.
      config.objective = *params;
    } else if (config.use_bounding) {
      throw std::invalid_argument(
          "select_subset: the bounding pre-pass requires an objective with"
          " utility-bound support (kernel \"" +
          std::string(config.kernel->name()) +
          "\" has none); disable bounding to run this kernel");
    }
  }
  if (config.use_bounding && config.greedy.constraints != nullptr &&
      !config.greedy.constraints->empty()) {
    // The bounding pre-pass commits points without consulting budgets or
    // caps, so a constrained pipeline must run greedy-only. The API layer
    // rejects this combination up-front with the same guidance.
    throw std::invalid_argument(
        "select_subset: the bounding pre-pass is unconstrained; disable"
        " bounding (--bounding=none) to run with selection constraints");
  }
  config.bounding.objective = config.objective;
  config.greedy.objective = config.objective;
  config.greedy.kernel = config.kernel;

  SelectionPipelineResult result;
  const SelectionState* initial = nullptr;
  if (config.use_bounding) {
    Timer timer;
    result.bounding = bound(ground_set, k, config.bounding);
    result.bounding_seconds = timer.elapsed_seconds();
    initial = &result.bounding->state;
    if (result.bounding->degraded) {
      result.degraded = true;
      result.degraded_reason =
          "deadline expired during the bounding pre-pass; greedy ran on the"
          " partially tightened state";
    }
  }

  if (initial != nullptr && result.bounding->complete()) {
    // Bounding found the entire subset; no greedy needed.
    result.selected = initial->selected_ids();
    if (config.kernel != nullptr) {
      result.objective = config.kernel->evaluate(
          std::span<const NodeId>(result.selected), config.greedy.pool);
    } else {
      PairwiseObjective objective(ground_set, config.objective);
      result.objective = objective.evaluate(result.selected, config.greedy.pool);
    }
    return result;
  }

  Timer timer;
  DistributedGreedyResult greedy = distributed_greedy(ground_set, k, config.greedy,
                                                      initial);
  result.greedy_seconds = timer.elapsed_seconds();
  result.selected = std::move(greedy.selected);
  result.objective = greedy.objective;
  result.greedy_rounds = std::move(greedy.rounds);
  result.preempted = greedy.preempted;
  if (greedy.degraded) {
    result.degraded = true;
    result.degraded_reason = greedy.degraded_reason;
  }
  return result;
}

}  // namespace subsel::core
