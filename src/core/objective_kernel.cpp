#include "core/objective_kernel.h"

#include <bit>

#include "core/kernel_simd.h"

namespace subsel::core {

std::uint64_t fingerprint_mix(std::uint64_t hash, std::uint64_t value) {
  // FNV-1a over the value's bytes — deliberately not std::hash, which is not
  // guaranteed stable across process restarts (checkpoint files persist).
  for (int byte = 0; byte < 8; ++byte) {
    hash = (hash ^ ((value >> (8 * byte)) & 0xFF)) * 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t fingerprint_mix(std::uint64_t hash, double value) {
  return fingerprint_mix(hash, std::bit_cast<std::uint64_t>(value));
}

namespace {

/// Pairwise gains maintained incrementally: gain(v|S) = α·u(v) − β·Σ s over
/// selected neighbors, so selecting v1 lowers each local neighbor's gain by
/// β·s. Only used by tests and by downstream kernels that wrap pairwise
/// without the linear-update capability — the round loops route pairwise
/// through the closed-form arena path instead.
class PairwiseScorer final : public SubproblemScorer {
 public:
  PairwiseScorer(const graph::GroundSet& ground_set, ObjectiveParams params)
      : ground_set_(&ground_set), params_(params) {}

  void reset(Subproblem& sub, const SelectionState* state) override {
    sub_ = &sub;
    const std::size_t n = sub.size();
    sub.priorities.resize(n);
    gains_.resize(n);
    std::vector<graph::Edge> scratch;
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId v = sub.global_ids[i];
      double gain = params_.alpha * ground_set_->utility(v);
      if (state != nullptr) {
        for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
          if (state->is_selected(e.neighbor)) gain -= params_.beta * e.weight;
        }
      }
      gains_[i] = gain;
      sub.priorities[i] = gain;
    }
  }

  double gain(std::uint32_t v) const override { return gains_[v]; }

  void select(std::uint32_t v) override {
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    for (std::size_t e = begin; e < end; ++e) {
      const auto& edge = sub_->edges[e];
      gains_[edge.neighbor] -= params_.beta * edge.weight;
    }
  }

 private:
  const graph::GroundSet* ground_set_;
  ObjectiveParams params_;
  const Subproblem* sub_ = nullptr;
  std::vector<double> gains_;
};

/// Flat-state twin of PairwiseScorer: identical arithmetic (alpha*u - beta*s
/// accumulation), gains held in an arena buffer, batch reads with no
/// per-element dispatch. Pairwise marginal gains are linear in the selected
/// neighborhood, so the maintained array IS always fresh — gains_batch is a
/// pure gather, dispatched to the vectorized backend bound at construction
/// (loads only, so every backend is trivially bit-identical).
class PairwiseIncrementalState final : public KernelIncrementalState {
 public:
  PairwiseIncrementalState(const graph::GroundSet& ground_set,
                           ObjectiveParams params, SubproblemArena& arena)
      : ground_set_(&ground_set),
        params_(params),
        arena_(&arena),
        ops_(&ksimd::active_ops()),
        gains_(arena.kernel_state_buffer(0)) {}

  void reset(Subproblem& sub, const SelectionState* state,
             bool init_priorities) override {
    sub_ = &sub;
    const std::size_t n = sub.size();
    gains_.resize(n);
    std::vector<graph::Edge>& scratch = arena_->edge_scratch();
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId v = sub.global_ids[i];
      double gain = params_.alpha * ground_set_->utility(v);
      if (state != nullptr) {
        for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
          if (state->is_selected(e.neighbor)) gain -= params_.beta * e.weight;
        }
      }
      gains_[i] = gain;
    }
    if (init_priorities) {
      sub.priorities.assign(gains_.begin(), gains_.end());
    }
  }

  double gain(std::uint32_t v) const override { return gains_[v]; }

  void gains_batch(std::span<const std::uint32_t> candidates,
                   std::span<double> out) const override {
    ops_->gather(gains_.data(), candidates.data(), candidates.size(),
                 out.data());
  }

  void select(std::uint32_t v) override {
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    const Subproblem::LocalEdge* edges = sub_->edges.data();
    for (std::size_t e = begin; e < end; ++e) {
      gains_[edges[e].neighbor] -= params_.beta * edges[e].weight;
    }
  }

  std::size_t state_bytes() const noexcept override {
    return gains_.size() * sizeof(double);
  }

  const char* backend() const noexcept override { return ops_->name; }

 private:
  const graph::GroundSet* ground_set_;
  ObjectiveParams params_;
  SubproblemArena* arena_;
  const ksimd::KernelSimdOps* ops_;
  const Subproblem* sub_ = nullptr;
  std::vector<double>& gains_;
};

}  // namespace

PairwiseKernel::PairwiseKernel(const graph::GroundSet& ground_set,
                               ObjectiveParams params)
    : ground_set_(&ground_set),
      params_(params),
      objective_(ground_set, params) {}  // the PairwiseObjective ctor validates

std::uint64_t PairwiseKernel::config_fingerprint() const noexcept {
  return fingerprint_mix(fingerprint_mix(0xcbf29ce484222325ULL, params_.alpha),
                         params_.beta);
}

std::unique_ptr<SubproblemScorer> PairwiseKernel::make_scorer() const {
  return std::make_unique<PairwiseScorer>(*ground_set_, params_);
}

std::unique_ptr<KernelIncrementalState> PairwiseKernel::make_incremental_state(
    SubproblemArena& arena) const {
  return std::make_unique<PairwiseIncrementalState>(*ground_set_, params_, arena);
}

const ObjectiveKernel& resolve_kernel(const ObjectiveKernel* kernel,
                                      const graph::GroundSet& ground_set,
                                      ObjectiveParams params,
                                      std::optional<PairwiseKernel>& storage) {
  if (kernel != nullptr) return *kernel;
  storage.emplace(ground_set, params);  // validates params
  return *storage;
}

}  // namespace subsel::core
