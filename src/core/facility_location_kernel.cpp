#include "core/facility_location_kernel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace subsel::core {
namespace {

ThreadPool& pool_or_global(ThreadPool* pool) {
  return pool != nullptr ? *pool : global_thread_pool();
}

/// Maintains, per member, the best similarity to anything selected so far
/// (seeded from the globally pre-selected points when conditioning on a
/// bounding state). gain(v) sums the coverage improvements v would bring to
/// itself and its local neighbors.
class FacilityLocationScorer final : public SubproblemScorer {
 public:
  FacilityLocationScorer(const graph::GroundSet& ground_set,
                         FacilityLocationParams params)
      : ground_set_(&ground_set), params_(params) {}

  void reset(Subproblem& sub, const SelectionState* state) override {
    sub_ = &sub;
    const std::size_t n = sub.size();
    coverage_.assign(n, 0.0);
    weight_.resize(n);
    std::vector<graph::Edge> scratch;
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId v = sub.global_ids[i];
      weight_[i] = params_.utility_weighted ? ground_set_->utility(v) : 1.0;
      if (state != nullptr) {
        double best = 0.0;
        for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
          if (state->is_selected(e.neighbor)) {
            best = std::max(best, static_cast<double>(e.weight));
          }
        }
        coverage_[i] = best;
      }
    }
    sub.priorities.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) sub.priorities[i] = gain(i);
  }

  double gain(std::uint32_t v) const override {
    double total =
        weight_[v] * std::max(0.0, params_.self_similarity - coverage_[v]);
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    for (std::size_t e = begin; e < end; ++e) {
      const auto& edge = sub_->edges[e];
      total += weight_[edge.neighbor] *
               std::max(0.0, static_cast<double>(edge.weight) -
                                 coverage_[edge.neighbor]);
    }
    return total;
  }

  void select(std::uint32_t v) override {
    coverage_[v] = std::max(coverage_[v], params_.self_similarity);
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    for (std::size_t e = begin; e < end; ++e) {
      const auto& edge = sub_->edges[e];
      coverage_[edge.neighbor] =
          std::max(coverage_[edge.neighbor], static_cast<double>(edge.weight));
    }
  }

 private:
  const graph::GroundSet* ground_set_;
  FacilityLocationParams params_;
  const Subproblem* sub_ = nullptr;
  std::vector<double> coverage_;  // per-member best selected similarity
  std::vector<double> weight_;
};

/// Flat-state twin of FacilityLocationScorer: best/second-best cover plus
/// weight per member, all in reusable arena buffers. gain() mirrors the
/// scorer's arithmetic operation-for-operation (max-based coverage is
/// order-independent and exact in floating point, so the two paths produce
/// bit-identical gains and therefore identical selections); select() raises
/// the cover of the picked point and its local neighbors in O(deg).
class FacilityLocationIncrementalState final : public KernelIncrementalState {
 public:
  FacilityLocationIncrementalState(const graph::GroundSet& ground_set,
                                   FacilityLocationParams params,
                                   SubproblemArena& arena)
      : ground_set_(&ground_set),
        params_(params),
        arena_(&arena),
        cover_(arena.kernel_state_buffer(0)),
        cover2_(arena.kernel_state_buffer(1)),
        weight_(arena.kernel_state_buffer(2)) {}

  void reset(Subproblem& sub, const SelectionState* state,
             bool init_priorities) override {
    sub_ = &sub;
    const std::size_t n = sub.size();
    cover_.assign(n, 0.0);
    cover2_.assign(n, 0.0);
    weight_.resize(n);
    std::vector<graph::Edge>& scratch = arena_->edge_scratch();
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId v = sub.global_ids[i];
      weight_[i] = params_.utility_weighted ? ground_set_->utility(v) : 1.0;
      if (state != nullptr) {
        double best = 0.0;
        double second = 0.0;
        for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
          if (!state->is_selected(e.neighbor)) continue;
          const auto w = static_cast<double>(e.weight);
          if (w > best) {
            second = best;
            best = w;
          } else if (w > second) {
            second = w;
          }
        }
        cover_[i] = best;
        cover2_[i] = second;
      }
    }
    if (init_priorities) {
      sub.priorities.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) sub.priorities[i] = gain_of(i);
    }
  }

  double gain(std::uint32_t v) const override { return gain_of(v); }

  void gains_batch(std::span<const std::uint32_t> candidates,
                   std::span<double> out) const override {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      out[i] = gain_of(candidates[i]);
    }
  }

  void select(std::uint32_t v) override {
    raise_cover(v, params_.self_similarity);
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    const Subproblem::LocalEdge* edges = sub_->edges.data();
    for (std::size_t e = begin; e < end; ++e) {
      raise_cover(edges[e].neighbor, static_cast<double>(edges[e].weight));
    }
  }

  std::size_t state_bytes() const noexcept override {
    return (cover_.size() + cover2_.size() + weight_.size()) * sizeof(double);
  }

 private:
  /// Same expression tree as FacilityLocationScorer::gain, flat arrays.
  double gain_of(std::uint32_t v) const {
    const double* cover = cover_.data();
    const double* weight = weight_.data();
    double total = weight[v] * std::max(0.0, params_.self_similarity - cover[v]);
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    const Subproblem::LocalEdge* edges = sub_->edges.data();
    for (std::size_t e = begin; e < end; ++e) {
      const std::uint32_t u = edges[e].neighbor;
      total += weight[u] *
               std::max(0.0, static_cast<double>(edges[e].weight) - cover[u]);
    }
    return total;
  }

  void raise_cover(std::uint32_t u, double value) {
    if (value > cover_[u]) {
      cover2_[u] = cover_[u];
      cover_[u] = value;
    } else if (value > cover2_[u]) {
      cover2_[u] = value;
    }
  }

  const graph::GroundSet* ground_set_;
  FacilityLocationParams params_;
  SubproblemArena* arena_;
  const Subproblem* sub_ = nullptr;
  std::vector<double>& cover_;   // best selected similarity per member
  std::vector<double>& cover2_;  // second best (O(deg) removal/swap support)
  std::vector<double>& weight_;
};

}  // namespace

void FacilityLocationParams::validate() const {
  if (!std::isfinite(self_similarity) || self_similarity < 0.0) {
    throw std::invalid_argument(
        "FacilityLocationParams: self_similarity must be finite and >= 0");
  }
}

FacilityLocationKernel::FacilityLocationKernel(const graph::GroundSet& ground_set,
                                               FacilityLocationParams params)
    : ground_set_(&ground_set), params_(params) {
  params_.validate();
}

double FacilityLocationKernel::coverage_of(
    const std::vector<std::uint8_t>& membership, NodeId v,
    std::vector<graph::Edge>& scratch) const {
  double best =
      membership[static_cast<std::size_t>(v)] != 0 ? params_.self_similarity : 0.0;
  for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
    if (membership[static_cast<std::size_t>(e.neighbor)] != 0) {
      best = std::max(best, static_cast<double>(e.weight));
    }
  }
  return best;
}

double FacilityLocationKernel::evaluate(const std::vector<std::uint8_t>& membership,
                                        ThreadPool* pool) const {
  if (membership.size() != ground_set_->num_points()) {
    throw std::invalid_argument(
        "FacilityLocationKernel::evaluate: bitmap size mismatch");
  }
  const std::size_t n = membership.size();
  ThreadPool& workers = pool_or_global(pool);
  const std::size_t num_chunks = std::max<std::size_t>(1, workers.size() * 4);
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<double> partial(num_chunks, 0.0);
  workers.parallel_for(num_chunks, [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    double sum = 0.0;
    std::vector<graph::Edge> scratch;
    for (std::size_t i = begin; i < end; ++i) {
      const auto v = static_cast<NodeId>(i);
      sum += point_weight(v) * coverage_of(membership, v, scratch);
    }
    partial[c] = sum;
  });
  double total = 0.0;
  for (double value : partial) total += value;
  return total;
}

double FacilityLocationKernel::marginal_gain(
    const std::vector<std::uint8_t>& membership, NodeId v) const {
  if (membership[static_cast<std::size_t>(v)] != 0) {
    throw std::invalid_argument(
        "FacilityLocationKernel::marginal_gain: v already in S");
  }
  std::vector<graph::Edge> scratch, inner_scratch;
  // v's own coverage improves to at least self_similarity...
  double gain = point_weight(v) *
                std::max(0.0, params_.self_similarity -
                                  coverage_of(membership, v, scratch));
  // ...and every neighbor u is now covered at least as well as s(u,v).
  for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
    const double improved = static_cast<double>(e.weight) -
                            coverage_of(membership, e.neighbor, inner_scratch);
    if (improved > 0.0) gain += point_weight(e.neighbor) * improved;
  }
  return gain;
}

double FacilityLocationKernel::singleton_value(NodeId v) const {
  double total = point_weight(v) * params_.self_similarity;
  std::vector<graph::Edge> scratch;
  for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
    total += point_weight(e.neighbor) * static_cast<double>(e.weight);
  }
  return total;
}

std::unique_ptr<SubproblemScorer> FacilityLocationKernel::make_scorer() const {
  return std::make_unique<FacilityLocationScorer>(*ground_set_, params_);
}

std::unique_ptr<KernelIncrementalState>
FacilityLocationKernel::make_incremental_state(SubproblemArena& arena) const {
  return std::make_unique<FacilityLocationIncrementalState>(*ground_set_, params_,
                                                            arena);
}

}  // namespace subsel::core
