#include "core/facility_location_kernel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/kernel_simd.h"

namespace subsel::core {
namespace {

ThreadPool& pool_or_global(ThreadPool* pool) {
  return pool != nullptr ? *pool : global_thread_pool();
}

// Both the scorer and the incremental state work in PREMULTIPLIED coverage
// space: per member u they track wcover[u] = max over selected s of
// fl(weight[u] · σ(u,s)), and a candidate's gain is
//
//   max(0, fl(w_v·σ_self) − wcover[v]) + Σ_e max(0, fl(w_u·s_e) − wcover[u])
//
// with the edge sum in the lane-split order of core/kernel_simd.h. Because
// multiplication by the non-negative constant weight[u] is monotone (and so
// commutes with max exactly, rounding included), the premultiplied cover is
// exactly fl(weight·best-similarity) — the layout change moves the multiply
// out of the gain loop without changing which element wins any comparison.
// The scorer below is the reference: the incremental state and every
// vectorized backend must reproduce its gains bit-for-bit.

/// Maintains, per member, the best premultiplied similarity to anything
/// selected so far (seeded from the globally pre-selected points when
/// conditioning on a bounding state). gain(v) sums the coverage improvements
/// v would bring to itself and its local neighbors.
class FacilityLocationScorer final : public SubproblemScorer {
 public:
  FacilityLocationScorer(const graph::GroundSet& ground_set,
                         FacilityLocationParams params)
      : ground_set_(&ground_set), params_(params) {}

  void reset(Subproblem& sub, const SelectionState* state) override {
    sub_ = &sub;
    const std::size_t n = sub.size();
    wcover_.assign(n, 0.0);
    weight_.resize(n);
    std::vector<graph::Edge> scratch;
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId v = sub.global_ids[i];
      const double w = params_.utility_weighted ? ground_set_->utility(v) : 1.0;
      weight_[i] = w;
      if (state != nullptr) {
        double best = 0.0;
        for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
          if (state->is_selected(e.neighbor)) {
            best = std::max(best, w * static_cast<double>(e.weight));
          }
        }
        wcover_[i] = best;
      }
    }
    sub.priorities.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) sub.priorities[i] = gain(i);
  }

  double gain(std::uint32_t v) const override {
    const double self_term =
        std::max(0.0, weight_[v] * params_.self_similarity - wcover_[v]);
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    double lanes[ksimd::kLanes] = {0.0, 0.0, 0.0, 0.0};
    std::size_t lane = 0;
    for (std::size_t e = begin; e < end; ++e, ++lane) {
      const auto& edge = sub_->edges[e];
      lanes[lane & 3] +=
          std::max(0.0, weight_[edge.neighbor] * static_cast<double>(edge.weight) -
                            wcover_[edge.neighbor]);
    }
    return self_term + ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]));
  }

  void select(std::uint32_t v) override {
    wcover_[v] = std::max(wcover_[v], weight_[v] * params_.self_similarity);
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    for (std::size_t e = begin; e < end; ++e) {
      const auto& edge = sub_->edges[e];
      wcover_[edge.neighbor] =
          std::max(wcover_[edge.neighbor],
                   weight_[edge.neighbor] * static_cast<double>(edge.weight));
    }
  }

 private:
  const graph::GroundSet* ground_set_;
  FacilityLocationParams params_;
  const Subproblem* sub_ = nullptr;
  std::vector<double> wcover_;  // per-member best premultiplied similarity
  std::vector<double> weight_;
};

/// Flat-state twin of FacilityLocationScorer in structure-of-arrays form:
/// best/second-best premultiplied cover, premultiplied self terms, and — per
/// edge of the subproblem CSR — a neighbor column plus a premultiplied edge
/// weight column (pw[e] = fl(weight[u]·s_e), built once per reset), all in
/// reusable arena buffers. gain() is one call into the kernel_simd cover-gain
/// primitive (scalar/AVX2/NEON, bit-identical to the scorer's lane-split
/// loop); select() raises the cover of the picked point and its local
/// neighbors in O(deg). The backend is captured at construction from
/// simd::active_backend().
class FacilityLocationIncrementalState final : public KernelIncrementalState {
 public:
  FacilityLocationIncrementalState(const graph::GroundSet& ground_set,
                                   FacilityLocationParams params,
                                   SubproblemArena& arena)
      : ground_set_(&ground_set),
        params_(params),
        arena_(&arena),
        ops_(&ksimd::active_ops()),
        wcover_(arena.kernel_state_buffer(0)),
        wcover2_(arena.kernel_state_buffer(1)),
        pself_(arena.kernel_state_buffer(2)),
        weight_(arena.kernel_state_buffer(3)),
        pw_(arena.kernel_state_buffer(4)),
        nbr_(arena.kernel_index_buffer(0)) {}

  void reset(Subproblem& sub, const SelectionState* state,
             bool init_priorities) override {
    // The derived layouts (weights, premultiplied self terms, SoA columns)
    // depend only on the topology and the ground-set utilities, so repeated
    // resets against the same materialization — stochastic restarts, the
    // lazy/sampled pairs the harnesses run — skip the O(edges) rebuild.
    const bool layout_cached =
        sub_ == &sub && cached_epoch_ == sub.topology_epoch;
    sub_ = &sub;
    cached_epoch_ = sub.topology_epoch;
    const std::size_t n = sub.size();
    wcover_.assign(n, 0.0);
    wcover2_.assign(n, 0.0);
    if (!layout_cached) {
      pself_.resize(n);
      weight_.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        const double w = params_.utility_weighted
                             ? ground_set_->utility(sub.global_ids[i])
                             : 1.0;
        weight_[i] = w;
        pself_[i] = w * params_.self_similarity;
      }
    }
    if (state != nullptr) {
      std::vector<graph::Edge>& scratch = arena_->edge_scratch();
      for (std::size_t i = 0; i < n; ++i) {
        const NodeId v = sub.global_ids[i];
        const double w = weight_[i];
        double best = 0.0;
        double second = 0.0;
        for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
          if (!state->is_selected(e.neighbor)) continue;
          const double pwv = w * static_cast<double>(e.weight);
          if (pwv > best) {
            second = best;
            best = pwv;
          } else if (pwv > second) {
            second = pwv;
          }
        }
        wcover_[i] = best;
        wcover2_[i] = second;
      }
    }
    if (!layout_cached) {
      // SoA edge pass: split the CSR's array-of-structs into a contiguous
      // neighbor column and a premultiplied-weight column — the layout the
      // vectorized gain loops load with one gather + one contiguous load.
      const std::size_t num_edges = sub.edges.size();
      nbr_.resize(num_edges);
      pw_.resize(num_edges);
      const Subproblem::LocalEdge* edges = sub.edges.data();
      for (std::size_t e = 0; e < num_edges; ++e) {
        const std::uint32_t u = edges[e].neighbor;
        nbr_[e] = u;
        pw_[e] = weight_[u] * static_cast<double>(edges[e].weight);
      }
    }
    if (init_priorities) {
      sub.priorities.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) sub.priorities[i] = gain_of(i);
    }
  }

  double gain(std::uint32_t v) const override { return gain_of(v); }

  void gains_batch(std::span<const std::uint32_t> candidates,
                   std::span<double> out) const override {
    constexpr std::size_t kLookahead = 2;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (i + kLookahead < candidates.size()) {
        prefetch_slice(candidates[i + kLookahead]);
      }
      out[i] = gain_of(candidates[i]);
    }
  }

  void select(std::uint32_t v) override {
    raise_cover(v, pself_[v]);
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    for (std::size_t e = begin; e < end; ++e) raise_cover(nbr_[e], pw_[e]);
  }

  std::size_t state_bytes() const noexcept override {
    return (wcover_.size() + wcover2_.size() + pself_.size() + weight_.size() +
            pw_.size()) *
               sizeof(double) +
           nbr_.size() * sizeof(std::uint32_t);
  }

  const char* backend() const noexcept override { return ops_->name; }

 private:
  /// Same expression tree as FacilityLocationScorer::gain, SoA columns, with
  /// the edge loop dispatched to the backend bound at construction.
  double gain_of(std::uint32_t v) const {
    const double self_term = std::max(0.0, pself_[v] - wcover_[v]);
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    return ops_->cover_gain(nbr_.data() + begin, pw_.data() + begin, end - begin,
                            wcover_.data(), self_term);
  }

  void prefetch_slice(std::uint32_t v) const {
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    ksimd::prefetch_edge_slice(nbr_.data() + begin, pw_.data() + begin,
                               end - begin);
  }

  void raise_cover(std::uint32_t u, double value) {
    if (value > wcover_[u]) {
      wcover2_[u] = wcover_[u];
      wcover_[u] = value;
    } else if (value > wcover2_[u]) {
      wcover2_[u] = value;
    }
  }

  const graph::GroundSet* ground_set_;
  FacilityLocationParams params_;
  SubproblemArena* arena_;
  const ksimd::KernelSimdOps* ops_;
  const Subproblem* sub_ = nullptr;
  std::uint64_t cached_epoch_ = 0;  // topology_epoch the layouts were built at
  std::vector<double>& wcover_;   // best premultiplied similarity per member
  std::vector<double>& wcover2_;  // second best (O(deg) removal/swap support)
  std::vector<double>& pself_;    // fl(weight · self_similarity) per member
  std::vector<double>& weight_;
  std::vector<double>& pw_;            // premultiplied edge weights (SoA)
  std::vector<std::uint32_t>& nbr_;    // edge neighbor column (SoA)
};

}  // namespace

void FacilityLocationParams::validate() const {
  if (!std::isfinite(self_similarity) || self_similarity < 0.0) {
    throw std::invalid_argument(
        "FacilityLocationParams: self_similarity must be finite and >= 0");
  }
}

FacilityLocationKernel::FacilityLocationKernel(const graph::GroundSet& ground_set,
                                               FacilityLocationParams params)
    : ground_set_(&ground_set), params_(params) {
  params_.validate();
}

double FacilityLocationKernel::coverage_of(
    const std::vector<std::uint8_t>& membership, NodeId v,
    std::vector<graph::Edge>& scratch) const {
  double best =
      membership[static_cast<std::size_t>(v)] != 0 ? params_.self_similarity : 0.0;
  for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
    if (membership[static_cast<std::size_t>(e.neighbor)] != 0) {
      best = std::max(best, static_cast<double>(e.weight));
    }
  }
  return best;
}

double FacilityLocationKernel::evaluate(const std::vector<std::uint8_t>& membership,
                                        ThreadPool* pool) const {
  if (membership.size() != ground_set_->num_points()) {
    throw std::invalid_argument(
        "FacilityLocationKernel::evaluate: bitmap size mismatch");
  }
  const std::size_t n = membership.size();
  ThreadPool& workers = pool_or_global(pool);
  const std::size_t num_chunks = std::max<std::size_t>(1, workers.size() * 4);
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<double> partial(num_chunks, 0.0);
  workers.parallel_for(num_chunks, [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    double sum = 0.0;
    std::vector<graph::Edge> scratch;
    for (std::size_t i = begin; i < end; ++i) {
      const auto v = static_cast<NodeId>(i);
      sum += point_weight(v) * coverage_of(membership, v, scratch);
    }
    partial[c] = sum;
  });
  double total = 0.0;
  for (double value : partial) total += value;
  return total;
}

double FacilityLocationKernel::marginal_gain(
    const std::vector<std::uint8_t>& membership, NodeId v) const {
  if (membership[static_cast<std::size_t>(v)] != 0) {
    throw std::invalid_argument(
        "FacilityLocationKernel::marginal_gain: v already in S");
  }
  std::vector<graph::Edge> scratch, inner_scratch;
  // v's own coverage improves to at least self_similarity...
  double gain = point_weight(v) *
                std::max(0.0, params_.self_similarity -
                                  coverage_of(membership, v, scratch));
  // ...and every neighbor u is now covered at least as well as s(u,v).
  for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
    const double improved = static_cast<double>(e.weight) -
                            coverage_of(membership, e.neighbor, inner_scratch);
    if (improved > 0.0) gain += point_weight(e.neighbor) * improved;
  }
  return gain;
}

double FacilityLocationKernel::singleton_value(NodeId v) const {
  double total = point_weight(v) * params_.self_similarity;
  std::vector<graph::Edge> scratch;
  for (const graph::Edge& e : ground_set_->neighbors_span(v, scratch)) {
    total += point_weight(e.neighbor) * static_cast<double>(e.weight);
  }
  return total;
}

std::unique_ptr<SubproblemScorer> FacilityLocationKernel::make_scorer() const {
  return std::make_unique<FacilityLocationScorer>(*ground_set_, params_);
}

std::unique_ptr<KernelIncrementalState>
FacilityLocationKernel::make_incremental_state(SubproblemArena& arena) const {
  return std::make_unique<FacilityLocationIncrementalState>(*ground_set_, params_,
                                                            arena);
}

}  // namespace subsel::core
