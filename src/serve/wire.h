// Wire protocol of the selection daemon: newline-delimited JSON, one request
// or response object per line, over a local stream socket (or handed to
// SelectionServer::submit directly for in-process callers).
//
// Requests (parse_request; every violation is a typed RequestError, never a
// crash or a silently defaulted field):
//
//   {"type":"select","id":"r1","dataset":"cifar","k":500,
//    "solver":"distributed-greedy","objective":"pairwise","alpha":0.9,
//    "deadline_ms":250,"priority":"interactive","seed":23}
//   {"type":"stats","id":"s1"}
//
// Responses (ServeResponse::to_json; schema "subsel.serve_response.v1",
// documented field-by-field in README "Serving"):
//
//   status "complete"  — full-quality selection within the deadline
//   status "degraded"  — valid best-so-far selection, `reason` says why
//                        (deadline mid-solve, or "queued_past_deadline" when
//                        the budget expired before a solver slot freed up)
//   status "rejected"  — admission control refused the request up front
//                        (`reason`: "queue_full", "draining",
//                        "unknown_dataset", or a parse-reject code)
//   status "error"     — the request was accepted but failed mid-flight
//                        (`reason`: "worker_fault", "disk_error",
//                        "injected_fault", "invalid_request",
//                        "internal_error"); the daemon keeps serving
//   status "ok"        — stats response
//
// The deadline clock starts at ADMISSION, not at solver dispatch: queue wait
// counts against the budget, which is what a latency SLO means.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "api/selection_api.h"

namespace subsel::serve {

/// Emitted in every response and in BENCH_serving.json; bump when a field
/// changes meaning (additions are backward-compatible and don't bump it).
inline constexpr int kServeSchemaVersion = 1;
inline constexpr std::string_view kResponseSchema = "subsel.serve_response.v1";

/// Admission priority classes, highest first. Interactive requests are always
/// dequeued before batch requests; within a class the queue is FIFO.
enum class Priority : std::uint8_t { kInteractive = 0, kBatch = 1 };
inline constexpr std::size_t kNumPriorities = 2;

const char* priority_name(Priority priority) noexcept;

/// Typed request rejection. code() is the machine-readable reject reason the
/// response carries; id() is the request id when the document got far enough
/// to yield one (empty for malformed JSON).
class RequestError : public std::runtime_error {
 public:
  enum class Code {
    kMalformedJson,     // not parseable as one JSON object
    kOversized,         // request line exceeds the server's byte limit
    kMissingField,      // a required field is absent
    kBadField,          // a field has the wrong type or an invalid value
    kUnknownField,      // strict schema: an unrecognized key
    kUnknownType,       // "type" is not select|stats
    kUnknownSolver,     // solver not in the SolverRegistry
    kUnknownObjective,  // objective not in the ObjectiveRegistry
  };

  RequestError(Code code, const std::string& message, std::string id = "")
      : std::runtime_error(message), code_(code), id_(std::move(id)) {}

  Code code() const noexcept { return code_; }
  const std::string& id() const noexcept { return id_; }

 private:
  Code code_;
  std::string id_;
};

/// The machine-readable reject-reason string for a parse failure
/// ("malformed_json", "oversized_request", ...).
const char* request_error_code_name(RequestError::Code code) noexcept;

/// A parsed wire request. Selection fields mirror the api::SelectionRequest
/// knobs the daemon exposes; fields a request omits keep these defaults.
struct ServeRequest {
  enum class Kind { kSelect, kStats };

  Kind kind = Kind::kSelect;
  std::string id;
  Priority priority = Priority::kBatch;
  /// Wall-clock budget measured from ADMISSION (0 = server default; the
  /// server maps 0-after-default to unlimited).
  std::uint64_t deadline_ms = 0;

  // --- select fields ---
  std::string dataset;
  std::size_t k = 0;
  double fraction = 0.0;
  std::string solver = "distributed-greedy";
  std::string objective = "pairwise";
  double alpha = 0.9;
  double saturation = 1.0;
  double self_similarity = 1.0;
  bool utility_weighted = true;
  std::uint64_t seed = 23;
  std::size_t machines = 8;
  std::size_t rounds = 8;
  double epsilon = 0.1;
  /// "none" | "exact" | "uniform" | "weighted" (the CLI --bounding values).
  std::string bounding = "uniform";
  /// Knapsack budget over the dataset's resident per-element cost vector
  /// (0 = unconstrained). Requires the dataset to be served with a cost
  /// sidecar file; otherwise the request errors with "invalid_request".
  double cost_budget = 0.0;
  /// Uniform partition-matroid cap over the dataset's resident group vector
  /// (0 = unconstrained). Same sidecar requirement as cost_budget.
  std::size_t group_cap = 0;
  /// Echo the selected ids in the response (a client sweeping for latency
  /// can turn the id payload off).
  bool return_selection = true;

  /// One request line (no trailing newline) that parse_request round-trips.
  std::string to_json() const;
};

struct ParseLimits {
  /// Hard byte ceiling per request line; longer requests are rejected
  /// (kOversized) before the JSON parser ever runs.
  std::size_t max_request_bytes = 64 * 1024;
};

/// Parses and validates one request line. Solver/objective names are checked
/// against the live registries so an unknown name rejects at admission, not
/// mid-solve. Throws RequestError; never throws anything else for untrusted
/// input.
ServeRequest parse_request(std::string_view line, const ParseLimits& limits);

/// Per-request latency breakdown, all in seconds.
struct LatencyBreakdown {
  double queue_seconds = 0.0;   // admission -> solver-slot dispatch
  double solve_seconds = 0.0;   // solver dispatch -> report ready
  double report_seconds = 0.0;  // response build + serialization
  double total_seconds = 0.0;   // admission -> response handed to transport
};

/// Monotonic per-server counters, snapshot into every response ("server"
/// object) and returned by stats requests.
struct ServerCounters {
  std::uint64_t accepted = 0;   // admitted into the queue
  std::uint64_t rejected = 0;   // refused at admission (all reasons)
  std::uint64_t completed = 0;  // full-quality responses
  std::uint64_t degraded = 0;   // valid-but-degraded responses
  std::uint64_t errors = 0;     // error responses after admission
  std::uint64_t expired_in_queue = 0;  // of degraded: never reached a solver
  std::uint64_t completed_by_class[kNumPriorities] = {0, 0};
  std::size_t queue_depth = 0;
  std::size_t queue_depth_high_water = 0;
  std::size_t inflight = 0;  // requests currently holding a solver slot
};

/// One dataset the server keeps resident (stats responses list them).
struct DatasetInfo {
  std::string name;
  std::size_t num_points = 0;
  bool disk = false;
};

struct ServeResponse {
  enum class Status { kComplete, kDegraded, kRejected, kError, kStats };

  std::string id;
  Status status = Status::kError;
  /// Machine-readable cause for degraded/rejected/error statuses.
  std::string reason;
  /// Human-readable elaboration (exception message, queue state, ...).
  std::string detail;

  // --- select payload ---
  std::string dataset;
  std::string solver;
  std::string objective_name;
  Priority priority = Priority::kBatch;
  std::vector<core::NodeId> selected;
  std::size_t selected_count = 0;  // kept even when ids are not echoed
  double objective = 0.0;
  /// Out-of-core cache delta for this request (resident datasets omit it).
  std::optional<api::DiskCacheSummary> disk_cache;

  LatencyBreakdown latency;
  ServerCounters counters;

  // --- stats payload ---
  std::vector<DatasetInfo> datasets;
  double uptime_seconds = 0.0;

  const char* status_name() const noexcept;

  /// One response line (no trailing newline), schema
  /// "subsel.serve_response.v1".
  std::string to_json() const;
};

}  // namespace subsel::serve
