// The long-lived, multi-tenant selection daemon core (`subsel serve`).
//
// Everything below the API layer is batch: one SelectionRequest, one solve,
// exit. This class composes the repo's parts into a server: named ground
// sets loaded ONCE and kept resident across requests (in-memory, or the
// sharded out-of-core DiskGroundSet whose block cache then stays warm
// between requests), a bounded admission queue with two priority classes
// and explicit load shedding, and `max_concurrent` dispatcher threads that
// each lease a SolverContext (reusable SubproblemArenaPool) over one shared
// ThreadPool — capping concurrent solves while queueing the rest.
//
// Deadlines are end-to-end: the budget starts at ADMISSION, so time spent
// waiting for a solver slot counts against it. A request whose budget
// expires in the queue is answered immediately as degraded with reason
// "queued_past_deadline" (it never wastes a slot); one that expires
// mid-solve rides the PR-6 Deadline machinery and returns the solver's best
// valid selection so far, flagged degraded. Errors after admission
// (worker faults, disk faults, injected faults at the serve.* failpoints)
// become typed error responses — the daemon keeps serving.
//
// Transport-agnostic: submit() takes a parsed request and a completion
// callback (invoked exactly once, on a dispatcher thread for selects, on
// the caller's thread for stats and rejects). The socket front end
// (socket_server.h) and the in-process bench/tests sit on the same entry
// point, so every admission/scheduling/shedding behavior is identical and
// testable without a socket.
//
// Failpoint sites: "serve.accept" (request admission entry), "serve.enqueue"
// (admission-queue push), "serve.respond" (response delivery).
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/solver_registry.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "data/datasets.h"
#include "graph/disk_ground_set.h"
#include "serve/admission_queue.h"
#include "serve/server_config.h"
#include "serve/wire.h"

namespace subsel::serve {

class SelectionServer {
 public:
  /// Loads every dataset in the manifest (throws on a missing/corrupt file
  /// or a duplicate name) and starts the dispatcher threads. The server is
  /// accepting requests when the constructor returns.
  explicit SelectionServer(const ServerConfig& config);

  /// Drains and joins (equivalent to shutdown()).
  ~SelectionServer();

  SelectionServer(const SelectionServer&) = delete;
  SelectionServer& operator=(const SelectionServer&) = delete;

  /// Registers an externally owned resident ground set under `name` (the
  /// in-process embedding path: tests and benches hand their instance over
  /// without a round-trip through the on-disk format). `ground_set` must
  /// outlive the server. NOT thread-safe against concurrent submits —
  /// register before traffic starts, like config datasets.
  void register_ground_set(const std::string& name,
                           const graph::GroundSet* ground_set);

  using ResponseCallback = std::function<void(ServeResponse)>;

  /// Admits `request` and eventually invokes `done` exactly once with the
  /// response. Stats requests and admission rejects answer synchronously on
  /// the caller's thread; admitted selects answer on a dispatcher thread.
  void submit(ServeRequest request, ResponseCallback done);

  /// Future-flavored submit for in-process callers.
  std::future<ServeResponse> submit(ServeRequest request);

  /// Graceful-drain pivot (SIGTERM): new submissions reject with
  /// "draining"; queued and in-flight requests still finish or degrade.
  void begin_drain();

  /// begin_drain() + blocks until the backlog and all in-flight requests
  /// have been answered, then stops the dispatchers. Idempotent.
  void shutdown();

  bool draining() const { return queue_.draining(); }

  ServerCounters counters() const;
  std::vector<DatasetInfo> dataset_infos() const;
  /// Resident ground set registered under `name`, or nullptr.
  const graph::GroundSet* ground_set(const std::string& name) const;
  double uptime_seconds() const { return uptime_.elapsed_seconds(); }
  ThreadPool& pool() noexcept { return pool_; }
  /// Wire-level request limits transports must enforce before parsing.
  const ParseLimits& limits() const noexcept { return config_.limits; }

 private:
  /// One manifest entry held resident for the life of the server. Exactly
  /// one of {memory, disk, external} backs `ground_set`.
  struct ResidentDataset {
    DatasetSpec spec;
    std::unique_ptr<data::Dataset> dataset;  // owns what `memory` references
    std::unique_ptr<graph::InMemoryGroundSet> memory;
    std::unique_ptr<graph::DiskGroundSet> disk;
    const graph::GroundSet* ground_set = nullptr;
    /// Resident constraint sidecars (empty when the spec named no file):
    /// per-element knapsack costs and partition-matroid group ids that
    /// constrained requests ("cost_budget" / "group_cap") select against.
    std::vector<double> costs;
    std::vector<std::uint32_t> groups;
  };

  void dispatch_loop(std::size_t slot);
  ServeResponse serve_select(api::SolverContext& context, PendingRequest& item,
                             const graph::GroundSet& ground_set);
  /// Single exit for every response: applies the serve.respond failpoint,
  /// bumps the outcome counter for the FINAL status, snapshots the counters
  /// into the response, stamps total latency, and invokes `done`.
  void finish(const ResponseCallback& done, ServeResponse response,
              const Timer* admitted);
  ServeResponse make_stats_response(const ServeRequest& request) const;

  ServerConfig config_;
  ThreadPool pool_;
  AdmissionQueue queue_;
  std::map<std::string, ResidentDataset> datasets_;
  /// Slot-indexed contexts: dispatcher i exclusively leases contexts_[i],
  /// so arenas are reused across that slot's sequential requests with zero
  /// cross-request locking.
  std::vector<std::unique_ptr<api::SolverContext>> contexts_;
  std::vector<std::thread> dispatchers_;

  Timer uptime_;
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> expired_in_queue_{0};
  std::atomic<std::uint64_t> completed_by_class_[kNumPriorities] = {};
  std::atomic<std::size_t> inflight_{0};
  std::atomic<bool> stopped_{false};
};

}  // namespace subsel::serve
