// Client side of the daemon's socket protocol, used by the example client,
// the socket mode of bench/serving_load, and the CI smoke job.
//
// One background reader thread parses response lines and matches them to
// outstanding requests by "id" — responses arrive in COMPLETION order, not
// submission order (an interactive request overtakes a queued batch one), so
// positional matching would be wrong. Responses that carry no known id
// (e.g. the typed reject for an oversized line, which has no id to echo) are
// collected on an unmatched list the caller can inspect.
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/json_parse.h"
#include "serve/wire.h"

namespace subsel::serve {

/// A response line decoded back into struct form (the subset of
/// ServeResponse a client acts on, plus the raw parsed document for
/// anything else).
struct ParsedResponse {
  std::string id;
  std::string status;  // complete|degraded|rejected|error|ok
  std::string reason;
  std::string detail;
  int schema_version = 0;
  std::size_t selected_count = 0;
  std::vector<std::uint64_t> selected;
  double objective = 0.0;
  LatencyBreakdown latency;
  /// Full document for fields not lifted above ("server", "datasets", ...).
  JsonValue document;

  bool complete() const noexcept { return status == "complete"; }
  bool degraded() const noexcept { return status == "degraded"; }
  /// Complete or degraded: carries a valid (possibly empty) selection.
  bool has_selection() const noexcept { return complete() || degraded(); }
};

/// Decodes one response line. Throws JsonParseError / std::runtime_error on
/// a line that is not a valid response document.
ParsedResponse parse_response(const std::string& line);

class ServeClient {
 public:
  /// Connects to the daemon's Unix socket; throws std::runtime_error when
  /// the daemon is not there.
  explicit ServeClient(const std::string& socket_path);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Sends `request` (its id must be non-empty and not already in flight)
  /// and returns a future for the matching response. The future carries an
  /// exception if the connection dies before the response arrives.
  std::future<ParsedResponse> submit(const ServeRequest& request);

  /// Sends a raw line and registers `id` for the response match — the
  /// malformed-input path for tests (the line need not be valid JSON, but
  /// the server's reject must echo `id` for the future to resolve; pass an
  /// empty id to fire-and-forget and fish the reply out of unmatched()).
  std::future<ParsedResponse> submit_raw(const std::string& id,
                                         const std::string& line);

  /// Blocking convenience: submit + wait.
  ParsedResponse call(const ServeRequest& request);

  /// Responses that matched no outstanding id (idless rejects, duplicates).
  std::vector<ParsedResponse> take_unmatched();

 private:
  void reader_loop();
  void deliver(const std::string& line);
  void send_line(const std::string& line);
  std::future<ParsedResponse> register_id(const std::string& id);
  void fail_pending(const std::string& why);

  int fd_ = -1;
  std::thread reader_;
  std::mutex mutex_;  // guards pending_, unmatched_, and writes to fd_
  std::map<std::string, std::promise<ParsedResponse>> pending_;
  std::deque<ParsedResponse> unmatched_;
  bool closed_ = false;
};

}  // namespace subsel::serve
