// Strict JSON parser for the serving wire protocol — the read-side companion
// of common/json.h (which is write-only by design; see its header).
//
// Serving is the one place the repo consumes JSON it did not produce, from
// clients it does not control, so the parser is deliberately strict where
// lenient parsers invite protocol drift:
//   - exactly one top-level value, no trailing bytes;
//   - duplicate object keys rejected (a request with two "deadline_ms"
//     fields means the client is confused — fail it, don't pick one);
//   - numbers must match the JSON grammar (no "inf", "nan", hex, or
//     leading '+' that strtod would happily accept);
//   - nesting depth is bounded so a hostile request cannot overflow the
//     parser's stack.
// Anything else throws JsonParseError with a byte offset, which the wire
// layer turns into a typed "malformed_json" reject — never a crash, never a
// silently defaulted field.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace subsel::serve {

class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& message, std::size_t offset)
      : std::runtime_error(message + " at byte " + std::to_string(offset)),
        offset_(offset) {}

  /// Byte offset into the input where parsing failed.
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// Immutable parsed JSON value. Small by design: the wire layer reads a
/// handful of scalar fields out of flat request objects, so objects are
/// stored as insertion-ordered key/value vectors (lookup is a linear scan —
/// requests have ~a dozen keys).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses exactly one JSON document from `text` (throws JsonParseError).
  /// `max_depth` bounds array/object nesting.
  static JsonValue parse(std::string_view text, std::size_t max_depth = 64);

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  /// Typed accessors; throw std::logic_error on a type mismatch (callers in
  /// the wire layer check type() first and map mismatches to typed rejects).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace subsel::serve
