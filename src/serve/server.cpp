#include "serve/server.h"

#include <stdexcept>
#include <utility>

#include "common/failpoint.h"
#include "core/bounding.h"
#include "data/dataset_io.h"

namespace subsel::serve {

SelectionServer::SelectionServer(const ServerConfig& config)
    : config_(config),
      pool_(config.pool_threads),
      queue_(config.queue_capacity) {
  for (const DatasetSpec& spec : config.datasets) {
    if (spec.name.empty()) {
      throw std::invalid_argument("ServerConfig: dataset with empty name");
    }
    if (datasets_.count(spec.name) != 0) {
      throw std::invalid_argument("ServerConfig: duplicate dataset \"" +
                                  spec.name + "\"");
    }
    ResidentDataset resident;
    resident.spec = spec;
    if (spec.disk) {
      auto scalars = data::load_dataset_scalars(spec.path);
      resident.disk = std::make_unique<graph::DiskGroundSet>(
          spec.path + ".graph", std::move(scalars.utilities), spec.cache);
      resident.ground_set = resident.disk.get();
    } else {
      resident.dataset =
          std::make_unique<data::Dataset>(data::load_dataset(spec.path));
      resident.memory = std::make_unique<graph::InMemoryGroundSet>(
          resident.dataset->graph, resident.dataset->utilities);
      resident.ground_set = resident.memory.get();
    }
    const std::size_t num_points = resident.ground_set->num_points();
    if (!spec.cost_file.empty()) {
      resident.costs = data::load_value_file(spec.cost_file, "cost");
      if (resident.costs.size() != num_points) {
        throw std::invalid_argument(
            "ServerConfig: cost file " + spec.cost_file + " has " +
            std::to_string(resident.costs.size()) + " entries for dataset \"" +
            spec.name + "\" of " + std::to_string(num_points) + " points");
      }
    }
    if (!spec.group_file.empty()) {
      resident.groups = data::load_group_file(spec.group_file);
      if (resident.groups.size() != num_points) {
        throw std::invalid_argument(
            "ServerConfig: group file " + spec.group_file + " has " +
            std::to_string(resident.groups.size()) + " entries for dataset \"" +
            spec.name + "\" of " + std::to_string(num_points) + " points");
      }
    }
    datasets_.emplace(spec.name, std::move(resident));
  }

  const std::size_t slots = std::max<std::size_t>(1, config.max_concurrent);
  contexts_.reserve(slots);
  dispatchers_.reserve(slots);
  for (std::size_t slot = 0; slot < slots; ++slot) {
    contexts_.push_back(std::make_unique<api::SolverContext>(&pool_));
  }
  for (std::size_t slot = 0; slot < slots; ++slot) {
    dispatchers_.emplace_back([this, slot] { dispatch_loop(slot); });
  }
}

SelectionServer::~SelectionServer() { shutdown(); }

void SelectionServer::register_ground_set(const std::string& name,
                                          const graph::GroundSet* ground_set) {
  if (ground_set == nullptr) {
    throw std::invalid_argument("register_ground_set: null ground set");
  }
  if (datasets_.count(name) != 0) {
    throw std::invalid_argument("register_ground_set: duplicate dataset \"" +
                                name + "\"");
  }
  ResidentDataset resident;
  resident.spec.name = name;
  resident.ground_set = ground_set;
  datasets_.emplace(name, std::move(resident));
}

void SelectionServer::begin_drain() { queue_.begin_drain(); }

void SelectionServer::shutdown() {
  begin_drain();
  if (stopped_.exchange(true)) return;
  for (std::thread& dispatcher : dispatchers_) dispatcher.join();
}

ServerCounters SelectionServer::counters() const {
  ServerCounters counters;
  counters.accepted = accepted_.load(std::memory_order_relaxed);
  counters.rejected = rejected_.load(std::memory_order_relaxed);
  counters.completed = completed_.load(std::memory_order_relaxed);
  counters.degraded = degraded_.load(std::memory_order_relaxed);
  counters.errors = errors_.load(std::memory_order_relaxed);
  counters.expired_in_queue = expired_in_queue_.load(std::memory_order_relaxed);
  for (std::size_t klass = 0; klass < kNumPriorities; ++klass) {
    counters.completed_by_class[klass] =
        completed_by_class_[klass].load(std::memory_order_relaxed);
  }
  counters.queue_depth = queue_.depth();
  counters.queue_depth_high_water = queue_.high_water();
  counters.inflight = inflight_.load(std::memory_order_relaxed);
  return counters;
}

std::vector<DatasetInfo> SelectionServer::dataset_infos() const {
  std::vector<DatasetInfo> infos;
  infos.reserve(datasets_.size());
  for (const auto& [name, resident] : datasets_) {
    infos.push_back(DatasetInfo{name, resident.ground_set->num_points(),
                                resident.disk != nullptr});
  }
  return infos;
}

const graph::GroundSet* SelectionServer::ground_set(const std::string& name) const {
  const auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : it->second.ground_set;
}

ServeResponse SelectionServer::make_stats_response(const ServeRequest& request) const {
  ServeResponse response;
  response.id = request.id;
  response.status = ServeResponse::Status::kStats;
  response.datasets = dataset_infos();
  response.uptime_seconds = uptime_seconds();
  return response;
}

void SelectionServer::finish(const ResponseCallback& done, ServeResponse response,
                             const Timer* admitted) {
  if (SUBSEL_FAILPOINT_TRIGGERED("serve.respond")) {
    // The daemon's contract under faults: a typed error response for THIS
    // request, normal service for every other. Keep the id and whatever
    // latency was already measured; drop the payload.
    ServeResponse error;
    error.id = std::move(response.id);
    error.status = ServeResponse::Status::kError;
    error.reason = "injected_fault";
    error.detail = "injected fault at failpoint serve.respond";
    error.dataset = std::move(response.dataset);
    error.priority = response.priority;
    error.latency = response.latency;
    response = std::move(error);
  }
  switch (response.status) {
    case ServeResponse::Status::kComplete:
      completed_.fetch_add(1, std::memory_order_relaxed);
      completed_by_class_[static_cast<std::size_t>(response.priority)]
          .fetch_add(1, std::memory_order_relaxed);
      break;
    case ServeResponse::Status::kDegraded:
      degraded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ServeResponse::Status::kRejected:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ServeResponse::Status::kError:
      errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ServeResponse::Status::kStats: break;
  }
  response.counters = counters();
  if (admitted != nullptr) {
    response.latency.total_seconds = admitted->elapsed_seconds();
  }
  done(std::move(response));
}

void SelectionServer::submit(ServeRequest request, ResponseCallback done) {
  if (request.kind == ServeRequest::Kind::kStats) {
    finish(done, make_stats_response(request), nullptr);
    return;
  }

  ServeResponse response;
  response.id = request.id;
  response.dataset = request.dataset;
  response.solver = request.solver;
  response.objective_name = request.objective;
  response.priority = request.priority;

  if (SUBSEL_FAILPOINT_TRIGGERED("serve.accept")) {
    response.status = ServeResponse::Status::kError;
    response.reason = "injected_fault";
    response.detail = "injected fault at failpoint serve.accept";
    finish(done, std::move(response), nullptr);
    return;
  }

  const auto it = datasets_.find(request.dataset);
  if (it == datasets_.end()) {
    response.status = ServeResponse::Status::kRejected;
    response.reason = "unknown_dataset";
    std::string known;
    for (const auto& [name, unused] : datasets_) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    response.detail =
        "dataset \"" + request.dataset + "\" is not resident (known: " + known + ")";
    finish(done, std::move(response), nullptr);
    return;
  }
  const graph::GroundSet* ground_set = it->second.ground_set;

  auto item = std::make_unique<PendingRequest>();
  const std::uint64_t deadline_ms =
      request.deadline_ms > 0 ? request.deadline_ms : config_.default_deadline_ms;
  item->deadline =
      deadline_ms > 0 ? Deadline::after_ms(deadline_ms) : Deadline::unlimited();
  item->request = std::move(request);
  item->done = std::move(done);

  if (SUBSEL_FAILPOINT_TRIGGERED("serve.enqueue")) {
    response.status = ServeResponse::Status::kError;
    response.reason = "injected_fault";
    response.detail = "injected fault at failpoint serve.enqueue";
    finish(item->done, std::move(response), nullptr);
    return;
  }

  item->ground_set = ground_set;
  const std::string reject = queue_.try_push(item);
  if (!reject.empty()) {
    response.status = ServeResponse::Status::kRejected;
    response.reason = reject;
    response.detail = reject == "queue_full"
                          ? "admission queue at capacity (" +
                                std::to_string(queue_.capacity()) + ")"
                          : "server is draining; resubmit elsewhere";
    finish(item->done, std::move(response), nullptr);
    return;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
}

std::future<ServeResponse> SelectionServer::submit(ServeRequest request) {
  auto promise = std::make_shared<std::promise<ServeResponse>>();
  std::future<ServeResponse> future = promise->get_future();
  submit(std::move(request),
         [promise](ServeResponse response) { promise->set_value(std::move(response)); });
  return future;
}

void SelectionServer::dispatch_loop(std::size_t slot) {
  api::SolverContext& context = *contexts_[slot];
  while (std::unique_ptr<PendingRequest> item = queue_.pop()) {
    inflight_.fetch_add(1, std::memory_order_relaxed);
    ServeResponse response =
        serve_select(context, *item, *item->ground_set);
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    finish(item->done, std::move(response), &item->queued);
  }
}

ServeResponse SelectionServer::serve_select(api::SolverContext& context,
                                            PendingRequest& item,
                                            const graph::GroundSet& ground_set) {
  const ServeRequest& request = item.request;
  ServeResponse response;
  response.id = request.id;
  response.dataset = request.dataset;
  response.solver = request.solver;
  response.objective_name = request.objective;
  response.priority = request.priority;
  response.latency.queue_seconds = item.queued.elapsed_seconds();

  // The end-to-end budget covers the queue: a request that waited past its
  // deadline is answered now, without burning a solver slot on work the
  // client has already written off.
  if (item.deadline.expired()) {
    expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
    response.status = ServeResponse::Status::kDegraded;
    response.reason = "queued_past_deadline";
    response.detail = "deadline expired after " +
                      std::to_string(static_cast<std::uint64_t>(
                          response.latency.queue_seconds * 1e3)) +
                      " ms in the admission queue";
    return response;
  }

  api::SelectionRequest selection;
  selection.ground_set = &ground_set;
  selection.k = request.k;
  selection.fraction = request.fraction;
  selection.objective_name = request.objective;
  selection.objective = core::ObjectiveParams::from_alpha(request.alpha);
  selection.facility_location.self_similarity = request.self_similarity;
  selection.facility_location.utility_weighted = request.utility_weighted;
  selection.coverage.saturation = request.saturation;
  selection.coverage.self_similarity = request.self_similarity;
  selection.coverage.utility_weighted = request.utility_weighted;
  selection.seed = request.seed;
  selection.solver = request.solver;
  selection.distributed.num_machines = request.machines;
  selection.distributed.num_rounds = request.rounds;
  selection.distributed.stochastic_epsilon = request.epsilon;
  selection.streaming.epsilon = request.epsilon;
  if (request.cost_budget > 0.0 || request.group_cap > 0) {
    // Constrained request: the budgets come from the wire, the per-element
    // cost/group vectors from the dataset's resident sidecars. A budget
    // against a dataset served without the matching sidecar is a typed
    // request error — never a silently unconstrained solve.
    const ResidentDataset& resident = datasets_.at(request.dataset);
    if (request.cost_budget > 0.0) {
      if (resident.costs.empty()) {
        response.status = ServeResponse::Status::kError;
        response.reason = "invalid_request";
        response.detail = "request sets cost_budget but dataset \"" +
                          request.dataset +
                          "\" is resident without a cost sidecar (--cost-file)";
        return response;
      }
      selection.constraints.costs = resident.costs;
      selection.constraints.cost_budget = request.cost_budget;
    }
    if (request.group_cap > 0) {
      if (resident.groups.empty()) {
        response.status = ServeResponse::Status::kError;
        response.reason = "invalid_request";
        response.detail =
            "request sets group_cap but dataset \"" + request.dataset +
            "\" is resident without a group sidecar (--group-file)";
        return response;
      }
      selection.constraints.groups = resident.groups;
      selection.constraints.group_cap = request.group_cap;
    }
  }
  if (request.bounding == "none") {
    selection.bounding.enabled = false;
  } else if (request.bounding == "exact") {
    selection.bounding.sampling = core::BoundingSampling::kNone;
  } else if (request.bounding == "weighted") {
    selection.bounding.sampling = core::BoundingSampling::kWeighted;
  }  // "uniform" is the BoundingOptions default

  // The remaining end-to-end budget governs the solve via the context-level
  // deadline (request.deadline_ms would restart the clock at dispatch).
  context.set_deadline(item.deadline);
  Timer solve;
  try {
    api::SelectionReport report =
        api::SolverRegistry::instance().run(selection, context);
    response.latency.solve_seconds = solve.elapsed_seconds();
    Timer assemble;
    if (report.degraded) {
      response.status = ServeResponse::Status::kDegraded;
      response.reason = "deadline_expired";
      response.detail = report.degraded_reason;
    } else {
      response.status = ServeResponse::Status::kComplete;
    }
    response.selected_count = report.selected.size();
    if (request.return_selection) response.selected = std::move(report.selected);
    response.objective = report.objective;
    response.disk_cache = report.disk_cache;
    response.latency.report_seconds = assemble.elapsed_seconds();
  } catch (const std::invalid_argument& e) {
    // Post-admission validation (k > |V|, solver x objective mismatch, bad
    // objective options): the request itself is at fault.
    response.latency.solve_seconds = solve.elapsed_seconds();
    response.status = ServeResponse::Status::kError;
    response.reason = "invalid_request";
    response.detail = e.what();
  } catch (const graph::DiskFormatError& e) {
    response.latency.solve_seconds = solve.elapsed_seconds();
    response.status = ServeResponse::Status::kError;
    response.reason = "disk_error";
    response.detail = e.what();
  } catch (const TaskError& e) {
    response.latency.solve_seconds = solve.elapsed_seconds();
    response.status = ServeResponse::Status::kError;
    response.reason = "worker_fault";
    response.detail = e.what();
  } catch (const failpoint::FailpointError& e) {
    response.latency.solve_seconds = solve.elapsed_seconds();
    response.status = ServeResponse::Status::kError;
    response.reason = "injected_fault";
    response.detail = e.what();
  } catch (const std::exception& e) {
    response.latency.solve_seconds = solve.elapsed_seconds();
    response.status = ServeResponse::Status::kError;
    response.reason = "internal_error";
    response.detail = e.what();
  }
  // The context is slot-leased and reused by the next request; clear the
  // per-request budget so it cannot leak across requests.
  context.set_deadline(Deadline::unlimited());
  return response;
}

}  // namespace subsel::serve
