#include "serve/socket_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace subsel::serve {

namespace {

int make_listener(const std::string& path) {
  if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw std::runtime_error("SocketServer: socket path empty or too long: \"" +
                             path + "\"");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("SocketServer: socket(): ") +
                             std::strerror(errno));
  }
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  std::strncpy(address.sun_path, path.c_str(), sizeof(address.sun_path) - 1);
  // A stale socket file from a crashed daemon blocks bind(); replace it.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error("SocketServer: bind(" + path +
                             "): " + std::strerror(saved));
  }
  if (::listen(fd, 64) != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(path.c_str());
    throw std::runtime_error("SocketServer: listen(" + path +
                             "): " + std::strerror(saved));
  }
  return fd;
}

}  // namespace

SocketServer::Connection::~Connection() { ::close(fd); }

void SocketServer::Connection::write_line(const std::string& line) {
  std::lock_guard lock(write_mutex);
  std::size_t written = 0;
  const std::string payload = line + "\n";
  while (written < payload.size()) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE here, not as a
    // process-killing SIGPIPE on a dispatcher thread.
    const ssize_t n = ::send(fd, payload.data() + written,
                             payload.size() - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // peer gone; the response has no recipient
  }
}

SocketServer::SocketServer(SelectionServer& server, std::string socket_path)
    : server_(server),
      socket_path_(std::move(socket_path)),
      listen_fd_(make_listener(socket_path_)) {}

SocketServer::~SocketServer() {
  stop();
  for (std::thread& reader : readers_) {
    if (reader.joinable()) reader.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(socket_path_.c_str());
}

void SocketServer::run(const std::atomic<bool>* stop_flag) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (stop_flag != nullptr && stop_flag->load(std::memory_order_relaxed)) {
      break;
    }
    // Poll with a timeout so a signal-raised stop flag is honored promptly
    // even when no connection ever arrives.
    pollfd waiter{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&waiter, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener closed or unrecoverable
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto connection = std::make_shared<Connection>(fd);
    {
      std::lock_guard lock(connections_mutex_);
      connections_.push_back(connection);
      readers_.emplace_back(
          [this, connection] { handle_connection(connection); });
    }
  }

  // Graceful drain: refuse new work, let queued + in-flight requests answer,
  // then sever the read side so every client sees a clean EOF.
  server_.begin_drain();
  server_.shutdown();
  {
    std::lock_guard lock(connections_mutex_);
    for (const auto& weak : connections_) {
      if (const auto connection = weak.lock()) {
        ::shutdown(connection->fd, SHUT_RD);
      }
    }
  }
}

void SocketServer::stop() { stopping_.store(true, std::memory_order_relaxed); }

void SocketServer::handle_connection(const std::shared_ptr<Connection>& connection) {
  std::string pending;
  char buffer[4096];
  // When a line overruns the request byte limit we reject once, then discard
  // until the next newline so the connection can resync.
  bool discarding = false;

  for (;;) {
    const ssize_t n = ::recv(connection->fd, buffer, sizeof(buffer), 0);
    if (n == 0) break;  // client closed (or drain half-closed us)
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    pending.append(buffer, static_cast<std::size_t>(n));
    for (;;) {
      const std::size_t newline = pending.find('\n');
      if (newline == std::string::npos) break;
      std::string line = pending.substr(0, newline);
      pending.erase(0, newline + 1);
      if (discarding) {
        discarding = false;  // the tail of the oversized line; drop it
        continue;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      handle_line(connection, line);
    }
    if (pending.size() > server_.limits().max_request_bytes) {
      ServeResponse reject;
      reject.status = ServeResponse::Status::kRejected;
      reject.reason = request_error_code_name(RequestError::Code::kOversized);
      reject.detail = "request line exceeds " +
                      std::to_string(server_.limits().max_request_bytes) +
                      " bytes";
      connection->write_line(reject.to_json());
      pending.clear();
      discarding = true;
    }
  }
}

void SocketServer::handle_line(const std::shared_ptr<Connection>& connection,
                               const std::string& line) {
  ServeRequest request;
  try {
    request = parse_request(line, server_.limits());
  } catch (const RequestError& e) {
    ServeResponse reject;
    reject.id = e.id();
    reject.status = ServeResponse::Status::kRejected;
    reject.reason = request_error_code_name(e.code());
    reject.detail = e.what();
    connection->write_line(reject.to_json());
    return;
  }
  server_.submit(std::move(request), [connection](ServeResponse response) {
    connection->write_line(response.to_json());
  });
}

}  // namespace subsel::serve
