#include "serve/json_parse.h"

#include <cerrno>
#include <cstdlib>

namespace subsel::serve {

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw std::logic_error("JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) throw std::logic_error("JsonValue: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) throw std::logic_error("JsonValue: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::kArray) throw std::logic_error("JsonValue: not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  if (type_ != Type::kObject) throw std::logic_error("JsonValue: not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

/// Recursive-descent parser over a string_view. Named (rather than a lambda
/// nest) so JsonValue can befriend it.
class JsonParser {
 public:
  JsonParser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonValue run() {
    skip_whitespace();
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError(message, pos_);
  }

  bool at_end() const noexcept { return pos_ >= text_.size(); }
  char peek() const noexcept { return text_[pos_]; }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return;
      ++pos_;
    }
  }

  void expect(char c) {
    if (at_end() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > max_depth_) fail("nesting too deep");
    if (at_end()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        JsonValue value;
        value.type_ = JsonValue::Type::kString;
        value.string_ = parse_string();
        return value;
      }
      case 't':
      case 'f': {
        JsonValue value;
        value.type_ = JsonValue::Type::kBool;
        if (consume_literal("true")) {
          value.bool_ = true;
        } else if (consume_literal("false")) {
          value.bool_ = false;
        } else {
          fail("invalid literal");
        }
        return value;
      }
      case 'n': {
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue();
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{');
    JsonValue value;
    value.type_ = JsonValue::Type::kObject;
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      // Strict: a duplicated key means the document's meaning is ambiguous.
      for (const auto& [existing, unused] : value.members_) {
        if (existing == key) fail("duplicate object key \"" + key + "\"");
      }
      skip_whitespace();
      expect(':');
      skip_whitespace();
      value.members_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[');
    JsonValue value;
    value.type_ = JsonValue::Type::kArray;
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      skip_whitespace();
      value.items_.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  std::string parse_string() {
    if (at_end() || peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    for (;;) {
      if (at_end()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_unicode_escape(out); break;
        default:
          pos_ -= 1;
          fail("invalid escape");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return code;
  }

  void append_unicode_escape(std::string& out) {
    std::uint32_t code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: must pair with a following \uDC00-\uDFFF escape.
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
        fail("lone high surrogate");
      }
      pos_ += 2;
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("lone low surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  JsonValue parse_number() {
    // Validate the exact JSON number grammar before handing to strtod —
    // strtod alone also accepts "inf", "nan", hex floats, and leading '+'.
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end()) fail("invalid number");
    if (peek() == '0') {
      ++pos_;
    } else if (peek() >= '1' && peek() <= '9') {
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    } else {
      fail("invalid number");
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') fail("invalid number");
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') fail("invalid number");
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    if (errno == ERANGE && (parsed > 1.0 || parsed < -1.0)) {
      fail("number out of range");
    }
    JsonValue value;
    value.type_ = JsonValue::Type::kNumber;
    value.number_ = parsed;
    return value;
  }

  std::string_view text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text, std::size_t max_depth) {
  return JsonParser(text, max_depth).run();
}

}  // namespace subsel::serve
