// Configuration of the long-lived selection daemon: which datasets to keep
// resident, how much concurrency to run, and how aggressively to shed load.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/disk_ground_set.h"
#include "serve/wire.h"

namespace subsel::serve {

/// One entry of the dataset manifest. The server loads every entry at
/// startup and keeps it resident for the life of the process — requests
/// reference datasets by `name` and never pay a load.
struct DatasetSpec {
  /// Manifest key requests use ("dataset" field).
  std::string name;
  /// Dataset prefix in the data/dataset_io.h format (PATH + PATH.graph).
  std::string path;
  /// Keep only the per-point scalars in DRAM and serve the adjacency through
  /// the sharded block cache (graph::DiskGroundSet); default materializes
  /// everything.
  bool disk = false;
  /// Block-cache geometry for the disk path.
  graph::DiskGroundSetConfig cache;
  /// Optional one-value-per-line sidecar files loaded resident alongside the
  /// dataset: per-element knapsack costs and partition-matroid group ids.
  /// Requests against this dataset may then carry "cost_budget" /
  /// "group_cap"; without the sidecar such requests error with
  /// "invalid_request".
  std::string cost_file;
  std::string group_file;
};

struct ServerConfig {
  std::vector<DatasetSpec> datasets;

  /// Bounded admission backlog across both priority classes; a push beyond
  /// this rejects with "queue_full" (load shedding, never OOM).
  std::size_t queue_capacity = 128;

  /// Solver slots: requests solved concurrently. Each slot leases its own
  /// SolverContext (arena reuse across sequential requests) over the one
  /// shared ThreadPool.
  std::size_t max_concurrent = 2;

  /// Worker threads in the shared solver pool (0 = hardware concurrency).
  std::size_t pool_threads = 0;

  /// Deadline applied to requests that do not carry their own deadline_ms
  /// (0 = unlimited). The clock starts at admission either way.
  std::uint64_t default_deadline_ms = 0;

  /// Wire-level request limits (max bytes per request line).
  ParseLimits limits;
};

}  // namespace subsel::serve
