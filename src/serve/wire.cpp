#include "serve/wire.h"

#include <cmath>

#include "api/objective_registry.h"
#include "api/solver_registry.h"
#include "common/json.h"
#include "serve/json_parse.h"

namespace subsel::serve {

const char* priority_name(Priority priority) noexcept {
  switch (priority) {
    case Priority::kInteractive: return "interactive";
    case Priority::kBatch: return "batch";
  }
  return "unknown";
}

const char* request_error_code_name(RequestError::Code code) noexcept {
  switch (code) {
    case RequestError::Code::kMalformedJson: return "malformed_json";
    case RequestError::Code::kOversized: return "oversized_request";
    case RequestError::Code::kMissingField: return "missing_field";
    case RequestError::Code::kBadField: return "bad_field";
    case RequestError::Code::kUnknownField: return "unknown_field";
    case RequestError::Code::kUnknownType: return "unknown_type";
    case RequestError::Code::kUnknownSolver: return "unknown_solver";
    case RequestError::Code::kUnknownObjective: return "unknown_objective";
  }
  return "unknown";
}

namespace {

using Code = RequestError::Code;

/// Field accessors over the parsed request object. Every type mismatch is a
/// typed kBadField reject carrying the field name — the strict mirror of
/// CliArgs' full-consume numeric parsing.
class Fields {
 public:
  Fields(const JsonValue& root, std::string id) : root_(root), id_(std::move(id)) {}

  const std::string& id() const noexcept { return id_; }

  [[noreturn]] void reject(Code code, const std::string& message) const {
    throw RequestError(code, message, id_);
  }

  std::optional<std::string> get_string(std::string_view name) const {
    const JsonValue* value = root_.find(name);
    if (value == nullptr) return std::nullopt;
    if (!value->is_string()) {
      reject(Code::kBadField, std::string(name) + " must be a string");
    }
    return value->as_string();
  }

  std::optional<double> get_number(std::string_view name) const {
    const JsonValue* value = root_.find(name);
    if (value == nullptr) return std::nullopt;
    if (!value->is_number()) {
      reject(Code::kBadField, std::string(name) + " must be a number");
    }
    return value->as_number();
  }

  std::optional<std::size_t> get_size(std::string_view name) const {
    const auto number = get_number(name);
    if (!number.has_value()) return std::nullopt;
    if (!(*number >= 0.0) || *number != std::floor(*number) ||
        *number > 9007199254740992.0 /* 2^53 */) {
      reject(Code::kBadField,
             std::string(name) + " must be a non-negative integer");
    }
    return static_cast<std::size_t>(*number);
  }

  std::optional<bool> get_bool(std::string_view name) const {
    const JsonValue* value = root_.find(name);
    if (value == nullptr) return std::nullopt;
    if (!value->is_bool()) {
      reject(Code::kBadField, std::string(name) + " must be a boolean");
    }
    return value->as_bool();
  }

  /// Strict schema enforcement: every key present must be in `allowed`.
  void require_known_keys(std::initializer_list<std::string_view> allowed) const {
    for (const auto& [key, unused] : root_.members()) {
      bool known = false;
      for (std::string_view name : allowed) {
        if (key == name) {
          known = true;
          break;
        }
      }
      if (!known) {
        reject(Code::kUnknownField, "unknown request field \"" + key + "\"");
      }
    }
  }

 private:
  const JsonValue& root_;
  std::string id_;
};

ServeRequest parse_select(const Fields& fields) {
  ServeRequest request;
  request.kind = ServeRequest::Kind::kSelect;
  request.id = fields.id();

  fields.require_known_keys({"type", "id", "dataset", "priority", "deadline_ms",
                             "k", "fraction", "solver", "objective", "alpha",
                             "saturation", "self_similarity", "utility_weighted",
                             "seed", "machines", "rounds", "epsilon", "bounding",
                             "cost_budget", "group_cap", "return_selection"});

  const auto dataset = fields.get_string("dataset");
  if (!dataset.has_value() || dataset->empty()) {
    fields.reject(Code::kMissingField, "select request needs \"dataset\"");
  }
  request.dataset = *dataset;

  request.k = fields.get_size("k").value_or(0);
  request.fraction = fields.get_number("fraction").value_or(0.0);
  if (request.k == 0 && !(request.fraction > 0.0 && request.fraction <= 1.0)) {
    if (fields.get_number("fraction").has_value()) {
      fields.reject(Code::kBadField, "fraction must be in (0, 1]");
    }
    fields.reject(Code::kMissingField,
                  "select request needs \"k\" >= 1 or \"fraction\" in (0, 1]");
  }

  if (const auto priority = fields.get_string("priority"); priority.has_value()) {
    if (*priority == "interactive") {
      request.priority = Priority::kInteractive;
    } else if (*priority == "batch") {
      request.priority = Priority::kBatch;
    } else {
      fields.reject(Code::kBadField,
                    "priority must be \"interactive\" or \"batch\", not \"" +
                        *priority + "\"");
    }
  }

  request.deadline_ms =
      static_cast<std::uint64_t>(fields.get_size("deadline_ms").value_or(0));

  if (const auto solver = fields.get_string("solver"); solver.has_value()) {
    request.solver = *solver;
  }
  if (!api::SolverRegistry::instance().contains(request.solver)) {
    fields.reject(Code::kUnknownSolver,
                  "unknown solver \"" + request.solver +
                      "\" (see `subsel solvers`)");
  }
  if (const auto objective = fields.get_string("objective"); objective.has_value()) {
    request.objective = *objective;
  }
  if (!api::ObjectiveRegistry::instance().contains(request.objective)) {
    fields.reject(Code::kUnknownObjective,
                  "unknown objective \"" + request.objective +
                      "\" (see `subsel objectives`)");
  }

  request.alpha = fields.get_number("alpha").value_or(request.alpha);
  request.saturation = fields.get_number("saturation").value_or(request.saturation);
  request.self_similarity =
      fields.get_number("self_similarity").value_or(request.self_similarity);
  request.utility_weighted =
      fields.get_bool("utility_weighted").value_or(request.utility_weighted);
  request.seed =
      static_cast<std::uint64_t>(fields.get_size("seed").value_or(23));
  request.machines = fields.get_size("machines").value_or(request.machines);
  request.rounds = fields.get_size("rounds").value_or(request.rounds);
  request.epsilon = fields.get_number("epsilon").value_or(request.epsilon);
  request.cost_budget = fields.get_number("cost_budget").value_or(0.0);
  if (request.cost_budget < 0.0 || !std::isfinite(request.cost_budget)) {
    fields.reject(Code::kBadField, "cost_budget must be a finite number >= 0");
  }
  request.group_cap = fields.get_size("group_cap").value_or(0);
  request.return_selection =
      fields.get_bool("return_selection").value_or(true);

  if (const auto bounding = fields.get_string("bounding"); bounding.has_value()) {
    if (*bounding != "none" && *bounding != "exact" && *bounding != "uniform" &&
        *bounding != "weighted") {
      fields.reject(Code::kBadField,
                    "bounding must be none|exact|uniform|weighted, not \"" +
                        *bounding + "\"");
    }
    request.bounding = *bounding;
  }
  // Constrained requests default to bounding "none": the bounding pre-pass
  // is unconstrained and incompatible with selection budgets, so a client
  // opting into cost_budget/group_cap shouldn't also have to disable the
  // server-side default. An explicit "bounding" value is honored and, if it
  // conflicts, rejected downstream with the typed incompatibility reason.
  if ((request.cost_budget > 0.0 || request.group_cap > 0) &&
      !fields.get_string("bounding").has_value()) {
    request.bounding = "none";
  }
  return request;
}

}  // namespace

ServeRequest parse_request(std::string_view line, const ParseLimits& limits) {
  if (line.size() > limits.max_request_bytes) {
    throw RequestError(Code::kOversized,
                       "request of " + std::to_string(line.size()) +
                           " bytes exceeds the " +
                           std::to_string(limits.max_request_bytes) +
                           "-byte limit");
  }

  JsonValue root;
  try {
    root = JsonValue::parse(line);
  } catch (const JsonParseError& e) {
    throw RequestError(Code::kMalformedJson, e.what());
  }
  if (!root.is_object()) {
    throw RequestError(Code::kMalformedJson, "request must be a JSON object");
  }

  // Pull the id before anything else so later rejects can carry it.
  std::string id;
  if (const JsonValue* id_value = root.find("id"); id_value != nullptr) {
    if (!id_value->is_string()) {
      throw RequestError(Code::kBadField, "id must be a string");
    }
    id = id_value->as_string();
  }
  const Fields fields(root, id);
  if (id.empty()) {
    fields.reject(Code::kMissingField, "request needs a non-empty \"id\"");
  }

  const auto type = fields.get_string("type");
  if (!type.has_value()) {
    fields.reject(Code::kMissingField, "request needs \"type\"");
  }
  if (*type == "select") return parse_select(fields);
  if (*type == "stats") {
    fields.require_known_keys({"type", "id"});
    ServeRequest request;
    request.kind = ServeRequest::Kind::kStats;
    request.id = id;
    return request;
  }
  fields.reject(Code::kUnknownType,
                "unknown request type \"" + *type + "\" (select|stats)");
}

std::string ServeRequest::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("type").value(kind == Kind::kStats ? "stats" : "select");
  json.key("id").value(id);
  if (kind == Kind::kStats) {
    json.end_object();
    return json.str();
  }
  json.key("dataset").value(dataset);
  json.key("priority").value(priority_name(priority));
  if (deadline_ms != 0) json.key("deadline_ms").value(deadline_ms);
  if (k != 0) json.key("k").value(k);
  if (fraction > 0.0) json.key("fraction").value(fraction);
  json.key("solver").value(solver);
  json.key("objective").value(objective);
  json.key("alpha").value(alpha);
  json.key("saturation").value(saturation);
  json.key("self_similarity").value(self_similarity);
  json.key("utility_weighted").value(utility_weighted);
  json.key("seed").value(seed);
  json.key("machines").value(machines);
  json.key("rounds").value(rounds);
  json.key("epsilon").value(epsilon);
  json.key("bounding").value(bounding);
  if (cost_budget > 0.0) json.key("cost_budget").value(cost_budget);
  if (group_cap != 0) json.key("group_cap").value(group_cap);
  json.key("return_selection").value(return_selection);
  json.end_object();
  return json.str();
}

const char* ServeResponse::status_name() const noexcept {
  switch (status) {
    case Status::kComplete: return "complete";
    case Status::kDegraded: return "degraded";
    case Status::kRejected: return "rejected";
    case Status::kError: return "error";
    case Status::kStats: return "ok";
  }
  return "unknown";
}

std::string ServeResponse::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("schema").value(kResponseSchema);
  json.key("schema_version").value(kServeSchemaVersion);
  json.key("id").value(id);
  json.key("status").value(status_name());
  json.key("reason").value(reason);
  json.key("detail").value(detail);

  if (status == Status::kStats) {
    json.key("uptime_seconds").value(uptime_seconds);
    json.key("datasets").begin_array();
    for (const DatasetInfo& info : datasets) {
      json.begin_object();
      json.key("name").value(info.name);
      json.key("num_points").value(info.num_points);
      json.key("disk").value(info.disk);
      json.end_object();
    }
    json.end_array();
  } else if (status != Status::kRejected) {
    json.key("dataset").value(dataset);
    json.key("solver").value(solver);
    json.key("objective_name").value(objective_name);
    json.key("priority").value(priority_name(priority));
    json.key("selected_count").value(selected_count);
    json.key("selected").begin_array();
    for (core::NodeId node : selected) {
      json.value(static_cast<std::uint64_t>(node));
    }
    json.end_array();
    json.key("objective").value(objective);
    if (disk_cache.has_value()) {
      json.key("disk_cache").begin_object();
      json.key("num_shards").value(disk_cache->num_shards);
      json.key("hits").value(disk_cache->hits);
      json.key("misses").value(disk_cache->misses);
      json.key("prefetch_issued").value(disk_cache->prefetch_issued);
      json.key("prefetch_loaded").value(disk_cache->prefetch_loaded);
      json.key("read_retries").value(disk_cache->read_retries);
      json.key("prefetch_degraded").value(disk_cache->prefetch_degraded);
      json.key("resident_blocks_high_water")
          .value(disk_cache->resident_blocks_high_water);
      json.key("max_cached_blocks").value(disk_cache->max_cached_blocks);
      json.end_object();
    }
  }

  json.key("latency").begin_object();
  json.key("queue_seconds").value(latency.queue_seconds);
  json.key("solve_seconds").value(latency.solve_seconds);
  json.key("report_seconds").value(latency.report_seconds);
  json.key("total_seconds").value(latency.total_seconds);
  json.end_object();

  json.key("server").begin_object();
  json.key("accepted").value(counters.accepted);
  json.key("rejected").value(counters.rejected);
  json.key("completed").value(counters.completed);
  json.key("degraded").value(counters.degraded);
  json.key("errors").value(counters.errors);
  json.key("expired_in_queue").value(counters.expired_in_queue);
  json.key("completed_interactive")
      .value(counters.completed_by_class[static_cast<std::size_t>(
          Priority::kInteractive)]);
  json.key("completed_batch")
      .value(counters.completed_by_class[static_cast<std::size_t>(
          Priority::kBatch)]);
  json.key("queue_depth").value(counters.queue_depth);
  json.key("queue_depth_high_water").value(counters.queue_depth_high_water);
  json.key("inflight").value(counters.inflight);
  json.end_object();

  json.end_object();
  return json.str();
}

}  // namespace subsel::serve
