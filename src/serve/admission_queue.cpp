#include "serve/admission_queue.h"

#include <algorithm>

namespace subsel::serve {

AdmissionQueue::AdmissionQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

std::string AdmissionQueue::try_push(std::unique_ptr<PendingRequest>& item) {
  {
    std::lock_guard lock(mutex_);
    if (draining_) return "draining";
    if (depth_ >= capacity_) return "queue_full";
    const auto klass = static_cast<std::size_t>(item->request.priority);
    queues_[klass].push_back(std::move(item));
    ++depth_;
    high_water_ = std::max(high_water_, depth_);
  }
  ready_.notify_one();
  return "";
}

std::unique_ptr<PendingRequest> AdmissionQueue::pop() {
  std::unique_lock lock(mutex_);
  ready_.wait(lock, [this] { return depth_ > 0 || draining_; });
  if (depth_ == 0) return nullptr;  // draining and dry
  for (auto& queue : queues_) {     // highest priority class first
    if (queue.empty()) continue;
    auto item = std::move(queue.front());
    queue.pop_front();
    --depth_;
    return item;
  }
  return nullptr;  // unreachable: depth_ > 0 implies a non-empty class
}

void AdmissionQueue::begin_drain() {
  {
    std::lock_guard lock(mutex_);
    draining_ = true;
  }
  // Wake every blocked dispatcher so it can run the backlog dry and exit.
  ready_.notify_all();
}

bool AdmissionQueue::draining() const {
  std::lock_guard lock(mutex_);
  return draining_;
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard lock(mutex_);
  return depth_;
}

std::size_t AdmissionQueue::depth_of(Priority priority) const {
  std::lock_guard lock(mutex_);
  return queues_[static_cast<std::size_t>(priority)].size();
}

std::size_t AdmissionQueue::high_water() const {
  std::lock_guard lock(mutex_);
  return high_water_;
}

}  // namespace subsel::serve
