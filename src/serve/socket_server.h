// Local-socket transport for the selection daemon: a Unix-domain stream
// listener speaking the newline-delimited-JSON protocol of wire.h.
//
// One reader thread per connection parses request lines and hands them to
// SelectionServer::submit; responses are written back on whatever thread
// completes them (a connection-level mutex serializes the writes, and since
// solves finish out of order, responses are matched to requests by "id",
// never by position). Parse failures answer with a typed reject on the same
// connection and never tear it down — except an oversized line, where the
// remainder of the line is discarded before resuming at the next newline.
//
// Graceful drain: stop() (the SIGTERM path) closes the listener, flips the
// server into drain mode (new requests reject with "draining"), half-closes
// every live connection for reading so clients see EOF after their pending
// responses arrive, and returns once the backlog is answered.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.h"

namespace subsel::serve {

class SocketServer {
 public:
  /// Binds and listens on `socket_path` (a stale socket file from a dead
  /// process is replaced). Throws std::runtime_error on bind/listen failure.
  SocketServer(SelectionServer& server, std::string socket_path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Accept loop; returns after stop(). `stop_flag` (optional) is polled so
  /// a signal handler can request shutdown without calling into the object.
  void run(const std::atomic<bool>* stop_flag = nullptr);

  /// Requests a graceful drain from any thread (idempotent).
  void stop();

  const std::string& socket_path() const noexcept { return socket_path_; }
  std::size_t connections_accepted() const noexcept {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-connection state shared between the reader thread and in-flight
  /// response callbacks; the fd closes when the last holder lets go, so a
  /// response completing after the reader exited still has a valid fd (the
  /// write may fail harmlessly if the peer vanished).
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    /// Serialized write of one response line (drops the response when the
    /// peer is gone — there is nobody left to tell).
    void write_line(const std::string& line);

    const int fd;
    std::mutex write_mutex;
  };

  void handle_connection(const std::shared_ptr<Connection>& connection);
  void handle_line(const std::shared_ptr<Connection>& connection,
                   const std::string& line);

  SelectionServer& server_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> connections_accepted_{0};
  std::mutex connections_mutex_;
  std::vector<std::weak_ptr<Connection>> connections_;
  std::vector<std::thread> readers_;
};

}  // namespace subsel::serve
