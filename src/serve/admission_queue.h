// Bounded admission queue with priority classes and explicit load shedding.
//
// Admission control is the daemon's memory-safety story: the queue holds at
// most `capacity` pending requests across both classes, and a push beyond
// that is REJECTED with a machine-readable reason instead of growing without
// bound — under overload the server sheds load, it never OOMs. Interactive
// requests are always dequeued before batch requests (strict priority; a
// saturating interactive stream can starve batch — that is the documented
// contract, not an accident: batch work carries deadlines and degrades,
// which is the intended overload behavior for the low class). Within one
// class the order is FIFO.
//
// The queue is also where graceful drain pivots: begin_drain() makes every
// subsequent push reject with "draining" while pops continue until the
// backlog is empty, after which pop() returns nullptr and the dispatcher
// threads exit. In-flight and already-queued requests therefore finish (or
// degrade at their deadline); only NEW work is turned away.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/run_control.h"
#include "common/timer.h"
#include "serve/wire.h"

namespace subsel::serve {

/// One admitted request waiting for (or holding) a solver slot. `deadline`
/// starts ticking at admission; `queued` measures the wait for the latency
/// breakdown; `done` delivers the response (exactly once) to the transport.
struct PendingRequest {
  ServeRequest request;
  /// Resolved at admission so the dispatcher never re-resolves the name
  /// (dataset registration is startup-only and unlocked).
  const graph::GroundSet* ground_set = nullptr;
  Deadline deadline;
  Timer queued;
  std::function<void(ServeResponse)> done;
};

class AdmissionQueue {
 public:
  /// `capacity` bounds the total backlog across both priority classes
  /// (clamped to >= 1).
  explicit AdmissionQueue(std::size_t capacity);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admits `item` or returns the reject reason ("queue_full" | "draining");
  /// empty string means admitted. Never blocks; on reject, `item` is left
  /// untouched for the caller to respond with.
  std::string try_push(std::unique_ptr<PendingRequest>& item);

  /// Blocks until an item is available and returns it (interactive before
  /// batch, FIFO within a class). Returns nullptr when draining and empty —
  /// the dispatcher's exit signal.
  std::unique_ptr<PendingRequest> pop();

  /// Flips the queue into drain mode: pushes reject, pops run dry. One-way.
  void begin_drain();

  bool draining() const;
  std::size_t depth() const;
  std::size_t depth_of(Priority priority) const;
  /// Deepest the combined backlog has ever been.
  std::size_t high_water() const;
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::unique_ptr<PendingRequest>> queues_[kNumPriorities];
  std::size_t depth_ = 0;
  std::size_t high_water_ = 0;
  bool draining_ = false;
};

}  // namespace subsel::serve
