#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace subsel::serve {

namespace {

double number_or(const JsonValue* value, double fallback) {
  return (value != nullptr && value->is_number()) ? value->as_number()
                                                  : fallback;
}

std::string string_or(const JsonValue* value, std::string fallback) {
  return (value != nullptr && value->is_string()) ? value->as_string()
                                                  : std::move(fallback);
}

}  // namespace

ParsedResponse parse_response(const std::string& line) {
  ParsedResponse response;
  response.document = JsonValue::parse(line);
  if (!response.document.is_object()) {
    throw std::runtime_error("response is not a JSON object");
  }
  const JsonValue& root = response.document;
  response.id = string_or(root.find("id"), "");
  response.status = string_or(root.find("status"), "");
  if (response.status.empty()) {
    throw std::runtime_error("response has no \"status\"");
  }
  response.reason = string_or(root.find("reason"), "");
  response.detail = string_or(root.find("detail"), "");
  response.schema_version =
      static_cast<int>(number_or(root.find("schema_version"), 0.0));
  response.selected_count = static_cast<std::size_t>(
      number_or(root.find("selected_count"), 0.0));
  response.objective = number_or(root.find("objective"), 0.0);
  if (const JsonValue* selected = root.find("selected");
      selected != nullptr && selected->is_array()) {
    response.selected.reserve(selected->items().size());
    for (const JsonValue& item : selected->items()) {
      if (item.is_number()) {
        response.selected.push_back(
            static_cast<std::uint64_t>(item.as_number()));
      }
    }
  }
  if (const JsonValue* latency = root.find("latency");
      latency != nullptr && latency->is_object()) {
    response.latency.queue_seconds =
        number_or(latency->find("queue_seconds"), 0.0);
    response.latency.solve_seconds =
        number_or(latency->find("solve_seconds"), 0.0);
    response.latency.report_seconds =
        number_or(latency->find("report_seconds"), 0.0);
    response.latency.total_seconds =
        number_or(latency->find("total_seconds"), 0.0);
  }
  return response;
}

ServeClient::ServeClient(const std::string& socket_path) {
  if (socket_path.empty() ||
      socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw std::runtime_error("ServeClient: bad socket path: \"" + socket_path +
                             "\"");
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("ServeClient: socket(): ") +
                             std::strerror(errno));
  }
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  std::strncpy(address.sun_path, socket_path.c_str(),
               sizeof(address.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("ServeClient: connect(" + socket_path +
                             "): " + std::strerror(saved));
  }
  reader_ = std::thread([this] { reader_loop(); });
}

ServeClient::~ServeClient() {
  // Half-close the write side so the server's reader sees EOF; the reader
  // thread then drains whatever responses are still in flight before the
  // server (or peer close) ends the stream.
  ::shutdown(fd_, SHUT_WR);
  if (reader_.joinable()) reader_.join();
  ::close(fd_);
}

std::future<ParsedResponse> ServeClient::submit(const ServeRequest& request) {
  if (request.id.empty()) {
    throw std::invalid_argument("ServeClient::submit: request needs an id");
  }
  auto future = register_id(request.id);
  send_line(request.to_json());
  return future;
}

std::future<ParsedResponse> ServeClient::submit_raw(const std::string& id,
                                                    const std::string& line) {
  std::future<ParsedResponse> future;
  if (!id.empty()) future = register_id(id);
  send_line(line);
  return future;
}

ParsedResponse ServeClient::call(const ServeRequest& request) {
  return submit(request).get();
}

std::vector<ParsedResponse> ServeClient::take_unmatched() {
  std::lock_guard lock(mutex_);
  std::vector<ParsedResponse> out(std::make_move_iterator(unmatched_.begin()),
                                  std::make_move_iterator(unmatched_.end()));
  unmatched_.clear();
  return out;
}

std::future<ParsedResponse> ServeClient::register_id(const std::string& id) {
  std::lock_guard lock(mutex_);
  if (closed_) {
    throw std::runtime_error("ServeClient: connection already closed");
  }
  auto [it, inserted] = pending_.try_emplace(id);
  if (!inserted) {
    throw std::invalid_argument("ServeClient: id already in flight: " + id);
  }
  return it->second.get_future();
}

void ServeClient::send_line(const std::string& line) {
  const std::string payload = line + "\n";
  std::lock_guard lock(mutex_);
  std::size_t written = 0;
  while (written < payload.size()) {
    const ssize_t n = ::send(fd_, payload.data() + written,
                             payload.size() - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::runtime_error(std::string("ServeClient: send(): ") +
                             (n < 0 ? std::strerror(errno) : "closed"));
  }
}

void ServeClient::reader_loop() {
  std::string pending;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    pending.append(buffer, static_cast<std::size_t>(n));
    for (;;) {
      const std::size_t newline = pending.find('\n');
      if (newline == std::string::npos) break;
      std::string line = pending.substr(0, newline);
      pending.erase(0, newline + 1);
      if (!line.empty()) deliver(line);
    }
  }
  fail_pending("connection closed before the response arrived");
}

void ServeClient::deliver(const std::string& line) {
  ParsedResponse response;
  try {
    response = parse_response(line);
  } catch (const std::exception& e) {
    response.status = "unparseable";
    response.detail = std::string(e.what()) + ": " + line;
  }
  std::lock_guard lock(mutex_);
  const auto it = pending_.find(response.id);
  if (response.id.empty() || it == pending_.end()) {
    unmatched_.push_back(std::move(response));
    return;
  }
  auto promise = std::move(it->second);
  pending_.erase(it);
  promise.set_value(std::move(response));
}

void ServeClient::fail_pending(const std::string& why) {
  std::lock_guard lock(mutex_);
  closed_ = true;
  for (auto& [id, promise] : pending_) {
    promise.set_exception(std::make_exception_ptr(
        std::runtime_error("ServeClient: " + id + ": " + why)));
  }
  pending_.clear();
}

}  // namespace subsel::serve
