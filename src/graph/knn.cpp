#include "graph/knn.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "common/rng.h"

namespace subsel::graph {
namespace {

/// Bounded max-similarity collector: keeps the k most similar candidates seen
/// so far, with deterministic tie-breaking on lower id.
class TopKCollector {
 public:
  explicit TopKCollector(std::size_t k) : k_(k) { heap_.reserve(k + 1); }

  void offer(NodeId id, float similarity) {
    if (heap_.size() < k_) {
      heap_.push_back(Edge{id, similarity});
      std::push_heap(heap_.begin(), heap_.end(), worse_first_);
      return;
    }
    if (k_ == 0 || !better(Edge{id, similarity}, heap_.front())) return;
    std::pop_heap(heap_.begin(), heap_.end(), worse_first_);
    heap_.back() = Edge{id, similarity};
    std::push_heap(heap_.begin(), heap_.end(), worse_first_);
  }

  /// Extracts results sorted by descending similarity (ascending id on ties).
  std::vector<Edge> take_sorted() {
    std::sort(heap_.begin(), heap_.end(),
              [](const Edge& a, const Edge& b) { return better(a, b); });
    return std::move(heap_);
  }

 private:
  static bool better(const Edge& a, const Edge& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.neighbor < b.neighbor;
  }
  static constexpr auto worse_first_ = [](const Edge& a, const Edge& b) {
    return better(a, b);  // min-heap on "better": root is the worst kept edge
  };

  std::size_t k_;
  std::vector<Edge> heap_;
};

ThreadPool& pool_or_global(ThreadPool* pool) {
  return pool != nullptr ? *pool : global_thread_pool();
}

/// Cosine similarities can be slightly negative for far-apart points; the
/// objective requires s >= 0 (Section 3), so clamp — the paper's similarity
/// graphs only keep nearest neighbors, whose cosine is positive in practice.
float clamp_similarity(float s) { return s > 0.0f ? s : 0.0f; }

/// Same total order TopKCollector sorts by: weight descending, id ascending.
bool better_edge(const Edge& a, const Edge& b) {
  if (a.weight != b.weight) return a.weight > b.weight;
  return a.neighbor < b.neighbor;
}

/// The exact-rescore epilogue of every quantized search: replace each kept
/// edge's quantized score with the exact float32 dot against the query row,
/// clamp, and restore the (weight desc, id asc) order. After this the edge
/// weights are indistinguishable from an exact build that happened to rank
/// the same neighbors.
void rescore_exact(std::vector<Edge>& edges, const EmbeddingMatrix& embeddings,
                   std::size_t query_row) {
  const auto query = embeddings.row(query_row);
  for (Edge& e : edges) {
    e.weight = clamp_similarity(
        dot(query, embeddings.row(static_cast<std::size_t>(e.neighbor))));
  }
  std::sort(edges.begin(), edges.end(), better_edge);
}

}  // namespace

std::vector<NeighborList> brute_force_knn(const EmbeddingMatrix& embeddings,
                                          const KnnConfig& config, ThreadPool* pool) {
  const std::size_t n = embeddings.rows();
  std::vector<NeighborList> lists(n);
  if (config.precision != EmbeddingPrecision::kFloat32) {
    // Quantized scan: rank all candidates with the compact vectorized
    // kernels, then rescore the k winners exactly.
    const QuantizedMatrix quantized(embeddings, config.precision);
    pool_or_global(pool).parallel_for(n, [&](std::size_t i) {
      TopKCollector collector(config.num_neighbors);
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        collector.offer(static_cast<NodeId>(j), quantized.similarity(i, j));
      }
      auto edges = collector.take_sorted();
      rescore_exact(edges, embeddings, i);
      lists[i].edges = std::move(edges);
    });
    return lists;
  }
  pool_or_global(pool).parallel_for(n, [&](std::size_t i) {
    TopKCollector collector(config.num_neighbors);
    const auto query = embeddings.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      collector.offer(static_cast<NodeId>(j), dot(query, embeddings.row(j)));
    }
    auto edges = collector.take_sorted();
    for (Edge& e : edges) e.weight = clamp_similarity(e.weight);
    lists[i].edges = std::move(edges);
  });
  return lists;
}

IvfIndex::IvfIndex(const EmbeddingMatrix& embeddings, const KnnConfig& config,
                   ThreadPool* pool)
    : embeddings_(embeddings), config_(config) {
  const std::size_t n = embeddings.rows();
  if (n == 0) throw std::invalid_argument("IvfIndex: empty embeddings");
  std::size_t num_clusters = config.num_clusters;
  if (num_clusters == 0) {
    num_clusters = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::sqrt(static_cast<double>(n))));
  }
  num_clusters = std::min(num_clusters, n);
  config_.num_clusters = num_clusters;
  config_.num_probes = std::min(std::max<std::size_t>(1, config_.num_probes),
                                num_clusters);

  // k-means++-lite seeding: random distinct points.
  Rng rng(config.seed);
  auto seeds = rng.sample_without_replacement(n, num_clusters);
  centroids_ = EmbeddingMatrix(num_clusters, embeddings.dim());
  for (std::size_t c = 0; c < num_clusters; ++c) {
    auto src = embeddings.row(static_cast<std::size_t>(seeds[c]));
    std::copy(src.begin(), src.end(), centroids_.row(c).begin());
  }

  const bool quantized = config_.precision != EmbeddingPrecision::kFloat32;
  if (quantized) {
    quantized_points_ = QuantizedMatrix(embeddings, config_.precision);
  }

  std::vector<std::uint32_t> assignment(n, 0);
  ThreadPool& workers = pool_or_global(pool);
  for (std::size_t iter = 0; iter < config_.kmeans_iterations; ++iter) {
    // Assign step (maximize cosine similarity to centroid). On the quantized
    // path the centroids are re-quantized each iteration (they moved in the
    // float update step) and the n·num_clusters similarity scans run through
    // the compact kernels; the update step itself stays float32.
    QuantizedMatrix iter_centroids;
    if (quantized) {
      iter_centroids = QuantizedMatrix(centroids_, config_.precision);
    }
    workers.parallel_for(n, [&](std::size_t i) {
      float best_sim = -2.0f;
      std::uint32_t best_cluster = 0;
      if (quantized) {
        for (std::size_t c = 0; c < num_clusters; ++c) {
          const float sim = quantized_points_.similarity_to(i, iter_centroids, c);
          if (sim > best_sim) {
            best_sim = sim;
            best_cluster = static_cast<std::uint32_t>(c);
          }
        }
      } else {
        const auto point = embeddings.row(i);
        for (std::size_t c = 0; c < num_clusters; ++c) {
          const float sim = dot(point, centroids_.row(c));
          if (sim > best_sim) {
            best_sim = sim;
            best_cluster = static_cast<std::uint32_t>(c);
          }
        }
      }
      assignment[i] = best_cluster;
    });
    // Update step.
    EmbeddingMatrix sums(num_clusters, embeddings.dim());
    std::vector<std::size_t> counts(num_clusters, 0);
    for (std::size_t i = 0; i < n; ++i) {
      auto acc = sums.row(assignment[i]);
      const auto point = embeddings.row(i);
      for (std::size_t d = 0; d < point.size(); ++d) acc[d] += point[d];
      ++counts[assignment[i]];
    }
    for (std::size_t c = 0; c < num_clusters; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its old centroid
      auto dst = centroids_.row(c);
      auto src = sums.row(c);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    centroids_.normalize_rows();
  }

  cluster_members_.assign(num_clusters, {});
  for (std::size_t i = 0; i < n; ++i) {
    cluster_members_[assignment[i]].push_back(static_cast<NodeId>(i));
  }
  if (quantized) {
    quantized_centroids_ = QuantizedMatrix(centroids_, config_.precision);
  }
}

std::vector<Edge> IvfIndex::search(std::span<const float> query, std::size_t k,
                                   NodeId exclude) const {
  // Rank clusters by centroid similarity, scan the best `num_probes`.
  TopKCollector cluster_rank(config_.num_probes);
  for (std::size_t c = 0; c < centroids_.rows(); ++c) {
    cluster_rank.offer(static_cast<NodeId>(c), dot(query, centroids_.row(c)));
  }
  TopKCollector collector(k);
  for (const Edge& cluster : cluster_rank.take_sorted()) {
    for (NodeId member : cluster_members_[static_cast<std::size_t>(cluster.neighbor)]) {
      if (member == exclude) continue;
      collector.offer(member,
                      dot(query, embeddings_.row(static_cast<std::size_t>(member))));
    }
  }
  auto edges = collector.take_sorted();
  for (Edge& e : edges) e.weight = clamp_similarity(e.weight);
  return edges;
}

std::vector<Edge> IvfIndex::search_row(std::size_t i, std::size_t k) const {
  if (config_.precision == EmbeddingPrecision::kFloat32) {
    return search(embeddings_.row(i), k, static_cast<NodeId>(i));
  }
  // Quantized build path: both the cluster ranking and the member scans run
  // through the compact kernels; the kept edges are then rescored exactly.
  const NodeId exclude = static_cast<NodeId>(i);
  TopKCollector cluster_rank(config_.num_probes);
  for (std::size_t c = 0; c < quantized_centroids_.rows(); ++c) {
    cluster_rank.offer(static_cast<NodeId>(c),
                       quantized_points_.similarity_to(i, quantized_centroids_, c));
  }
  TopKCollector collector(k);
  for (const Edge& cluster : cluster_rank.take_sorted()) {
    for (NodeId member : cluster_members_[static_cast<std::size_t>(cluster.neighbor)]) {
      if (member == exclude) continue;
      collector.offer(member,
                      quantized_points_.similarity(i, static_cast<std::size_t>(member)));
    }
  }
  auto edges = collector.take_sorted();
  rescore_exact(edges, embeddings_, i);
  return edges;
}

std::vector<NeighborList> IvfIndex::knn_graph(ThreadPool* pool) const {
  const std::size_t n = embeddings_.rows();
  std::vector<NeighborList> lists(n);
  pool_or_global(pool).parallel_for(n, [&](std::size_t i) {
    lists[i].edges = search_row(i, config_.num_neighbors);
  });
  return lists;
}

SimilarityGraph build_similarity_graph(const EmbeddingMatrix& embeddings,
                                       const KnnConfig& config,
                                       std::size_t exact_threshold, ThreadPool* pool) {
  std::vector<NeighborList> lists;
  if (embeddings.rows() <= exact_threshold) {
    lists = brute_force_knn(embeddings, config, pool);
  } else {
    IvfIndex index(embeddings, config, pool);
    lists = index.knn_graph(pool);
  }
  return SimilarityGraph::from_lists(lists).symmetrized();
}

}  // namespace subsel::graph
