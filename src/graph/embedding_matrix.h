// Dense row-major float embedding storage.
//
// The paper consumes 64-d (CIFAR) and 2048-d (ImageNet) penultimate-layer
// embeddings; similarities are cosine. We store L2-normalizable float rows so
// cosine similarity reduces to a dot product after normalize_rows().
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

namespace subsel::graph {

class EmbeddingMatrix {
 public:
  EmbeddingMatrix() = default;
  EmbeddingMatrix(std::size_t rows, std::size_t dim)
      : rows_(rows), dim_(dim), data_(rows * dim, 0.0f) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t dim() const noexcept { return dim_; }
  bool empty() const noexcept { return rows_ == 0; }

  std::span<float> row(std::size_t i) noexcept {
    assert(i < rows_);
    return {data_.data() + i * dim_, dim_};
  }
  std::span<const float> row(std::size_t i) const noexcept {
    assert(i < rows_);
    return {data_.data() + i * dim_, dim_};
  }

  std::span<const float> flat() const noexcept { return data_; }
  std::span<float> flat() noexcept { return data_; }

  /// L2-normalizes every row in place (rows with near-zero norm are left
  /// untouched). After this, dot(row_i, row_j) is the cosine similarity.
  void normalize_rows() noexcept {
    for (std::size_t i = 0; i < rows_; ++i) {
      auto r = row(i);
      double sum_sq = 0.0;
      for (float v : r) sum_sq += static_cast<double>(v) * v;
      if (sum_sq < 1e-20) continue;
      const float inv = static_cast<float>(1.0 / std::sqrt(sum_sq));
      for (float& v : r) v *= inv;
    }
  }

  std::size_t byte_size() const noexcept { return data_.size() * sizeof(float); }

 private:
  std::size_t rows_ = 0;
  std::size_t dim_ = 0;
  std::vector<float> data_;
};

/// Dot product of two equal-length float spans (cosine similarity for
/// normalized rows). Written as a plain loop; GCC auto-vectorizes it.
inline float dot(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  std::size_t i = 0;
  const std::size_t n4 = a.size() / 4 * 4;
  for (; i < n4; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < a.size(); ++i) acc0 += a[i] * b[i];
  return acc0 + acc1 + acc2 + acc3;
}

/// Squared L2 distance.
inline float squared_l2(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace subsel::graph
