#include "graph/pca.h"

#include <cmath>

#include "common/rng.h"

namespace subsel::graph {
namespace {

// The projection is written against a generic row source so the same code
// serves both the float32 matrix and the quantized store (rows dequantized
// into a scratch buffer on demand — PCA is serial, so one buffer suffices).

/// Row source over an EmbeddingMatrix: zero-copy spans.
struct FloatRows {
  const EmbeddingMatrix* matrix;
  std::size_t rows() const { return matrix->rows(); }
  std::size_t dim() const { return matrix->dim(); }
  std::span<const float> row(std::size_t i) const { return matrix->row(i); }
};

/// Row source over a QuantizedMatrix: dequantizes into `scratch` per access.
struct QuantizedRows {
  const QuantizedMatrix* matrix;
  mutable std::vector<float> scratch;
  std::size_t rows() const { return matrix->rows(); }
  std::size_t dim() const { return matrix->dim(); }
  std::span<const float> row(std::size_t i) const {
    scratch.resize(matrix->dim());
    matrix->dequantize(i, scratch);
    return scratch;
  }
};

/// One power-iteration estimate of the dominant eigenvector of X^T X for the
/// centered data X, with `remove` (if non-empty) deflated out of each row.
template <typename RowSource>
std::vector<double> dominant_component(const RowSource& embeddings,
                                       const std::vector<double>& mean,
                                       const std::vector<double>& remove,
                                       std::size_t iterations, Rng& rng) {
  const std::size_t dim = embeddings.dim();
  std::vector<double> direction(dim);
  for (double& v : direction) v = rng.normal();
  std::vector<double> next(dim);

  for (std::size_t iter = 0; iter < iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < embeddings.rows(); ++i) {
      const auto row = embeddings.row(i);
      double score = 0.0;
      double removed = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        const double centered = row[d] - mean[d];
        score += centered * direction[d];
        if (!remove.empty()) removed += centered * remove[d];
      }
      for (std::size_t d = 0; d < dim; ++d) {
        double centered = row[d] - mean[d];
        if (!remove.empty()) centered -= removed * remove[d];
        next[d] += score * centered;
      }
    }
    double norm = 0.0;
    for (double v : next) norm += v * v;
    norm = std::sqrt(norm);
    if (norm < 1e-12) break;
    for (std::size_t d = 0; d < dim; ++d) direction[d] = next[d] / norm;
  }
  return direction;
}

template <typename RowSource>
Projection2D project_2d(const RowSource& embeddings, std::size_t iterations,
                        std::uint64_t seed) {
  const std::size_t n = embeddings.rows();
  const std::size_t dim = embeddings.dim();
  std::vector<double> mean(dim, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = embeddings.row(i);
    for (std::size_t d = 0; d < dim; ++d) mean[d] += row[d];
  }
  if (n > 0) {
    for (double& v : mean) v /= static_cast<double>(n);
  }

  Rng rng(seed);
  const auto pc1 = dominant_component(embeddings, mean, {}, iterations, rng);
  const auto pc2 = dominant_component(embeddings, mean, pc1, iterations, rng);

  Projection2D projection;
  projection.x.resize(n);
  projection.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = embeddings.row(i);
    double sx = 0.0, sy = 0.0, s1 = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double centered = row[d] - mean[d];
      s1 += centered * pc1[d];
    }
    for (std::size_t d = 0; d < dim; ++d) {
      const double centered = row[d] - mean[d];
      sx += centered * pc1[d];
      sy += (centered - s1 * pc1[d]) * pc2[d];
    }
    projection.x[i] = static_cast<float>(sx);
    projection.y[i] = static_cast<float>(sy);
  }
  return projection;
}

}  // namespace

Projection2D pca_project_2d(const EmbeddingMatrix& embeddings, std::size_t iterations,
                            std::uint64_t seed) {
  return project_2d(FloatRows{&embeddings}, iterations, seed);
}

Projection2D pca_project_2d(const QuantizedMatrix& embeddings,
                            std::size_t iterations, std::uint64_t seed) {
  return project_2d(QuantizedRows{&embeddings, {}}, iterations, seed);
}

}  // namespace subsel::graph
