// HNSW (Hierarchical Navigable Small World) approximate nearest-neighbor
// index — a second backend for the 10-NN graph construction, alongside the
// IVF index (both stand in for the ScaNN search the paper uses; having two
// backends lets the benches show that the selection results do not depend
// on the ANN implementation, only on the resulting graph).
//
// Standard construction (Malkov & Yashunin 2018): each node draws a level
// from a geometric distribution; inserts greedily descend from the top
// entry point, then connect to the closest `M` candidates found by a
// beam search of width `ef_construction` on every level it occupies, with
// bidirectional links pruned back to the degree cap. Queries descend the
// hierarchy and run one `ef_search` beam on level 0.
//
// Similarities are cosine (dot products on row-normalized embeddings),
// consistent with the rest of graph/.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "graph/embedding_matrix.h"
#include "graph/quantized_embedding.h"
#include "graph/similarity_graph.h"

namespace subsel::graph {

struct HnswConfig {
  /// Degree target per node and level (level 0 allows 2M links).
  std::size_t m = 12;
  /// Beam width during construction.
  std::size_t ef_construction = 100;
  /// Beam width during queries; raise for higher recall.
  std::size_t ef_search = 64;
  std::uint64_t seed = 2;
  /// Precision of the similarity evaluations that steer construction and the
  /// knn_graph traversals (see KnnConfig::precision — same contract: compact
  /// vectorized ranking, exact float32 rescore of the edges knn_graph keeps).
  /// The public span-query search() always scores exactly.
  EmbeddingPrecision precision = EmbeddingPrecision::kFloat32;
};

class HnswIndex {
 public:
  /// Builds the index over `embeddings` (must be row-normalized; must
  /// outlive the index). Construction is sequential-insert (deterministic
  /// given the seed).
  HnswIndex(const EmbeddingMatrix& embeddings, const HnswConfig& config);

  std::size_t size() const noexcept { return levels_.size(); }
  std::size_t max_level() const noexcept { return max_level_; }

  /// Top-k most-similar indexed points for `query`, excluding `exclude`
  /// (pass -1 to keep everything). Results sorted by descending similarity.
  std::vector<Edge> search(std::span<const float> query, std::size_t k,
                           NodeId exclude) const;

  /// Directed kNN lists for all indexed points (self excluded); the input
  /// to SimilarityGraph::from_lists(...).symmetrized().
  std::vector<NeighborList> knn_graph(std::size_t k,
                                      ThreadPool* pool = nullptr) const;

 private:
  /// Greedy 1-best descent on `level` starting from `entry`, scoring nodes
  /// with an arbitrary similarity functor (exact dot or quantized kernel —
  /// the traversal logic is identical). Defined in hnsw.cpp; used only there.
  template <typename SimFn>
  std::uint32_t descend_with(SimFn&& sim, std::uint32_t entry,
                             std::size_t level) const;
  /// Beam search on `level` under a similarity functor; returns up to `ef`
  /// (id, similarity) pairs, unsorted.
  template <typename SimFn>
  std::vector<std::pair<std::uint32_t, float>> beam_with(SimFn&& sim,
                                                         std::uint32_t entry,
                                                         std::size_t level,
                                                         std::size_t ef) const;
  /// Insert one node during construction: descent above its level, then beam
  /// + bidirectional link + prune on every level it occupies. `query_sim(u)`
  /// scores u against the inserting node, `anchor_sim(a, u)` scores u against
  /// an arbitrary anchor node (the prune-back step).
  template <typename QuerySim, typename AnchorSim>
  void insert_node(std::uint32_t node, QuerySim&& query_sim,
                   AnchorSim&& anchor_sim);

  /// Exact-dot wrappers over the templates (the public search path).
  std::uint32_t greedy_descend(std::span<const float> query, std::uint32_t entry,
                               std::size_t level) const;
  std::vector<std::pair<std::uint32_t, float>> beam_search(
      std::span<const float> query, std::uint32_t entry, std::size_t level,
      std::size_t ef) const;
  /// knn_graph's per-row search: quantized traversal + exact rescore when
  /// config_.precision != kFloat32, otherwise exactly search().
  std::vector<Edge> search_row(std::size_t i, std::size_t k) const;

  float similarity(std::span<const float> query, std::uint32_t node) const;
  std::vector<std::uint32_t>& links(std::uint32_t node, std::size_t level) {
    return links_[node][level];
  }
  const std::vector<std::uint32_t>& links(std::uint32_t node,
                                          std::size_t level) const {
    return links_[node][level];
  }

  const EmbeddingMatrix* embeddings_;
  HnswConfig config_;
  QuantizedMatrix quantized_;  // empty on the float32 path
  std::vector<std::size_t> levels_;                      // level per node
  std::vector<std::vector<std::vector<std::uint32_t>>> links_;  // [node][level]
  std::uint32_t entry_point_ = 0;
  std::size_t max_level_ = 0;
};

}  // namespace subsel::graph
