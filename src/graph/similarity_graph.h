// CSR similarity graph — the "nearest neighbor graph (G, E)" of Section 6.
//
// The paper builds a 10-NN graph with ScaNN, then symmetrizes it so the
// distributed bounding/scoring joins can treat edges as undirected (Section 5
// requires a symmetric graph); average degree becomes ~15-16. This module
// stores the symmetrized graph in CSR form: edge weights are the cosine
// similarities s(v1, v2) >= 0 used in the pairwise submodular objective.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace subsel::graph {

using NodeId = std::int64_t;

struct Edge {
  NodeId neighbor = 0;
  float weight = 0.0f;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// One node's directed adjacency list prior to symmetrization.
struct NeighborList {
  std::vector<Edge> edges;
};

class SimilarityGraph {
 public:
  SimilarityGraph() = default;

  /// Builds a CSR graph from per-node adjacency lists. Every list must contain
  /// unique neighbor ids in [0, lists.size()) and no self loops; weights must
  /// be non-negative (required for submodularity, Section 3).
  static SimilarityGraph from_lists(const std::vector<NeighborList>& lists);

  /// Returns the symmetrized version of this graph: edge (a,b) exists iff it
  /// exists in either direction in the input; weight is the max of the
  /// directions present (they coincide for metric similarities).
  SimilarityGraph symmetrized() const;

  std::size_t num_nodes() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t num_edges() const noexcept { return edges_.size(); }

  std::span<const Edge> neighbors(NodeId v) const noexcept {
    const auto begin = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
    const auto end = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v) + 1]);
    return {edges_.data() + begin, end - begin};
  }

  std::size_t degree(NodeId v) const noexcept { return neighbors(v).size(); }

  double average_degree() const noexcept {
    return num_nodes() == 0 ? 0.0
                            : static_cast<double>(num_edges()) /
                                  static_cast<double>(num_nodes());
  }

  std::size_t min_degree() const;
  std::size_t max_degree() const;

  /// True if for every edge (a,b) the reverse edge (b,a) exists with the same
  /// weight. The distributed (Section 5) implementations require this.
  bool is_symmetric() const;

  /// Sum of s(a,b) over unordered neighbor pairs {a,b}; the pairwise penalty
  /// of selecting the whole ground set.
  double total_edge_weight() const;

  std::size_t byte_size() const noexcept {
    return offsets_.size() * sizeof(std::int64_t) + edges_.size() * sizeof(Edge);
  }

  void save(const std::string& path) const;
  static SimilarityGraph load(const std::string& path);

 private:
  std::vector<std::int64_t> offsets_;  // size num_nodes()+1
  std::vector<Edge> edges_;            // sorted by neighbor id within each node
};

}  // namespace subsel::graph
