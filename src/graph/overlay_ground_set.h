// Mutable view over an immutable GroundSet: in-memory insert/delete delta
// blocks layered over any base implementation (a resident CSR ground set, the
// sharded DiskGroundSet, the virtual PerturbedDataset — anything).
//
// Ids are STABLE: the base keeps ids [0, base_n), inserted points get
// base_n, base_n+1, ... in insertion order, and deletion never renumbers —
// a deleted id stays allocated (utility 0, empty neighborhood, filtered out
// of every live node's neighbor list) so selections, checkpoints, and repair
// bookkeeping written before a mutation still name the same points after it.
// Deleted ids are surfaced through deleted_ids(); the API layer folds them
// into ConstraintSet::blocked so every solver skips them, and
// core::repair_selection() drops them from an existing selection.
//
// Concurrency: reads (the whole GroundSet interface) take a shared lock and
// copy out under it; mutations take the exclusive lock. Readers therefore
// see each *call* atomically — a solver running concurrently with mutations
// observes some interleaving of consistent neighborhoods, which is exactly
// the contract the mutate-while-solve TSan stress exercises. The symmetric-
// edge invariant of GroundSet is maintained under every mutation.
//
// Fault injection: insert() and erase() pass the "overlay.mutate" failpoint
// BEFORE touching any state, and validate their arguments before committing,
// so a fired failpoint or a rejected argument leaves the overlay exactly as
// it was (strong exception guarantee).
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/ground_set.h"
#include "graph/similarity_graph.h"

namespace subsel::graph {

class OverlayGroundSet final : public GroundSet {
 public:
  /// `base` must outlive the overlay and is never mutated through it.
  explicit OverlayGroundSet(const GroundSet& base)
      : base_(base), base_n_(base.num_points()) {}

  /// Adds a new point with the given utility and symmetric similarity edges
  /// (each {neighbor, weight} neighbor must be a live id < the new id; the
  /// reverse edges are added automatically). Returns the new point's id,
  /// base_num_points + #prior inserts. Throws std::invalid_argument on a
  /// dead/out-of-range/duplicate neighbor, a negative weight, or a non-finite
  /// utility — without mutating anything.
  NodeId insert(double utility, std::span<const Edge> edges);

  /// Marks `v` deleted: utility becomes 0, its neighborhood empties, and it
  /// disappears from every live node's neighbor list. Throws
  /// std::invalid_argument when v is out of range or already deleted.
  void erase(NodeId v);

  /// False for deleted and never-allocated ids.
  bool is_live(NodeId v) const;
  /// Live point count (num_points() minus deletions).
  std::size_t num_live() const;
  /// All deleted ids, ascending — the blocked-set feed for ConstraintSet.
  std::vector<NodeId> deleted_ids() const;
  /// All live ids, ascending.
  std::vector<NodeId> live_ids() const;
  /// Bumped by every successful insert/erase; lets callers detect staleness.
  std::uint64_t version() const;

  // GroundSet interface. num_points() counts every allocated id, including
  // deleted ones (id space, not live count).
  std::size_t num_points() const override;
  double utility(NodeId v) const override;
  void neighbors(NodeId v, std::vector<Edge>& out) const override;
  void prefetch(std::span<const NodeId> nodes, ThreadPool* pool) const override;

  /// Snapshot the overlay into a plain CSR graph + utility vector (deleted
  /// ids keep their slots with utility 0 and no edges). The differential
  /// suites solve on this materialization and on the overlay itself and
  /// require identical selections.
  struct Materialized {
    SimilarityGraph graph;
    std::vector<double> utilities;
  };
  Materialized materialize() const;

 private:
  struct InsertedPoint {
    double utility = 0.0;
    std::vector<Edge> edges;  // sorted by neighbor id
  };

  bool live_locked(NodeId v) const noexcept;
  void neighbors_locked(NodeId v, std::vector<Edge>& out) const;

  const GroundSet& base_;
  const std::size_t base_n_;

  mutable std::shared_mutex mutex_;
  std::vector<InsertedPoint> inserted_;
  /// Deletion bitmap over [0, base_n_ + inserted_.size()); absent = live.
  std::vector<std::uint8_t> deleted_;
  /// Reverse adjacency of insert edges that land on OLDER ids (base points or
  /// earlier inserts): extra_[v] holds v's edges into newer inserted points,
  /// sorted by neighbor id.
  std::unordered_map<NodeId, std::vector<Edge>> extra_;
  std::uint64_t version_ = 0;
};

}  // namespace subsel::graph
