#include "graph/hnsw.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/rng.h"

namespace subsel::graph {
namespace {

/// Min-heap entry ordered by similarity (worst candidate on top).
struct Candidate {
  float similarity;
  std::uint32_t node;
};

struct WorseFirst {
  bool operator()(const Candidate& a, const Candidate& b) const {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.node < b.node;
  }
};

struct BetterFirst {
  bool operator()(const Candidate& a, const Candidate& b) const {
    if (a.similarity != b.similarity) return a.similarity < b.similarity;
    return a.node > b.node;
  }
};

}  // namespace

HnswIndex::HnswIndex(const EmbeddingMatrix& embeddings, const HnswConfig& config)
    : embeddings_(&embeddings), config_(config) {
  const std::size_t n = embeddings.rows();
  levels_.resize(n);
  links_.resize(n);
  if (n == 0) return;

  // Geometric level distribution with expected height 1/ln(m).
  Rng rng(config_.seed);
  const double inv_log_m =
      1.0 / std::log(static_cast<double>(std::max<std::size_t>(2, config_.m)));
  for (std::size_t i = 0; i < n; ++i) {
    const double u = std::max(rng.uniform(), 1e-12);
    levels_[i] = static_cast<std::size_t>(-std::log(u) * inv_log_m);
    links_[i].resize(levels_[i] + 1);
  }

  entry_point_ = 0;
  max_level_ = levels_[0];

  const bool quantized = config_.precision != EmbeddingPrecision::kFloat32;
  if (quantized) {
    quantized_ = QuantizedMatrix(embeddings, config_.precision);
  }

  for (std::uint32_t node = 1; node < n; ++node) {
    if (quantized) {
      // Construction steered by the compact kernels: every similarity the
      // insert evaluates (descent, beam, prune-back) goes through the
      // quantized row store. The link structure becomes approximate in the
      // same bounded sense as the quantized kNN scan; knn_graph rescores the
      // edges it emits exactly.
      insert_node(
          node,
          [&](std::uint32_t u) { return quantized_.similarity(node, u); },
          [&](std::uint32_t anchor, std::uint32_t u) {
            return quantized_.similarity(anchor, u);
          });
    } else {
      const std::span<const float> query = embeddings_->row(node);
      insert_node(
          node, [&](std::uint32_t u) { return similarity(query, u); },
          [&](std::uint32_t anchor, std::uint32_t u) {
            return similarity(embeddings_->row(anchor), u);
          });
    }
  }
}

template <typename QuerySim, typename AnchorSim>
void HnswIndex::insert_node(std::uint32_t node, QuerySim&& query_sim,
                            AnchorSim&& anchor_sim) {
  const std::size_t node_level = levels_[node];

  // Phase 1: greedy descent through the levels above the node's level.
  std::uint32_t entry = entry_point_;
  for (std::size_t level = max_level_; level > node_level; --level) {
    entry = descend_with(query_sim, entry, level);
  }

  // Phase 2: beam search and connect on every level the node occupies.
  for (std::size_t level = std::min(node_level, max_level_);; --level) {
    auto candidates = beam_with(query_sim, entry, level, config_.ef_construction);
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    const std::size_t cap = level == 0 ? 2 * config_.m : config_.m;
    const std::size_t take = std::min(cap, candidates.size());

    auto& own = links(node, level);
    own.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      const std::uint32_t neighbor = candidates[i].first;
      own.push_back(neighbor);
      // Bidirectional link; prune the neighbor back to its cap by keeping
      // its most-similar links.
      auto& back = links(neighbor, level);
      back.push_back(node);
      if (back.size() > cap) {
        const std::size_t worst =
            std::min_element(back.begin(), back.end(),
                             [&](std::uint32_t a, std::uint32_t b) {
                               return anchor_sim(neighbor, a) <
                                      anchor_sim(neighbor, b);
                             }) -
            back.begin();
        back[worst] = back.back();
        back.pop_back();
      }
    }
    if (!candidates.empty()) entry = candidates.front().first;
    if (level == 0) break;
  }

  if (node_level > max_level_) {
    max_level_ = node_level;
    entry_point_ = node;
  }
}

float HnswIndex::similarity(std::span<const float> query, std::uint32_t node) const {
  const std::span<const float> row = embeddings_->row(node);
  float dot = 0.0f;
  for (std::size_t d = 0; d < row.size(); ++d) dot += query[d] * row[d];
  return dot;
}

template <typename SimFn>
std::uint32_t HnswIndex::descend_with(SimFn&& sim, std::uint32_t entry,
                                      std::size_t level) const {
  float best = sim(entry);
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::uint32_t neighbor : links(entry, level)) {
      const float s = sim(neighbor);
      if (s > best) {
        best = s;
        entry = neighbor;
        improved = true;
      }
    }
  }
  return entry;
}

template <typename SimFn>
std::vector<std::pair<std::uint32_t, float>> HnswIndex::beam_with(
    SimFn&& sim, std::uint32_t entry, std::size_t level, std::size_t ef) const {
  std::vector<std::uint8_t> visited(size(), 0);
  visited[entry] = 1;
  const float entry_similarity = sim(entry);

  // `frontier`: best-first expansion queue; `result`: worst-first heap of
  // the ef best seen so far.
  std::priority_queue<Candidate, std::vector<Candidate>, BetterFirst> frontier;
  std::priority_queue<Candidate, std::vector<Candidate>, WorseFirst> result;
  frontier.push({entry_similarity, entry});
  result.push({entry_similarity, entry});

  while (!frontier.empty()) {
    const Candidate current = frontier.top();
    frontier.pop();
    if (result.size() >= ef && current.similarity < result.top().similarity) break;
    for (std::uint32_t neighbor : links(current.node, level)) {
      if (visited[neighbor] != 0) continue;
      visited[neighbor] = 1;
      const float s = sim(neighbor);
      if (result.size() < ef || s > result.top().similarity) {
        frontier.push({s, neighbor});
        result.push({s, neighbor});
        if (result.size() > ef) result.pop();
      }
    }
  }

  std::vector<std::pair<std::uint32_t, float>> out;
  out.reserve(result.size());
  while (!result.empty()) {
    out.emplace_back(result.top().node, result.top().similarity);
    result.pop();
  }
  return out;
}

std::uint32_t HnswIndex::greedy_descend(std::span<const float> query,
                                        std::uint32_t entry,
                                        std::size_t level) const {
  return descend_with([&](std::uint32_t u) { return similarity(query, u); },
                      entry, level);
}

std::vector<std::pair<std::uint32_t, float>> HnswIndex::beam_search(
    std::span<const float> query, std::uint32_t entry, std::size_t level,
    std::size_t ef) const {
  return beam_with([&](std::uint32_t u) { return similarity(query, u); }, entry,
                   level, ef);
}

std::vector<Edge> HnswIndex::search(std::span<const float> query, std::size_t k,
                                    NodeId exclude) const {
  if (size() == 0 || k == 0) return {};
  std::uint32_t entry = entry_point_;
  for (std::size_t level = max_level_; level > 0; --level) {
    entry = greedy_descend(query, entry, level);
  }
  auto candidates =
      beam_search(query, entry, 0, std::max(config_.ef_search, k + 1));
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  std::vector<Edge> out;
  out.reserve(k);
  for (const auto& [node, sim] : candidates) {
    if (exclude >= 0 && node == static_cast<std::uint32_t>(exclude)) continue;
    out.push_back(Edge{static_cast<NodeId>(node), sim});
    if (out.size() == k) break;
  }
  return out;
}

std::vector<Edge> HnswIndex::search_row(std::size_t i, std::size_t k) const {
  if (config_.precision == EmbeddingPrecision::kFloat32) {
    return search(embeddings_->row(i), k, static_cast<NodeId>(i));
  }
  // Quantized traversal for an indexed row, then exact rescore of the kept
  // edges with the canonical float32 dot (raw, matching the float search's
  // semantics — clamping is the kNN layer's business). Using graph::dot keeps
  // the rescored weights bit-identical to brute-force kNN weights for the
  // same pair of rows.
  const auto sim = [&](std::uint32_t u) {
    return quantized_.similarity(i, u);
  };
  std::uint32_t entry = entry_point_;
  for (std::size_t level = max_level_; level > 0; --level) {
    entry = descend_with(sim, entry, level);
  }
  auto candidates = beam_with(sim, entry, 0, std::max(config_.ef_search, k + 1));
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  const auto query = embeddings_->row(i);
  std::vector<Edge> out;
  out.reserve(k);
  for (const auto& candidate : candidates) {
    const std::uint32_t node = candidate.first;
    if (node == static_cast<std::uint32_t>(i)) continue;
    out.push_back(
        Edge{static_cast<NodeId>(node), dot(query, embeddings_->row(node))});
    if (out.size() == k) break;
  }
  std::sort(out.begin(), out.end(), [](const Edge& a, const Edge& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.neighbor < b.neighbor;
  });
  return out;
}

std::vector<NeighborList> HnswIndex::knn_graph(std::size_t k,
                                               ThreadPool* pool) const {
  const std::size_t n = size();
  std::vector<NeighborList> lists(n);
  ThreadPool& workers = pool != nullptr ? *pool : global_thread_pool();
  workers.parallel_for(n, [&](std::size_t i) {
    lists[i].edges = search_row(i, k);
  });
  return lists;
}

}  // namespace subsel::graph
