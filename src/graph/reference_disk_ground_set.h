// The seed (pre-sharding) disk-backed ground set, kept verbatim as the
// equivalence oracle for the sharded engine and as the perf baseline the
// `micro_core --disk-hotpath` bench measures the sharded cache against: one
// process-wide LRU under a single mutex, held across the pread and both edge
// copies — every worker thread serializes on it.
//
// Do not use outside tests and benches; graph/disk_ground_set.h is the
// production engine.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/ground_set.h"

namespace subsel::graph::reference {

struct MutexDiskGroundSetConfig {
  std::size_t block_edges = 4096;
  std::size_t max_cached_blocks = 64;
};

/// GroundSet over a SimilarityGraph::save file + in-memory utilities, served
/// through a single-mutex LRU block cache (the seed implementation).
class MutexDiskGroundSet final : public GroundSet {
 public:
  MutexDiskGroundSet(const std::string& graph_path,
                     std::vector<double> utilities,
                     const MutexDiskGroundSetConfig& config = {});
  ~MutexDiskGroundSet() override;

  MutexDiskGroundSet(const MutexDiskGroundSet&) = delete;
  MutexDiskGroundSet& operator=(const MutexDiskGroundSet&) = delete;

  std::size_t num_points() const override { return utilities_.size(); }
  double utility(NodeId v) const override {
    return utilities_[static_cast<std::size_t>(v)];
  }
  void neighbors(NodeId v, std::vector<Edge>& out) const override;
  std::size_t degree(NodeId v) const override {
    const auto i = static_cast<std::size_t>(v);
    return static_cast<std::size_t>(offsets_[i + 1] - offsets_[i]);
  }

  std::size_t num_edges() const noexcept {
    return offsets_.empty() ? 0 : static_cast<std::size_t>(offsets_.back());
  }

  std::uint64_t cache_hits() const noexcept { return hits_; }
  std::uint64_t cache_misses() const noexcept { return misses_; }

 private:
  const std::vector<Edge>& block(std::size_t index) const;

  MutexDiskGroundSetConfig config_;
  int fd_ = -1;
  std::uint64_t edge_base_offset_ = 0;  // file offset of edges_[0]
  std::vector<std::int64_t> offsets_;
  std::vector<double> utilities_;

  mutable std::mutex mutex_;
  mutable std::list<std::size_t> lru_;  // most recent first
  struct CacheEntry {
    std::vector<Edge> edges;
    std::list<std::size_t>::iterator lru_position;
  };
  mutable std::unordered_map<std::size_t, CacheEntry> cache_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace subsel::graph::reference
