#include "graph/disk_ground_set.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "common/failpoint.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace subsel::graph {
namespace {

// Mirrors SimilarityGraph::save (similarity_graph.cpp).
constexpr std::uint64_t kGraphMagic = 0x5355424752415048ULL;  // "SUBGRAPH"
constexpr std::uint32_t kGraphVersion = 1;

/// Blocks a prefetch task may load per pool submission: small enough to
/// interleave with solve tasks on the shared pool, large enough to amortize
/// dispatch.
constexpr std::size_t kPrefetchBlocksPerTask = 16;

/// Transient-read retry budget: errno-class failures (EAGAIN & friends, or
/// the "disk.pread" failpoint standing in for them) back off and retry this
/// many times before being promoted to the permanent DiskFormatError::kIo.
constexpr int kMaxReadAttempts = 6;
constexpr std::uint64_t kBackoffBaseMicros = 50;

/// pread() the exact range, classifying failures:
///   - EINTR: a signal, not an error — retried immediately, never counted
///     against the attempt budget.
///   - EOF (got == 0): the file shrank under a live reader — permanent,
///     throws `kind` (the caller's corruption classification).
///   - any other errno (and the "disk.pread" failpoint): transient — counted
///     into `retries`, retried under exponential backoff with deterministic
///     jitter (a pure function of offset and attempt, so fault schedules
///     replay bit-identically), and promoted to kIo once the budget is
///     exhausted.
void pread_exact(int fd, void* buffer, std::size_t size, std::uint64_t offset,
                 const char* what, DiskFormatError::Kind kind,
                 std::atomic<std::uint64_t>* retries) {
  auto* cursor = static_cast<char*>(buffer);
  std::size_t remaining = size;
  int failures = 0;
  const auto transient_failure = [&] {
    if (retries != nullptr) retries->fetch_add(1, std::memory_order_relaxed);
    ++failures;
    if (failures >= kMaxReadAttempts) {
      throw DiskFormatError(
          DiskFormatError::Kind::kIo,
          std::string("DiskGroundSet: transient I/O errors reading ") + what +
              " persisted past " + std::to_string(kMaxReadAttempts) +
              " attempts");
    }
    const std::uint64_t ceiling = kBackoffBaseMicros
                                  << static_cast<unsigned>(failures);
    const std::uint64_t jitter =
        hash_combine(offset, static_cast<std::uint64_t>(failures)) % ceiling;
    std::this_thread::sleep_for(std::chrono::microseconds(ceiling + jitter));
  };
  while (remaining > 0) {
    if (SUBSEL_FAILPOINT_TRIGGERED("disk.pread")) {
      transient_failure();  // simulated EAGAIN: exercises the real retry path
      continue;
    }
    const ssize_t got = ::pread(fd, cursor, remaining,
                                static_cast<off_t>(offset + (size - remaining)));
    if (got < 0) {
      if (errno == EINTR) {
        if (retries != nullptr) retries->fetch_add(1, std::memory_order_relaxed);
        continue;  // signal, not corruption: retry without burning an attempt
      }
      transient_failure();
      continue;
    }
    if (got == 0) {
      throw DiskFormatError(kind,
                            std::string("DiskGroundSet: short read of ") + what);
    }
    cursor += got;
    remaining -= static_cast<std::size_t>(got);
  }
}

/// Per-thread pinned blocks: the immutable payloads this thread recently
/// served spans from, kept alive (and lock-free servable) independently of
/// cache eviction. Slots are keyed by the CALLER'S scratch-buffer address:
/// GroundSet's contract invalidates a span only when the same scratch is
/// reused, and nested traversals (an outer span live while inner spans are
/// served with a different scratch) rely on that — one slot per scratch
/// gives each nesting level its own stable block. `owner` is the owning
/// DiskGroundSet's never-reused instance id, so a pin can outlive its
/// ground set (the shared_ptr keeps the payload alive) without ever being
/// confused for another instance's block.
struct PinSlot {
  const void* key = nullptr;  // caller scratch address (nullptr: copy path)
  std::uint64_t owner = 0;    // 0 = empty slot
  std::size_t first_edge = 0;
  std::size_t end_edge = 0;
  std::shared_ptr<const std::vector<Edge>> data;
};

/// Simultaneously-live spans (distinct scratch buffers) per thread that can
/// be served zero-copy; beyond that, spans fall back to the contract-safe
/// copy-into-scratch path — a pinned slot is NEVER reclaimed while a span
/// could still depend on it. Traversals in this codebase nest at most two
/// levels deep.
constexpr std::size_t kPinSlots = 8;

struct ThreadPins {
  PinSlot slots[kPinSlots];
  /// Most-recently-served slot — the streaming hot path hits the same slot
  /// for ~block_edges/avg_degree consecutive reads, so check it first.
  std::size_t mru = 0;
  /// Instance-death generation this thread last swept its slots against.
  std::uint64_t seen_generation = 0;
  /// Deferred hit count for `hits_owner`, accumulated lock-free on this
  /// thread's own cache line and read by stats() through the registry below
  /// (so snapshots stay accurate even for threads that never pin again);
  /// flushed into the instance's pinned_hits_ on pin transitions.
  std::atomic<std::uint64_t> hits_owner{0};
  std::atomic<std::uint64_t> pending_hits{0};

  ThreadPins();
  ~ThreadPins();
};
thread_local ThreadPins t_pins;

/// Registry of every live thread's ThreadPins, so DiskGroundSet::stats()
/// can include deferred hit counts. Guards registration/deregistration and
/// the iteration; the counters themselves are relaxed atomics. Immortal
/// (intentionally leaked): thread_local ThreadPins destructors — including
/// the main thread's at process exit — must never race the registry's own
/// static teardown.
std::mutex& pins_registry_mutex() {
  static auto* mutex = new std::mutex;
  return *mutex;
}
std::vector<ThreadPins*>& pins_registry() {
  static auto* registry = new std::vector<ThreadPins*>();
  return *registry;
}

ThreadPins::ThreadPins() {
  std::lock_guard lock(pins_registry_mutex());
  pins_registry().push_back(this);
}

ThreadPins::~ThreadPins() {
  std::lock_guard lock(pins_registry_mutex());
  std::erase(pins_registry(), this);
}

std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Registry of live DiskGroundSet instance ids, so threads can release pins
/// of destroyed instances (their payloads would otherwise sit in pool
/// threads' slots indefinitely). Touched at construction/destruction and on
/// the rare sweep after a destruction — never on the read fast path.
std::mutex& live_instances_mutex() {
  static auto* mutex = new std::mutex;  // immortal, like pins_registry_mutex
  return *mutex;
}
std::unordered_map<std::uint64_t, bool>& live_instances() {
  static auto* set = new std::unordered_map<std::uint64_t, bool>();
  return *set;
}
std::atomic<std::uint64_t>& death_generation() {
  static std::atomic<std::uint64_t> generation{0};
  return generation;
}

/// Drops the calling thread's pins of destroyed instances. Cheap no-op
/// (one relaxed load + compare) unless a destruction happened since this
/// thread last swept.
void sweep_dead_pins() {
  const std::uint64_t generation =
      death_generation().load(std::memory_order_acquire);
  if (t_pins.seen_generation == generation) return;
  std::lock_guard lock(live_instances_mutex());
  for (PinSlot& slot : t_pins.slots) {
    if (slot.owner != 0 && live_instances().count(slot.owner) == 0) {
      slot = PinSlot{};
    }
  }
  t_pins.seen_generation = death_generation().load(std::memory_order_acquire);
}

}  // namespace

DiskGroundSet::DiskGroundSet(const std::string& graph_path,
                             std::vector<double> utilities,
                             const DiskGroundSetConfig& config)
    : config_(config),
      utilities_(std::move(utilities)),
      instance_id_(next_instance_id()) {
  if (config_.block_edges == 0 || config_.max_cached_blocks == 0 ||
      config_.num_shards == 0) {
    throw std::invalid_argument(
        "DiskGroundSet: block_edges, max_cached_blocks, and num_shards must"
        " be >= 1");
  }
  // The "disk.open" failpoint simulates the file being unreachable (mount
  // flap, permission race) through the same typed error a real failure takes.
  if (SUBSEL_FAILPOINT_TRIGGERED("disk.open")) {
    throw DiskFormatError(DiskFormatError::Kind::kOpen,
                          "DiskGroundSet: cannot open " + graph_path +
                              " (injected fault at 'disk.open')");
  }
  fd_ = ::open(graph_path.c_str(), O_RDONLY);
  if (fd_ < 0) {
    throw DiskFormatError(DiskFormatError::Kind::kOpen,
                          "DiskGroundSet: cannot open " + graph_path);
  }
  // From here on every failure must close fd_ before throwing.
  try {
    struct ::stat file_info {};
    if (::fstat(fd_, &file_info) != 0 || file_info.st_size < 0) {
      throw DiskFormatError(DiskFormatError::Kind::kOpen,
                            "DiskGroundSet: cannot stat " + graph_path);
    }
    const auto file_size = static_cast<std::uint64_t>(file_info.st_size);

    // Header: magic(8) version(4) | offsets: len(8) data | edges: len(8) data.
    std::uint64_t magic = 0;
    std::uint32_t version = 0;
    std::uint64_t cursor = 0;
    if (file_size < sizeof(magic) + sizeof(version)) {
      throw DiskFormatError(DiskFormatError::Kind::kTruncated,
                            "DiskGroundSet: " + graph_path +
                                " is shorter than a SimilarityGraph header");
    }
    pread_exact(fd_, &magic, sizeof(magic), cursor, "magic",
                DiskFormatError::Kind::kTruncated, &read_retries_);
    cursor += sizeof(magic);
    pread_exact(fd_, &version, sizeof(version), cursor, "version",
                DiskFormatError::Kind::kTruncated, &read_retries_);
    cursor += sizeof(version);
    if (magic != kGraphMagic) {
      throw DiskFormatError(DiskFormatError::Kind::kBadMagic,
                            "DiskGroundSet: " + graph_path +
                                " is not a SimilarityGraph file (bad magic)");
    }
    if (version != kGraphVersion) {
      throw DiskFormatError(DiskFormatError::Kind::kBadVersion,
                            "DiskGroundSet: " + graph_path +
                                " has unsupported SimilarityGraph version " +
                                std::to_string(version));
    }

    std::uint64_t offsets_len = 0;
    if (file_size < cursor + sizeof(offsets_len)) {
      throw DiskFormatError(DiskFormatError::Kind::kTruncated,
                            "DiskGroundSet: " + graph_path +
                                " is truncated before the offsets length");
    }
    pread_exact(fd_, &offsets_len, sizeof(offsets_len), cursor, "offsets length",
                DiskFormatError::Kind::kTruncated, &read_retries_);
    cursor += sizeof(offsets_len);
    if (file_size - cursor < offsets_len * sizeof(std::int64_t) ||
        offsets_len > file_size) {  // second clause guards the multiply
      throw DiskFormatError(DiskFormatError::Kind::kTruncated,
                            "DiskGroundSet: " + graph_path +
                                " is truncated inside the offsets array");
    }
    offsets_.resize(offsets_len);
    if (offsets_len > 0) {
      pread_exact(fd_, offsets_.data(), offsets_len * sizeof(std::int64_t),
                  cursor, "offsets", DiskFormatError::Kind::kTruncated,
                  &read_retries_);
    }
    cursor += offsets_len * sizeof(std::int64_t);

    std::uint64_t edges_len = 0;
    if (file_size - cursor < sizeof(edges_len)) {
      throw DiskFormatError(DiskFormatError::Kind::kTruncated,
                            "DiskGroundSet: " + graph_path +
                                " is truncated before the edges length");
    }
    pread_exact(fd_, &edges_len, sizeof(edges_len), cursor, "edges length",
                DiskFormatError::Kind::kTruncated, &read_retries_);
    cursor += sizeof(edges_len);
    edge_base_offset_ = cursor;
    if (file_size - cursor < edges_len * sizeof(Edge) ||
        edges_len > file_size) {
      throw DiskFormatError(DiskFormatError::Kind::kTruncated,
                            "DiskGroundSet: " + graph_path +
                                " is truncated inside the edge payload");
    }

    // The offsets must walk monotonically from 0 to the edge count; anything
    // else would index edge blocks out of range.
    if (!offsets_.empty()) {
      if (offsets_.front() != 0) {
        throw DiskFormatError(DiskFormatError::Kind::kCorruptOffsets,
                              "DiskGroundSet: first offset is not 0 in " +
                                  graph_path);
      }
      for (std::size_t i = 1; i < offsets_.size(); ++i) {
        if (offsets_[i] < offsets_[i - 1]) {
          throw DiskFormatError(DiskFormatError::Kind::kCorruptOffsets,
                                "DiskGroundSet: offsets are not monotone in " +
                                    graph_path);
        }
      }
      if (static_cast<std::uint64_t>(offsets_.back()) != edges_len) {
        throw DiskFormatError(DiskFormatError::Kind::kCorruptOffsets,
                              "DiskGroundSet: offsets/edges mismatch in " +
                                  graph_path);
      }
    } else if (edges_len != 0) {
      throw DiskFormatError(DiskFormatError::Kind::kCorruptOffsets,
                            "DiskGroundSet: edges without offsets in " +
                                graph_path);
    }

    const std::size_t nodes = offsets_.empty() ? 0 : offsets_.size() - 1;
    if (utilities_.size() != nodes) {
      throw std::invalid_argument(
          "DiskGroundSet: utilities size (" + std::to_string(utilities_.size()) +
          ") != node count (" + std::to_string(nodes) + ")");
    }
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }

  // Split the block budget across the shards (never more shards than
  // blocks, so the budget stays exact: sum of per-shard capacities ==
  // max_cached_blocks).
  const std::size_t shard_count =
      std::min(config_.num_shards, config_.max_cached_blocks);
  shards_ = std::vector<Shard>(shard_count);
  const std::size_t base = config_.max_cached_blocks / shard_count;
  const std::size_t extra = config_.max_cached_blocks % shard_count;
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_[s].capacity = base + (s < extra ? 1 : 0);
  }

  {
    std::lock_guard lock(live_instances_mutex());
    live_instances().emplace(instance_id_, true);
  }
}

DiskGroundSet::~DiskGroundSet() {
  drain_prefetch();
  if (fd_ >= 0) ::close(fd_);
  {
    std::lock_guard lock(live_instances_mutex());
    live_instances().erase(instance_id_);
  }
  // Tell every thread its pins of this instance are reclaimable; each
  // releases them on its next pin transition (sweep_dead_pins).
  death_generation().fetch_add(1, std::memory_order_release);
}

void DiskGroundSet::drain_prefetch() const {
  std::vector<std::future<void>> inflight;
  {
    std::lock_guard lock(prefetch_mutex_);
    inflight.swap(prefetch_inflight_);
  }
  for (std::future<void>& task : inflight) {
    if (task.valid()) task.wait();
  }
}

DiskGroundSet::BlockData DiskGroundSet::load_block(std::size_t index) const {
  const std::size_t first = index * config_.block_edges;
  const std::size_t total = num_edges();
  const std::size_t count = std::min(config_.block_edges, total - first);
  auto edges = std::make_shared<std::vector<Edge>>(count);
  pread_exact(fd_, edges->data(), count * sizeof(Edge),
              edge_base_offset_ + first * sizeof(Edge), "edge block",
              DiskFormatError::Kind::kShortRead, &read_retries_);
  return edges;
}

DiskGroundSet::BlockData DiskGroundSet::insert_block(Shard& shard,
                                                     std::size_t index,
                                                     BlockData data) const {
  // Caller holds shard.mutex. A racing loader may have inserted the block
  // while we were reading; keep the resident copy and drop ours.
  if (const auto it = shard.blocks.find(index); it != shard.blocks.end()) {
    shard.lru.erase(it->second.lru_position);
    shard.lru.push_front(index);
    it->second.lru_position = shard.lru.begin();
    return it->second.edges;
  }
  while (shard.blocks.size() >= shard.capacity) {
    const std::size_t victim = shard.lru.back();
    shard.lru.pop_back();
    shard.blocks.erase(victim);
    resident_blocks_.fetch_sub(1, std::memory_order_relaxed);
  }
  shard.lru.push_front(index);
  shard.blocks.emplace(index, Shard::Entry{data, shard.lru.begin()});
  const std::size_t resident =
      resident_blocks_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::size_t high = resident_high_water_.load(std::memory_order_relaxed);
  while (high < resident && !resident_high_water_.compare_exchange_weak(
                                high, resident, std::memory_order_relaxed)) {
  }
  return data;
}

DiskGroundSet::BlockData DiskGroundSet::block(std::size_t index,
                                              bool demand) const {
  Shard& shard = shard_for(index);
  {
    std::lock_guard lock(shard.mutex);
    if (const auto it = shard.blocks.find(index); it != shard.blocks.end()) {
      if (demand) ++shard.hits;
      shard.lru.erase(it->second.lru_position);
      shard.lru.push_front(index);
      it->second.lru_position = shard.lru.begin();
      return it->second.edges;
    }
    if (demand) ++shard.misses;
  }
  // Disk I/O with no lock held: concurrent misses on one shard read in
  // parallel; insert_block resolves the race.
  BlockData data = load_block(index);
  const std::vector<Edge>* loaded = data.get();
  std::lock_guard lock(shard.mutex);
  BlockData winner = insert_block(shard, index, std::move(data));
  // prefetch_loaded counts blocks ACTUALLY paged in by the prefetcher: only
  // the loader whose payload won the insert race counts, so the counter can
  // never exceed the blocks resident-ever.
  if (!demand && winner.get() == loaded) ++shard.prefetch_loaded;
  return winner;
}

void DiskGroundSet::count_pinned_hit() const {
  if (t_pins.hits_owner.load(std::memory_order_relaxed) != instance_id_) {
    // Deferred hits of another (possibly destroyed) instance are dropped
    // rather than misattributed.
    t_pins.pending_hits.store(0, std::memory_order_relaxed);
    t_pins.hits_owner.store(instance_id_, std::memory_order_relaxed);
  }
  t_pins.pending_hits.fetch_add(1, std::memory_order_relaxed);
}

const void* DiskGroundSet::pin_block(const void* key, std::size_t index,
                                     const BlockData& data) const {
  if (t_pins.hits_owner.load(std::memory_order_relaxed) == instance_id_) {
    const std::uint64_t pending =
        t_pins.pending_hits.exchange(0, std::memory_order_relaxed);
    if (pending > 0) {
      pinned_hits_.fetch_add(pending, std::memory_order_relaxed);
    }
  } else {
    // Taking over from another (possibly destroyed) instance drops its
    // deferred hits rather than misattributing them, like count_pinned_hit.
    t_pins.pending_hits.store(0, std::memory_order_relaxed);
    t_pins.hits_owner.store(instance_id_, std::memory_order_relaxed);
  }

  sweep_dead_pins();

  // Reuse this scratch's slot (replacing it invalidates exactly the span
  // previously served for this scratch — the documented contract). Otherwise
  // take a slot no live span can depend on: an empty slot, or a
  // nullptr-keyed (copy-path) slot of ANY instance. A scratch-keyed slot —
  // ours or another live instance's — may back a live span on this thread
  // and is never reclaimed: when all slots are scratch-keyed (more
  // simultaneously-live scratches than kPinSlots), we return nullptr and
  // the caller serves by copy instead. Zero-copy is an optimization here,
  // never a way to dangle a span.
  PinSlot* slot = nullptr;
  PinSlot* empty_slot = nullptr;
  PinSlot* copy_slot = nullptr;  // occupied but nullptr-keyed: span-free
  for (PinSlot& candidate : t_pins.slots) {
    if (candidate.owner == instance_id_ && candidate.key == key) {
      slot = &candidate;
      break;
    }
    if (candidate.owner == 0) {
      if (empty_slot == nullptr) empty_slot = &candidate;
    } else if (candidate.key == nullptr) {
      if (copy_slot == nullptr) copy_slot = &candidate;
    }
  }
  if (slot == nullptr) slot = empty_slot != nullptr ? empty_slot : copy_slot;
  if (slot == nullptr) return nullptr;
  t_pins.mru = static_cast<std::size_t>(slot - t_pins.slots);
  slot->key = key;
  slot->owner = instance_id_;
  slot->first_edge = index * config_.block_edges;
  slot->end_edge = slot->first_edge + data->size();
  slot->data = data;
  return slot;
}

const DiskGroundSet::BlockData* DiskGroundSet::find_pinned(
    std::size_t first, std::size_t last, std::size_t& block_first) const {
  for (const PinSlot& slot : t_pins.slots) {
    if (slot.owner == instance_id_ && first >= slot.first_edge &&
        last <= slot.end_edge) {
      block_first = slot.first_edge;
      return &slot.data;
    }
  }
  return nullptr;
}

void DiskGroundSet::neighbors(NodeId v, std::vector<Edge>& out) const {
  const auto i = static_cast<std::size_t>(v);
  const auto first = static_cast<std::size_t>(offsets_[i]);
  const auto last = static_cast<std::size_t>(offsets_[i + 1]);
  out.clear();
  out.reserve(last - first);

  // Lock-free fast path: the whole range sits in a block this thread has
  // pinned (the copy-out path hands out no references, so any slot serves).
  std::size_t pinned_first = 0;
  if (const BlockData* pinned = find_pinned(first, last, pinned_first)) {
    count_pinned_hit();
    const auto begin =
        (*pinned)->begin() + static_cast<std::ptrdiff_t>(first - pinned_first);
    out.insert(out.end(), begin,
               begin + static_cast<std::ptrdiff_t>(last - first));
    return;
  }

  std::size_t cursor = first;
  BlockData final_block;
  std::size_t final_index = 0;
  while (cursor < last) {
    const std::size_t block_index = cursor / config_.block_edges;
    const std::size_t block_begin = block_index * config_.block_edges;
    const BlockData edges = block(block_index, /*demand=*/true);
    const std::size_t from = cursor - block_begin;
    const std::size_t to = std::min(last - block_begin, edges->size());
    out.insert(out.end(), edges->begin() + static_cast<std::ptrdiff_t>(from),
               edges->begin() + static_cast<std::ptrdiff_t>(to));
    cursor = block_begin + to;
    final_block = edges;
    final_index = block_index;
  }
  // Accelerate future lookups near this block; keyed by nullptr (no caller
  // span depends on this slot); skipped silently when every slot may back a
  // live span.
  if (final_block != nullptr) pin_block(nullptr, final_index, final_block);
}

std::span<const Edge> DiskGroundSet::neighbors_span(
    NodeId v, std::vector<Edge>& scratch) const {
  const auto i = static_cast<std::size_t>(v);
  const auto first = static_cast<std::size_t>(offsets_[i]);
  const auto last = static_cast<std::size_t>(offsets_[i + 1]);
  if (first == last) return {};

  // Zero-copy serving requires the span to survive until THIS scratch is
  // reused, even across reads with other scratches (nested traversals): the
  // block must be pinned under this scratch's own slot. Streaming readers
  // hit the same slot for a whole block's worth of nodes — check the
  // most-recently-served slot before scanning the table.
  {
    const PinSlot& mru = t_pins.slots[t_pins.mru];
    if (mru.owner == instance_id_ && mru.key == &scratch &&
        first >= mru.first_edge && last <= mru.end_edge) {
      count_pinned_hit();
      return {mru.data->data() + (first - mru.first_edge), last - first};
    }
  }
  for (std::size_t s = 0; s < kPinSlots; ++s) {
    const PinSlot& slot = t_pins.slots[s];
    if (slot.owner == instance_id_ && slot.key == &scratch &&
        first >= slot.first_edge && last <= slot.end_edge) {
      t_pins.mru = s;
      count_pinned_hit();
      return {slot.data->data() + (first - slot.first_edge), last - first};
    }
  }

  const std::size_t block_index = first / config_.block_edges;
  const std::size_t block_begin = block_index * config_.block_edges;
  if (last <= block_begin + config_.block_edges) {
    // One block covers the range. Serve it zero-copy: reuse another slot's
    // payload when one covers the block (shared_ptr copy, no lock), else
    // fetch through the cache; either way pin under this scratch's slot.
    std::size_t pinned_first = 0;
    BlockData data;
    if (const BlockData* pinned = find_pinned(block_begin,
                                              std::min(block_begin + config_.block_edges,
                                                       num_edges()),
                                              pinned_first)) {
      count_pinned_hit();
      data = *pinned;
    } else {
      data = block(block_index, /*demand=*/true);
    }
    if (const auto* slot =
            static_cast<const PinSlot*>(pin_block(&scratch, block_index, data))) {
      return {slot->data->data() + (first - block_begin), last - first};
    }
    // More simultaneously-live scratches than pin slots: serve this one by
    // copy — scratch owns its storage, so the span can never dangle.
    scratch.assign(data->begin() + static_cast<std::ptrdiff_t>(first - block_begin),
                   data->begin() + static_cast<std::ptrdiff_t>(last - block_begin));
    return {scratch.data(), scratch.size()};
  }

  // Straddles blocks: fall back to the copying path; the span then lives in
  // the caller's scratch, which owns its storage.
  neighbors(v, scratch);
  return {scratch.data(), scratch.size()};
}

void DiskGroundSet::prefetch(std::span<const NodeId> nodes,
                             ThreadPool* pool) const {
  if (nodes.empty() || num_edges() == 0) return;

  // Collect the distinct blocks behind the nodes' edge ranges. The plan is
  // partition-shaped (arbitrary node ids), so neighboring nodes often share
  // blocks; sort + unique keeps one load per block and sequential I/O order.
  std::vector<std::size_t> blocks;
  blocks.reserve(nodes.size());
  for (const NodeId v : nodes) {
    const auto i = static_cast<std::size_t>(v);
    const auto first = static_cast<std::size_t>(offsets_[i]);
    const auto last = static_cast<std::size_t>(offsets_[i + 1]);
    if (first == last) continue;  // degree-0: no block to page
    for (std::size_t block_index = first / config_.block_edges;
         block_index * config_.block_edges < last; ++block_index) {
      blocks.push_back(block_index);
    }
  }
  std::sort(blocks.begin(), blocks.end());
  blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
  // Paging in more than a shard can hold would evict blocks this very
  // prefetch just loaded, so cap per shard at its capacity (eviction is
  // per-shard; a global cap alone would let a shard-skewed plan thrash its
  // own loads). Kept blocks remain in file order, lowest offsets first.
  {
    std::vector<std::size_t> taken(shards_.size(), 0);
    std::size_t kept = 0;
    for (const std::size_t index : blocks) {
      const std::size_t s = index % shards_.size();
      if (taken[s] < shards_[s].capacity) {
        blocks[kept++] = index;
        ++taken[s];
      }
    }
    blocks.resize(kept);
  }
  prefetch_issued_.fetch_add(blocks.size(), std::memory_order_relaxed);

  if (pool == nullptr) {
    // Best-effort like the pool path: a hint never throws — the demand read
    // is the loud failure point for a file gone bad. Abandoned blocks are
    // counted so operators can see the hint pipeline degrading.
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      if (SUBSEL_FAILPOINT_TRIGGERED("disk.prefetch")) {
        prefetch_degraded_.fetch_add(blocks.size() - i,
                                     std::memory_order_relaxed);
        return;
      }
      try {
        block(blocks[i], /*demand=*/false);
      } catch (const DiskFormatError&) {
        prefetch_degraded_.fetch_add(blocks.size() - i,
                                     std::memory_order_relaxed);
        return;
      }
    }
    return;
  }

  std::lock_guard lock(prefetch_mutex_);
  // Prune finished tasks so a long-lived ground set doesn't accumulate
  // futures across rounds.
  std::erase_if(prefetch_inflight_, [](std::future<void>& task) {
    return !task.valid() ||
           task.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  });
  for (std::size_t begin = 0; begin < blocks.size();
       begin += kPrefetchBlocksPerTask) {
    const std::size_t end =
        std::min(blocks.size(), begin + kPrefetchBlocksPerTask);
    std::vector<std::size_t> chunk(blocks.begin() + static_cast<std::ptrdiff_t>(begin),
                                   blocks.begin() + static_cast<std::ptrdiff_t>(end));
    prefetch_inflight_.push_back(pool->submit([this, chunk = std::move(chunk)] {
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        if (SUBSEL_FAILPOINT_TRIGGERED("disk.prefetch")) {
          // Injected async-I/O failure: the hint task degrades silently and
          // the abandoned blocks become ordinary demand misses later.
          prefetch_degraded_.fetch_add(chunk.size() - i,
                                       std::memory_order_relaxed);
          return;
        }
        try {
          block(chunk[i], /*demand=*/false);
        } catch (const DiskFormatError&) {
          // A shrunken file fails loudly on the demand path; the prefetch
          // hint stays best-effort, but the degradation is counted.
          prefetch_degraded_.fetch_add(chunk.size() - i,
                                       std::memory_order_relaxed);
          return;
        }
      }
    }));
  }
}

std::size_t DiskGroundSet::resident_bytes() const noexcept {
  return offsets_.size() * sizeof(std::int64_t) +
         utilities_.size() * sizeof(double) +
         config_.max_cached_blocks * config_.block_edges * sizeof(Edge);
}

DiskCacheStats DiskGroundSet::stats() const noexcept {
  DiskCacheStats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.prefetch_loaded += shard.prefetch_loaded;
  }
  stats.hits += pinned_hits_.load(std::memory_order_relaxed);
  {
    // Include every thread's deferred pinned-hit count, so snapshots are
    // accurate even for threads that never pin again. pinned_hits_ was read
    // BEFORE these pendings, so a concurrent flush can only undercount
    // transiently — never double count.
    std::lock_guard lock(pins_registry_mutex());
    for (const ThreadPins* pins : pins_registry()) {
      if (pins->hits_owner.load(std::memory_order_relaxed) == instance_id_) {
        stats.hits += pins->pending_hits.load(std::memory_order_relaxed);
      }
    }
  }
  stats.prefetch_issued = prefetch_issued_.load(std::memory_order_relaxed);
  stats.read_retries = read_retries_.load(std::memory_order_relaxed);
  stats.prefetch_degraded = prefetch_degraded_.load(std::memory_order_relaxed);
  stats.resident_blocks = resident_blocks_.load(std::memory_order_relaxed);
  stats.resident_blocks_high_water =
      resident_high_water_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace subsel::graph
