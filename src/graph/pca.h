// 2-D PCA projection (power iteration with deflation).
//
// Stand-in for the t-SNE visualization of Figure 5 / Appendix C: we only need
// a deterministic 2-D layout to show *where* selected points fall (uniform
// spread for centralized greedy vs. local clusters for many partitions).
#pragma once

#include <array>
#include <vector>

#include "graph/embedding_matrix.h"
#include "graph/quantized_embedding.h"

namespace subsel::graph {

struct Projection2D {
  std::vector<float> x;  // first principal component scores
  std::vector<float> y;  // second principal component scores
};

/// Projects all rows onto the top two principal components of the (mean-
/// centered) embedding matrix. `iterations` power-iteration steps per
/// component; deterministic given `seed`.
Projection2D pca_project_2d(const EmbeddingMatrix& embeddings,
                            std::size_t iterations = 30, std::uint64_t seed = 7);

/// Same projection computed from a quantized row store (rows dequantized on
/// the fly — no float32 copy of the matrix is materialized). The layout
/// differs from the float32 projection only by the quantization error of the
/// inputs; the visualization use case is insensitive to it.
Projection2D pca_project_2d(const QuantizedMatrix& embeddings,
                            std::size_t iterations = 30, std::uint64_t seed = 7);

}  // namespace subsel::graph
