// 2-D PCA projection (power iteration with deflation).
//
// Stand-in for the t-SNE visualization of Figure 5 / Appendix C: we only need
// a deterministic 2-D layout to show *where* selected points fall (uniform
// spread for centralized greedy vs. local clusters for many partitions).
#pragma once

#include <array>
#include <vector>

#include "graph/embedding_matrix.h"

namespace subsel::graph {

struct Projection2D {
  std::vector<float> x;  // first principal component scores
  std::vector<float> y;  // second principal component scores
};

/// Projects all rows onto the top two principal components of the (mean-
/// centered) embedding matrix. `iterations` power-iteration steps per
/// component; deterministic given `seed`.
Projection2D pca_project_2d(const EmbeddingMatrix& embeddings,
                            std::size_t iterations = 30, std::uint64_t seed = 7);

}  // namespace subsel::graph
