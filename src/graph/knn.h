// k-nearest-neighbor graph construction.
//
// Two backends:
//  - exact brute force (O(n^2 d)), used for small instances and as the recall
//    reference in tests;
//  - an IVF (inverted-file) approximate index — k-means coarse quantizer with
//    multi-probe search — standing in for the ScaNN similarity search the
//    paper uses (Guo et al., 2020). Recall against brute force is measured in
//    tests; for clustered embeddings with >= 8 probes it is ~1.0.
//
// Both return directed kNN lists with cosine-similarity weights (embeddings
// must be row-normalized); callers symmetrize via SimilarityGraph.
#pragma once

#include <cstddef>
#include <vector>

#include "common/thread_pool.h"
#include "graph/embedding_matrix.h"
#include "graph/quantized_embedding.h"
#include "graph/similarity_graph.h"

namespace subsel::graph {

struct KnnConfig {
  std::size_t num_neighbors = 10;  // the paper's 10-NN
  // IVF parameters; ignored by the brute-force backend.
  std::size_t num_clusters = 0;      // 0 -> ~sqrt(n) heuristic
  std::size_t num_probes = 8;        // clusters scanned per query
  std::size_t kmeans_iterations = 8;
  std::uint64_t seed = 1;
  // Precision of the similarity scans that RANK candidates during the build.
  // kFloat16/kInt8 store a compact copy of the embeddings and score it with
  // the vectorized kernels in quantized_embedding.h; the final edges each
  // query keeps are then rescored with the exact float32 dot, so quantization
  // can only change which neighbors are found (bounded-recall, tested), never
  // the weight of an edge that is found. kFloat32 is the exact legacy path.
  EmbeddingPrecision precision = EmbeddingPrecision::kFloat32;
};

/// Exact kNN by cosine similarity. Self is excluded. Ties broken by lower id.
std::vector<NeighborList> brute_force_knn(const EmbeddingMatrix& embeddings,
                                          const KnnConfig& config,
                                          ThreadPool* pool = nullptr);

/// IVF approximate kNN index (ScaNN stand-in).
class IvfIndex {
 public:
  /// Builds the coarse quantizer over `embeddings` (must be row-normalized;
  /// the matrix must outlive the index).
  IvfIndex(const EmbeddingMatrix& embeddings, const KnnConfig& config,
           ThreadPool* pool = nullptr);

  /// Top-k most-similar points for `query` among the probed clusters,
  /// excluding `exclude` (pass a valid id to drop self-matches, or -1).
  std::vector<Edge> search(std::span<const float> query, std::size_t k,
                           NodeId exclude) const;

  /// Builds the full directed kNN graph for all indexed points.
  std::vector<NeighborList> knn_graph(ThreadPool* pool = nullptr) const;

  std::size_t num_clusters() const noexcept { return centroids_.rows(); }

 private:
  /// knn_graph's per-row search: quantized candidate ranking + exact rescore
  /// when config_.precision != kFloat32, otherwise exactly search().
  std::vector<Edge> search_row(std::size_t i, std::size_t k) const;

  const EmbeddingMatrix& embeddings_;
  KnnConfig config_;
  EmbeddingMatrix centroids_;
  std::vector<std::vector<NodeId>> cluster_members_;
  QuantizedMatrix quantized_points_;     // empty on the float32 path
  QuantizedMatrix quantized_centroids_;  // final centroids, same precision
};

/// Convenience: build a symmetrized similarity graph from embeddings with the
/// backend chosen by size (exact below `exact_threshold` rows, IVF above).
SimilarityGraph build_similarity_graph(const EmbeddingMatrix& embeddings,
                                       const KnnConfig& config,
                                       std::size_t exact_threshold = 4096,
                                       ThreadPool* pool = nullptr);

}  // namespace subsel::graph
