#include "graph/similarity_graph.h"

#include <algorithm>
#include <stdexcept>

#include "common/serialize.h"

namespace subsel::graph {
namespace {
constexpr std::uint64_t kGraphMagic = 0x5355424752415048ULL;  // "SUBGRAPH"
constexpr std::uint32_t kGraphVersion = 1;
}  // namespace

SimilarityGraph SimilarityGraph::from_lists(const std::vector<NeighborList>& lists) {
  SimilarityGraph graph;
  graph.offsets_.resize(lists.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < lists.size(); ++i) {
    total += lists[i].edges.size();
    graph.offsets_[i + 1] = static_cast<std::int64_t>(total);
  }
  graph.edges_.reserve(total);
  const auto n = static_cast<NodeId>(lists.size());
  for (std::size_t i = 0; i < lists.size(); ++i) {
    std::vector<Edge> sorted = lists[i].edges;
    std::sort(sorted.begin(), sorted.end(),
              [](const Edge& a, const Edge& b) { return a.neighbor < b.neighbor; });
    for (std::size_t e = 0; e < sorted.size(); ++e) {
      const Edge& edge = sorted[e];
      if (edge.neighbor < 0 || edge.neighbor >= n) {
        throw std::invalid_argument("SimilarityGraph: neighbor id out of range");
      }
      if (edge.neighbor == static_cast<NodeId>(i)) {
        throw std::invalid_argument("SimilarityGraph: self loop");
      }
      if (e > 0 && sorted[e - 1].neighbor == edge.neighbor) {
        throw std::invalid_argument("SimilarityGraph: duplicate neighbor");
      }
      if (edge.weight < 0.0f) {
        throw std::invalid_argument("SimilarityGraph: negative weight");
      }
      graph.edges_.push_back(edge);
    }
  }
  return graph;
}

SimilarityGraph SimilarityGraph::symmetrized() const {
  const std::size_t n = num_nodes();
  // Count the union of forward and reverse edges per node.
  std::vector<NeighborList> lists(n);
  for (std::size_t v = 0; v < n; ++v) {
    lists[v].edges.assign(neighbors(static_cast<NodeId>(v)).begin(),
                          neighbors(static_cast<NodeId>(v)).end());
  }
  for (std::size_t v = 0; v < n; ++v) {
    for (const Edge& edge : neighbors(static_cast<NodeId>(v))) {
      lists[static_cast<std::size_t>(edge.neighbor)].edges.push_back(
          Edge{static_cast<NodeId>(v), edge.weight});
    }
  }
  // Deduplicate, keeping the max weight among directions.
  for (auto& list : lists) {
    std::sort(list.edges.begin(), list.edges.end(),
              [](const Edge& a, const Edge& b) {
                if (a.neighbor != b.neighbor) return a.neighbor < b.neighbor;
                return a.weight > b.weight;
              });
    list.edges.erase(std::unique(list.edges.begin(), list.edges.end(),
                                 [](const Edge& a, const Edge& b) {
                                   return a.neighbor == b.neighbor;
                                 }),
                     list.edges.end());
  }
  return from_lists(lists);
}

std::size_t SimilarityGraph::min_degree() const {
  std::size_t best = num_edges();
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    best = std::min(best, degree(static_cast<NodeId>(v)));
  }
  return num_nodes() == 0 ? 0 : best;
}

std::size_t SimilarityGraph::max_degree() const {
  std::size_t best = 0;
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    best = std::max(best, degree(static_cast<NodeId>(v)));
  }
  return best;
}

bool SimilarityGraph::is_symmetric() const {
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    for (const Edge& edge : neighbors(static_cast<NodeId>(v))) {
      const auto reverse = neighbors(edge.neighbor);
      const auto it = std::lower_bound(
          reverse.begin(), reverse.end(), static_cast<NodeId>(v),
          [](const Edge& e, NodeId id) { return e.neighbor < id; });
      if (it == reverse.end() || it->neighbor != static_cast<NodeId>(v) ||
          it->weight != edge.weight) {
        return false;
      }
    }
  }
  return true;
}

double SimilarityGraph::total_edge_weight() const {
  double sum = 0.0;
  for (const Edge& edge : edges_) sum += edge.weight;
  return sum / 2.0;  // every undirected edge is stored in both directions
}

void SimilarityGraph::save(const std::string& path) const {
  BinaryWriter writer(path);
  writer.write_pod(kGraphMagic);
  writer.write_pod(kGraphVersion);
  writer.write_vector(offsets_);
  writer.write_vector(edges_);
  if (!writer.ok()) throw std::runtime_error("SimilarityGraph::save failed: " + path);
}

SimilarityGraph SimilarityGraph::load(const std::string& path) {
  BinaryReader reader(path);
  if (reader.read_pod<std::uint64_t>() != kGraphMagic) {
    throw std::runtime_error("SimilarityGraph::load: bad magic in " + path);
  }
  if (reader.read_pod<std::uint32_t>() != kGraphVersion) {
    throw std::runtime_error("SimilarityGraph::load: bad version in " + path);
  }
  SimilarityGraph graph;
  graph.offsets_ = reader.read_vector<std::int64_t>();
  graph.edges_ = reader.read_vector<Edge>();
  return graph;
}

}  // namespace subsel::graph
