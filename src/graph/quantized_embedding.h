// Quantized embedding storage + vectorized distance kernels for the graph
// build (the second prong of the SIMD/data-layout pass).
//
// The kNN/HNSW/PCA build paths spend nearly all their time in row-vs-row
// dot products over float32 embeddings. This module stores rows in one of
// two compact formats and scores them with backend-dispatched kernels:
//
//  - int8: per-row symmetric quantization, q = round(x / scale) with
//    scale = max|x| / 127. A dot product is an INTEGER dot (exact — every
//    backend produces the same int32) finished by one float multiply with
//    fl(scale_i · scale_j), so int8 similarities are bit-identical across
//    scalar and AVX2. 4x smaller rows, and the AVX2 path
//    (cvtepi8_epi16 + madd_epi16) retires 16 products per instruction.
//  - float16 (IEEE binary16): stored as raw half bits, converted exactly to
//    float32 on load (half→float is lossless) and accumulated in an 8-lane
//    split — lane i mod 8, reduced ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)) —
//    mirrored by the AVX2 path (vcvtph2ps + 8-wide mul/add), so float16
//    similarities are also bit-identical across backends. 2x smaller rows.
//
// Backend choice follows common/simd.h (SUBSEL_FORCE_SCALAR and
// ScopedBackendOverride included) and is captured once per QuantizedMatrix
// at construction; aarch64 currently uses the portable scalar kernels.
//
// Quantization changes WHICH neighbors a build ranks highest, never the
// final edge weights the selection consumes: the graph-build callers rescore
// the chosen edges with the exact float32 dot (see knn.cpp / hnsw.cpp), so
// quantization error is bounded-recall, not bounded-weight. The error of the
// quantized scores themselves is bounded per coordinate by scale/2 (int8,
// ~0.4% of the row's max coordinate) and by half-precision rounding
// (2^-11 relative) for float16 — tests hold recall against the exact build.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/simd.h"
#include "graph/embedding_matrix.h"

namespace subsel::graph {

/// How graph-build embeddings are stored and scored. kFloat32 means "no
/// quantization" — the exact float path used everywhere before this pass.
enum class EmbeddingPrecision : std::uint8_t {
  kFloat32 = 0,
  kFloat16 = 1,
  kInt8 = 2,
};

/// Stable lowercase name: "float32", "float16", "int8".
const char* precision_name(EmbeddingPrecision precision) noexcept;

/// Exact IEEE binary16 → binary32 conversion (every half value is exactly
/// representable in float; subnormals and inf/NaN included).
float half_to_float(std::uint16_t half) noexcept;

/// IEEE binary32 → binary16, round-to-nearest-even, overflow to ±inf.
std::uint16_t float_to_half(float value) noexcept;

/// Compact row store + similarity kernels for one precision. Rows correspond
/// 1:1 to the source EmbeddingMatrix rows. Not constructible with kFloat32 —
/// callers keep using the EmbeddingMatrix directly for the exact path.
class QuantizedMatrix {
 public:
  QuantizedMatrix() = default;
  /// Quantizes every row of `source`. The conversion itself is shared scalar
  /// code, so the stored bits are identical no matter which backend later
  /// scores them.
  QuantizedMatrix(const EmbeddingMatrix& source, EmbeddingPrecision precision);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t dim() const noexcept { return dim_; }
  bool empty() const noexcept { return rows_ == 0; }
  EmbeddingPrecision precision() const noexcept { return precision_; }

  /// Quantized cosine similarity between stored rows i and j. Bit-identical
  /// across backends (see file header).
  float similarity(std::size_t i, std::size_t j) const noexcept {
    return similarity_to(i, *this, j);
  }

  /// Cross-matrix variant: row i of *this against row j of `other` (same
  /// precision and dim required — the IVF assign step scoring points against
  /// re-quantized centroids).
  float similarity_to(std::size_t i, const QuantizedMatrix& other,
                      std::size_t j) const noexcept;

  /// Reconstructs row i as float32 into `out` (size dim()).
  void dequantize(std::size_t i, std::span<float> out) const noexcept;

  std::size_t byte_size() const noexcept {
    return i8_data_.size() * sizeof(std::int8_t) +
           f16_data_.size() * sizeof(std::uint16_t) +
           scale_.size() * sizeof(float);
  }

  /// Name of the backend the similarity kernels bound at construction.
  const char* backend() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t dim_ = 0;
  EmbeddingPrecision precision_ = EmbeddingPrecision::kFloat32;
  const void* ops_ = nullptr;             // backend op table (internal type)
  std::vector<std::int8_t> i8_data_;      // int8 rows (row-major)
  std::vector<float> scale_;              // per-row dequantization scale
  std::vector<std::uint16_t> f16_data_;   // half-bits rows (row-major)
};

}  // namespace subsel::graph
