#include "graph/quantized_embedding.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define SUBSEL_QSIMD_HAVE_AVX2 1
#include <immintrin.h>
#endif

namespace subsel::graph {

const char* precision_name(EmbeddingPrecision precision) noexcept {
  switch (precision) {
    case EmbeddingPrecision::kFloat32: return "float32";
    case EmbeddingPrecision::kFloat16: return "float16";
    case EmbeddingPrecision::kInt8: return "int8";
  }
  return "unknown";
}

float half_to_float(std::uint16_t half) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(half & 0x8000u) << 16;
  const std::uint32_t exp = (half >> 10) & 0x1Fu;
  const std::uint32_t man = half & 0x3FFu;
  std::uint32_t bits;
  if (exp == 0) {
    if (man == 0) {
      bits = sign;  // ±0
    } else {
      // Subnormal half: renormalize. The value is man·2^-24; with the top set
      // bit at position p (shifts = 10 - p to bring it to the implicit-bit
      // slot 0x400) that is 1.frac · 2^(p-24), so the float exponent is
      // (10 - shifts) - 24 + 127 = 113 - shifts.
      std::uint32_t m = man;
      std::uint32_t shifts = 0;
      while ((m & 0x400u) == 0) {
        m <<= 1;
        ++shifts;
      }
      const std::uint32_t exp32 = 113 - shifts;
      bits = sign | (exp32 << 23) | ((m & 0x3FFu) << 13);
    }
  } else if (exp == 31) {
    bits = sign | 0x7F800000u | (man << 13);  // ±inf / NaN (payload shifted)
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (man << 13);
  }
  return std::bit_cast<float>(bits);
}

std::uint16_t float_to_half(float value) noexcept {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  const auto sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000u);
  const std::uint32_t exp = (bits >> 23) & 0xFFu;
  const std::uint32_t man = bits & 0x7FFFFFu;
  if (exp == 0xFF) {  // inf / NaN (keep NaN-ness with a quiet payload bit)
    return static_cast<std::uint16_t>(sign | 0x7C00u | (man != 0 ? 0x200u : 0u));
  }
  const int e = static_cast<int>(exp) - 127 + 15;
  if (e >= 31) return static_cast<std::uint16_t>(sign | 0x7C00u);  // → ±inf
  if (e <= 0) {
    // Result is half-subnormal (unit 2^-24) or rounds to zero.
    if (e < -11) return sign;  // too small even to round up to the min subnormal
    const std::uint32_t full = man | 0x800000u;  // restore implicit bit
    const int shift = 14 - e;                    // 14..25 — full >> shift is the
    std::uint32_t half_man = full >> shift;      // truncated subnormal mantissa
    const std::uint32_t rem = full & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_man & 1u))) ++half_man;
    // A carry out of bit 9 lands in the exponent field = the min normal: fine.
    return static_cast<std::uint16_t>(sign | half_man);
  }
  std::uint16_t out = static_cast<std::uint16_t>(
      sign | (static_cast<std::uint32_t>(e) << 10) | (man >> 13));
  const std::uint32_t rem = man & 0x1FFFu;
  // Round to nearest, ties to even; a mantissa carry correctly bumps the
  // exponent (and 0x7BFF + 1 = 0x7C00 = inf, the right overflow behavior).
  if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) ++out;
  return out;
}

namespace {

// ---------------------------------------------------------------------------
// Backend op tables. int8 dots are exact integer arithmetic (order-free);
// float16 dots use the 8-lane split accumulation described in the header, so
// the scalar and AVX2 implementations are bit-identical by construction.
// ---------------------------------------------------------------------------

struct QuantOps {
  std::int32_t (*i8_dot)(const std::int8_t* a, const std::int8_t* b,
                         std::size_t dim);
  float (*f16_dot)(const std::uint16_t* a, const std::uint16_t* b,
                   std::size_t dim);
  const char* name;
};

std::int32_t i8_dot_scalar(const std::int8_t* a, const std::int8_t* b,
                           std::size_t dim) {
  std::int32_t total = 0;
  for (std::size_t i = 0; i < dim; ++i) {
    total += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return total;
}

float f16_dot_scalar(const std::uint16_t* a, const std::uint16_t* b,
                     std::size_t dim) {
  float lanes[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  std::size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    for (unsigned lane = 0; lane < 8; ++lane) {
      lanes[lane] += half_to_float(a[i + lane]) * half_to_float(b[i + lane]);
    }
  }
  for (unsigned lane = 0; i < dim; ++i, ++lane) {
    lanes[lane] += half_to_float(a[i]) * half_to_float(b[i]);
  }
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

#if defined(SUBSEL_QSIMD_HAVE_AVX2)

__attribute__((target("avx2")))
std::int32_t i8_dot_avx2(const std::int8_t* a, const std::int8_t* b,
                         std::size_t dim) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    // Widen to int16 and multiply-accumulate adjacent pairs into int32.
    // |q| ≤ 127 so each pair sum ≤ 2·127² and the int32 accumulators hold
    // dims far beyond any embedding width used here.
    const __m256i wa = _mm256_cvtepi8_epi16(va);
    const __m256i wb = _mm256_cvtepi8_epi16(vb);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(wa, wb));
  }
  alignas(32) std::int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int32_t total = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
                       ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
  for (; i < dim; ++i) {
    total += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return total;
}

__attribute__((target("avx2,f16c")))
float f16_dot_avx2(const std::uint16_t* a, const std::uint16_t* b,
                   std::size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    const __m128i ha =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i hb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    // vcvtph2ps is exact (half → float is lossless), matching half_to_float.
    const __m256 fa = _mm256_cvtph_ps(ha);
    const __m256 fb = _mm256_cvtph_ps(hb);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(fa, fb));
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  // Tail elements continue the lane assignment (i ≡ 0 mod 8 here), exactly
  // like the scalar kernel.
  for (unsigned lane = 0; i < dim; ++i, ++lane) {
    lanes[lane] += half_to_float(a[i]) * half_to_float(b[i]);
  }
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

#endif  // SUBSEL_QSIMD_HAVE_AVX2

constexpr QuantOps kScalarQuantOps{i8_dot_scalar, f16_dot_scalar, "scalar"};
#if defined(SUBSEL_QSIMD_HAVE_AVX2)
constexpr QuantOps kAvx2QuantOps{i8_dot_avx2, f16_dot_avx2, "avx2"};
// AVX2 without F16C is vanishingly rare but checkable; keep the int8 speedup
// and fall back to the (bit-identical) scalar half kernel.
constexpr QuantOps kAvx2NoF16cQuantOps{i8_dot_avx2, f16_dot_scalar, "avx2"};
#endif

const QuantOps& quant_ops_for(simd::Backend backend) noexcept {
#if defined(SUBSEL_QSIMD_HAVE_AVX2)
  if (backend == simd::Backend::kAvx2) {
    return __builtin_cpu_supports("f16c") ? kAvx2QuantOps : kAvx2NoF16cQuantOps;
  }
#else
  (void)backend;  // aarch64: NEON quantized kernels not implemented yet —
                  // scalar is the portable contract on every architecture.
#endif
  return kScalarQuantOps;
}

const QuantOps* as_ops(const void* p) noexcept {
  return p != nullptr ? static_cast<const QuantOps*>(p) : &kScalarQuantOps;
}

}  // namespace

QuantizedMatrix::QuantizedMatrix(const EmbeddingMatrix& source,
                                 EmbeddingPrecision precision)
    : rows_(source.rows()),
      dim_(source.dim()),
      precision_(precision),
      ops_(&quant_ops_for(simd::active_backend())) {
  assert(precision != EmbeddingPrecision::kFloat32 &&
         "kFloat32 means 'use the EmbeddingMatrix directly'");
  if (precision_ == EmbeddingPrecision::kInt8) {
    i8_data_.resize(rows_ * dim_);
    scale_.resize(rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      const std::span<const float> row = source.row(r);
      float max_abs = 0.0f;
      for (const float x : row) max_abs = std::max(max_abs, std::fabs(x));
      const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
      scale_[r] = scale;
      const float inv = 1.0f / scale;
      std::int8_t* out = i8_data_.data() + r * dim_;
      for (std::size_t c = 0; c < dim_; ++c) {
        const float q = std::nearbyintf(row[c] * inv);
        out[c] = static_cast<std::int8_t>(
            std::clamp(q, -127.0f, 127.0f));
      }
    }
  } else {
    f16_data_.resize(rows_ * dim_);
    for (std::size_t r = 0; r < rows_; ++r) {
      const std::span<const float> row = source.row(r);
      std::uint16_t* out = f16_data_.data() + r * dim_;
      for (std::size_t c = 0; c < dim_; ++c) out[c] = float_to_half(row[c]);
    }
  }
}

float QuantizedMatrix::similarity_to(std::size_t i, const QuantizedMatrix& other,
                                     std::size_t j) const noexcept {
  assert(precision_ == other.precision_ && dim_ == other.dim_);
  const QuantOps* ops = as_ops(ops_);
  if (precision_ == EmbeddingPrecision::kInt8) {
    const std::int32_t idot = ops->i8_dot(i8_data_.data() + i * dim_,
                                          other.i8_data_.data() + j * dim_, dim_);
    // One float product of the exact integer dot with fl(scale_i·scale_j):
    // scalar on every backend, so int8 similarity is backend-independent.
    return (scale_[i] * other.scale_[j]) * static_cast<float>(idot);
  }
  return ops->f16_dot(f16_data_.data() + i * dim_,
                      other.f16_data_.data() + j * dim_, dim_);
}

void QuantizedMatrix::dequantize(std::size_t i,
                                 std::span<float> out) const noexcept {
  assert(out.size() >= dim_);
  if (precision_ == EmbeddingPrecision::kInt8) {
    const std::int8_t* row = i8_data_.data() + i * dim_;
    const float scale = scale_[i];
    for (std::size_t c = 0; c < dim_; ++c) {
      out[c] = scale * static_cast<float>(row[c]);
    }
  } else {
    const std::uint16_t* row = f16_data_.data() + i * dim_;
    for (std::size_t c = 0; c < dim_; ++c) out[c] = half_to_float(row[c]);
  }
}

const char* QuantizedMatrix::backend() const noexcept {
  return as_ops(ops_)->name;
}

}  // namespace subsel::graph
