// Abstraction over a (possibly larger-than-memory) ground set.
//
// The selection algorithms need exactly three things about the data: its
// cardinality, per-point utilities u(v), and per-point similarity
// neighborhoods {(v2, s(v,v2))}. Materialized datasets implement this with a
// CSR graph + utility vector (InMemoryGroundSet); the 13-billion-point
// Perturbed dataset implements it by *computing* utilities and neighborhoods
// on the fly from seeded hashes (data/perturbed.h), so the full ground set is
// never resident.
//
// Contract: the neighborhood relation must be symmetric with equal weights in
// both directions and contain no self loops, and all weights must be
// non-negative — these are the Section 3/5 preconditions for submodularity
// and for the distributed joins.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/similarity_graph.h"

namespace subsel {
class ThreadPool;
}

namespace subsel::graph {

class GroundSet {
 public:
  virtual ~GroundSet() = default;

  virtual std::size_t num_points() const = 0;

  virtual double utility(NodeId v) const = 0;

  /// Hint that `nodes`' neighborhoods will be read soon. Out-of-core
  /// implementations page the backing blocks in — asynchronously when a pool
  /// is given (fire-and-forget; the implementation owns task lifetime) —
  /// so the solver round loops can walk the upcoming partition plan ahead
  /// of the solve. Resident implementations ignore it.
  virtual void prefetch(std::span<const NodeId> nodes, ThreadPool* pool) const {
    (void)nodes;
    (void)pool;
  }

  /// Replaces `out` with the neighbors of v. Implementations should reuse
  /// `out`'s capacity; callers reuse one buffer across calls.
  virtual void neighbors(NodeId v, std::vector<Edge>& out) const = 0;

  /// Zero-copy fast path: a view of v's neighbors. Implementations backed by
  /// stable storage (a resident CSR graph) return a span straight into it and
  /// never touch `scratch`; the default copies through neighbors() into
  /// `scratch` and views that. Either way the result is invalidated by the
  /// next neighbors_span/neighbors call that reuses the same scratch buffer,
  /// so consume it before querying the next node.
  virtual std::span<const Edge> neighbors_span(NodeId v,
                                               std::vector<Edge>& scratch) const {
    neighbors(v, scratch);
    return {scratch.data(), scratch.size()};
  }

  /// Visitor-style iteration over v's neighbors on the zero-copy path.
  template <typename Visitor>
  void visit_neighbors(NodeId v, std::vector<Edge>& scratch, Visitor&& visit) const {
    for (const Edge& edge : neighbors_span(v, scratch)) visit(edge);
  }

  /// Degree of v; default derives it via the zero-copy path — override when
  /// cheaper. The scratch buffer is reused across calls so implementations
  /// without a span fast path pay one copy, not one allocation, per call.
  virtual std::size_t degree(NodeId v) const {
    thread_local std::vector<Edge> scratch;
    return neighbors_span(v, scratch).size();
  }
};

/// Ground set backed by a materialized symmetric similarity graph and a
/// utility vector (the CIFAR/ImageNet-proxy path).
class InMemoryGroundSet final : public GroundSet {
 public:
  /// Both references must outlive the ground set.
  InMemoryGroundSet(const SimilarityGraph& graph, const std::vector<double>& utilities)
      : graph_(graph), utilities_(utilities) {}

  std::size_t num_points() const override { return graph_.num_nodes(); }

  double utility(NodeId v) const override {
    return utilities_[static_cast<std::size_t>(v)];
  }

  void neighbors(NodeId v, std::vector<Edge>& out) const override {
    const auto span = graph_.neighbors(v);
    out.assign(span.begin(), span.end());
  }

  /// Hands out the CSR storage directly — no copy, `scratch` untouched.
  std::span<const Edge> neighbors_span(NodeId v,
                                       std::vector<Edge>& /*scratch*/) const override {
    return graph_.neighbors(v);
  }

  std::size_t degree(NodeId v) const override { return graph_.degree(v); }

  const SimilarityGraph& similarity_graph() const noexcept { return graph_; }
  const std::vector<double>& utilities() const noexcept { return utilities_; }

 private:
  const SimilarityGraph& graph_;
  const std::vector<double>& utilities_;
};

}  // namespace subsel::graph
