#include "graph/overlay_ground_set.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <string>

#include "common/failpoint.h"

namespace subsel::graph {

bool OverlayGroundSet::live_locked(NodeId v) const noexcept {
  const auto i = static_cast<std::size_t>(v);
  if (v < 0 || i >= base_n_ + inserted_.size()) return false;
  return i >= deleted_.size() || deleted_[i] == 0;
}

NodeId OverlayGroundSet::insert(double utility, std::span<const Edge> edges) {
  SUBSEL_FAILPOINT("overlay.mutate");
  std::unique_lock lock(mutex_);
  if (!std::isfinite(utility)) {
    throw std::invalid_argument("overlay insert: utility must be finite");
  }
  const NodeId id = static_cast<NodeId>(base_n_ + inserted_.size());

  // Validate fully before committing anything (strong guarantee).
  InsertedPoint point;
  point.utility = utility;
  point.edges.assign(edges.begin(), edges.end());
  std::sort(point.edges.begin(), point.edges.end(),
            [](const Edge& a, const Edge& b) { return a.neighbor < b.neighbor; });
  NodeId previous = -1;
  for (const Edge& e : point.edges) {
    if (e.neighbor == id || e.neighbor == previous || !live_locked(e.neighbor)) {
      throw std::invalid_argument(
          "overlay insert: edge neighbor " + std::to_string(e.neighbor) +
          " is not a distinct live point");
    }
    if (e.weight < 0.0f || !std::isfinite(e.weight)) {
      throw std::invalid_argument("overlay insert: edge weights must be finite and >= 0");
    }
    previous = e.neighbor;
  }

  // Commit: the forward list, then the symmetric reverse edges. Reverse
  // lists stay sorted because the new id is larger than every existing one.
  for (const Edge& e : point.edges) {
    std::vector<Edge>& reverse =
        e.neighbor >= static_cast<NodeId>(base_n_)
            ? inserted_[static_cast<std::size_t>(e.neighbor) - base_n_].edges
            : extra_[e.neighbor];
    reverse.push_back(Edge{id, e.weight});
  }
  inserted_.push_back(std::move(point));
  ++version_;
  return id;
}

void OverlayGroundSet::erase(NodeId v) {
  SUBSEL_FAILPOINT("overlay.mutate");
  std::unique_lock lock(mutex_);
  if (!live_locked(v)) {
    throw std::invalid_argument("overlay erase: id " + std::to_string(v) +
                                " is not a live point");
  }
  const auto i = static_cast<std::size_t>(v);
  if (deleted_.size() <= i) deleted_.resize(base_n_ + inserted_.size(), 0);
  deleted_[i] = 1;
  ++version_;
}

bool OverlayGroundSet::is_live(NodeId v) const {
  std::shared_lock lock(mutex_);
  return live_locked(v);
}

std::size_t OverlayGroundSet::num_live() const {
  std::shared_lock lock(mutex_);
  std::size_t dead = 0;
  for (const auto d : deleted_) dead += d;
  return base_n_ + inserted_.size() - dead;
}

std::vector<NodeId> OverlayGroundSet::deleted_ids() const {
  std::shared_lock lock(mutex_);
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < deleted_.size(); ++i) {
    if (deleted_[i] != 0) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

std::vector<NodeId> OverlayGroundSet::live_ids() const {
  std::shared_lock lock(mutex_);
  std::vector<NodeId> out;
  const std::size_t n = base_n_ + inserted_.size();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i >= deleted_.size() || deleted_[i] == 0) {
      out.push_back(static_cast<NodeId>(i));
    }
  }
  return out;
}

std::uint64_t OverlayGroundSet::version() const {
  std::shared_lock lock(mutex_);
  return version_;
}

std::size_t OverlayGroundSet::num_points() const {
  std::shared_lock lock(mutex_);
  return base_n_ + inserted_.size();
}

double OverlayGroundSet::utility(NodeId v) const {
  std::shared_lock lock(mutex_);
  if (!live_locked(v)) return 0.0;
  const auto i = static_cast<std::size_t>(v);
  return i < base_n_ ? base_.utility(v) : inserted_[i - base_n_].utility;
}

void OverlayGroundSet::neighbors_locked(NodeId v, std::vector<Edge>& out) const {
  out.clear();
  if (!live_locked(v)) return;
  const auto i = static_cast<std::size_t>(v);
  if (i < base_n_) {
    base_.neighbors(v, out);
  } else {
    const std::vector<Edge>& own = inserted_[i - base_n_].edges;
    out.assign(own.begin(), own.end());
  }
  if (const auto it = extra_.find(v); it != extra_.end()) {
    // Base list and extra list are each sorted and every extra id exceeds
    // every base id, so appending keeps the by-id order materialize() and
    // the CSR format expect.
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::erase_if(out, [&](const Edge& e) { return !live_locked(e.neighbor); });
}

void OverlayGroundSet::neighbors(NodeId v, std::vector<Edge>& out) const {
  std::shared_lock lock(mutex_);
  neighbors_locked(v, out);
}

void OverlayGroundSet::prefetch(std::span<const NodeId> nodes,
                                ThreadPool* pool) const {
  // Only base ids have backing storage to page in; inserted points are
  // resident by construction. Purely a hint, so no lock is needed for the
  // filter itself (base_n_ is immutable).
  std::vector<NodeId> base_nodes;
  base_nodes.reserve(nodes.size());
  for (const NodeId v : nodes) {
    if (v >= 0 && static_cast<std::size_t>(v) < base_n_) base_nodes.push_back(v);
  }
  if (!base_nodes.empty()) {
    base_.prefetch(std::span<const NodeId>(base_nodes), pool);
  }
}

OverlayGroundSet::Materialized OverlayGroundSet::materialize() const {
  std::shared_lock lock(mutex_);
  const std::size_t n = base_n_ + inserted_.size();
  std::vector<NeighborList> lists(n);
  Materialized result;
  result.utilities.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = static_cast<NodeId>(i);
    neighbors_locked(v, lists[i].edges);
    result.utilities[i] = live_locked(v)
                              ? (i < base_n_ ? base_.utility(v)
                                             : inserted_[i - base_n_].utility)
                              : 0.0;
  }
  result.graph = SimilarityGraph::from_lists(lists);
  return result;
}

}  // namespace subsel::graph
