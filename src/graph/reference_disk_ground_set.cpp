#include "graph/reference_disk_ground_set.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace subsel::graph::reference {
namespace {

// Mirrors SimilarityGraph::save (similarity_graph.cpp).
constexpr std::uint64_t kGraphMagic = 0x5355424752415048ULL;  // "SUBGRAPH"
constexpr std::uint32_t kGraphVersion = 1;

void pread_exact(int fd, void* buffer, std::size_t size, std::uint64_t offset,
                 const char* what) {
  auto* cursor = static_cast<char*>(buffer);
  std::size_t remaining = size;
  while (remaining > 0) {
    const ssize_t got = ::pread(fd, cursor, remaining,
                                static_cast<off_t>(offset + (size - remaining)));
    if (got <= 0) {
      throw std::runtime_error(std::string("MutexDiskGroundSet: short read of ") +
                               what);
    }
    cursor += got;
    remaining -= static_cast<std::size_t>(got);
  }
}

}  // namespace

MutexDiskGroundSet::MutexDiskGroundSet(const std::string& graph_path,
                                       std::vector<double> utilities,
                                       const MutexDiskGroundSetConfig& config)
    : config_(config), utilities_(std::move(utilities)) {
  if (config_.block_edges == 0 || config_.max_cached_blocks == 0) {
    throw std::invalid_argument(
        "MutexDiskGroundSet: block_edges and max_cached_blocks must be >= 1");
  }
  fd_ = ::open(graph_path.c_str(), O_RDONLY);
  if (fd_ < 0) {
    throw std::runtime_error("MutexDiskGroundSet: cannot open " + graph_path);
  }

  // Header: magic(8) version(4) | offsets: len(8) data | edges: len(8) data.
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t cursor = 0;
  pread_exact(fd_, &magic, sizeof(magic), cursor, "magic");
  cursor += sizeof(magic);
  pread_exact(fd_, &version, sizeof(version), cursor, "version");
  cursor += sizeof(version);
  if (magic != kGraphMagic || version != kGraphVersion) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("MutexDiskGroundSet: " + graph_path +
                             " is not a SimilarityGraph file");
  }

  std::uint64_t offsets_len = 0;
  pread_exact(fd_, &offsets_len, sizeof(offsets_len), cursor, "offsets length");
  cursor += sizeof(offsets_len);
  offsets_.resize(offsets_len);
  if (offsets_len > 0) {
    pread_exact(fd_, offsets_.data(), offsets_len * sizeof(std::int64_t), cursor,
                "offsets");
  }
  cursor += offsets_len * sizeof(std::int64_t);

  std::uint64_t edges_len = 0;
  pread_exact(fd_, &edges_len, sizeof(edges_len), cursor, "edges length");
  cursor += sizeof(edges_len);
  edge_base_offset_ = cursor;

  const std::size_t nodes = offsets_.empty() ? 0 : offsets_.size() - 1;
  if (utilities_.size() != nodes) {
    ::close(fd_);
    fd_ = -1;
    throw std::invalid_argument("MutexDiskGroundSet: utilities size (" +
                                std::to_string(utilities_.size()) +
                                ") != node count (" + std::to_string(nodes) + ")");
  }
  if (!offsets_.empty() &&
      static_cast<std::uint64_t>(offsets_.back()) != edges_len) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("MutexDiskGroundSet: offsets/edges mismatch in " +
                             graph_path);
  }
}

MutexDiskGroundSet::~MutexDiskGroundSet() {
  if (fd_ >= 0) ::close(fd_);
}

const std::vector<Edge>& MutexDiskGroundSet::block(std::size_t index) const {
  // Caller holds mutex_.
  const auto it = cache_.find(index);
  if (it != cache_.end()) {
    ++hits_;
    lru_.erase(it->second.lru_position);
    lru_.push_front(index);
    it->second.lru_position = lru_.begin();
    return it->second.edges;
  }
  ++misses_;

  const std::size_t first = index * config_.block_edges;
  const std::size_t total = num_edges();
  const std::size_t count = std::min(config_.block_edges, total - first);
  std::vector<Edge> edges(count);
  pread_exact(fd_, edges.data(), count * sizeof(Edge),
              edge_base_offset_ + first * sizeof(Edge), "edge block");

  if (cache_.size() >= config_.max_cached_blocks) {
    const std::size_t victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
  }
  lru_.push_front(index);
  auto [inserted, ok] =
      cache_.emplace(index, CacheEntry{std::move(edges), lru_.begin()});
  (void)ok;
  return inserted->second.edges;
}

void MutexDiskGroundSet::neighbors(NodeId v, std::vector<Edge>& out) const {
  const auto i = static_cast<std::size_t>(v);
  const auto first = static_cast<std::size_t>(offsets_[i]);
  const auto last = static_cast<std::size_t>(offsets_[i + 1]);
  out.clear();
  out.reserve(last - first);

  std::lock_guard lock(mutex_);
  std::size_t cursor = first;
  while (cursor < last) {
    const std::size_t block_index = cursor / config_.block_edges;
    const std::size_t block_begin = block_index * config_.block_edges;
    const std::vector<Edge>& edges = block(block_index);
    const std::size_t from = cursor - block_begin;
    const std::size_t to = std::min(last - block_begin, edges.size());
    out.insert(out.end(), edges.begin() + static_cast<std::ptrdiff_t>(from),
               edges.begin() + static_cast<std::ptrdiff_t>(to));
    cursor = block_begin + to;
  }
}

}  // namespace subsel::graph::reference
