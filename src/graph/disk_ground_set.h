// Disk-backed ground set: the adjacency (the dominant memory term) stays in
// the on-disk CSR file and is served through a sharded, bounded block cache
// with an optional asynchronous prefetcher.
//
// The paper's feasibility math (Section 3): per point, the 10-NN adjacency
// costs ~16 B/edge — 880 GB for 5 B points — while per-point scalars (id,
// utility, tri-state) cost a few bytes. This class keeps exactly the cheap
// scalars resident (offsets + utilities, ~16 B/point) and pages edge blocks
// in on demand, so a materialized dataset far larger than DRAM can still be
// processed by bounding and the distributed greedy: their access pattern is
// streaming (bounding) or partition-local (greedy), both cache-friendly.
//
// Concurrency model (this is the layer every worker thread hammers):
//   - The block cache is split into `num_shards` independent shards; block
//     index -> shard is a simple modulo, so a streaming scan spreads
//     consecutive blocks across every shard. Each shard has its own mutex,
//     LRU list, and map — readers on different shards never contend.
//   - Block payloads are immutable `shared_ptr<const vector<Edge>>`s. A
//     shard lock is held only for the map lookup / LRU touch / refcount
//     bump; the edge copy into the caller's buffer and all disk I/O happen
//     OUTSIDE any lock. Eviction just drops the shard's reference, so a
//     reader holding the block keeps a stable view — torn reads are
//     impossible by construction.
//   - Each reader thread pins the blocks it recently served from, in a
//     small per-thread slot table keyed by the caller's scratch-buffer
//     address. The hot paths (subproblem materialization, bounding passes)
//     read neighborhoods in ascending node order, so consecutive reads
//     overwhelmingly land in a pinned block and are served with zero lock
//     acquisitions — and, through neighbors_span, zero copies: the span
//     points straight into the pinned immutable payload. Per the GroundSet
//     contract a span stays valid until the SAME scratch buffer is reused;
//     the per-scratch slots honor that across nested traversals. A slot
//     that may back a live span is never reclaimed: past 8 simultaneously-
//     live scratch buffers per thread, further spans are served through the
//     copying fallback instead. Pins of a destroyed instance are released
//     on each thread's next pin transition (a thread that stops reading
//     retains at most 8 block payloads until then).
//   - `prefetch()` pages the blocks behind a set of upcoming nodes, either
//     inline or as fire-and-forget tasks on a caller-supplied ThreadPool.
//     The solver round loops hand the head of each round's partition plan
//     to it before enqueueing the solves, so the hint tasks precede the
//     solve tasks in the pool queue and the block I/O runs batched, in
//     file order, deduplicated, and capped per shard at the shard's
//     capacity. In-flight prefetch tasks are drained by the destructor.
//
// File-format validation is strict and typed: a truncated file, a foreign
// magic, an unsupported version, or corrupt offsets throw DiskFormatError
// (with a machine-checkable kind()) at open; a file that shrinks underneath
// a live reader throws on the read path instead of returning garbage.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/ground_set.h"

namespace subsel::graph {

struct DiskGroundSetConfig {
  /// Edges per cache block. Blocks are the paging unit; a block spans
  /// contiguous edge indices, so one block typically covers many nodes.
  std::size_t block_edges = 4096;
  /// Maximum cached blocks across all shards (the resident-edge budget is
  /// max_cached_blocks * block_edges * sizeof(Edge)).
  std::size_t max_cached_blocks = 64;
  /// Cache shards (striped locks). Clamped to [1, max_cached_blocks]; the
  /// block budget is split evenly across shards. 1 degenerates to a single
  /// mutex-protected cache.
  std::size_t num_shards = 16;
};

/// Typed error for every way the on-disk CSR can be unusable. Derives from
/// std::runtime_error so pre-existing catch sites keep working; kind() lets
/// tests and tools distinguish the failure modes.
class DiskFormatError : public std::runtime_error {
 public:
  enum class Kind {
    kOpen,            // file missing or unreadable
    kBadMagic,        // not a SimilarityGraph::save file
    kBadVersion,      // recognized file, unsupported version
    kTruncated,       // payload extends past the end of the file
    kCorruptOffsets,  // offsets not monotone from 0, or mismatch edge count
    kShortRead,       // pread hit EOF under a live reader (file shrank)
    kIo,              // transient I/O errors persisted past the retry budget
  };

  DiskFormatError(Kind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// Monotonic cache counters, snapshot-consistent enough for reporting (the
/// counters are per-shard and summed without a global lock).
struct DiskCacheStats {
  std::uint64_t hits = 0;             // demand reads served from cache
  std::uint64_t misses = 0;           // demand reads that paged a block in
  std::uint64_t prefetch_issued = 0;  // blocks requested by prefetch()
  std::uint64_t prefetch_loaded = 0;  // of those, blocks actually paged in
  /// Transient pread failures (EINTR/EAGAIN/injected) absorbed by the
  /// bounded-backoff retry loop instead of surfacing as errors.
  std::uint64_t read_retries = 0;
  /// Prefetch hint blocks abandoned after an I/O failure; the blocks degrade
  /// into ordinary demand misses later instead of failing the solve.
  std::uint64_t prefetch_degraded = 0;
  std::size_t resident_blocks = 0;            // blocks cached right now
  std::size_t resident_blocks_high_water = 0; // max blocks ever resident
};

/// GroundSet over a SimilarityGraph::save file + in-memory utilities.
class DiskGroundSet final : public GroundSet {
 public:
  /// Opens `graph_path` (a file written by SimilarityGraph::save) and
  /// validates its header and geometry (see DiskFormatError). `utilities`
  /// must have one entry per node.
  DiskGroundSet(const std::string& graph_path, std::vector<double> utilities,
                const DiskGroundSetConfig& config = {});
  ~DiskGroundSet() override;

  DiskGroundSet(const DiskGroundSet&) = delete;
  DiskGroundSet& operator=(const DiskGroundSet&) = delete;

  std::size_t num_points() const override { return utilities_.size(); }
  double utility(NodeId v) const override {
    return utilities_[static_cast<std::size_t>(v)];
  }
  void neighbors(NodeId v, std::vector<Edge>& out) const override;
  /// Zero-copy when v's neighborhood sits inside one cache block (the
  /// overwhelmingly common case: a block covers block_edges/avg_degree
  /// nodes): returns a span into the thread's pinned immutable block,
  /// invalidated by this thread's next neighbors/neighbors_span call on this
  /// ground set. Falls back to copying through `scratch` for ranges that
  /// straddle blocks.
  std::span<const Edge> neighbors_span(NodeId v,
                                       std::vector<Edge>& scratch) const override;
  std::size_t degree(NodeId v) const override {
    const auto i = static_cast<std::size_t>(v);
    return static_cast<std::size_t>(offsets_[i + 1] - offsets_[i]);
  }

  /// Pages the blocks behind `nodes`' neighborhoods into the cache. With a
  /// pool, the loads run as fire-and-forget tasks on it (the round loops
  /// pass the solver pool so the I/O overlaps the current solve); without
  /// one they run inline. Already-cached blocks are only touched in LRU
  /// order. Safe to call concurrently with readers and other prefetches.
  void prefetch(std::span<const NodeId> nodes, ThreadPool* pool) const override;

  /// Blocks until every in-flight prefetch task has finished (the
  /// destructor calls this; exposed for deterministic tests and benches).
  void drain_prefetch() const;

  std::size_t num_edges() const noexcept {
    return offsets_.empty() ? 0 : static_cast<std::size_t>(offsets_.back());
  }

  /// Resident bytes of the cache at capacity plus the per-point scalars —
  /// what this class actually keeps in DRAM.
  std::size_t resident_bytes() const noexcept;

  DiskCacheStats stats() const noexcept;

  /// Back-compat accessors (pre-sharding callers).
  std::uint64_t cache_hits() const noexcept { return stats().hits; }
  std::uint64_t cache_misses() const noexcept { return stats().misses; }

  std::size_t num_shards() const noexcept { return shards_.size(); }
  std::size_t max_cached_blocks() const noexcept {
    return config_.max_cached_blocks;
  }
  std::size_t block_edges() const noexcept { return config_.block_edges; }

 private:
  using BlockData = std::shared_ptr<const std::vector<Edge>>;

  struct Shard {
    mutable std::mutex mutex;
    /// Most-recent first; holds block indices.
    std::list<std::size_t> lru;
    struct Entry {
      BlockData edges;
      std::list<std::size_t>::iterator lru_position;
    };
    std::unordered_map<std::size_t, Entry> blocks;
    std::size_t capacity = 1;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t prefetch_loaded = 0;
  };

  Shard& shard_for(std::size_t block_index) const {
    return shards_[block_index % shards_.size()];
  }

  /// Reads block `index` from disk (no locks held). Throws DiskFormatError
  /// (kShortRead) if the file shrank underneath us.
  BlockData load_block(std::size_t index) const;

  /// Returns the cached payload of block `index`, paging it in on a miss.
  /// `demand` selects which counter a load bumps (miss vs prefetch_loaded).
  BlockData block(std::size_t index, bool demand) const;

  /// Inserts `data` for `index` unless a racing loader won; evicts the
  /// shard's LRU tail beyond capacity. Returns the winning payload.
  BlockData insert_block(Shard& shard, std::size_t index, BlockData data) const;

  /// Pins `data` (block `index`) into the calling thread's slot for `key`
  /// (a caller scratch address, or nullptr for the copy-out path) and
  /// returns the slot. Flushes the thread's deferred hit count. Returns
  /// nullptr — never reclaiming a slot that may back a live span — when all
  /// slots are scratch-keyed; callers then serve by copy.
  const void* pin_block(const void* key, std::size_t index,
                        const BlockData& data) const;
  /// Finds a pinned block of this instance covering [first, last); sets
  /// `block_first` to its base edge index.
  const BlockData* find_pinned(std::size_t first, std::size_t last,
                               std::size_t& block_first) const;
  /// Counts one lock-free pinned-block hit (deferred, flushed in batches).
  void count_pinned_hit() const;

  DiskGroundSetConfig config_;
  int fd_ = -1;
  std::uint64_t edge_base_offset_ = 0;  // file offset of edges_[0]
  std::vector<std::int64_t> offsets_;   // resident: 8 B/point
  std::vector<double> utilities_;       // resident: 8 B/point

  /// Distinguishes instances for the thread-local pin (never reused, so a
  /// stale pin can never be mistaken for this instance's block).
  const std::uint64_t instance_id_;

  mutable std::vector<Shard> shards_;
  mutable std::atomic<std::size_t> resident_blocks_{0};
  mutable std::atomic<std::size_t> resident_high_water_{0};
  mutable std::atomic<std::uint64_t> prefetch_issued_{0};
  mutable std::atomic<std::uint64_t> read_retries_{0};
  mutable std::atomic<std::uint64_t> prefetch_degraded_{0};
  /// Hits served from threads' pinned blocks, flushed on pin transitions;
  /// stats() additionally sums the per-thread deferred tails through a
  /// registry, so snapshots are accurate (at worst transiently low during a
  /// concurrent flush — never high, never missing a miss).
  mutable std::atomic<std::uint64_t> pinned_hits_{0};

  /// In-flight fire-and-forget prefetch tasks; pruned opportunistically,
  /// drained on destruction.
  mutable std::mutex prefetch_mutex_;
  mutable std::vector<std::future<void>> prefetch_inflight_;
};

}  // namespace subsel::graph
