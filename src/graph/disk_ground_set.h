// Disk-backed ground set: the adjacency (the dominant memory term) stays in
// the on-disk CSR file and is served through a bounded LRU block cache.
//
// The paper's feasibility math (Section 3): per point, the 10-NN adjacency
// costs ~16 B/edge — 880 GB for 5 B points — while per-point scalars (id,
// utility, tri-state) cost a few bytes. This class keeps exactly the cheap
// scalars resident (offsets + utilities, ~16 B/point) and pages edge blocks
// in on demand, so a materialized dataset far larger than DRAM can still be
// processed by bounding and the distributed greedy: their access pattern is
// streaming (bounding) or partition-local (greedy), both cache-friendly.
//
// Thread safe: neighbor reads may come from any worker thread (bounding's
// parallel passes do); the cache is mutex-protected and the file is read
// with pread.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/ground_set.h"

namespace subsel::graph {

struct DiskGroundSetConfig {
  /// Edges per cache block. Blocks are the paging unit; a block spans
  /// contiguous edge indices, so one block typically covers many nodes.
  std::size_t block_edges = 4096;
  /// Maximum cached blocks (the resident-edge budget is
  /// max_cached_blocks * block_edges * sizeof(Edge)).
  std::size_t max_cached_blocks = 64;
};

/// GroundSet over a SimilarityGraph::save file + in-memory utilities.
class DiskGroundSet final : public GroundSet {
 public:
  /// Opens `graph_path` (a file written by SimilarityGraph::save) and
  /// validates its header. `utilities` must have one entry per node.
  DiskGroundSet(const std::string& graph_path, std::vector<double> utilities,
                const DiskGroundSetConfig& config = {});
  ~DiskGroundSet() override;

  DiskGroundSet(const DiskGroundSet&) = delete;
  DiskGroundSet& operator=(const DiskGroundSet&) = delete;

  std::size_t num_points() const override { return utilities_.size(); }
  double utility(NodeId v) const override {
    return utilities_[static_cast<std::size_t>(v)];
  }
  /// Keeps the copying fallback for neighbors_span(): cache blocks are
  /// evictable under the mutex, so no stable zero-copy view exists.
  void neighbors(NodeId v, std::vector<Edge>& out) const override;
  std::size_t degree(NodeId v) const override {
    const auto i = static_cast<std::size_t>(v);
    return static_cast<std::size_t>(offsets_[i + 1] - offsets_[i]);
  }

  std::size_t num_edges() const noexcept {
    return offsets_.empty() ? 0 : static_cast<std::size_t>(offsets_.back());
  }

  /// Resident bytes of the cache at capacity plus the per-point scalars —
  /// what this class actually keeps in DRAM.
  std::size_t resident_bytes() const noexcept;

  /// Cache statistics (monotonic).
  std::uint64_t cache_hits() const noexcept { return hits_; }
  std::uint64_t cache_misses() const noexcept { return misses_; }

 private:
  /// Returns a reference-stable copy of block `index` (cached or loaded).
  void read_edges(std::size_t first_edge, std::size_t count,
                  std::vector<Edge>& out) const;
  const std::vector<Edge>& block(std::size_t index) const;

  DiskGroundSetConfig config_;
  int fd_ = -1;
  std::uint64_t edge_base_offset_ = 0;  // file offset of edges_[0]
  std::vector<std::int64_t> offsets_;   // resident: 8 B/point
  std::vector<double> utilities_;       // resident: 8 B/point

  mutable std::mutex mutex_;
  mutable std::list<std::size_t> lru_;  // most recent first
  struct CacheEntry {
    std::vector<Edge> edges;
    std::list<std::size_t>::iterator lru_position;
  };
  mutable std::unordered_map<std::size_t, CacheEntry> cache_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace subsel::graph
