#include "dataflow/transforms.h"

#include <limits>

namespace subsel::dataflow {

double kth_largest_distributed(const PCollection<double>& values, std::size_t k) {
  if (k == 0) return std::numeric_limits<double>::infinity();
  if (values.size() < k) return -std::numeric_limits<double>::infinity();

  // Distributed count of elements whose ordered-bits representation is >= t.
  auto count_at_least = [&values](std::uint64_t t) -> std::size_t {
    std::vector<std::size_t> partials(values.num_shards(), 0);
    values.pipeline()->for_each_shard(values.num_shards(), [&](std::size_t s) {
      std::size_t c = 0;
      for (double v : values.shard(s)) {
        if (detail::ordered_bits(v) >= t) ++c;
      }
      partials[s] = c;
    });
    std::size_t total = 0;
    for (std::size_t p : partials) total += p;
    return total;
  };

  // Invariant: count_at_least(lo) >= k and count_at_least(hi + 1) < k.
  // Binary search for the largest t with count_at_least(t) >= k; that t is
  // the ordered-bits image of the k-th largest value.
  std::uint64_t lo = 0;
  std::uint64_t hi = std::numeric_limits<std::uint64_t>::max();
  while (lo < hi) {
    // Upper midpoint without overflow (hi - lo can be the full 64-bit range).
    const std::uint64_t mid = hi - (hi - lo) / 2;
    if (count_at_least(mid) >= k) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }

  // Convert back: lo is ordered_bits(answer).
  const std::uint64_t bits =
      (lo & 0x8000000000000000ULL) != 0 ? lo & 0x7fffffffffffffffULL : ~lo;
  return std::bit_cast<double>(bits);
}

}  // namespace subsel::dataflow
