// Execution context for the mini-Beam dataflow substrate.
//
// The paper implements bounding and scoring on Apache Beam: immutable,
// conceptually unbounded PCollections manipulated with ParDo / GroupByKey /
// joins, where no worker ever needs the whole dataset (or the selected
// subset) in memory. This substrate simulates that execution model on one
// server, faithfully in the dimension the paper cares about:
//
//  - collections are split into `num_shards` shards;
//  - transforms process shards in parallel on a thread pool, one shard per
//    worker at a time;
//  - every shard task reports its working-set bytes; a configurable
//    per-worker budget turns "no machine holds the data" from an assumption
//    into an enforced invariant (exceeding it throws PipelineMemoryError);
//  - shuffles (GroupByKey, joins) hash-partition records across shards, like
//    a real distributed shuffle.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>

#include "common/rng.h"
#include "common/atomic_util.h"
#include "common/thread_pool.h"

namespace subsel::dataflow {

class PipelineMemoryError : public std::runtime_error {
 public:
  PipelineMemoryError(std::size_t needed, std::size_t budget)
      : std::runtime_error("dataflow worker memory budget exceeded: shard needs " +
                           std::to_string(needed) + " bytes, budget is " +
                           std::to_string(budget)),
        needed_bytes(needed),
        budget_bytes(budget) {}

  std::size_t needed_bytes;
  std::size_t budget_bytes;
};

/// A shard task failed more often than the retry budget allows.
class PipelineFaultError : public std::runtime_error {
 public:
  PipelineFaultError(std::size_t shard, std::size_t attempts)
      : std::runtime_error("dataflow shard " + std::to_string(shard) +
                           " failed " + std::to_string(attempts) +
                           " attempts (retry budget exhausted)"),
        shard_index(shard) {}

  std::size_t shard_index;
};

struct PipelineOptions {
  /// Number of shards each PCollection is split into (the "machine" count).
  std::size_t num_shards = 32;
  /// Per-worker memory budget in bytes; 0 disables enforcement.
  std::size_t worker_memory_bytes = 0;
  /// Thread pool running shard tasks; nullptr uses the global pool.
  ThreadPool* pool = nullptr;
  /// Fault injection (testing hook simulating worker preemption): each shard
  /// attempt is declared lost with this probability *after* its side effects
  /// ran, forcing an idempotent re-execution — the property real dataflow
  /// runners demand of ParDo workers. 0 disables injection.
  double shard_failure_probability = 0.0;
  /// Attempts per shard task before PipelineFaultError (counting the first).
  std::size_t max_shard_attempts = 4;
  /// Seed for the (deterministic) fault pattern.
  std::uint64_t fault_seed = 5;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options = {}) : options_(options) {
    if (options_.num_shards == 0) {
      throw std::invalid_argument("Pipeline: num_shards must be >= 1");
    }
  }

  const PipelineOptions& options() const noexcept { return options_; }
  std::size_t num_shards() const noexcept { return options_.num_shards; }

  ThreadPool& pool() const {
    return options_.pool != nullptr ? *options_.pool : global_thread_pool();
  }

  /// Called by every shard task with its working-set size. Tracks the peak
  /// and enforces the per-worker budget.
  void charge_shard_bytes(std::size_t bytes) {
    atomic_fetch_max(peak_shard_bytes_, bytes);
    if (options_.worker_memory_bytes != 0 && bytes > options_.worker_memory_bytes) {
      throw PipelineMemoryError(bytes, options_.worker_memory_bytes);
    }
  }

  /// Largest single-shard working set observed so far — the amount of DRAM a
  /// real worker would have needed.
  std::size_t peak_shard_bytes() const noexcept {
    return peak_shard_bytes_.load(std::memory_order_relaxed);
  }

  /// Named monotonically-increasing counters (Beam-style metrics).
  void increment_counter(const std::string& name, std::uint64_t delta = 1) {
    std::lock_guard lock(counter_mutex_);
    counters_[name] += delta;
  }

  std::uint64_t counter(const std::string& name) const {
    std::lock_guard lock(counter_mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Runs `fn(shard)` for every shard in parallel, with fault injection and
  /// retry. All transforms dispatch through this; `fn` MUST be idempotent
  /// (reset its output slot before writing — every transform in
  /// transforms.h does). Deterministic errors (e.g. PipelineMemoryError)
  /// propagate immediately; injected transient losses retry up to
  /// max_shard_attempts, then throw PipelineFaultError.
  template <typename Fn>
  void for_each_shard(std::size_t count, Fn&& fn) {
    const std::uint64_t stage = stage_counter_.fetch_add(1, std::memory_order_relaxed);
    pool().parallel_for(count, [&](std::size_t s) {
      for (std::size_t attempt = 1;; ++attempt) {
        fn(s);
        if (!inject_fault(stage, s, attempt)) return;
        increment_counter("shard_retries");
        if (attempt >= options_.max_shard_attempts) {
          throw PipelineFaultError(s, attempt);
        }
      }
    });
  }

 private:
  /// Deterministic per-(stage, shard, attempt) coin flip.
  bool inject_fault(std::uint64_t stage, std::size_t shard,
                    std::size_t attempt) const {
    if (options_.shard_failure_probability <= 0.0) return false;
    const std::uint64_t h = subsel::hash_combine(
        subsel::hash_combine(subsel::hash_combine(options_.fault_seed, stage),
                             static_cast<std::uint64_t>(shard)),
        static_cast<std::uint64_t>(attempt));
    return subsel::hash_to_unit(h) < options_.shard_failure_probability;
  }

  PipelineOptions options_;
  std::atomic<std::size_t> peak_shard_bytes_{0};
  std::atomic<std::uint64_t> stage_counter_{0};
  mutable std::mutex counter_mutex_;
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace subsel::dataflow
