// PCollection<T>: an immutable, sharded dataset handle (Beam §5).
//
// A PCollection never exposes a flat view — elements live in shards and are
// only touched by transforms (see transforms.h), which process shards
// independently under the pipeline's per-worker memory budget. Driver-side
// materialization (to_vector) is deliberately explicit and should only be
// used for small results and tests.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dataflow/pipeline.h"

namespace subsel::dataflow {

/// Approximate in-memory size of an element, used for worker memory
/// accounting. Extend by overloading for element types with indirect storage.
template <typename T>
std::size_t approx_bytes(const T&) {
  return sizeof(T);
}

inline std::size_t approx_bytes(const std::string& s) {
  return sizeof(std::string) + s.capacity();
}

template <typename T>
std::size_t approx_bytes(const std::vector<T>& values) {
  std::size_t total = sizeof(std::vector<T>);
  for (const T& value : values) total += approx_bytes(value);
  return total;
}

template <typename A, typename B>
std::size_t approx_bytes(const std::pair<A, B>& p) {
  return approx_bytes(p.first) + approx_bytes(p.second);
}

template <typename... Ts>
std::size_t approx_bytes(const std::tuple<Ts...>& t) {
  return std::apply([](const Ts&... parts) { return (approx_bytes(parts) + ... + 0); },
                    t);
}

template <typename T>
std::size_t shard_bytes(const std::vector<T>& shard) {
  std::size_t total = 0;
  for (const T& value : shard) total += approx_bytes(value);
  return total;
}

template <typename T>
class PCollection {
 public:
  using value_type = T;

  PCollection() = default;

  /// Internal: constructed by transforms with pre-built shards.
  PCollection(Pipeline* pipeline, std::vector<std::vector<T>> shards)
      : pipeline_(pipeline), shards_(std::move(shards)) {}

  Pipeline* pipeline() const noexcept { return pipeline_; }
  std::size_t num_shards() const noexcept { return shards_.size(); }

  const std::vector<T>& shard(std::size_t s) const { return shards_[s]; }
  std::vector<T>& mutable_shard(std::size_t s) { return shards_[s]; }

  std::size_t size() const noexcept {
    std::size_t total = 0;
    for (const auto& shard : shards_) total += shard.size();
    return total;
  }

 private:
  Pipeline* pipeline_ = nullptr;
  std::vector<std::vector<T>> shards_;
};

}  // namespace subsel::dataflow
