// Beam-style transforms over PCollections.
//
// ParDo-family (map / flat_map / filter) processes shards independently;
// GroupByKey and CoGroupByKey hash-shuffle records across shards exactly like
// a distributed runner would; sum/count/to_vector are the driver-side sinks.
// Every shard task charges its working set against the pipeline's per-worker
// memory budget.
//
// Determinism: sharding is by contiguous ranges (sources) or key hash
// (shuffles), and grouped output is sorted by key within each shard, so every
// pipeline run is bit-reproducible — a property the bounding-equivalence
// tests rely on.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "dataflow/pcollection.h"

namespace subsel::dataflow {

namespace detail {

/// Stable shard assignment for a key.
template <typename K>
std::size_t shard_for_key(const K& key, std::size_t num_shards) {
  return static_cast<std::size_t>(
      subsel::splitmix64(static_cast<std::uint64_t>(key)) % num_shards);
}

/// Monotone mapping from double to uint64 (IEEE-754 total order trick), used
/// by the exact distributed selection.
inline std::uint64_t ordered_bits(double value) {
  auto bits = std::bit_cast<std::uint64_t>(value);
  return (bits & 0x8000000000000000ULL) != 0 ? ~bits : bits | 0x8000000000000000ULL;
}

}  // namespace detail

/// Materializes a driver-side vector into a sharded collection (contiguous
/// ranges). Use from_generator for sources that must never be materialized.
template <typename T>
PCollection<T> from_vector(Pipeline& pipeline, const std::vector<T>& values) {
  const std::size_t shards = pipeline.num_shards();
  std::vector<std::vector<T>> out(shards);
  const std::size_t base = values.size() / shards;
  const std::size_t extra = values.size() % shards;
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t count = base + (s < extra ? 1 : 0);
    out[s].assign(values.begin() + static_cast<std::ptrdiff_t>(cursor),
                  values.begin() + static_cast<std::ptrdiff_t>(cursor + count));
    cursor += count;
  }
  return PCollection<T>(&pipeline, std::move(out));
}

/// Lazily generates element i = fn(i) for i in [0, count), shard by shard —
/// the whole collection is never resident on the driver.
template <typename T, typename Fn>
PCollection<T> from_generator(Pipeline& pipeline, std::size_t count, Fn fn) {
  const std::size_t shards = pipeline.num_shards();
  std::vector<std::vector<T>> out(shards);
  const std::size_t base = count / shards;
  const std::size_t extra = count % shards;
  std::vector<std::size_t> begins(shards + 1, 0);
  for (std::size_t s = 0; s < shards; ++s) {
    begins[s + 1] = begins[s] + base + (s < extra ? 1 : 0);
  }
  pipeline.for_each_shard(shards, [&](std::size_t s) {
    out[s].clear();  // idempotent under for_each_shard retry
    out[s].reserve(begins[s + 1] - begins[s]);
    for (std::size_t i = begins[s]; i < begins[s + 1]; ++i) {
      out[s].push_back(fn(i));
    }
    pipeline.charge_shard_bytes(shard_bytes(out[s]));
  });
  return PCollection<T>(&pipeline, std::move(out));
}

/// Element-wise ParDo: out = fn(in).
template <typename U, typename T, typename Fn>
PCollection<U> map(const PCollection<T>& in, Fn fn) {
  Pipeline& pipeline = *in.pipeline();
  std::vector<std::vector<U>> out(in.num_shards());
  pipeline.for_each_shard(in.num_shards(), [&](std::size_t s) {
    const auto& shard = in.shard(s);
    out[s].clear();  // idempotent under for_each_shard retry
    out[s].reserve(shard.size());
    for (const T& value : shard) out[s].push_back(fn(value));
    pipeline.charge_shard_bytes(shard_bytes(shard) + shard_bytes(out[s]));
  });
  return PCollection<U>(&pipeline, std::move(out));
}

/// ParDo with 0..n outputs per element: fn(value, emit) where emit(U).
template <typename U, typename T, typename Fn>
PCollection<U> flat_map(const PCollection<T>& in, Fn fn) {
  Pipeline& pipeline = *in.pipeline();
  std::vector<std::vector<U>> out(in.num_shards());
  pipeline.for_each_shard(in.num_shards(), [&](std::size_t s) {
    const auto& shard = in.shard(s);
    out[s].clear();  // idempotent under for_each_shard retry
    auto emit = [&out, s](U value) { out[s].push_back(std::move(value)); };
    for (const T& value : shard) fn(value, emit);
    pipeline.charge_shard_bytes(shard_bytes(shard) + shard_bytes(out[s]));
  });
  return PCollection<U>(&pipeline, std::move(out));
}

template <typename T, typename Pred>
PCollection<T> filter(const PCollection<T>& in, Pred pred) {
  return flat_map<T>(in, [pred](const T& value, auto emit) {
    if (pred(value)) emit(value);
  });
}

/// Concatenates two collections (Beam Flatten); both must share a pipeline.
template <typename T>
PCollection<T> flatten(const PCollection<T>& a, const PCollection<T>& b) {
  if (a.pipeline() != b.pipeline()) {
    throw std::invalid_argument("flatten: collections from different pipelines");
  }
  Pipeline& pipeline = *a.pipeline();
  std::vector<std::vector<T>> out(pipeline.num_shards());
  for (std::size_t s = 0; s < pipeline.num_shards(); ++s) {
    if (s < a.num_shards()) {
      out[s].insert(out[s].end(), a.shard(s).begin(), a.shard(s).end());
    }
    if (s < b.num_shards()) {
      out[s].insert(out[s].end(), b.shard(s).begin(), b.shard(s).end());
    }
  }
  return PCollection<T>(&pipeline, std::move(out));
}

namespace detail {

/// Hash shuffle: redistributes key-value records so all records of one key
/// land in the same output shard. Phase 1 buckets per input shard in
/// parallel; phase 2 concatenates bucket columns.
template <typename K, typename V>
std::vector<std::vector<std::pair<K, V>>> shuffle_by_key(
    const PCollection<std::pair<K, V>>& in) {
  Pipeline& pipeline = *in.pipeline();
  const std::size_t shards = pipeline.num_shards();
  std::vector<std::vector<std::vector<std::pair<K, V>>>> buckets(in.num_shards());
  pipeline.for_each_shard(in.num_shards(), [&](std::size_t s) {
    buckets[s].assign(shards, {});  // idempotent under for_each_shard retry
    for (const auto& record : in.shard(s)) {
      buckets[s][shard_for_key(record.first, shards)].push_back(record);
    }
    pipeline.charge_shard_bytes(2 * shard_bytes(in.shard(s)));
  });
  std::vector<std::vector<std::pair<K, V>>> out(shards);
  pipeline.for_each_shard(shards, [&](std::size_t s) {
    std::size_t total = 0;
    for (const auto& input_buckets : buckets) total += input_buckets[s].size();
    out[s].clear();  // idempotent under for_each_shard retry
    out[s].reserve(total);
    for (auto& input_buckets : buckets) {
      out[s].insert(out[s].end(), input_buckets[s].begin(), input_buckets[s].end());
    }
    pipeline.charge_shard_bytes(shard_bytes(out[s]));
  });
  return out;
}

}  // namespace detail

/// GroupByKey: (K,V) records -> (K, [V...]) with one output record per key,
/// keys sorted within each shard, value order = shuffle arrival order
/// (deterministic; see header comment).
template <typename K, typename V>
PCollection<std::pair<K, std::vector<V>>> group_by_key(
    const PCollection<std::pair<K, V>>& in) {
  Pipeline& pipeline = *in.pipeline();
  auto shuffled = detail::shuffle_by_key(in);
  std::vector<std::vector<std::pair<K, std::vector<V>>>> out(shuffled.size());
  pipeline.for_each_shard(shuffled.size(), [&](std::size_t s) {
    std::unordered_map<K, std::vector<V>> groups;
    // Copy (not move) the shuffled records: the task may be re-executed
    // after an injected fault, and its input must stay intact.
    for (const auto& record : shuffled[s]) {
      groups[record.first].push_back(record.second);
    }
    out[s].clear();  // idempotent under for_each_shard retry
    out[s].reserve(groups.size());
    for (auto& [key, values] : groups) {
      out[s].emplace_back(key, std::move(values));
    }
    std::sort(out[s].begin(), out[s].end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    pipeline.charge_shard_bytes(shard_bytes(out[s]));
  });
  return PCollection<std::pair<K, std::vector<V>>>(&pipeline, std::move(out));
}

template <typename K, typename A, typename B>
struct JoinRow2 {
  K key{};
  std::vector<A> left;
  std::vector<B> right;
};

template <typename K, typename A, typename B>
std::size_t approx_bytes(const JoinRow2<K, A, B>& row) {
  return sizeof(K) + approx_bytes(row.left) + approx_bytes(row.right);
}

/// CoGroupByKey over two collections: one output row per key present in
/// either input, carrying all values from both sides.
template <typename K, typename A, typename B>
PCollection<JoinRow2<K, A, B>> co_group_by_key(
    const PCollection<std::pair<K, A>>& left,
    const PCollection<std::pair<K, B>>& right) {
  if (left.pipeline() != right.pipeline()) {
    throw std::invalid_argument("co_group_by_key: different pipelines");
  }
  Pipeline& pipeline = *left.pipeline();
  auto left_shuffled = detail::shuffle_by_key(left);
  auto right_shuffled = detail::shuffle_by_key(right);
  std::vector<std::vector<JoinRow2<K, A, B>>> out(pipeline.num_shards());
  pipeline.for_each_shard(pipeline.num_shards(), [&](std::size_t s) {
    std::unordered_map<K, std::size_t> index;
    std::vector<JoinRow2<K, A, B>> rows;
    auto row_for = [&](const K& key) -> JoinRow2<K, A, B>& {
      auto [it, inserted] = index.emplace(key, rows.size());
      if (inserted) {
        rows.push_back(JoinRow2<K, A, B>{key, {}, {}});
      }
      return rows[it->second];
    };
    // Copy (not move): the task may re-execute after an injected fault.
    for (const auto& record : left_shuffled[s]) {
      row_for(record.first).left.push_back(record.second);
    }
    for (const auto& record : right_shuffled[s]) {
      row_for(record.first).right.push_back(record.second);
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.key < b.key; });
    pipeline.charge_shard_bytes(shard_bytes(rows));
    out[s] = std::move(rows);
  });
  return PCollection<JoinRow2<K, A, B>>(&pipeline, std::move(out));
}

template <typename K, typename A, typename B, typename C>
struct JoinRow3 {
  K key{};
  std::vector<A> first;
  std::vector<B> second;
  std::vector<C> third;
};

template <typename K, typename A, typename B, typename C>
std::size_t approx_bytes(const JoinRow3<K, A, B, C>& row) {
  return sizeof(K) + approx_bytes(row.first) + approx_bytes(row.second) +
         approx_bytes(row.third);
}

/// CoGroupByKey over three collections — the shape of the Section-5
/// three-way join (fanned neighbor graph ⋈ partial solution ⋈ unassigned).
template <typename K, typename A, typename B, typename C>
PCollection<JoinRow3<K, A, B, C>> co_group_by_key(
    const PCollection<std::pair<K, A>>& first,
    const PCollection<std::pair<K, B>>& second,
    const PCollection<std::pair<K, C>>& third) {
  if (first.pipeline() != second.pipeline() || first.pipeline() != third.pipeline()) {
    throw std::invalid_argument("co_group_by_key: different pipelines");
  }
  Pipeline& pipeline = *first.pipeline();
  auto s1 = detail::shuffle_by_key(first);
  auto s2 = detail::shuffle_by_key(second);
  auto s3 = detail::shuffle_by_key(third);
  std::vector<std::vector<JoinRow3<K, A, B, C>>> out(pipeline.num_shards());
  pipeline.for_each_shard(pipeline.num_shards(), [&](std::size_t s) {
    std::unordered_map<K, std::size_t> index;
    std::vector<JoinRow3<K, A, B, C>> rows;
    auto row_for = [&](const K& key) -> JoinRow3<K, A, B, C>& {
      auto [it, inserted] = index.emplace(key, rows.size());
      if (inserted) rows.push_back(JoinRow3<K, A, B, C>{key, {}, {}, {}});
      return rows[it->second];
    };
    // Copy (not move): the task may re-execute after an injected fault.
    for (const auto& record : s1[s]) row_for(record.first).first.push_back(record.second);
    for (const auto& record : s2[s]) row_for(record.first).second.push_back(record.second);
    for (const auto& record : s3[s]) row_for(record.first).third.push_back(record.second);
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.key < b.key; });
    pipeline.charge_shard_bytes(shard_bytes(rows));
    out[s] = std::move(rows);
  });
  return PCollection<JoinRow3<K, A, B, C>>(&pipeline, std::move(out));
}

/// Driver-side global sum (values must support +).
template <typename T>
T sum(const PCollection<T>& in) {
  std::vector<T> partials(in.num_shards(), T{});
  in.pipeline()->for_each_shard(in.num_shards(), [&](std::size_t s) {
    T acc{};
    for (const T& value : in.shard(s)) acc = acc + value;
    partials[s] = acc;
  });
  T total{};
  for (const T& partial : partials) total = total + partial;
  return total;
}

template <typename T>
std::size_t count(const PCollection<T>& in) {
  return in.size();
}

/// Driver-side materialization in shard order. Only for small results/tests.
template <typename T>
std::vector<T> to_vector(const PCollection<T>& in) {
  std::vector<T> out;
  out.reserve(in.size());
  for (std::size_t s = 0; s < in.num_shards(); ++s) {
    out.insert(out.end(), in.shard(s).begin(), in.shard(s).end());
  }
  return out;
}

/// Exact k-th largest (1-based) of a distributed double collection, without
/// gathering it: binary search over the IEEE-754 total order with one
/// distributed count per step (<= 64 passes). Returns -inf if k exceeds the
/// collection size and +inf if k == 0, mirroring subsel::kth_largest.
double kth_largest_distributed(const PCollection<double>& values, std::size_t k);

}  // namespace subsel::dataflow
