#include "data/synthetic.h"

#include <cmath>
#include <stdexcept>

#include "common/rng.h"

namespace subsel::data {

ClusteredEmbeddings generate_clustered_embeddings(
    const ClusteredEmbeddingConfig& config) {
  if (config.num_classes == 0 || config.dim == 0) {
    throw std::invalid_argument("generate_clustered_embeddings: empty config");
  }
  ClusteredEmbeddings result;
  result.centers = graph::EmbeddingMatrix(config.num_classes, config.dim);
  Rng center_rng = Rng(config.seed).fork(0xC3);
  for (std::size_t c = 0; c < config.num_classes; ++c) {
    auto row = result.centers.row(c);
    for (float& v : row) v = static_cast<float>(center_rng.normal());
  }
  result.centers.normalize_rows();

  result.points = graph::EmbeddingMatrix(config.num_points, config.dim);
  result.labels.resize(config.num_points);
  // Per-point RNG streams keyed by index: points are identical regardless of
  // how generation is parallelized or chunked.
  for (std::size_t i = 0; i < config.num_points; ++i) {
    Rng point_rng = Rng(config.seed).fork(0xB0 + i);
    const auto label = static_cast<std::uint32_t>(point_rng.uniform_index(config.num_classes));
    result.labels[i] = label;
    const auto center = result.centers.row(label);
    auto row = result.points.row(i);
    for (std::size_t d = 0; d < config.dim; ++d) {
      row[d] = center[d] +
               static_cast<float>(config.cluster_stddev * point_rng.normal());
    }
  }
  result.points.normalize_rows();
  return result;
}

}  // namespace subsel::data
