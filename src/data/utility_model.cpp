#include "data/utility_model.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace subsel::data {

CoarseClassifier::CoarseClassifier(const graph::EmbeddingMatrix& true_centers,
                                   const CoarseClassifierConfig& config)
    : centers_(true_centers.rows(), true_centers.dim()),
      temperature_(config.temperature) {
  Rng rng(config.seed);
  for (std::size_t c = 0; c < true_centers.rows(); ++c) {
    const auto src = true_centers.row(c);
    auto dst = centers_.row(c);
    for (std::size_t d = 0; d < src.size(); ++d) {
      dst[d] = src[d] + static_cast<float>(config.center_noise * rng.normal());
    }
  }
  centers_.normalize_rows();
}

std::vector<double> CoarseClassifier::predict(std::span<const float> embedding) const {
  std::vector<double> logits(centers_.rows());
  double max_logit = -std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centers_.rows(); ++c) {
    logits[c] = temperature_ * static_cast<double>(graph::dot(embedding, centers_.row(c)));
    max_logit = std::max(max_logit, logits[c]);
  }
  double total = 0.0;
  for (double& logit : logits) {
    logit = std::exp(logit - max_logit);
    total += logit;
  }
  for (double& p : logits) p /= total;
  return logits;
}

double CoarseClassifier::margin_utility(std::span<const float> embedding) const {
  const std::vector<double> probs = predict(embedding);
  double top = 0.0, second = 0.0;
  for (double p : probs) {
    if (p > top) {
      second = top;
      top = p;
    } else if (p > second) {
      second = p;
    }
  }
  return 1.0 - (top - second);
}

std::vector<double> compute_margin_utilities(const graph::EmbeddingMatrix& embeddings,
                                             const CoarseClassifier& classifier) {
  std::vector<double> utilities(embeddings.rows());
  global_thread_pool().parallel_for(embeddings.rows(), [&](std::size_t i) {
    utilities[i] = classifier.margin_utility(embeddings.row(i));
  });
  center_utilities(utilities);
  return utilities;
}

void center_utilities(std::vector<double>& utilities) {
  if (utilities.empty()) return;
  const double minimum = *std::min_element(utilities.begin(), utilities.end());
  for (double& u : utilities) u -= minimum;
}

}  // namespace subsel::data
