// Synthetic clustered-embedding generator.
//
// Stands in for the penultimate-layer ResNet-56 embeddings of Section 6: each
// class has a random unit-vector center; points are Gaussian perturbations of
// their class center, then L2-normalized so cosine similarity is a dot
// product. The resulting geometry (tight same-class clusters, inter-class
// separation controlled by dimension) matches what the subset-selection
// algorithms consume; the paper notes the exact embedding choice does not
// affect the algorithm comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/embedding_matrix.h"

namespace subsel::data {

struct ClusteredEmbeddingConfig {
  std::size_t num_points = 10'000;
  std::size_t dim = 64;
  std::size_t num_classes = 100;
  /// Per-coordinate noise, relative to the (unit) center norm. Around 0.3 the
  /// clusters overlap mildly like late-training embeddings.
  double cluster_stddev = 0.30;
  std::uint64_t seed = 42;
};

struct ClusteredEmbeddings {
  graph::EmbeddingMatrix points;   // row-normalized
  graph::EmbeddingMatrix centers;  // row-normalized class centers
  std::vector<std::uint32_t> labels;
};

/// Deterministically generates the clustered embeddings for `config`.
ClusteredEmbeddings generate_clustered_embeddings(const ClusteredEmbeddingConfig& config);

}  // namespace subsel::data
