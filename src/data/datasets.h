// Materialized evaluation datasets (CIFAR-100 and ImageNet proxies).
//
// A Dataset bundles everything Section 6 derives before selection runs:
// row-normalized embeddings, class labels, centered margin utilities, and the
// symmetrized 10-NN cosine-similarity graph. Construction is deterministic
// from the config and cached on disk (embeddings + graph are the expensive
// parts) so the many bench binaries share one build.
//
// Paper -> proxy mapping (see DESIGN.md §2):
//   CIFAR-100: 50k points, 64-d, 100 classes  -> cifar_proxy(scale)
//   ImageNet : 1.2M points, 2048-d, 1000 cls  -> imagenet_proxy(scale),
//              default 120k x 128-d so the full benchmark grid runs in
//              minutes; pass scale=10 for the paper's cardinality.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "data/utility_model.h"
#include "graph/ground_set.h"
#include "graph/knn.h"
#include "graph/similarity_graph.h"

namespace subsel::data {

struct DatasetConfig {
  std::string name = "dataset";
  ClusteredEmbeddingConfig embeddings;
  CoarseClassifierConfig classifier;
  graph::KnnConfig knn;
  /// Brute-force kNN below this many points, IVF above.
  std::size_t exact_knn_threshold = 4096;
};

struct Dataset {
  std::string name;
  graph::EmbeddingMatrix embeddings;
  std::vector<std::uint32_t> labels;
  std::vector<double> utilities;  // centered margin utilities
  graph::SimilarityGraph graph;   // symmetrized kNN graph

  std::size_t size() const noexcept { return graph.num_nodes(); }

  graph::InMemoryGroundSet ground_set() const {
    return graph::InMemoryGroundSet(graph, utilities);
  }
};

/// Builds (or loads from cache) the dataset for `config`. The cache directory
/// is $SUBSEL_CACHE_DIR, defaulting to /tmp/subsel_cache; set it to "" to
/// disable caching.
Dataset make_dataset(const DatasetConfig& config);

/// CIFAR-100 proxy: floor(50k*scale) points, 64-d, 100 classes, 10-NN.
Dataset cifar_proxy(double scale = 1.0, std::uint64_t seed = 42);

/// ImageNet proxy: floor(120k*scale) points, 128-d, 1000 classes, 10-NN.
/// scale=10 reproduces the paper's 1.2M cardinality.
Dataset imagenet_proxy(double scale = 1.0, std::uint64_t seed = 1337);

/// Tiny deterministic dataset for tests/examples (exact kNN).
Dataset toy_dataset(std::size_t num_points = 256, std::size_t num_classes = 8,
                    std::uint64_t seed = 3);

}  // namespace subsel::data
