#include "data/datasets.h"

#include "data/dataset_io.h"

#include <cstdlib>
#include <filesystem>

#include "common/log.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/timer.h"

namespace subsel::data {
namespace {

/// Stable content key over every config field that influences the artifact.
std::uint64_t config_fingerprint(const DatasetConfig& config) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](std::uint64_t value) { h = hash_combine(h, value); };
  for (char c : config.name) mix(static_cast<std::uint64_t>(c));
  mix(config.embeddings.num_points);
  mix(config.embeddings.dim);
  mix(config.embeddings.num_classes);
  mix(static_cast<std::uint64_t>(config.embeddings.cluster_stddev * 1e9));
  mix(config.embeddings.seed);
  mix(static_cast<std::uint64_t>(config.classifier.temperature * 1e9));
  mix(static_cast<std::uint64_t>(config.classifier.center_noise * 1e9));
  mix(config.classifier.seed);
  mix(config.knn.num_neighbors);
  mix(config.knn.num_clusters);
  mix(config.knn.num_probes);
  mix(config.knn.kmeans_iterations);
  mix(config.knn.seed);
  mix(config.exact_knn_threshold);
  return h;
}

std::string cache_directory() {
  const char* env = std::getenv("SUBSEL_CACHE_DIR");
  if (env != nullptr) return env;
  return "/tmp/subsel_cache";
}

std::string cache_path(const DatasetConfig& config) {
  const std::string dir = cache_directory();
  if (dir.empty()) return {};
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), "%016llx",
                static_cast<unsigned long long>(config_fingerprint(config)));
  return dir + "/" + config.name + "_" + suffix + ".bin";
}

bool try_load(const std::string& path, Dataset& dataset) {
  // The cache file IS the public dataset_io format; the config fingerprint
  // in the file name keys the artifact.
  return try_load_dataset(path, dataset);
}

void try_save(const std::string& path, const Dataset& dataset) {
  if (path.empty()) return;
  try {
    save_dataset(dataset, path);
  } catch (const std::exception& e) {
    LOG_WARN("dataset cache write failed (%s); continuing uncached", e.what());
  }
}

}  // namespace

Dataset make_dataset(const DatasetConfig& config) {
  Dataset dataset;
  dataset.name = config.name;
  const std::string path = cache_path(config);
  if (try_load(path, dataset)) {
    LOG_DEBUG("dataset %s: loaded from cache %s", config.name.c_str(), path.c_str());
    return dataset;
  }

  Timer timer;
  ClusteredEmbeddings generated = generate_clustered_embeddings(config.embeddings);
  dataset.embeddings = std::move(generated.points);
  dataset.labels = std::move(generated.labels);
  LOG_INFO("dataset %s: generated %zu x %zu embeddings in %s", config.name.c_str(),
           dataset.embeddings.rows(), dataset.embeddings.dim(),
           format_duration(timer.elapsed_seconds()).c_str());

  timer.reset();
  CoarseClassifier classifier(generated.centers, config.classifier);
  dataset.utilities = compute_margin_utilities(dataset.embeddings, classifier);
  LOG_INFO("dataset %s: margin utilities in %s", config.name.c_str(),
           format_duration(timer.elapsed_seconds()).c_str());

  timer.reset();
  dataset.graph = graph::build_similarity_graph(dataset.embeddings, config.knn,
                                                config.exact_knn_threshold);
  LOG_INFO("dataset %s: %zu-NN graph (%zu nodes, avg degree %.1f) in %s",
           config.name.c_str(), config.knn.num_neighbors, dataset.graph.num_nodes(),
           dataset.graph.average_degree(),
           format_duration(timer.elapsed_seconds()).c_str());

  try_save(path, dataset);
  return dataset;
}

Dataset cifar_proxy(double scale, std::uint64_t seed) {
  DatasetConfig config;
  config.name = "cifar100_proxy";
  config.embeddings.num_points = static_cast<std::size_t>(50'000 * scale);
  config.embeddings.dim = 64;
  config.embeddings.num_classes = 100;
  config.embeddings.seed = seed;
  config.knn.num_neighbors = 10;
  config.knn.num_probes = 8;
  config.knn.seed = seed + 1;
  return make_dataset(config);
}

Dataset imagenet_proxy(double scale, std::uint64_t seed) {
  DatasetConfig config;
  config.name = "imagenet_proxy";
  config.embeddings.num_points = static_cast<std::size_t>(120'000 * scale);
  config.embeddings.dim = 128;
  config.embeddings.num_classes = 1000;
  config.embeddings.seed = seed;
  config.knn.num_neighbors = 10;
  config.knn.num_probes = 8;
  config.knn.seed = seed + 1;
  return make_dataset(config);
}

Dataset toy_dataset(std::size_t num_points, std::size_t num_classes,
                    std::uint64_t seed) {
  DatasetConfig config;
  config.name = "toy";
  config.embeddings.num_points = num_points;
  config.embeddings.dim = 16;
  config.embeddings.num_classes = num_classes;
  config.embeddings.seed = seed;
  config.knn.num_neighbors = 5;
  config.exact_knn_threshold = 1u << 20;  // always exact
  return make_dataset(config);
}

}  // namespace subsel::data
