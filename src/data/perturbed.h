// Virtual "Perturbed" dataset — the 13-billion-point stress test of §6.3.
//
// The paper builds Perturbed-ImageNet by perturbing each base embedding into
// 10k vectors (1.3M × 10k ≈ 13B points). Materializing per-point state at
// that scale is exactly what the paper's algorithms avoid, so this class
// never materializes the expansion: point (g, j) = base point g, perturbation
// j, with
//   - utility  u(g,j) = max(0, u_base(g) + noise(seed, id)),
//   - neighbors: a ring over the perturbation group — j ± 1..radius (mod P),
//     10 neighbors for the default radius 5, mirroring the paper's 10-NN —
//     with hash-derived similarities symmetric in the edge's endpoints, and
//   - for j = 0 ("group leader"): additionally the base graph's edges mapped
//     onto the leaders of the neighboring groups, so the base dataset's
//     global cluster structure survives the expansion.
//
// Everything is a pure function of (seed, id), so bounding and the
// distributed greedy can stream the ground set shard by shard; resident cost
// is O(1) per query plus the base dataset.
#pragma once

#include <cstdint>

#include "data/datasets.h"
#include "graph/ground_set.h"

namespace subsel::data {

struct PerturbedConfig {
  /// P — perturbations per base point (the paper uses 10'000).
  std::size_t perturbations_per_point = 400;
  /// Ring radius: each point gets 2*radius in-group neighbors.
  std::size_t ring_radius = 5;
  /// Base similarity of in-group edges before hash noise.
  double in_group_similarity = 0.75;
  /// Uniform noise half-width applied to in-group similarities.
  double similarity_noise = 0.15;
  /// Uniform noise half-width applied to utilities.
  double utility_noise = 0.05;
  /// Map the base graph onto group leaders (j = 0).
  bool connect_group_leaders = true;
  std::uint64_t seed = 99;
};

class PerturbedGroundSet final : public graph::GroundSet {
 public:
  /// `base` must outlive this object.
  PerturbedGroundSet(const Dataset& base, const PerturbedConfig& config);

  std::size_t num_points() const override { return num_points_; }
  double utility(graph::NodeId v) const override;
  /// Edges are computed on the fly from (seed, id), so this class keeps the
  /// copying neighbors_span() fallback — there is no stable storage to view.
  void neighbors(graph::NodeId v, std::vector<graph::Edge>& out) const override;
  std::size_t degree(graph::NodeId v) const override;

  const PerturbedConfig& config() const noexcept { return config_; }
  std::size_t base_size() const noexcept { return base_->size(); }

  /// DRAM a materialized representation would need (64-bit key + utility per
  /// point, plus id+similarity per directed edge) — the quantity behind the
  /// paper's "880 GB for 5 B points" feasibility argument.
  std::uint64_t bytes_if_materialized() const;

 private:
  double edge_similarity(graph::NodeId a, graph::NodeId b) const;

  const Dataset* base_;
  PerturbedConfig config_;
  std::size_t num_points_;
};

}  // namespace subsel::data
