#include "data/perturbed.h"

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"

namespace subsel::data {

using graph::Edge;
using graph::NodeId;

PerturbedGroundSet::PerturbedGroundSet(const Dataset& base,
                                       const PerturbedConfig& config)
    : base_(&base), config_(config),
      num_points_(base.size() * config.perturbations_per_point) {
  if (config.perturbations_per_point == 0) {
    throw std::invalid_argument("PerturbedGroundSet: perturbations_per_point == 0");
  }
  if (config.ring_radius * 2 >= config.perturbations_per_point &&
      config.perturbations_per_point > 1) {
    // A ring that wraps onto itself would create duplicate edges; callers
    // should size P > 2*radius. P == 1 degenerates to leaders only.
    if (config.perturbations_per_point <= 2 * config.ring_radius) {
      throw std::invalid_argument(
          "PerturbedGroundSet: perturbations_per_point must exceed 2*ring_radius");
    }
  }
}

double PerturbedGroundSet::utility(NodeId v) const {
  const std::size_t group = static_cast<std::size_t>(v) / config_.perturbations_per_point;
  const double noise =
      (hash_to_unit(hash_combine(config_.seed ^ 0x75ULL, static_cast<std::uint64_t>(v))) *
           2.0 -
       1.0) *
      config_.utility_noise;
  return std::max(0.0, base_->utilities[group] + noise);
}

double PerturbedGroundSet::edge_similarity(NodeId a, NodeId b) const {
  // Symmetric in (a, b): hash the ordered pair.
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  const double noise =
      (hash_to_unit(hash_combine(hash_combine(config_.seed ^ 0x51ULL,
                                              static_cast<std::uint64_t>(lo)),
                                 static_cast<std::uint64_t>(hi))) *
           2.0 -
       1.0) *
      config_.similarity_noise;
  return std::clamp(config_.in_group_similarity + noise, 0.0, 1.0);
}

void PerturbedGroundSet::neighbors(NodeId v, std::vector<Edge>& out) const {
  out.clear();
  const std::size_t p = config_.perturbations_per_point;
  const auto group = static_cast<std::size_t>(v) / p;
  const auto offset = static_cast<std::size_t>(v) % p;
  const NodeId group_base = static_cast<NodeId>(group * p);

  if (p > 1) {
    for (std::size_t d = 1; d <= config_.ring_radius; ++d) {
      const auto fwd = static_cast<NodeId>(group_base +
                                           static_cast<NodeId>((offset + d) % p));
      const auto bwd = static_cast<NodeId>(group_base +
                                           static_cast<NodeId>((offset + p - d) % p));
      out.push_back(Edge{fwd, static_cast<float>(edge_similarity(v, fwd))});
      if (bwd != fwd) {
        out.push_back(Edge{bwd, static_cast<float>(edge_similarity(v, bwd))});
      }
    }
  }

  if (config_.connect_group_leaders && offset == 0) {
    for (const Edge& base_edge : base_->graph.neighbors(static_cast<NodeId>(group))) {
      const auto leader = static_cast<NodeId>(
          static_cast<std::size_t>(base_edge.neighbor) * p);
      out.push_back(Edge{leader, base_edge.weight});
    }
  }
}

std::size_t PerturbedGroundSet::degree(NodeId v) const {
  const std::size_t p = config_.perturbations_per_point;
  std::size_t ring = p > 1 ? std::min(2 * config_.ring_radius, p - 1) : 0;
  std::size_t leader_edges = 0;
  if (config_.connect_group_leaders &&
      static_cast<std::size_t>(v) % p == 0) {
    leader_edges =
        base_->graph.degree(static_cast<NodeId>(static_cast<std::size_t>(v) / p));
  }
  return ring + leader_edges;
}

std::uint64_t PerturbedGroundSet::bytes_if_materialized() const {
  // 64-bit key + 64-bit utility per point; 64-bit id + 32-bit similarity per
  // directed edge (the paper's §3 sizing uses the same shape).
  const std::uint64_t per_point = 16;
  const std::uint64_t per_edge = 12;
  std::uint64_t edges = 0;
  const std::size_t p = config_.perturbations_per_point;
  edges += static_cast<std::uint64_t>(num_points_) *
           (p > 1 ? std::min(2 * config_.ring_radius, p - 1) : 0);
  if (config_.connect_group_leaders) {
    edges += static_cast<std::uint64_t>(base_->graph.num_edges());
  }
  return static_cast<std::uint64_t>(num_points_) * per_point + edges * per_edge;
}

}  // namespace subsel::data
