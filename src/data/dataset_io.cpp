#include "data/dataset_io.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "common/serialize.h"

namespace subsel::data {
namespace {

/// Shared with the dataset cache: bump when the layout changes.
constexpr std::uint64_t kDatasetIoMagic = 0x53554253454C3144ULL;  // "SUBSEL1D"

}  // namespace

void save_dataset(const Dataset& dataset, const std::string& path) {
  std::error_code error;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, error);

  BinaryWriter writer(path);
  writer.write_pod(kDatasetIoMagic);
  writer.write_pod<std::uint64_t>(dataset.embeddings.rows());
  writer.write_pod<std::uint64_t>(dataset.embeddings.dim());
  std::vector<float> flat(dataset.embeddings.flat().begin(),
                          dataset.embeddings.flat().end());
  writer.write_vector(flat);
  writer.write_vector(dataset.labels);
  writer.write_vector(dataset.utilities);
  if (!writer.ok()) throw std::runtime_error("save_dataset: write failed: " + path);
  dataset.graph.save(path + ".graph");
}

bool try_load_dataset(const std::string& path, Dataset& dataset) {
  if (path.empty() || !std::filesystem::exists(path)) return false;
  try {
    BinaryReader reader(path);
    if (reader.read_pod<std::uint64_t>() != kDatasetIoMagic) return false;
    const auto rows = reader.read_pod<std::uint64_t>();
    const auto dim = reader.read_pod<std::uint64_t>();
    dataset.embeddings = graph::EmbeddingMatrix(rows, dim);
    const auto flat = reader.read_vector<float>();
    if (flat.size() != rows * dim) return false;
    std::copy(flat.begin(), flat.end(), dataset.embeddings.flat().begin());
    dataset.labels = reader.read_vector<std::uint32_t>();
    dataset.utilities = reader.read_vector<double>();
    dataset.graph = graph::SimilarityGraph::load(path + ".graph");
  } catch (const std::exception&) {
    return false;
  }
  return dataset.graph.num_nodes() == dataset.labels.size() &&
         dataset.utilities.size() == dataset.labels.size();
}

Dataset load_dataset(const std::string& path) {
  Dataset dataset;
  if (!try_load_dataset(path, dataset)) {
    throw std::runtime_error("load_dataset: cannot load " + path +
                             " (missing, corrupt, or wrong version)");
  }
  if (dataset.name.empty()) {
    dataset.name = std::filesystem::path(path).stem().string();
  }
  return dataset;
}

DatasetScalars load_dataset_scalars(const std::string& path) {
  BinaryReader reader(path);
  if (reader.read_pod<std::uint64_t>() != kDatasetIoMagic) {
    throw std::runtime_error("load_dataset_scalars: bad magic in " + path);
  }
  (void)reader.read_pod<std::uint64_t>();  // rows
  (void)reader.read_pod<std::uint64_t>();  // dim
  reader.skip_vector<float>();             // embeddings stay on disk
  DatasetScalars scalars;
  scalars.name = std::filesystem::path(path).stem().string();
  scalars.labels = reader.read_vector<std::uint32_t>();
  scalars.utilities = reader.read_vector<double>();
  if (scalars.labels.size() != scalars.utilities.size()) {
    throw std::runtime_error("load_dataset_scalars: corrupt scalars in " + path);
  }
  return scalars;
}

void save_subset(const std::vector<graph::NodeId>& ids, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_subset: cannot open " + path);
  for (graph::NodeId v : ids) out << v << '\n';
  if (!out.good()) throw std::runtime_error("save_subset: write failed: " + path);
}

std::vector<graph::NodeId> load_subset(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_subset: cannot open " + path);
  std::vector<graph::NodeId> ids;
  long long value = 0;
  while (in >> value) ids.push_back(static_cast<graph::NodeId>(value));
  if (in.bad()) throw std::runtime_error("load_subset: read failed: " + path);
  return ids;
}

std::vector<double> load_value_file(const std::string& path, const char* what) {
  std::ifstream file(path);
  if (!file) {
    throw std::invalid_argument(std::string("cannot open ") + what + " file " +
                                path);
  }
  std::vector<double> values;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(line.c_str(), &end);
    if (end == line.c_str() || *end != '\0' || errno == ERANGE) {
      throw std::invalid_argument(std::string(what) + " file " + path +
                                  " line " + std::to_string(line_no) +
                                  " is not a number: \"" + line + "\"");
    }
    values.push_back(parsed);
  }
  return values;
}

std::vector<std::uint32_t> load_group_file(const std::string& path) {
  const std::vector<double> raw = load_value_file(path, "group");
  std::vector<std::uint32_t> groups;
  groups.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] < 0.0 ||
        raw[i] != static_cast<double>(static_cast<std::uint32_t>(raw[i]))) {
      throw std::invalid_argument("group file " + path + " line " +
                                  std::to_string(i + 1) +
                                  " is not a non-negative integer group id");
    }
    groups.push_back(static_cast<std::uint32_t>(raw[i]));
  }
  return groups;
}

}  // namespace subsel::data
