// Margin-based uncertainty utilities (Scheffer et al. 2001), Section 6.
//
// The paper scores each point with u(x) = 1 - (P(top|x) - P(sec|x)) from a
// coarsely trained classifier: easy points (deep inside their class cluster)
// get low utility, points near decision boundaries get high utility. We
// simulate the coarse classifier with a softmax over (noisy) cosine
// similarities to the class centers — "coarse" is modeled by perturbing the
// centers the classifier believes in, so its boundaries disagree mildly with
// the generator's.
//
// Utilities are centered by subtracting the dataset minimum (paper, Sec. 6),
// which makes them non-negative.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/embedding_matrix.h"

namespace subsel::data {

struct CoarseClassifierConfig {
  /// Softmax temperature over cosine similarities; larger = more confident.
  double temperature = 8.0;
  /// Std-dev of the perturbation applied to the true centers to simulate a
  /// coarsely (10 %-subset) trained model.
  double center_noise = 0.15;
  std::uint64_t seed = 7;
};

class CoarseClassifier {
 public:
  /// `true_centers` are the generator's class centers (row-normalized).
  CoarseClassifier(const graph::EmbeddingMatrix& true_centers,
                   const CoarseClassifierConfig& config);

  std::size_t num_classes() const noexcept { return centers_.rows(); }

  /// Class-probability vector for one embedding.
  std::vector<double> predict(std::span<const float> embedding) const;

  /// Margin utility u(x) = 1 - (P(top|x) - P(sec|x)). In [0, 1].
  double margin_utility(std::span<const float> embedding) const;

 private:
  graph::EmbeddingMatrix centers_;
  double temperature_;
};

/// Margin utilities for every row, centered by subtracting the minimum.
std::vector<double> compute_margin_utilities(const graph::EmbeddingMatrix& embeddings,
                                             const CoarseClassifier& classifier);

/// In-place centering: subtracts the minimum value (no-op on empty input).
void center_utilities(std::vector<double>& utilities);

}  // namespace subsel::data
