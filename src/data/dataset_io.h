// Public dataset (de)serialization — the same binary format the dataset
// cache uses, exposed so external tooling (tools/subsel_cli) can hand
// datasets and selections between processes.
//
// A dataset saved at prefix P occupies two files: P (embeddings, labels,
// utilities) and P.graph (the CSR similarity graph). Selections are plain
// one-id-per-line text files so they interoperate with shell tooling.
#pragma once

#include <string>
#include <vector>

#include "data/datasets.h"

namespace subsel::data {

/// Writes `dataset` to `path` (+ ".graph"). Throws std::runtime_error on IO
/// failure.
void save_dataset(const Dataset& dataset, const std::string& path);

/// Loads a dataset previously written by save_dataset. Best-effort variant
/// returns false instead of throwing (used by the dataset cache).
bool try_load_dataset(const std::string& path, Dataset& dataset);

/// Loading variant that throws std::runtime_error with a reason.
Dataset load_dataset(const std::string& path);

/// Per-point scalars of a saved dataset, without the embeddings or the
/// graph — the resident data a DiskGroundSet run needs.
struct DatasetScalars {
  std::string name;
  std::vector<std::uint32_t> labels;
  std::vector<double> utilities;
};

/// Loads labels and utilities from a save_dataset file, skipping the
/// embedding payload and leaving the adjacency on disk (pair with
/// graph::DiskGroundSet over path + ".graph"). Throws on failure.
DatasetScalars load_dataset_scalars(const std::string& path);

/// One node id per line, ascending recommended but not required.
void save_subset(const std::vector<graph::NodeId>& ids, const std::string& path);
std::vector<graph::NodeId> load_subset(const std::string& path);

/// One-value-per-line numeric sidecar file (per-element costs, group ids):
/// line i is element i. Blank or non-numeric lines are rejected with
/// std::invalid_argument carrying the line number — a silent skip would
/// shift every later element. `what` names the file kind in error messages.
std::vector<double> load_value_file(const std::string& path, const char* what);

/// load_value_file specialized to partition-matroid group ids: every line
/// must be a non-negative integer.
std::vector<std::uint32_t> load_group_file(const std::string& path);

}  // namespace subsel::data
