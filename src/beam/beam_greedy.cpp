#include "beam/beam_greedy.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <optional>
#include <span>
#include <stdexcept>

#include "common/atomic_util.h"
#include "common/log.h"
#include "common/rng.h"
#include "core/greedy.h"
#include "core/objective_kernel.h"
#include "dataflow/transforms.h"

namespace subsel::beam {
namespace {

using core::NodeId;
using dataflow::PCollection;
using dataflow::Pipeline;

/// Seeded, balanced-in-expectation partition assignment: partition(id) is a
/// uniform hash of (seed, round, id). This is what a dataflow shuffle can
/// compute locally on every worker (the in-memory Fisher-Yates split needs a
/// global view).
std::size_t partition_of(NodeId id, std::uint64_t seed, std::size_t round,
                         std::size_t num_partitions) {
  const std::uint64_t h = hash_combine(
      hash_combine(seed, static_cast<std::uint64_t>(round)),
      static_cast<std::uint64_t>(id));
  return static_cast<std::size_t>(h % num_partitions);
}

}  // namespace

core::DistributedGreedyResult beam_distributed_greedy(
    Pipeline& pipeline, const graph::GroundSet& ground_set, std::size_t k,
    const BeamGreedyConfig& config, const core::SelectionState* initial) {
  if (config.num_machines == 0 || config.num_rounds == 0) {
    throw std::invalid_argument(
        "beam_distributed_greedy: machines and rounds must be >= 1");
  }
  const std::size_t n = ground_set.num_points();
  k = std::min(k, n);

  // Resolve the objective exactly like core::distributed_greedy: an explicit
  // kernel wins, otherwise the legacy pairwise params.
  std::optional<core::PairwiseKernel> local_kernel;
  const core::ObjectiveKernel& kernel = core::resolve_kernel(
      config.kernel, ground_set, config.objective, local_kernel);

  // Survivor source: every unassigned id (all ids when no bounding state).
  std::vector<NodeId> pre_selected;
  if (initial != nullptr) {
    if (initial->size() != n) {
      throw std::invalid_argument("beam_distributed_greedy: state size mismatch");
    }
    pre_selected = initial->selected_ids();
    if (pre_selected.size() > k) {
      throw std::invalid_argument(
          "beam_distributed_greedy: bounding selected more than k");
    }
  }
  const std::size_t k_open = k - pre_selected.size();

  PCollection<NodeId> survivors = dataflow::from_generator<NodeId>(
      pipeline, n, [](std::size_t i) { return static_cast<NodeId>(i); });
  if (initial != nullptr) {
    survivors = dataflow::filter(survivors, [initial](NodeId v) {
      return initial->is_unassigned(v);
    });
  }

  core::DistributedGreedyResult result;
  const std::size_t v0 = dataflow::count(survivors);
  const std::size_t partition_cap =
      (v0 + config.num_machines - 1) / std::max<std::size_t>(1, config.num_machines);

  // One reusable arena per concurrent shard worker, shared across all rounds
  // (and across invocations when the caller provides a pool).
  core::SubproblemArenaPool local_arena_pool;
  core::SubproblemArenaPool& arena_pool =
      config.arena_pool != nullptr ? *config.arena_pool : local_arena_pool;

  if (k_open > 0 && v0 > 0) {
    for (std::size_t round = 1; round <= config.num_rounds; ++round) {
      if (config.cancel.stop_requested()) {
        // Same contract as core::distributed_greedy: a cancelled run reports
        // `preempted` with no selection instead of a partial answer.
        result.preempted = true;
        LOG_INFO("beam_distributed_greedy: cancelled before round %zu", round);
        return result;
      }
      if (config.deadline.expired()) {
        // Same degradation contract as core::distributed_greedy: fall
        // through to the distributed subsample so the caller still gets a
        // valid size-k selection from the current survivors.
        result.degraded = true;
        result.degraded_reason = "deadline expired before round " +
                                 std::to_string(round) + " of " +
                                 std::to_string(config.num_rounds);
        LOG_INFO("beam_distributed_greedy: %s; returning best-so-far selection",
                 result.degraded_reason.c_str());
        break;
      }
      core::RoundStats stats;
      stats.round = round;
      stats.input_size = dataflow::count(survivors);

      std::size_t n_round = config.delta(v0, config.num_rounds, round, k_open);
      n_round = std::clamp<std::size_t>(n_round, k_open, stats.input_size);
      stats.target_size = n_round;

      std::size_t m_round = config.num_machines;
      if (config.adaptive_partitioning) {
        m_round =
            (n_round + partition_cap - 1) / std::max<std::size_t>(1, partition_cap);
        m_round = std::clamp<std::size_t>(m_round, 1, config.num_machines);
      }
      m_round = std::min(m_round, stats.input_size);
      stats.num_partitions = m_round;

      // Shuffle ids into partitions, then run Algorithm 2 inside each
      // partition's group. The subproblem materialization is the worker's
      // working set and is charged against the memory budget.
      const std::uint64_t seed = config.seed;
      auto keyed = dataflow::map<std::pair<std::size_t, NodeId>>(
          survivors, [seed, round, m_round](NodeId v) {
            return std::pair<std::size_t, NodeId>{
                partition_of(v, seed, round, m_round), v};
          });
      auto partitions = dataflow::group_by_key(keyed);

      const std::size_t per_partition_target = (n_round + m_round - 1) / m_round;
      const auto solver = config.partition_solver;
      const double stochastic_epsilon = config.stochastic_epsilon;
      std::atomic<std::size_t> peak_bytes{0};
      std::atomic<std::size_t> peak_state_bytes{0};
      survivors = dataflow::flat_map<NodeId>(
          partitions, [&ground_set, &peak_bytes, &peak_state_bytes, initial,
                       &kernel, solver, stochastic_epsilon, seed, round,
                       per_partition_target, &pipeline,
                       &arena_pool](const auto& row, auto emit) {
            core::SubproblemArenaPool::Lease arena(arena_pool);
            core::GreedyResult local = core::solve_partition(
                ground_set, std::span<const NodeId>(row.second),
                per_partition_target, kernel, initial, *arena, solver,
                stochastic_epsilon,
                hash_combine(seed, 0x9e37ULL * round + row.first));
            // The worker's working set: the subproblem CSR plus any flat
            // kernel state behind it.
            pipeline.charge_shard_bytes(local.materialized_bytes +
                                        local.kernel_state_bytes);
            atomic_fetch_max(peak_bytes, local.materialized_bytes);
            atomic_fetch_max(peak_state_bytes, local.kernel_state_bytes);
            for (NodeId v : local.selected) emit(v);
          });
      stats.peak_partition_bytes = peak_bytes.load();
      stats.peak_state_bytes = peak_state_bytes.load();
      stats.output_size = dataflow::count(survivors);
      result.rounds.push_back(stats);
      LOG_DEBUG("beam_distributed_greedy round %zu: %zu -> %zu (m=%zu, target %zu)",
                round, stats.input_size, stats.output_size, m_round, n_round);
      if (config.progress) {
        config.progress(ProgressEvent{"round", round, config.num_rounds,
                                      stats.output_size});
      }
    }

    // Distributed subsample to k_open: give every survivor a hashed priority
    // and keep the k_open largest via one distributed threshold — the driver
    // never materializes more than the final result.
    const std::size_t out_size = dataflow::count(survivors);
    if (out_size > k_open) {
      const std::uint64_t salt = hash_combine(config.seed, 0x55bULL);
      auto priorities = dataflow::map<double>(survivors, [salt](NodeId v) {
        return hash_to_unit(hash_combine(salt, static_cast<std::uint64_t>(v)));
      });
      const double threshold = dataflow::kth_largest_distributed(priorities, k_open);
      survivors = dataflow::filter(survivors, [salt, threshold](NodeId v) {
        return hash_to_unit(hash_combine(salt, static_cast<std::uint64_t>(v))) >=
               threshold;
      });
      // Hash ties above the threshold can keep a few extra ids; trim
      // deterministically by id.
      auto final_ids = dataflow::to_vector(survivors);
      if (final_ids.size() > k_open) {
        std::sort(final_ids.begin(), final_ids.end());
        final_ids.resize(k_open);
      }
      result.selected = std::move(final_ids);
    } else {
      result.selected = dataflow::to_vector(survivors);
    }
  }

  result.selected.insert(result.selected.end(), pre_selected.begin(),
                         pre_selected.end());
  std::sort(result.selected.begin(), result.selected.end());

  result.objective =
      kernel.evaluate(std::span<const NodeId>(result.selected), config.pool);
  return result;
}

}  // namespace subsel::beam
