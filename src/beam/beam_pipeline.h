// End-to-end subset selection entirely on the dataflow substrate: the
// dataflow counterpart of core::select_subset. Bounding (Section 5's join
// plan), the multi-round greedy (Section 4.4 as shuffles), and scoring all
// run as pipeline stages under the same per-worker memory budget — the full
// deployment story of the paper, where no stage ever holds the ground set or
// the subset on one machine.
#pragma once

#include "beam/beam_bounding.h"
#include "beam/beam_greedy.h"
#include "core/selection_pipeline.h"
#include "dataflow/pipeline.h"

namespace subsel::beam {

using core::SelectionPipelineConfig;
using core::SelectionPipelineResult;

/// Dataflow counterpart of core::select_subset: same config and result
/// shapes, every stage on `pipeline`. The bounding stage produces decisions
/// bit-identical to core::bound; the greedy stage differs only in partition
/// randomness (see beam_greedy.h). The final objective is computed with
/// distributed scoring.
SelectionPipelineResult beam_select_subset(dataflow::Pipeline& pipeline,
                                           const graph::GroundSet& ground_set,
                                           std::size_t k,
                                           SelectionPipelineConfig config);

}  // namespace subsel::beam
