#include "beam/beam_pipeline.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "beam/beam_scoring.h"
#include "common/timer.h"
#include "core/objective_kernel.h"

namespace subsel::beam {

SelectionPipelineResult beam_select_subset(dataflow::Pipeline& pipeline,
                                           const graph::GroundSet& ground_set,
                                           std::size_t k,
                                           SelectionPipelineConfig config) {
  // This engine's premise is that no stage — including the final scoring —
  // ever holds the subset on one machine, and the Section 5 scoring joins
  // exist only for the edge-decomposable pairwise form. Rejecting other
  // kernels here keeps the core layer in exact agreement with the API's
  // needs_distributed_scoring rule (same combinations, same verdict); the
  // kernel-generic round loops remain reachable through
  // beam_distributed_greedy directly.
  const core::ObjectiveKernel* kernel = config.kernel;
  if (kernel != nullptr) {
    if (!kernel->caps().distributed_scoring) {
      throw std::invalid_argument(
          "beam_select_subset: distributed scoring needs an edge-decomposable"
          " objective (kernel \"" +
          std::string(kernel->name()) +
          "\" has none); use core::select_subset or beam_distributed_greedy"
          " for this kernel");
    }
    if (const core::ObjectiveParams* params = kernel->pairwise_params()) {
      config.objective = *params;
    } else if (config.use_bounding) {
      throw std::invalid_argument(
          "beam_select_subset: the bounding pre-pass requires an objective"
          " with utility-bound support (kernel \"" +
          std::string(kernel->name()) +
          "\" has none); disable bounding to run this kernel");
    }
  }
  const auto score = [&](const std::vector<core::NodeId>& selected) {
    return beam_score(pipeline, ground_set, selected, config.objective);
  };
  config.bounding.objective = config.objective;
  config.greedy.objective = config.objective;
  config.greedy.kernel = config.kernel;

  SelectionPipelineResult result;
  const core::SelectionState* initial = nullptr;
  if (config.use_bounding) {
    Timer timer;
    result.bounding = beam_bound(pipeline, ground_set, k, config.bounding);
    result.bounding_seconds = timer.elapsed_seconds();
    initial = &result.bounding->state;
    if (result.bounding->degraded) {
      result.degraded = true;
      result.degraded_reason =
          "deadline expired during the bounding pre-pass; greedy ran on the"
          " partially tightened state";
    }
  }

  if (initial != nullptr && result.bounding->complete()) {
    result.selected = initial->selected_ids();
    result.objective = score(result.selected);
    return result;
  }

  Timer timer;
  core::DistributedGreedyResult greedy =
      beam_distributed_greedy(pipeline, ground_set, k, config.greedy, initial);
  result.greedy_seconds = timer.elapsed_seconds();
  result.selected = std::move(greedy.selected);
  result.greedy_rounds = std::move(greedy.rounds);
  result.preempted = greedy.preempted;
  if (greedy.degraded) {
    result.degraded = true;
    result.degraded_reason = greedy.degraded_reason;
  }
  result.objective = score(result.selected);
  return result;
}

}  // namespace subsel::beam
