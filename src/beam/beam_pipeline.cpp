#include "beam/beam_pipeline.h"

#include <algorithm>

#include "beam/beam_scoring.h"
#include "common/timer.h"

namespace subsel::beam {

SelectionPipelineResult beam_select_subset(dataflow::Pipeline& pipeline,
                                           const graph::GroundSet& ground_set,
                                           std::size_t k,
                                           SelectionPipelineConfig config) {
  config.bounding.objective = config.objective;
  config.greedy.objective = config.objective;

  SelectionPipelineResult result;
  const core::SelectionState* initial = nullptr;
  if (config.use_bounding) {
    Timer timer;
    result.bounding = beam_bound(pipeline, ground_set, k, config.bounding);
    result.bounding_seconds = timer.elapsed_seconds();
    initial = &result.bounding->state;
  }

  if (initial != nullptr && result.bounding->complete()) {
    result.selected = initial->selected_ids();
    result.objective = beam_score(pipeline, ground_set, result.selected,
                                  config.objective);
    return result;
  }

  Timer timer;
  core::DistributedGreedyResult greedy =
      beam_distributed_greedy(pipeline, ground_set, k, config.greedy, initial);
  result.greedy_seconds = timer.elapsed_seconds();
  result.selected = std::move(greedy.selected);
  result.greedy_rounds = std::move(greedy.rounds);
  result.preempted = greedy.preempted;
  result.objective = beam_score(pipeline, ground_set, result.selected,
                                config.objective);
  return result;
}

}  // namespace subsel::beam
