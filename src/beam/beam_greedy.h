// Section 4.4 on the dataflow substrate: the multi-round partition-based
// greedy as a Beam-style pipeline.
//
// Each round is
//     survivors : PCollection<NodeId>
//       -> map    (id -> (partition(id), id))          seeded hash partition
//       -> group_by_key                                 the shuffle
//       -> flat_map (partition -> per-partition greedy) Algorithm 2 locally
//     = next round's survivors,
// and the final subsample-to-k runs as a distributed threshold selection on
// hashed priorities (kth_largest_distributed), so the driver never holds
// more than the final id list it returns. Every per-partition subproblem
// charges its materialized size against the pipeline's per-worker memory
// budget — the "no machine holds more than its partition" claim is enforced,
// not assumed.
//
// Differences to core::distributed_greedy (and why they are sound): the
// in-memory version shuffles ids and splits into exactly-balanced ranges;
// a dataflow shuffle assigns by key hash, so partition sizes are only
// approximately balanced. Quality is statistically identical (tests compare
// the two within a few percent); sizes and determinism-given-seed are exact.
#pragma once

#include "core/distributed_greedy.h"
#include "dataflow/pipeline.h"
#include "graph/ground_set.h"

namespace subsel::beam {

using BeamGreedyConfig = core::DistributedGreedyConfig;

/// Runs Algorithm 6 as a dataflow pipeline; selects exactly min(k, |open|)
/// points. If `initial` is given (state left by bounding), its selected
/// points are kept and condition per-partition utilities, its discarded
/// points are never reconsidered.
core::DistributedGreedyResult beam_distributed_greedy(
    dataflow::Pipeline& pipeline, const graph::GroundSet& ground_set, std::size_t k,
    const BeamGreedyConfig& config, const core::SelectionState* initial = nullptr);

}  // namespace subsel::beam
