// Section 5: bounding implemented on the dataflow substrate.
//
// The difficulty the paper solves here: when iterating over a point's
// neighbors you cannot do an O(1) "is the neighbor selected?" check, because
// the subset is not in any worker's memory. Instead:
//
//  1. Fan out the neighbor graph: for every (node, neighbor-list) record and
//     every neighbor, emit a triple keyed by the *neighbor* id:
//     (neighbor -> (node, s)).
//  2. Three-way CoGroupByKey of {fanned graph, partial solution, unassigned
//     points}: for each key a, its presence in the solution / unassigned
//     collections classifies it (discarded keys drop their rows). Re-invert
//     the surviving edges, emitting 4-tuples keyed by the original node b:
//     (b -> (a, s(a,b), a_in_solution)).
//  3. Join the 4-tuples with the unassigned points on b; rows without a
//     partner are dropped (b is selected or discarded). The surviving row for
//     b carries exactly b's live neighborhood: solution neighbors always
//     subtract from both bounds; unassigned neighbors subtract from Umin
//     (subject to the approximate-bounding sampling decision).
//
// Thresholds (U^k_max, U^k_min) are computed with an exact distributed
// selection (kth_largest_distributed) — no worker ever holds the value
// vector. The only driver-resident state is the one-byte-per-point
// SelectionState.
//
// The sampling decisions share core::detail::sample_neighbor, so this
// implementation is bit-identical to the in-memory core::bound — which the
// integration tests assert.
#pragma once

#include "core/bounding.h"
#include "dataflow/pcollection.h"
#include "dataflow/pipeline.h"

namespace subsel::beam {

using core::BoundingConfig;
using core::BoundingResult;
using core::SelectionState;
using graph::GroundSet;
using graph::NodeId;

struct UtilityBounds {
  double u_min = 0.0;
  double u_max = 0.0;
};

/// Steps 1-3 above: per-unassigned-point (Umin|Uexp, Umax) as a distributed
/// collection.
dataflow::PCollection<std::pair<NodeId, UtilityBounds>> compute_bounds_collection(
    dataflow::Pipeline& pipeline, const GroundSet& ground_set,
    const SelectionState& state, const BoundingConfig& config,
    std::uint64_t round_salt);

/// One distributed Grow pass (Alg. 3); returns #selected.
std::size_t beam_grow_step(dataflow::Pipeline& pipeline, const GroundSet& ground_set,
                           SelectionState& state, std::size_t& k_remaining,
                           const BoundingConfig& config, std::uint64_t round_salt);

/// One distributed Shrink pass (Alg. 4); returns #discarded.
std::size_t beam_shrink_step(dataflow::Pipeline& pipeline, const GroundSet& ground_set,
                             SelectionState& state, std::size_t k_remaining,
                             const BoundingConfig& config, std::uint64_t round_salt);

/// Full Algorithm 5 on the dataflow substrate. Mirrors core::bound exactly
/// (same alternation, salts, and convergence detection).
BoundingResult beam_bound(dataflow::Pipeline& pipeline, const GroundSet& ground_set,
                          std::size_t k, const BoundingConfig& config);

}  // namespace subsel::beam
