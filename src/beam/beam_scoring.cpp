#include "beam/beam_scoring.h"

#include "dataflow/transforms.h"

namespace subsel::beam {
namespace {

using core::SelectionState;
using dataflow::PCollection;
using dataflow::Pipeline;
using graph::GroundSet;
using graph::NodeId;

struct ScoredEdge {
  NodeId source;
  float weight;
};

}  // namespace

double beam_score(Pipeline& pipeline, const GroundSet& ground_set,
                  const SelectionState& state, core::ObjectiveParams params) {
  auto ids = dataflow::from_generator<NodeId>(
      pipeline, ground_set.num_points(),
      [](std::size_t i) { return static_cast<NodeId>(i); });

  // Solution keyed by id, carrying the utility.
  auto solution = dataflow::flat_map<std::pair<NodeId, double>>(
      ids, [&state, &ground_set](NodeId v, auto emit) {
        if (state.is_selected(v)) emit({v, ground_set.utility(v)});
      });

  // Fanned neighbor graph keyed by the neighbor endpoint.
  auto fanned = dataflow::flat_map<std::pair<NodeId, ScoredEdge>>(
      ids, [&ground_set](NodeId v, auto emit) {
        thread_local std::vector<graph::Edge> scratch;
        for (const graph::Edge& e : ground_set.neighbors_span(v, scratch)) {
          emit({e.neighbor, ScoredEdge{v, e.weight}});
        }
      });

  // Keep edges whose neighbor endpoint is selected; re-invert to key by the
  // source endpoint.
  auto filtered = dataflow::co_group_by_key(fanned, solution);
  auto inverted = dataflow::flat_map<std::pair<NodeId, ScoredEdge>>(
      filtered, [](const auto& row, auto emit) {
        if (row.right.empty()) return;
        for (const ScoredEdge& e : row.left) {
          emit({e.source, ScoredEdge{row.key, e.weight}});
        }
      });

  // Join with the solution again: per selected point v, the per-datapoint
  // score is α·u(v) − (β/2)·Σ_{selected neighbors} s — halving because each
  // undirected edge inside S survives in both directions.
  auto per_point = dataflow::co_group_by_key(inverted, solution);
  auto scores = dataflow::flat_map<double>(
      per_point, [params](const auto& row, auto emit) {
        if (row.right.empty()) return;  // edges of a non-selected point
        double pair_sum = 0.0;
        for (const ScoredEdge& e : row.left) pair_sum += e.weight;
        emit(params.alpha * row.right.front() - 0.5 * params.beta * pair_sum);
      });

  // Selected points with no selected neighbor never enter `inverted`; their
  // unary terms are still part of `per_point` rows (right side non-empty,
  // left side empty), so the sum above covers them.
  return dataflow::sum(scores);
}

double beam_score(Pipeline& pipeline, const GroundSet& ground_set,
                  const std::vector<NodeId>& subset, core::ObjectiveParams params) {
  SelectionState state(ground_set.num_points());
  for (NodeId v : subset) state.select(v);
  return beam_score(pipeline, ground_set, state, params);
}

}  // namespace subsel::beam
