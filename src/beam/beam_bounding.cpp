#include "beam/beam_bounding.h"

#include <algorithm>

#include "common/rng.h"
#include "dataflow/transforms.h"

namespace subsel::beam {
namespace {

using dataflow::PCollection;
using dataflow::Pipeline;

/// Value of a fanned-graph record keyed by the neighbor: the edge's source
/// node and similarity.
struct FanRecord {
  NodeId source;
  float weight;
};

/// Value of a re-inverted edge keyed by the original node: the neighbor, the
/// similarity, and whether the neighbor sits in the partial solution.
struct EdgeInfo {
  NodeId neighbor;
  float weight;
  bool neighbor_selected;
};

using Keyed = std::pair<NodeId, std::uint8_t>;       // membership marker
using KeyedUtility = std::pair<NodeId, double>;      // unassigned id -> u(id)

/// Emits (id, marker) for every id in the given state.
PCollection<Keyed> membership_collection(Pipeline& pipeline,
                                         const GroundSet& ground_set,
                                         const SelectionState& state,
                                         core::PointState wanted) {
  auto ids = dataflow::from_generator<NodeId>(
      pipeline, ground_set.num_points(),
      [](std::size_t i) { return static_cast<NodeId>(i); });
  return dataflow::flat_map<Keyed>(ids, [&state, wanted](NodeId v, auto emit) {
    if (state.state(v) == wanted) emit(Keyed{v, std::uint8_t{1}});
  });
}

PCollection<KeyedUtility> unassigned_with_utilities(Pipeline& pipeline,
                                                    const GroundSet& ground_set,
                                                    const SelectionState& state) {
  auto ids = dataflow::from_generator<NodeId>(
      pipeline, ground_set.num_points(),
      [](std::size_t i) { return static_cast<NodeId>(i); });
  return dataflow::flat_map<KeyedUtility>(
      ids, [&state, &ground_set](NodeId v, auto emit) {
        if (state.is_unassigned(v)) emit(KeyedUtility{v, ground_set.utility(v)});
      });
}

/// Step 1: the fanned-out neighbor graph, keyed by the neighbor id.
PCollection<std::pair<NodeId, FanRecord>> fanned_neighbor_graph(
    Pipeline& pipeline, const GroundSet& ground_set) {
  auto ids = dataflow::from_generator<NodeId>(
      pipeline, ground_set.num_points(),
      [](std::size_t i) { return static_cast<NodeId>(i); });
  return dataflow::flat_map<std::pair<NodeId, FanRecord>>(
      ids, [&ground_set](NodeId v, auto emit) {
        thread_local std::vector<graph::Edge> scratch;
        for (const graph::Edge& e : ground_set.neighbors_span(v, scratch)) {
          emit({e.neighbor, FanRecord{v, e.weight}});
        }
      });
}

}  // namespace
}  // namespace subsel::beam

// approx_bytes overloads must be visible to the dataflow templates.
namespace subsel::dataflow {
inline std::size_t approx_bytes(const subsel::beam::UtilityBounds&) {
  return sizeof(subsel::beam::UtilityBounds);
}
}  // namespace subsel::dataflow

namespace subsel::beam {

dataflow::PCollection<std::pair<NodeId, UtilityBounds>> compute_bounds_collection(
    dataflow::Pipeline& pipeline, const GroundSet& ground_set,
    const SelectionState& state, const BoundingConfig& config,
    std::uint64_t round_salt) {
  auto fanned = fanned_neighbor_graph(pipeline, ground_set);
  auto solution =
      membership_collection(pipeline, ground_set, state, core::PointState::kSelected);
  auto unassigned = unassigned_with_utilities(pipeline, ground_set, state);

  // Step 2: classify each key a by the three-way join, drop edges whose
  // endpoint a was discarded, and re-invert to 4-tuples keyed by the node b.
  auto joined = dataflow::co_group_by_key(fanned, solution, unassigned);
  auto four_tuples = dataflow::flat_map<std::pair<NodeId, EdgeInfo>>(
      joined, [](const auto& row, auto emit) {
        const bool a_selected = !row.second.empty();
        const bool a_unassigned = !row.third.empty();
        if (!a_selected && !a_unassigned) return;  // a was discarded
        for (const FanRecord& fan : row.first) {
          emit({fan.source, EdgeInfo{row.key, fan.weight, a_selected}});
        }
      });

  // Step 3: join with the unassigned points on b and fold b's live
  // neighborhood into (Umin|Uexp, Umax).
  auto with_utilities = dataflow::co_group_by_key(four_tuples, unassigned);
  const BoundingConfig cfg = config;  // captured by value in the ParDo
  return dataflow::flat_map<std::pair<NodeId, UtilityBounds>>(
      with_utilities, [cfg, round_salt](const auto& row, auto emit) {
        if (row.right.empty()) return;  // b is selected or discarded
        const NodeId b = row.key;
        const double u = row.right.front();

        // Shuffle delivery order is nondeterministic; the in-memory reference
        // folds edges in CSR (neighbor-id) order. Restoring that order keeps
        // the floating-point sums bit-identical across the two paths.
        std::vector<EdgeInfo> edges(row.left.begin(), row.left.end());
        std::sort(edges.begin(), edges.end(),
                  [](const EdgeInfo& x, const EdgeInfo& y) {
                    return x.neighbor < y.neighbor;
                  });

        double mean_weight = 0.0;
        if (cfg.sampling == core::BoundingSampling::kWeighted && !edges.empty()) {
          for (const EdgeInfo& e : edges) mean_weight += e.weight;
          mean_weight /= static_cast<double>(edges.size());
        }

        const double pair_scale = cfg.objective.pair_scale();
        UtilityBounds bounds{u, u};
        for (const EdgeInfo& e : edges) {
          if (e.neighbor_selected) {
            bounds.u_min -= pair_scale * e.weight;
            bounds.u_max -= pair_scale * e.weight;
          } else if (core::detail::sample_neighbor(cfg, round_salt, b, e.neighbor,
                                                   e.weight, mean_weight)) {
            bounds.u_min -= pair_scale * e.weight;
          }
        }
        emit({b, bounds});
      });
}

std::size_t beam_grow_step(dataflow::Pipeline& pipeline, const GroundSet& ground_set,
                           SelectionState& state, std::size_t& k_remaining,
                           const BoundingConfig& config, std::uint64_t round_salt) {
  if (k_remaining == 0) return 0;
  auto bounds = compute_bounds_collection(pipeline, ground_set, state, config,
                                          round_salt);
  auto max_values = dataflow::map<double>(
      bounds, [](const auto& record) { return record.second.u_max; });
  const double threshold = dataflow::kth_largest_distributed(max_values, k_remaining);

  auto candidate_records = dataflow::flat_map<NodeId>(
      bounds, [threshold](const auto& record, auto emit) {
        if (record.second.u_min > threshold) emit(record.first);
      });
  std::vector<NodeId> candidates = dataflow::to_vector(candidate_records);
  std::sort(candidates.begin(), candidates.end());
  if (candidates.size() > k_remaining) {
    Rng rng(hash_combine(config.seed, round_salt ^ 0x6772ULL));
    rng.shuffle(std::span<NodeId>(candidates));
    candidates.resize(k_remaining);
  }
  for (NodeId v : candidates) state.select(v);
  k_remaining -= candidates.size();
  pipeline.increment_counter("grow_selected", candidates.size());
  return candidates.size();
}

std::size_t beam_shrink_step(dataflow::Pipeline& pipeline, const GroundSet& ground_set,
                             SelectionState& state, std::size_t k_remaining,
                             const BoundingConfig& config, std::uint64_t round_salt) {
  auto bounds = compute_bounds_collection(pipeline, ground_set, state, config,
                                          round_salt);
  auto min_values = dataflow::map<double>(
      bounds, [](const auto& record) { return record.second.u_min; });
  const double threshold = dataflow::kth_largest_distributed(min_values, k_remaining);

  auto discard_records = dataflow::flat_map<NodeId>(
      bounds, [threshold](const auto& record, auto emit) {
        if (record.second.u_max < threshold) emit(record.first);
      });
  const std::vector<NodeId> discards = dataflow::to_vector(discard_records);
  for (NodeId v : discards) state.discard(v);
  pipeline.increment_counter("shrink_discarded", discards.size());
  return discards.size();
}

BoundingResult beam_bound(dataflow::Pipeline& pipeline, const GroundSet& ground_set,
                          std::size_t k, const BoundingConfig& config) {
  const std::size_t n = ground_set.num_points();
  BoundingResult result;
  result.state = SelectionState(n);
  result.k_remaining = std::min(k, n);
  if (result.k_remaining == 0) return result;

  // Identical control flow, salt sequence, and convergence detection as
  // core::bound (see the comment there); only the step bodies differ.
  std::uint64_t salt = 0;
  std::size_t total_rounds = 0;
  bool first_pass = true;

  // Same pass-boundary deadline rule as core::bound: every decision is
  // monotone, so stopping between passes leaves a valid partial state.
  auto out_of_time = [&result, &config]() {
    if (!config.deadline.expired()) return false;
    result.degraded = true;
    return true;
  };

  // Same tight-completion rule as core::bound: once the survivors exactly
  // fill the open budget, they are the subset (see the comment there).
  auto complete_if_tight = [&result, &pipeline]() {
    if (result.k_remaining == 0 ||
        result.state.num_unassigned() != result.k_remaining) {
      return false;
    }
    const auto remaining = result.state.unassigned_ids();
    for (NodeId v : remaining) result.state.select(v);
    pipeline.increment_counter("grow_selected", remaining.size());
    result.k_remaining = 0;
    return true;
  };

  for (;;) {
    std::size_t shrink_changes = 0;
    for (;;) {
      if (out_of_time()) break;
      ++result.shrink_rounds;
      const std::size_t changed = beam_shrink_step(
          pipeline, ground_set, result.state, result.k_remaining, config, ++salt);
      shrink_changes += changed;
      if (changed == 0 || ++total_rounds >= config.max_rounds) break;
    }
    if (complete_if_tight()) break;
    if (result.degraded) break;
    if (!first_pass && shrink_changes == 0) break;
    if (result.k_remaining == 0 || total_rounds >= config.max_rounds) break;

    std::size_t grow_changes = 0;
    for (;;) {
      if (out_of_time()) break;
      ++result.grow_rounds;
      const std::size_t changed = beam_grow_step(
          pipeline, ground_set, result.state, result.k_remaining, config, ++salt);
      grow_changes += changed;
      if (changed == 0 || result.k_remaining == 0 ||
          ++total_rounds >= config.max_rounds) {
        break;
      }
    }
    if (complete_if_tight()) break;
    if (result.degraded) break;
    if (grow_changes == 0 || result.k_remaining == 0 ||
        total_rounds >= config.max_rounds) {
      break;
    }
    first_pass = false;
  }

  result.included = result.state.num_selected();
  result.excluded = result.state.num_discarded();
  return result;
}

}  // namespace subsel::beam
