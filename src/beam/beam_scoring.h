// Section 5: distributed subset scoring.
//
// Computing f(S) without holding S in one worker's memory: fan out the
// neighbor graph keyed by the neighbor, join with the solution to keep only
// edges whose neighbor endpoint is selected, re-invert, join with the
// solution again to keep only edges fully inside S, reduce to a per-point
// score αu(v) − (β/2)Σ s (each undirected edge shows up twice in the fanned
// representation), and sum — the objective is decomposable.
#pragma once

#include "core/objective.h"
#include "core/selection_state.h"
#include "dataflow/pipeline.h"
#include "graph/ground_set.h"

namespace subsel::beam {

/// f(S) for the selected points of `state`, computed via distributed joins.
/// Matches core::PairwiseObjective::evaluate up to floating-point summation
/// order.
double beam_score(dataflow::Pipeline& pipeline, const graph::GroundSet& ground_set,
                  const core::SelectionState& state, core::ObjectiveParams params);

/// Convenience overload for a plain id list.
double beam_score(dataflow::Pipeline& pipeline, const graph::GroundSet& ground_set,
                  const std::vector<graph::NodeId>& subset,
                  core::ObjectiveParams params);

}  // namespace subsel::beam
