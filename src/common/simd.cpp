#include "common/simd.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>

namespace subsel::simd {
namespace {

Backend detect() noexcept {
#if defined(__aarch64__)
  return Backend::kNeon;
#elif defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return Backend::kAvx2;
  return Backend::kScalar;
#else
  return Backend::kScalar;
#endif
}

/// -1 = no override; otherwise the Backend value forced by a
/// ScopedBackendOverride. Atomic so concurrent active_backend() reads are
/// race-free; overrides themselves are test/bench-only and single-threaded.
std::atomic<int> g_override{-1};

Backend env_adjusted_backend() noexcept {
  static const Backend chosen = env_flag_enabled("SUBSEL_FORCE_SCALAR")
                                    ? Backend::kScalar
                                    : detected_backend();
  return chosen;
}

}  // namespace

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
    case Backend::kScalar:
      return "scalar";
  }
  return "scalar";
}

Backend detected_backend() noexcept {
  static const Backend detected = detect();
  return detected;
}

Backend active_backend() noexcept {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Backend>(forced);
  return env_adjusted_backend();
}

const char* active_backend_name() noexcept {
  return backend_name(active_backend());
}

bool env_flag_enabled(const char* name) noexcept {
  const char* value = std::getenv(name);
  if (value == nullptr) return false;
  char lowered[8] = {};
  const std::size_t len = std::strlen(value);
  if (len == 0 || len >= sizeof(lowered)) return false;
  for (std::size_t i = 0; i < len; ++i) {
    lowered[i] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(value[i])));
  }
  return std::strcmp(lowered, "1") == 0 || std::strcmp(lowered, "true") == 0 ||
         std::strcmp(lowered, "yes") == 0 || std::strcmp(lowered, "on") == 0;
}

ScopedBackendOverride::ScopedBackendOverride(Backend backend) noexcept {
  // Never promise a backend the hardware does not have: any non-scalar
  // request resolves to the detected backend (tests only ever force scalar or
  // "whatever this machine natively runs").
  const Backend target =
      backend == Backend::kScalar ? Backend::kScalar : detected_backend();
  const int previous = g_override.exchange(static_cast<int>(target),
                                           std::memory_order_relaxed);
  had_previous_ = previous >= 0;
  previous_ = had_previous_ ? static_cast<Backend>(previous) : Backend::kScalar;
}

ScopedBackendOverride::~ScopedBackendOverride() noexcept {
  g_override.store(had_previous_ ? static_cast<int>(previous_) : -1,
                   std::memory_order_relaxed);
}

}  // namespace subsel::simd
