// Leveled stderr logging. Benches log progress at info level; set
// SUBSEL_LOG=debug|info|warn|error|off to adjust (default: info).
#pragma once

#include <cstdio>
#include <string>

namespace subsel {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Current level, initialized once from the SUBSEL_LOG environment variable.
LogLevel log_level();

void set_log_level(LogLevel level);

void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string format(const char* fmt, Args... args) {
  const int size = std::snprintf(nullptr, 0, fmt, args...);
  std::string buffer(size > 0 ? static_cast<std::size_t>(size) : 0, '\0');
  if (size > 0) std::snprintf(buffer.data(), buffer.size() + 1, fmt, args...);
  return buffer;
}
inline std::string format(const char* fmt) { return fmt; }
}  // namespace detail

#define SUBSEL_LOG(level, ...)                                       \
  do {                                                               \
    if (static_cast<int>(level) >= static_cast<int>(::subsel::log_level())) \
      ::subsel::log_message(level, ::subsel::detail::format(__VA_ARGS__));  \
  } while (0)

#define LOG_DEBUG(...) SUBSEL_LOG(::subsel::LogLevel::kDebug, __VA_ARGS__)
#define LOG_INFO(...) SUBSEL_LOG(::subsel::LogLevel::kInfo, __VA_ARGS__)
#define LOG_WARN(...) SUBSEL_LOG(::subsel::LogLevel::kWarn, __VA_ARGS__)
#define LOG_ERROR(...) SUBSEL_LOG(::subsel::LogLevel::kError, __VA_ARGS__)

}  // namespace subsel
