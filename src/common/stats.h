// Streaming summary statistics (Welford) used by tests and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace subsel {

class RunningStats {
 public:
  void add(double value) noexcept {
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace subsel
