// Streaming summary statistics (Welford) used by tests and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace subsel {

/// Nearest-rank percentile (p in [0, 100]) of `values`; sorts its argument
/// in place. Returns 0 for an empty sample. p99 of 100 samples is the 99th
/// smallest — the convention latency SLOs use, never interpolating between
/// two observed latencies.
inline double percentile(std::vector<double>& values, double p) noexcept {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

class RunningStats {
 public:
  void add(double value) noexcept {
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace subsel
