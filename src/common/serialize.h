// Tiny binary (de)serialization for on-disk caching of expensive artifacts
// (embeddings, kNN graphs). Format: little-endian PODs, length-prefixed
// vectors, a magic + version header per file. Not portable across
// architectures; caches are machine-local by design.
#pragma once

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace subsel {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path)
      : out_(path, std::ios::binary | std::ios::trunc) {
    if (!out_) throw std::runtime_error("BinaryWriter: cannot open " + path);
  }

  template <typename T>
  void write_pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  template <typename T>
  void write_vector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_pod<std::uint64_t>(values.size());
    out_.write(reinterpret_cast<const char*>(values.data()),
               static_cast<std::streamsize>(values.size() * sizeof(T)));
  }

  bool ok() const { return out_.good(); }

 private:
  std::ofstream out_;
};

/// BinaryWriter's in-memory sibling: accumulates the same little-endian
/// layout into a buffer, for callers that publish atomically via
/// write_file_durable (common/atomic_file.h) instead of streaming to disk.
class BufferWriter {
 public:
  template <typename T>
  void write_pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* raw = reinterpret_cast<const char*>(&value);
    buffer_.insert(buffer_.end(), raw, raw + sizeof(T));
  }

  template <typename T>
  void write_vector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_pod<std::uint64_t>(values.size());
    const auto* raw = reinterpret_cast<const char*>(values.data());
    buffer_.insert(buffer_.end(), raw, raw + values.size() * sizeof(T));
  }

  const std::vector<char>& bytes() const noexcept { return buffer_; }

 private:
  std::vector<char> buffer_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path) : in_(path, std::ios::binary) {
    if (!in_) throw std::runtime_error("BinaryReader: cannot open " + path);
  }

  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    in_.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!in_) throw std::runtime_error("BinaryReader: truncated read");
    return value;
  }

  template <typename T>
  std::vector<T> read_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto size = read_pod<std::uint64_t>();
    std::vector<T> values(size);
    in_.read(reinterpret_cast<char*>(values.data()),
             static_cast<std::streamsize>(size * sizeof(T)));
    if (!in_) throw std::runtime_error("BinaryReader: truncated vector");
    return values;
  }

  /// Skips a length-prefixed vector of T without materializing it (e.g. the
  /// embedding payload when only scalars are needed).
  template <typename T>
  void skip_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto size = read_pod<std::uint64_t>();
    in_.seekg(static_cast<std::streamoff>(size * sizeof(T)), std::ios::cur);
    if (!in_) throw std::runtime_error("BinaryReader: truncated skip");
  }

 private:
  std::ifstream in_;
};

}  // namespace subsel
