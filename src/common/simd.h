// Runtime CPU-feature detection and backend selection for the vectorized
// kernel inner loops.
//
// Every vectorized code path in the repo (kernel gain primitives in
// core/kernel_simd.h, quantized distance kernels in
// graph/quantized_embedding.h) dispatches through ONE process-wide backend
// choice made here:
//
//  - x86-64: `avx2` when the CPU reports AVX2 (cpuid via
//    __builtin_cpu_supports), else `scalar`. The binary itself stays
//    baseline-x86-64; the AVX2 loops are compiled per-function with target
//    attributes, so one build runs everywhere.
//  - aarch64: `neon` (baseline on AArch64).
//  - everything else: `scalar` — the portable fallback, written lane-for-lane
//    identical to the vector paths so results are bit-identical across
//    backends (the CI forced-scalar leg and the parity suite hold the vector
//    paths to it).
//
// `SUBSEL_FORCE_SCALAR=1` in the environment forces the portable fallback at
// startup — the escape hatch for debugging and the CI matrix leg. Tests use
// ScopedBackendOverride to compare backends inside one process.
#pragma once

#include <string_view>

namespace subsel::simd {

enum class Backend {
  kScalar = 0,  // portable lane-mirrored C++ fallback
  kAvx2 = 1,    // x86-64 AVX2 (256-bit, 4 doubles / 8 floats per lane group)
  kNeon = 2,    // aarch64 NEON (2x128-bit pairs emulating the 4-double group)
};

/// Stable lowercase name ("scalar", "avx2", "neon") — reported through
/// ObjectiveKernelCaps::simd_backend, SelectionReport JSON and bench JSONs.
const char* backend_name(Backend backend) noexcept;

/// What the hardware supports, ignoring any override (cpuid on x86-64,
/// compile-target on aarch64). Computed once per process.
Backend detected_backend() noexcept;

/// The backend every vectorized loop should use right now: the detected one,
/// downgraded to kScalar when SUBSEL_FORCE_SCALAR was set in the environment
/// at first use, or replaced by an active ScopedBackendOverride.
Backend active_backend() noexcept;

/// backend_name(active_backend()).
const char* active_backend_name() noexcept;

/// True when the environment variable `name` holds a truthy value ("1",
/// "true", "yes", "on"; case-insensitive). The SUBSEL_FORCE_SCALAR rule,
/// exposed for tests.
bool env_flag_enabled(const char* name) noexcept;

/// RAII backend override for tests and benches: forces active_backend() to
/// `backend` until destruction. Any non-scalar request resolves to
/// detected_backend() — the override can narrow to the portable fallback or
/// restore the native backend, never promise one the hardware lacks.
/// Not thread-safe against concurrent overrides; intended for single-threaded
/// test/bench sections that compare backends in one process.
class ScopedBackendOverride {
 public:
  explicit ScopedBackendOverride(Backend backend) noexcept;
  ~ScopedBackendOverride() noexcept;
  ScopedBackendOverride(const ScopedBackendOverride&) = delete;
  ScopedBackendOverride& operator=(const ScopedBackendOverride&) = delete;

 private:
  Backend previous_;
  bool had_previous_;
};

}  // namespace subsel::simd
