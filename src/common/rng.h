// Deterministic, seedable random number generation used across the library.
//
// All stochastic components of the reproduction (dataset synthesis, random
// partitioning, neighborhood sampling in approximate bounding, subsampling)
// draw from these generators so that every experiment is reproducible from a
// single 64-bit seed.
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

namespace subsel {

/// SplitMix64: used for seeding and for cheap stateless hashing of ids.
/// Reference: Steele, Lea, Flood. "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Stateless hash of multiple 64-bit words into one; used by the virtual
/// PerturbedDataset to derive per-point attributes without storing them.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return splitmix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Maps a 64-bit hash to a double in [0, 1).
constexpr double hash_to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Xoshiro256++ PRNG. Small, fast, and good statistical quality; satisfies
/// UniformRandomBitGenerator so it can drive <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) {
      seed = splitmix64(seed);
      word = seed;
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return hash_to_unit((*this)()); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection-free
  /// mapping (bias is negligible for n far below 2^64, which always holds here).
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    const unsigned __int128 product =
        static_cast<unsigned __int128>((*this)()) * static_cast<unsigned __int128>(n);
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cached_ = radius * std::sin(angle);
    has_cached_ = true;
    return radius * std::cos(angle);
  }

  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Samples `count` distinct indices from [0, n) (reservoir sampling);
  /// output order is unspecified.
  std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                        std::uint64_t count) {
    if (count > n) count = n;
    std::vector<std::uint64_t> reservoir(count);
    for (std::uint64_t i = 0; i < count; ++i) reservoir[i] = i;
    for (std::uint64_t i = count; i < n; ++i) {
      const std::uint64_t j = uniform_index(i + 1);
      if (j < count) reservoir[j] = i;
    }
    return reservoir;
  }

  /// Derives an independent child generator; used to give each thread /
  /// partition / round its own stream.
  Rng fork(std::uint64_t stream_id) noexcept {
    return Rng(splitmix64(state_[0] ^ splitmix64(stream_id ^ 0xa02bdbf7bb3c0a7ULL)));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace subsel
