// Minimal JSON emitter for machine-readable reports (selection reports,
// bench matrices). Write-only by design: the repo consumes JSON with external
// tooling (CI validation, plotting), never parses it back — round-trippable
// artifacts use the binary format in common/serialize.h instead.
//
// The writer tracks nesting and comma placement so call sites read linearly:
//
//   JsonWriter json;
//   json.begin_object();
//   json.key("solver").value("greedi");
//   json.key("selected").begin_array();
//   for (auto id : ids) json.value(id);
//   json.end_array();
//   json.end_object();
//   std::string text = json.str();
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace subsel {

class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{', '}'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('[', ']'); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(std::string_view name) {
    separate();
    write_string(name);
    out_ += ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view text) {
    separate();
    write_string(text);
    return *this;
  }
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(bool flag) {
    separate();
    out_ += flag ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double number) {
    separate();
    // NaN/Inf are not representable in JSON; emit null so the document stays
    // parseable rather than silently corrupting downstream tooling.
    if (!std::isfinite(number)) {
      out_ += "null";
      return *this;
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", number);
    out_ += buffer;
    return *this;
  }
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  JsonWriter& value(T number) {
    separate();
    out_ += std::to_string(number);
    return *this;
  }

  /// The document built so far. Call after the outermost end_object/array.
  const std::string& str() const noexcept { return out_; }

 private:
  JsonWriter& open(char opener, char closer) {
    separate();
    out_ += opener;
    closers_.push_back(closer);
    first_in_scope_ = true;
    return *this;
  }

  JsonWriter& close(char closer) {
    out_ += closer;
    closers_.pop_back();
    first_in_scope_ = false;
    return *this;
  }

  /// Emits the comma between siblings; keys and their values are one sibling.
  void separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!closers_.empty() && !first_in_scope_) out_ += ',';
    first_in_scope_ = false;
  }

  void write_string(std::string_view text) {
    out_ += '"';
    for (char c : text) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out_ += buffer;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<char> closers_;
  bool first_in_scope_ = true;
  bool pending_value_ = false;
};

}  // namespace subsel
