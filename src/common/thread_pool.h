// A small work-stealing-free thread pool with a blocking parallel_for.
//
// The distributed algorithms in this repository simulate a cluster on a single
// server: each "machine"/"worker" is a pool thread, and per-worker memory is
// accounted separately (see dataflow/memory_tracker.h). The pool is
// deliberately simple — tasks are coarse (one partition / one shard), so a
// single mutex-protected queue is not a bottleneck.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace subsel {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (defaults to hardware
  /// concurrency, at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task and returns a future for its completion.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, count) across the pool and blocks until all
  /// iterations finish. Iterations are chunked to reduce dispatch overhead.
  /// Exceptions from iterations are rethrown (first one wins).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Runs fn(worker_index) once per pool thread and blocks; used when a task
  /// needs a stable per-worker identity (e.g. per-machine memory budgets).
  void run_per_worker(const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Shared process-wide pool sized to hardware concurrency. Most library entry
/// points take an optional ThreadPool*; passing nullptr uses this pool.
ThreadPool& global_thread_pool();

}  // namespace subsel
