// A small work-stealing-free thread pool with a blocking parallel_for.
//
// The distributed algorithms in this repository simulate a cluster on a single
// server: each "machine"/"worker" is a pool thread, and per-worker memory is
// accounted separately (see dataflow/memory_tracker.h). The pool is
// deliberately simple — tasks are coarse (one partition / one shard), so a
// single mutex-protected queue is not a bottleneck.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/failpoint.h"

namespace subsel {

/// Typed wrapper for an exception that escaped a pool task and surfaced at a
/// join/wait point (run_per_worker, or a future returned by submit when the
/// dispatch failpoint fires). The original exception is preserved in
/// cause(); what() carries its message. Derives from std::runtime_error so
/// pre-existing catch sites keep working — a worker failure is reported as a
/// typed error, never std::terminate.
class TaskError : public std::runtime_error {
 public:
  TaskError(const std::string& message, std::exception_ptr cause)
      : std::runtime_error(message), cause_(std::move(cause)) {}

  const std::exception_ptr& cause() const noexcept { return cause_; }

  [[noreturn]] void rethrow_cause() const {
    if (cause_) std::rethrow_exception(cause_);
    throw *this;
  }

 private:
  std::exception_ptr cause_;
};

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (defaults to hardware
  /// concurrency, at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task and returns a future for its completion. An exception
  /// thrown by the task (including the "pool.task" dispatch failpoint) lands
  /// in the future and rethrows at get() — it never escapes a worker thread.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        [fn = std::forward<F>(fn)]() mutable -> Result {
          SUBSEL_FAILPOINT("pool.task");
          return fn();
        });
    std::future<Result> future = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, count) across the pool and blocks until all
  /// iterations finish. Iterations are chunked to reduce dispatch overhead.
  /// Exceptions from iterations are rethrown (first one wins) with their
  /// original type, so callers' typed-error contracts survive parallelism.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Runs fn(worker_index) once per pool thread and blocks until EVERY
  /// worker task finished (even after a failure — fn stays borrowed until
  /// the last task returns). The first escaping exception is rethrown as a
  /// TaskError wrapping it.
  void run_per_worker(const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Shared process-wide pool sized to hardware concurrency. Most library entry
/// points take an optional ThreadPool*; passing nullptr uses this pool.
ThreadPool& global_thread_pool();

}  // namespace subsel
