#include "common/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/rng.h"

namespace subsel::failpoint {
namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

struct Site {
  enum class Mode { kOff, kNth, kEvery, kProb, kDelay };
  Mode mode = Mode::kOff;
  std::uint64_t n = 0;         // nth target / every period / delay period
  double probability = 0.0;    // prob
  std::uint64_t seed = 0;      // prob stream seed
  std::uint64_t delay_ms = 0;  // delay duration
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};

/// Guards the registry. Armed paths only exist under fault testing, so a
/// single mutex (never touched when disarmed) is deliberate simplicity.
std::mutex& registry_mutex() {
  static auto* mutex = new std::mutex;  // immortal: sites fire in pool
  return *mutex;                        // threads that may outlive statics
}
std::unordered_map<std::string, Site>& registry() {
  static auto* sites = new std::unordered_map<std::string, Site>();
  return *sites;
}

/// Parses "name(arg[,arg])" into the name and raw argument strings.
void split_call(const std::string& text, std::string& name,
                std::vector<std::string>& arguments) {
  const std::size_t open = text.find('(');
  if (open == std::string::npos) {
    name = text;
    return;
  }
  if (text.back() != ')') {
    throw std::invalid_argument("failpoint: unbalanced parentheses in '" +
                                text + "'");
  }
  name = text.substr(0, open);
  std::string body = text.substr(open + 1, text.size() - open - 2);
  std::size_t begin = 0;
  while (begin <= body.size() && !body.empty()) {
    const std::size_t comma = body.find(',', begin);
    const std::size_t end = comma == std::string::npos ? body.size() : comma;
    arguments.push_back(body.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
}

std::uint64_t parse_u64(const std::string& text, const char* what) {
  try {
    std::size_t used = 0;
    const unsigned long long value = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return static_cast<std::uint64_t>(value);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("failpoint: bad ") + what +
                                " '" + text + "'");
  }
}

double parse_probability(const std::string& text) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size() || value < 0.0 || value > 1.0) {
      throw std::invalid_argument(text);
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("failpoint: bad probability '" + text + "'");
  }
}

Site parse_mode(const std::string& text) {
  std::string name;
  std::vector<std::string> arguments;
  split_call(text, name, arguments);

  Site site;
  if (name == "off") {
    if (!arguments.empty()) {
      throw std::invalid_argument("failpoint: 'off' takes no arguments");
    }
  } else if (name == "nth" || name == "every") {
    if (arguments.size() != 1) {
      throw std::invalid_argument("failpoint: '" + name + "' takes exactly one"
                                  " argument, got '" + text + "'");
    }
    site.mode = name == "nth" ? Site::Mode::kNth : Site::Mode::kEvery;
    site.n = parse_u64(arguments[0], "count");
    if (site.n == 0) {
      throw std::invalid_argument("failpoint: '" + name + "' count must be"
                                  " >= 1");
    }
  } else if (name == "prob") {
    if (arguments.empty() || arguments.size() > 2) {
      throw std::invalid_argument("failpoint: 'prob' takes P[,SEED], got '" +
                                  text + "'");
    }
    site.mode = Site::Mode::kProb;
    site.probability = parse_probability(arguments[0]);
    site.seed = arguments.size() == 2 ? parse_u64(arguments[1], "seed") : 0;
  } else if (name == "delay") {
    if (arguments.empty() || arguments.size() > 2) {
      throw std::invalid_argument("failpoint: 'delay' takes MS[,EVERY], got '" +
                                  text + "'");
    }
    site.mode = Site::Mode::kDelay;
    site.delay_ms = parse_u64(arguments[0], "delay");
    site.n = arguments.size() == 2 ? parse_u64(arguments[1], "period") : 1;
    if (site.n == 0) {
      throw std::invalid_argument("failpoint: 'delay' period must be >= 1");
    }
  } else {
    throw std::invalid_argument("failpoint: unknown mode '" + text + "'");
  }
  return site;
}

}  // namespace

bool fail_now(const char* site_name) noexcept {
  std::uint64_t sleep_ms = 0;
  bool fire = false;
  {
    std::lock_guard lock(registry_mutex());
    const auto it = registry().find(site_name);
    if (it == registry().end()) return false;
    Site& site = it->second;
    const std::uint64_t hit = ++site.hits;
    switch (site.mode) {
      case Site::Mode::kOff:
        break;
      case Site::Mode::kNth:
        fire = hit == site.n;
        break;
      case Site::Mode::kEvery:
        fire = hit % site.n == 0;
        break;
      case Site::Mode::kProb:
        // Deterministic per-hit draw: the schedule is a pure function of
        // (seed, hit index), so a rerun replays the identical fault pattern.
        fire = hash_to_unit(hash_combine(splitmix64(site.seed), hit)) <
               site.probability;
        break;
      case Site::Mode::kDelay:
        if (hit % site.n == 0) sleep_ms = site.delay_ms;
        break;
    }
    if (fire) ++site.fires;
  }
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return fire;
}

void maybe_fail(const char* site) {
  if (fail_now(site)) {
    throw FailpointError(site, std::string("injected fault at failpoint '") +
                                   site + "'");
  }
}

void arm_from_spec(const std::string& spec) {
  // Parse the whole spec before touching the registry, so a malformed tail
  // never leaves a half-armed state.
  std::vector<std::pair<std::string, Site>> parsed;
  std::size_t begin = 0;
  while (begin < spec.size()) {
    const std::size_t semi = spec.find(';', begin);
    const std::size_t end = semi == std::string::npos ? spec.size() : semi;
    const std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("failpoint: expected 'site=mode', got '" +
                                  entry + "'");
    }
    parsed.emplace_back(entry.substr(0, eq), parse_mode(entry.substr(eq + 1)));
  }

  std::lock_guard lock(registry_mutex());
  for (auto& [site, mode] : parsed) {
    registry()[site] = std::move(mode);
  }
  bool any_armed = false;
  for (const auto& [site, state] : registry()) {
    if (state.mode != Site::Mode::kOff) any_armed = true;
  }
  detail::g_armed.store(any_armed, std::memory_order_relaxed);
}

void arm_from_env() {
  const char* spec = std::getenv("SUBSEL_FAILPOINTS");
  if (spec != nullptr && *spec != '\0') arm_from_spec(spec);
}

void disarm_all() {
  std::lock_guard lock(registry_mutex());
  registry().clear();
  detail::g_armed.store(false, std::memory_order_relaxed);
}

std::vector<SiteStats> stats() {
  std::lock_guard lock(registry_mutex());
  std::vector<SiteStats> out;
  out.reserve(registry().size());
  for (const auto& [site, state] : registry()) {
    out.push_back(SiteStats{site, state.hits, state.fires});
  }
  return out;
}

}  // namespace subsel::failpoint
