#include "common/atomic_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"

namespace subsel {
namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message + ": " + std::strerror(errno);
}

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t got = ::write(fd, data + written, size - written);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(got);
  }
  return true;
}

/// fsync the directory containing `path`, so the rename itself is durable.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: the data rename already happened
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

bool write_file_durable(const std::string& path, const void* data,
                        std::size_t size, std::string* error) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    set_error(error, "cannot create " + tmp);
    return false;
  }

  // Simulated crash mid-flush: leave a TRUNCATED temp file behind and bail
  // before the atomic rename — `path` still holds the previous complete
  // contents, which is the recovery guarantee under test.
  if (SUBSEL_FAILPOINT_TRIGGERED("checkpoint.write")) {
    const std::size_t torn = size / 2;
    (void)write_all(fd, static_cast<const char*>(data), torn);
    ::close(fd);
    if (error != nullptr) *error = "injected crash at failpoint 'checkpoint.write'";
    return false;
  }

  if (!write_all(fd, static_cast<const char*>(data), size)) {
    set_error(error, "short write to " + tmp);
    ::close(fd);
    return false;
  }
  if (::fsync(fd) != 0) {
    set_error(error, "fsync of " + tmp + " failed");
    ::close(fd);
    return false;
  }
  if (::close(fd) != 0) {
    set_error(error, "close of " + tmp + " failed");
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "rename " + tmp + " -> " + path + " failed");
    return false;
  }
  sync_parent_dir(path);
  return true;
}

}  // namespace subsel
