#include "common/log.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace subsel {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::once_flag g_init_once;

LogLevel parse_level(const char* text) {
  if (text == nullptr) return LogLevel::kInfo;
  if (std::strcmp(text, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(text, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(text, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(text, "error") == 0) return LogLevel::kError;
  if (std::strcmp(text, "off") == 0) return LogLevel::kOff;
  return LogLevel::kInfo;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() {
  std::call_once(g_init_once,
                 [] { g_level.store(parse_level(std::getenv("SUBSEL_LOG"))); });
  return g_level.load();
}

void set_log_level(LogLevel level) {
  log_level();  // ensure env initialization does not later override
  g_level.store(level);
}

void log_message(LogLevel level, const std::string& message) {
  static std::mutex io_mutex;
  std::lock_guard lock(io_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace subsel
