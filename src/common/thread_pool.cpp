#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace subsel {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // packaged_task routes task exceptions into the future; this last-resort
    // catch covers anything else (e.g. a broken promise) so a worker thread
    // can never take the process down via std::terminate.
    try {
      task();
    } catch (...) {
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Chunk so that each worker gets a handful of chunks (load balancing without
  // per-iteration dispatch cost).
  const std::size_t target_chunks = size() * 4;
  const std::size_t chunk = std::max<std::size_t>(1, (count + target_chunks - 1) / target_chunks);
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto drain = [&] {
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk);
      if (begin >= count) return;
      const std::size_t end = std::min(count, begin + chunk);
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(size());
  for (std::size_t w = 0; w < size(); ++w) futures.push_back(submit(drain));
  drain();  // caller participates too
  // Wait for every helper BEFORE collecting results: queued tasks reference
  // the local `drain`, so bailing on the first error would leave workers
  // racing a dead stack frame. Iteration errors (first_error) outrank
  // dispatch errors and are rethrown with their original type.
  for (auto& f : futures) f.wait();
  std::exception_ptr dispatch_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!dispatch_error) dispatch_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  if (dispatch_error) std::rethrow_exception(dispatch_error);
}

void ThreadPool::run_per_worker(const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(size());
  for (std::size_t w = 0; w < size(); ++w) {
    futures.push_back(submit([&fn, w] { fn(w); }));
  }
  // Same wait-all discipline as parallel_for: every queued task borrows
  // `fn`, so no early exit on failure. The first escaping exception is then
  // surfaced as a typed TaskError at this join point.
  for (auto& f : futures) f.wait();
  std::exception_ptr first_error;
  std::string message;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const std::exception& e) {
      if (!first_error) {
        first_error = std::current_exception();
        message = e.what();
      }
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
        message = "non-standard exception";
      }
    }
  }
  if (first_error) {
    throw TaskError("ThreadPool: worker task failed: " + message, first_error);
  }
}

ThreadPool& global_thread_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace subsel
