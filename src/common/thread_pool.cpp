#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace subsel {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Chunk so that each worker gets a handful of chunks (load balancing without
  // per-iteration dispatch cost).
  const std::size_t target_chunks = size() * 4;
  const std::size_t chunk = std::max<std::size_t>(1, (count + target_chunks - 1) / target_chunks);
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto drain = [&] {
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk);
      if (begin >= count) return;
      const std::size_t end = std::min(count, begin + chunk);
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(size());
  for (std::size_t w = 0; w < size(); ++w) futures.push_back(submit(drain));
  drain();  // caller participates too
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::run_per_worker(const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(size());
  for (std::size_t w = 0; w < size(); ++w) {
    futures.push_back(submit([&fn, w] { fn(w); }));
  }
  for (auto& f : futures) f.get();
}

ThreadPool& global_thread_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace subsel
