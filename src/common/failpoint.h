// Deterministic fault injection: named failpoint sites compiled into the hot
// seams (disk preads, prefetch tasks, pool dispatch, checkpoint flushes,
// arena acquisition) and armed at runtime from a spec string.
//
// Design constraints, in order:
//   1. Zero cost when disabled. Every site guards itself behind `armed()`,
//      a single relaxed atomic load of a process-global flag — no string
//      lookup, no lock, no allocation on the disabled path. The perf CI job
//      holds this to < 1% on the micro_core hot path
//      (`micro_core --failpoint-overhead`).
//   2. Deterministic, replayable schedules. A fault pattern is a pure
//      function of (spec, hit index): `nth(N)` fires exactly the Nth hit,
//      `every(N)` each Nth, `prob(P,SEED)` hashes the hit index through a
//      seeded splitmix64 stream, `delay(MS,EVERY)` injects latency instead
//      of failure. Re-running with the same spec reproduces the same
//      schedule — the CK-style replayable-chaos contract, not ad-hoc
//      randomness.
//   3. Two flavors per site. `maybe_fail` throws FailpointError — for seams
//      whose callers already propagate typed errors (pool tasks, arena
//      acquisition, checkpoint flushes). `fail_now` just reports "this hit
//      fails" — for seams that feed the verdict into their own error model
//      (the disk read path turns it into a simulated transient EAGAIN so the
//      retry/backoff machinery is what gets exercised).
//
// Spec grammar (CLI `--failpoints=SPEC`, env `SUBSEL_FAILPOINTS`):
//   spec  := site '=' mode (';' site '=' mode)*
//   mode  := 'off' | 'nth(' N ')' | 'every(' N ')'
//          | 'prob(' P [',' SEED] ')' | 'delay(' MS [',' EVERY] ')'
// e.g. --failpoints='disk.pread=prob(0.2,42);checkpoint.write=nth(3)'
//
// Sites are plain strings; the canonical ones are listed in README
// ("Robustness"). Arming an unknown site is allowed (it simply never gets
// hit) so specs survive refactors without version skew.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace subsel::failpoint {

/// Thrown by `maybe_fail` when a site fires. Derives from std::runtime_error
/// so generic catch sites keep working; site() identifies the seam.
class FailpointError : public std::runtime_error {
 public:
  FailpointError(std::string site, const std::string& message)
      : std::runtime_error(message), site_(std::move(site)) {}

  const std::string& site() const noexcept { return site_; }

 private:
  std::string site_;
};

namespace detail {
extern std::atomic<bool> g_armed;
}  // namespace detail

/// True iff any failpoint is armed. This relaxed load is the ENTIRE cost of
/// a disabled site; call sites must check it before fail_now/maybe_fail
/// (the SUBSEL_FAILPOINT macros below do).
inline bool armed() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Counts a hit at `site` and returns true when the armed schedule says this
/// hit fails. Applies `delay` modes (sleeps, returns false). Unarmed sites
/// return false. Thread-safe.
bool fail_now(const char* site) noexcept;

/// Throwing flavor of fail_now: throws FailpointError when the site fires.
void maybe_fail(const char* site);

/// Arms sites from a spec string (grammar above); later specs override
/// earlier ones per site. Throws std::invalid_argument on malformed input.
void arm_from_spec(const std::string& spec);

/// Arms from the SUBSEL_FAILPOINTS environment variable when set and
/// non-empty (entry points call this once at startup so library code never
/// reads the environment on a hot path).
void arm_from_env();

/// Disarms every site and clears all counters.
void disarm_all();

/// Per-site counters, for tests and post-run diagnostics.
struct SiteStats {
  std::string site;
  std::uint64_t hits = 0;   // times the armed site was reached
  std::uint64_t fires = 0;  // of those, times it failed
};
std::vector<SiteStats> stats();

}  // namespace subsel::failpoint

/// Throwing site: no-op (one relaxed load) unless armed.
#define SUBSEL_FAILPOINT(site)                         \
  do {                                                 \
    if (::subsel::failpoint::armed()) {                \
      ::subsel::failpoint::maybe_fail(site);           \
    }                                                  \
  } while (0)

/// Boolean site for callers with their own error model: evaluates to true
/// when the site fires this hit.
#define SUBSEL_FAILPOINT_TRIGGERED(site) \
  (::subsel::failpoint::armed() && ::subsel::failpoint::fail_now(site))
