// Small lock-free helpers shared by the round loops' statistics tracking.
#pragma once

#include <atomic>
#include <cstddef>

namespace subsel {

/// peak = max(peak, value) via a CAS loop — the standard atomic-max idiom for
/// tracking a high-water mark from concurrent workers. Relaxed ordering: the
/// peaks are read only after the owning parallel region has joined.
inline void atomic_fetch_max(std::atomic<std::size_t>& peak,
                             std::size_t value) noexcept {
  std::size_t expected = peak.load(std::memory_order_relaxed);
  while (value > expected &&
         !peak.compare_exchange_weak(expected, value, std::memory_order_relaxed)) {
  }
}

}  // namespace subsel
