// Wall-clock timing helpers used by the benchmark harnesses (Table 4,
// scalability experiments) and by progress logging.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace subsel {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::int64_t elapsed_ms() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Formats seconds as "1.23 s" / "45.6 ms" / "2.1 h" for human-readable bench
/// output.
inline std::string format_duration(double seconds) {
  char buffer[64];
  if (seconds >= 3600.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2f h", seconds / 3600.0);
  } else if (seconds >= 60.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1f min", seconds / 60.0);
  } else if (seconds >= 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2f s", seconds);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f ms", seconds * 1e3);
  }
  return buffer;
}

}  // namespace subsel
