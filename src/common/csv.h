// Minimal CSV writer for benchmark outputs.
//
// Every figure/table bench writes its raw series to bench_results/<name>.csv
// in addition to printing the paper-style rows, so plots can be regenerated
// offline.
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace subsel {

class CsvWriter {
 public:
  /// Opens `path` for writing (parent directory must exist; see
  /// ensure_directory below) and writes the header row.
  CsvWriter(const std::string& path, std::initializer_list<std::string_view> header);

  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool ok() const { return out_.good(); }

  /// Appends one row; fields are rendered with operator<< and quoted when they
  /// contain separators.
  template <typename... Fields>
  void row(const Fields&... fields) {
    std::size_t index = 0;
    ((write_field(render(fields), index++)), ...);
    out_ << '\n';
  }

 private:
  template <typename T>
  static std::string render(const T& value) {
    std::ostringstream stream;
    stream << value;
    return stream.str();
  }

  void write_field(const std::string& field, std::size_t index);

  std::ofstream out_;
};

/// Creates `path` (and parents) if missing; returns false on failure.
bool ensure_directory(const std::string& path);

}  // namespace subsel
