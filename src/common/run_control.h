// Cooperative run control shared by every long-running solver: a cancellation
// token checked at round boundaries and a progress-event callback.
//
// The paper's production jobs run for hours on shared, preemptible clusters
// (Appendix D); the operational story therefore needs a way to (a) observe a
// run from the outside and (b) stop it cleanly between rounds so the round
// checkpoint (core/distributed_greedy.h) can take over on the next attempt.
// Both hooks are deliberately coarse — one check / one event per round — so
// they cost nothing on the hot path.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string_view>

namespace subsel {

/// A wall-clock budget for a run, checked at the same coarse cooperative
/// points as CancellationToken (round/pass boundaries, driver step loops).
/// Unlike cancellation — which preempts a run and leaves resumption to the
/// checkpoint — an expired deadline makes the solver RETURN what it has: the
/// best-so-far selection, flagged `degraded` in the result/report, so a
/// serving path can trade quality for latency instead of failing the
/// request. Default-constructed deadlines are unlimited and cost one branch
/// to check. Copies share the same fixed expiry instant.
class Deadline {
 public:
  /// Unlimited: never expires.
  Deadline() = default;

  /// Expires `ms` milliseconds from now (0 = already expired).
  static Deadline after_ms(std::uint64_t ms) {
    Deadline deadline;
    deadline.limited_ = true;
    deadline.when_ = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(ms);
    return deadline;
  }

  static Deadline unlimited() { return Deadline(); }

  bool is_limited() const noexcept { return limited_; }

  bool expired() const noexcept {
    return limited_ && std::chrono::steady_clock::now() >= when_;
  }

  /// Seconds until expiry; +infinity when unlimited, clamped at 0 after.
  double remaining_seconds() const noexcept {
    if (!limited_) return std::numeric_limits<double>::infinity();
    const auto left = when_ - std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(left).count();
    return seconds > 0.0 ? seconds : 0.0;
  }

 private:
  std::chrono::steady_clock::time_point when_{};
  bool limited_ = false;
};

/// Copyable handle to a shared stop flag. Copies share state, so a token
/// embedded into several solver configs (or captured by a progress callback)
/// cancels them all at once. Default-constructed tokens own their own state.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests a cooperative stop; safe from any thread, including progress
  /// callbacks running inside the solver.
  void request_stop() const noexcept { flag_->store(true, std::memory_order_relaxed); }

  bool stop_requested() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }

  /// Re-arms the token (e.g. to resume a preempted run with the same config).
  void reset() const noexcept { flag_->store(false, std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// One solver heartbeat: emitted after each completed unit of coarse-grained
/// work (a distributed-greedy round, a bounding pass, ...).
struct ProgressEvent {
  /// Stage label, e.g. "round", "bounding", "merge".
  std::string_view stage;
  /// 1-based step within the stage (round number, pass number, ...).
  std::size_t step = 0;
  /// Total steps of the stage when known, 0 otherwise.
  std::size_t total_steps = 0;
  /// Stage-specific size metric (e.g. survivors after the round).
  std::size_t items = 0;
};

/// Progress callbacks run on the solver's driver thread between rounds; they
/// must not block for long and may call CancellationToken::request_stop().
using ProgressFn = std::function<void(const ProgressEvent&)>;

}  // namespace subsel
