// Crash-consistent file publication: write-temp → fsync → atomic rename →
// fsync parent directory. A reader of `path` sees either the previous
// complete file or the new complete file — never a torn intermediate — and
// the rename survives power loss once the call returns. This is the
// persistence primitive behind solver checkpoints (core/distributed_greedy).
#pragma once

#include <cstddef>
#include <string>

namespace subsel {

/// Atomically and durably replaces `path` with `size` bytes of `data`.
/// Returns true on success; on failure returns false with a description in
/// `*error` (when non-null) and leaves any previous `path` contents intact
/// (a stale `path + ".tmp"` may remain; it is overwritten by the next call).
///
/// The "checkpoint.write" failpoint simulates a crash mid-flush: a truncated
/// temp file is written and the function returns false WITHOUT renaming —
/// exactly the torn state a power loss before the rename would leave.
bool write_file_durable(const std::string& path, const void* data,
                        std::size_t size, std::string* error = nullptr);

}  // namespace subsel
