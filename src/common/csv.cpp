#include "common/csv.h"

#include <filesystem>

namespace subsel {

CsvWriter::CsvWriter(const std::string& path,
                     std::initializer_list<std::string_view> header)
    : out_(path) {
  std::size_t index = 0;
  for (std::string_view column : header) {
    write_field(std::string(column), index++);
  }
  out_ << '\n';
}

CsvWriter::~CsvWriter() { out_.flush(); }

void CsvWriter::write_field(const std::string& field, std::size_t index) {
  if (index > 0) out_ << ',';
  const bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) {
    out_ << field;
    return;
  }
  out_ << '"';
  for (char c : field) {
    if (c == '"') out_ << '"';
    out_ << c;
  }
  out_ << '"';
}

bool ensure_directory(const std::string& path) {
  std::error_code error;
  std::filesystem::create_directories(path, error);
  return !error;
}

}  // namespace subsel
