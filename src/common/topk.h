// Selection utilities for the bounding algorithm's thresholds.
//
// Grow/Shrink (Algorithms 3 and 4 in the paper) need the k-th largest maximum
// utility U^k_max and the k-th largest minimum utility U^k_min over the
// unassigned ground set. We compute these with nth_element (O(n)) rather than
// sorting; at billion scale the paper computes the same quantile with a
// distributed approximate top-k, which beam/bounding mirrors.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <limits>
#include <span>
#include <vector>

namespace subsel {

/// Returns the k-th largest value of `values` (1-based: k=1 is the maximum).
/// If k exceeds values.size(), returns -infinity (every value qualifies),
/// matching the bounding convention that an undersized ground set imposes no
/// threshold. Copies the input; the selection must not disturb caller state.
inline double kth_largest(std::span<const double> values, std::size_t k) {
  if (k == 0) return std::numeric_limits<double>::infinity();
  if (values.size() < k) return -std::numeric_limits<double>::infinity();
  std::vector<double> scratch(values.begin(), values.end());
  auto nth = scratch.begin() + static_cast<std::ptrdiff_t>(k - 1);
  std::nth_element(scratch.begin(), nth, scratch.end(), std::greater<>());
  return *nth;
}

/// Returns the indices of the `k` largest values (ties broken by lower index),
/// in descending value order.
inline std::vector<std::size_t> top_k_indices(std::span<const double> values,
                                              std::size_t k) {
  k = std::min(k, values.size());
  std::vector<std::size_t> order(values.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto cmp = [&](std::size_t a, std::size_t b) {
    if (values[a] != values[b]) return values[a] > values[b];
    return a < b;
  };
  auto nth = order.begin() + static_cast<std::ptrdiff_t>(k);
  std::partial_sort(order.begin(), nth, order.end(), cmp);
  order.resize(k);
  return order;
}

}  // namespace subsel
