#include "baselines/streaming.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <span>

#include "baselines/gain_engine.h"
#include "common/rng.h"

namespace subsel::baselines {
namespace {

using core::PairwiseKernel;

/// The sieve's monotonicity machinery, in two arithmetics:
///  - pairwise kernels keep the pre-kernel shifted-utilities form — the
///    per-element shift is α·((u(v)+δ) − u(v)), evaluated with exactly the
///    legacy floating-point operation order so sieve selections stay
///    bit-identical to the historical implementation;
///  - every other kernel uses the kernel's gain_offset() directly (0 for
///    monotone kernels, so the offset is a no-op there).
struct GainShift {
  const ObjectiveKernel* kernel = nullptr;
  std::vector<double> shifted;  // pairwise only: u(v) + δ
  double generic_offset = 0.0;  // non-pairwise only

  GainShift(const ObjectiveKernel& k, bool apply_offset) : kernel(&k) {
    if (!apply_offset) return;
    if (const core::ObjectiveParams* params = k.pairwise_params()) {
      const auto& ground_set = k.ground_set();
      const double delta =
          core::PairwiseObjective(ground_set, *params).monotonicity_offset();
      shifted.resize(ground_set.num_points());
      for (std::size_t i = 0; i < shifted.size(); ++i) {
        shifted[i] = ground_set.utility(static_cast<core::NodeId>(i)) + delta;
      }
    } else {
      generic_offset = k.gain_offset();
    }
  }

  double singleton(core::NodeId v) const {
    if (const core::ObjectiveParams* params = kernel->pairwise_params()) {
      return params->alpha *
             (shifted.empty() ? kernel->ground_set().utility(v)
                              : shifted[static_cast<std::size_t>(v)]);
    }
    return kernel->singleton_value(v) + generic_offset;
  }

  double gain(const std::vector<std::uint8_t>& membership, core::NodeId v) const {
    double value = kernel->marginal_gain(membership, v);
    if (const core::ObjectiveParams* params = kernel->pairwise_params()) {
      if (!shifted.empty()) {
        value += params->alpha * (shifted[static_cast<std::size_t>(v)] -
                                  kernel->ground_set().utility(v));
      }
      return value;
    }
    return value + generic_offset;
  }
};

}  // namespace

GreedyResult threshold_greedy(const GroundSet& ground_set, ObjectiveParams params,
                              std::size_t k, double epsilon) {
  // singleton_value(v) = α·u(v) exactly — the delegation is bit-identical.
  return threshold_greedy(PairwiseKernel(ground_set, params), k, epsilon);
}

GreedyResult threshold_greedy(const ObjectiveKernel& kernel, std::size_t k,
                              double epsilon, Deadline deadline,
                              const core::ConstraintSet* constraints) {
  const std::size_t n = kernel.ground_set().num_points();
  k = std::min(k, n);
  GreedyResult result;
  result.selected.reserve(k);
  if (k == 0 || n == 0) return result;

  std::optional<core::ConstraintTracker> tracker;
  if (constraints != nullptr && !constraints->empty()) {
    tracker.emplace(*constraints);
  }

  // Every sweep re-evaluates every remaining candidate — precisely the
  // workload the engine's incremental state turns from O(deg^2) into O(deg)
  // per evaluation for the coverage-family kernels.
  MarginalGainEngine engine(kernel);

  // d = the maximum singleton value (α·max utility for pairwise — a
  // singleton has no pairwise term).
  double d = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    d = std::max(d, kernel.singleton_value(static_cast<NodeId>(i)));
  }
  if (d <= 0.0) {
    // Degenerate: no positive singleton; fall back to smallest (feasible) ids.
    for (std::size_t i = 0; i < n && result.selected.size() < k; ++i) {
      const auto v = static_cast<NodeId>(i);
      if (tracker && !tracker->feasible(v)) continue;
      if (tracker) tracker->accept(v);
      result.selected.push_back(v);
    }
    result.objective = kernel.evaluate(std::span<const NodeId>(result.selected));
    return result;
  }

  double total = 0.0;
  const double floor_threshold = epsilon * d / static_cast<double>(n);
  for (double w = d; w >= floor_threshold && result.selected.size() < k;
       w *= (1.0 - epsilon)) {
    if (deadline.expired()) {
      result.degraded = true;
      break;
    }
    for (std::size_t i = 0; i < n && result.selected.size() < k; ++i) {
      const auto v = static_cast<NodeId>(i);
      if (engine.is_selected(v)) continue;
      if (tracker && !tracker->feasible(v)) continue;
      const double g = engine.gain(v);
      if (g >= w) {
        engine.select(v);
        if (tracker) tracker->accept(v);
        result.selected.push_back(v);
        total += g;
      }
    }
  }

  // Elements whose residual gain sits below εd/n never pass the sweep; fill
  // the budget with the best of them (greedy tail) so the result has exactly
  // k elements like every other selector in this repo. A degraded run skips
  // the fill — its contract is "best effort within the deadline".
  while (result.selected.size() < k && !result.degraded) {
    if (deadline.expired()) {
      result.degraded = true;
      break;
    }
    double best_gain = -std::numeric_limits<double>::infinity();
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      const auto v = static_cast<NodeId>(i);
      if (engine.is_selected(v)) continue;
      if (tracker && !tracker->feasible(v)) continue;
      const double g = engine.gain(v);
      if (best == n || g > best_gain) {
        best_gain = g;
        best = i;
      }
    }
    if (best == n) break;
    engine.select(static_cast<NodeId>(best));
    if (tracker) tracker->accept(static_cast<NodeId>(best));
    result.selected.push_back(static_cast<NodeId>(best));
    total += best_gain;
  }
  result.objective = total;
  result.materialized_bytes = engine.materialized_bytes();
  result.kernel_state_bytes = engine.kernel_state_bytes();
  return result;
}

SieveStreamingResult sieve_streaming(const GroundSet& ground_set, std::size_t k,
                                     const SieveStreamingConfig& config) {
  const std::size_t n = ground_set.num_points();
  k = std::min(k, n);
  SieveStreamingResult result;
  if (k == 0 || n == 0) return result;

  std::optional<PairwiseKernel> local_kernel;
  const ObjectiveKernel& kernel = core::resolve_kernel(
      config.kernel, ground_set, config.objective, local_kernel);
  const GainShift shift(kernel, config.apply_monotonicity_offset);

  const core::ConstraintSet* constraints =
      (config.constraints != nullptr && !config.constraints->empty())
          ? config.constraints
          : nullptr;

  // One sieve per threshold (1+ε)^i in [m, 2km], instantiated lazily as the
  // running singleton maximum m grows. Each sieve grows its own candidate
  // selection, so each carries its own constraint tracker (cheap to copy).
  struct Sieve {
    std::vector<std::uint8_t> membership;
    std::vector<core::NodeId> selected;
    double value = 0.0;  // (shifted) objective of `selected`
    std::optional<core::ConstraintTracker> tracker;
  };
  std::map<long, Sieve> sieves;  // key i <-> threshold (1+ε)^i
  const double log_base = std::log1p(config.epsilon);
  auto threshold_of = [&](long i) { return std::exp(static_cast<double>(i) * log_base); };

  // Stream in a random permutation.
  std::vector<core::NodeId> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<core::NodeId>(i);
  Rng rng(config.seed);
  rng.shuffle(std::span<core::NodeId>(order));

  double m = 0.0;  // max singleton value seen so far
  std::size_t resident = 0;
  for (core::NodeId v : order) {
    if (config.deadline.expired()) {
      // Stop consuming the stream; the sieves are consistent for the prefix
      // processed so far, so the pick below is still valid.
      result.degraded = true;
      break;
    }
    const double singleton = shift.singleton(v);
    if (singleton > m) {
      m = singleton;
      // Maintain the active threshold window [m, 2km].
      const long lo = static_cast<long>(std::ceil(std::log(std::max(m, 1e-300)) /
                                                  log_base));
      const long hi = static_cast<long>(std::floor(
          std::log(std::max(2.0 * static_cast<double>(k) * m, 1e-300)) / log_base));
      for (auto it = sieves.begin(); it != sieves.end();) {
        if (it->first < lo) {
          resident -= it->second.selected.size();
          it = sieves.erase(it);
        } else {
          ++it;
        }
      }
      for (long i = lo; i <= hi; ++i) {
        if (sieves.find(i) == sieves.end()) {
          Sieve sieve;
          sieve.membership.assign(n, 0);
          if (constraints != nullptr) sieve.tracker.emplace(*constraints);
          sieves.emplace(i, std::move(sieve));
        }
      }
    }

    for (auto& [i, sieve] : sieves) {
      if (sieve.selected.size() >= k) continue;
      if (sieve.tracker && !sieve.tracker->feasible(v)) continue;
      const double target = threshold_of(i);
      const double g = shift.gain(sieve.membership, v);
      const double bar = (target / 2.0 - sieve.value) /
                         static_cast<double>(k - sieve.selected.size());
      if (g >= bar) {
        sieve.membership[static_cast<std::size_t>(v)] = 1;
        sieve.selected.push_back(v);
        sieve.value += g;
        if (sieve.tracker) sieve.tracker->accept(v);
        ++resident;
      }
    }
    result.peak_resident_elements = std::max(result.peak_resident_elements, resident);
  }

  result.num_sieves = sieves.size();
  const Sieve* best = nullptr;
  for (const auto& [i, sieve] : sieves) {
    if (best == nullptr || sieve.value > best->value) best = &sieve;
  }
  if (best != nullptr) {
    result.selected = best->selected;
    std::sort(result.selected.begin(), result.selected.end());
    result.objective =
        kernel.evaluate(std::span<const core::NodeId>(result.selected));
  }
  return result;
}

SamplePruneResult sample_and_prune(const GroundSet& ground_set, std::size_t k,
                                   const SamplePruneConfig& config) {
  const std::size_t n = ground_set.num_points();
  k = std::min(k, n);
  SamplePruneResult result;
  if (k == 0 || n == 0) return result;

  std::optional<PairwiseKernel> local_kernel;
  const ObjectiveKernel& kernel = core::resolve_kernel(
      config.kernel, ground_set, config.objective, local_kernel);

  const std::size_t capacity =
      config.machine_capacity > 0 ? config.machine_capacity : 4 * k;
  Rng rng(config.seed);
  std::optional<core::ConstraintTracker> tracker;
  if (config.constraints != nullptr && !config.constraints->empty()) {
    tracker.emplace(*config.constraints);
  }

  // Every round evaluates each sampled candidate per greedy step and every
  // survivor once for the prune — the per-candidate-per-round re-evaluation
  // the engine's incremental state makes O(deg) and batchable.
  MarginalGainEngine engine(kernel);
  std::vector<core::NodeId> survivors(n);
  for (std::size_t i = 0; i < n; ++i) survivors[i] = static_cast<core::NodeId>(i);
  std::vector<core::NodeId> candidates;
  std::vector<double> gains;
  std::vector<core::NodeId> solution;
  solution.reserve(k);

  while (solution.size() < k && !survivors.empty() &&
         result.rounds < config.max_rounds) {
    if (config.deadline.expired()) {
      result.degraded = true;
      break;
    }
    ++result.rounds;

    // Sample a machine-sized set onto the coordinator (partial Fisher-Yates).
    const std::size_t draw = std::min(capacity, survivors.size());
    for (std::size_t i = 0; i < draw; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.uniform_index(survivors.size() - i));
      std::swap(survivors[i], survivors[j]);
    }
    result.peak_resident_elements =
        std::max(result.peak_resident_elements, draw + solution.size());

    // Extend the solution by greedy over the sample (gains conditioned on
    // the current solution), one batched evaluation per step. Track the
    // smallest accepted gain.
    double smallest_gain = std::numeric_limits<double>::infinity();
    while (solution.size() < k) {
      candidates.clear();
      for (std::size_t i = 0; i < draw; ++i) {
        if (engine.is_selected(survivors[i])) continue;
        if (tracker && !tracker->feasible(survivors[i])) continue;
        candidates.push_back(survivors[i]);
      }
      if (candidates.empty()) break;
      gains.resize(candidates.size());
      engine.gains_batch(candidates, gains);
      std::size_t best_slot = 0;
      for (std::size_t i = 1; i < candidates.size(); ++i) {
        if (gains[i] > gains[best_slot] ||
            (gains[i] == gains[best_slot] &&
             candidates[i] < candidates[best_slot])) {
          best_slot = i;
        }
      }
      engine.select(candidates[best_slot]);
      if (tracker) tracker->accept(candidates[best_slot]);
      solution.push_back(candidates[best_slot]);
      smallest_gain = std::min(smallest_gain, gains[best_slot]);
    }

    // Prune: by submodularity, a survivor whose gain w.r.t. the extended
    // solution is already below the smallest accepted gain can never exceed
    // it later. Keep everything when no element was accepted this round.
    std::vector<core::NodeId> next;
    next.reserve(survivors.size());
    const bool prune_active =
        solution.size() < k &&
        smallest_gain != std::numeric_limits<double>::infinity();
    if (prune_active) {
      candidates.clear();
      for (core::NodeId v : survivors) {
        if (!engine.is_selected(v)) candidates.push_back(v);
      }
      gains.resize(candidates.size());
      engine.gains_batch(candidates, gains);
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (gains[i] >= smallest_gain) next.push_back(candidates[i]);
      }
    } else {
      for (core::NodeId v : survivors) {
        if (!engine.is_selected(v)) next.push_back(v);
      }
    }
    survivors = std::move(next);
    result.survivors_per_round.push_back(survivors.size());
    if (solution.size() == k) break;
  }

  // Budget not filled from pruned ground set (rare: tiny capacity and
  // aggressive pruning) — top up with the best remaining survivors. Degraded
  // runs skip the top-up: the deadline already passed.
  while (solution.size() < k && !survivors.empty() && !result.degraded) {
    if (tracker) {
      // Monotone infeasibility: once the budgets reject a survivor it can
      // never re-qualify, so compact the pool before each fill step.
      std::erase_if(survivors,
                    [&](core::NodeId v) { return !tracker->feasible(v); });
      if (survivors.empty()) break;
    }
    gains.resize(survivors.size());
    engine.gains_batch(survivors, gains);
    std::size_t best_slot = 0;
    for (std::size_t i = 1; i < survivors.size(); ++i) {
      if (gains[i] > gains[best_slot]) best_slot = i;
    }
    const core::NodeId v = survivors[best_slot];
    engine.select(v);
    if (tracker) tracker->accept(v);
    solution.push_back(v);
    std::swap(survivors[best_slot], survivors.back());
    survivors.pop_back();
  }
  result.materialized_bytes = engine.materialized_bytes();
  result.kernel_state_bytes = engine.kernel_state_bytes();

  std::sort(solution.begin(), solution.end());
  result.selected = std::move(solution);
  result.objective =
      kernel.evaluate(std::span<const core::NodeId>(result.selected));
  return result;
}

}  // namespace subsel::baselines
