// Streaming and MapReduce-era baselines the paper positions against
// (Section 2, "Distributed algorithms" / Section 3, "Related optimizations"):
//
//  - threshold_greedy (Badanidiyuru & Vondrák 2014): descending geometric
//    threshold sweep; (1 − 1/e − ε) approximation with O(n/ε · log(n/ε))
//    gain evaluations, still centralized.
//  - sieve_streaming (Badanidiyuru et al. 2014): one pass over the stream,
//    O(k log(k)/ε) elements of memory, (1/2 − ε) guarantee. The classic
//    answer to "the data does not fit" — but the *subset* still must fit on
//    the machine running the sieve, which is the assumption this paper
//    drops.
//  - sample_and_prune (Kumar et al. 2015): MapReduce rounds of {sample a
//    machine-sized set, extend the solution by greedy, prune elements whose
//    marginal gain can no longer qualify}. Assumes O(k · n^δ) memory on the
//    coordinating machine.
//
// All three maximize the same pairwise submodular objective as core::. Their
// theory assumes monotone f; for α well below 1 the pairwise objective can
// be non-monotone, in which case callers should enable the Appendix-A
// monotonicity offset (threshold/sieve acceptance tests do).
#pragma once

#include <cstdint>
#include <vector>

#include "common/run_control.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "core/objective_kernel.h"
#include "graph/ground_set.h"

namespace subsel::baselines {

using core::GreedyResult;
using core::NodeId;
using core::ObjectiveKernel;
using core::ObjectiveParams;
using graph::GroundSet;

// All three baselines work against any submodular ObjectiveKernel: they only
// need singleton values, marginal gains, and (for the sieve) the
// monotonicity gain offset. The ObjectiveParams spellings delegate through a
// PairwiseKernel bit-identically.

/// Threshold greedy: for w = d, d(1−ε), d(1−ε)², …, εd/n (d = the maximum
/// singleton value), add every element whose marginal gain is ≥ w until k
/// elements are chosen.
/// `deadline` is checked between sweep thresholds and between tail fills: an
/// expired run returns the elements accepted so far with `degraded` set.
/// With `constraints`, infeasible candidates are skipped in the sweep and the
/// tail fill; the run may legally return fewer than k elements.
GreedyResult threshold_greedy(const GroundSet& ground_set, ObjectiveParams params,
                              std::size_t k, double epsilon = 0.1);
GreedyResult threshold_greedy(const ObjectiveKernel& kernel, std::size_t k,
                              double epsilon = 0.1, Deadline deadline = {},
                              const core::ConstraintSet* constraints = nullptr);

struct SieveStreamingConfig {
  ObjectiveParams objective;
  /// Objective kernel; non-owning, must outlive the run and be bound to the
  /// ground set passed to sieve_streaming(). Overrides `objective` when set.
  const ObjectiveKernel* kernel = nullptr;
  double epsilon = 0.1;
  /// Add the Appendix-A δ offset to every utility so the monotone analysis
  /// applies. The reported objective is still the *unshifted* f(S).
  bool apply_monotonicity_offset = false;
  /// Stream order seed (the ground set is streamed in a random permutation;
  /// sieve quality is order-dependent).
  std::uint64_t seed = 41;
  /// Wall-clock budget, checked per streamed element. An expired run stops
  /// consuming the stream and returns the best sieve over the prefix seen so
  /// far, flagged `degraded` — still a valid (1/2−ε) answer for that prefix.
  Deadline deadline;
  /// Optional selection constraints (global ids, validated; non-owning).
  /// Each sieve carries its own ConstraintTracker, so every candidate
  /// selection stays independently feasible as the stream goes by.
  const core::ConstraintSet* constraints = nullptr;
};

struct SieveStreamingResult {
  std::vector<core::NodeId> selected;  // ascending, ≤ k ids
  double objective = 0.0;              // unshifted f(selected)
  /// Number of parallel sieves instantiated over the run.
  std::size_t num_sieves = 0;
  /// Peak elements resident across all sieves — the O(k log(k)/ε) memory
  /// footprint of the algorithm (the quantity that still scales with k).
  std::size_t peak_resident_elements = 0;
  /// True when the deadline stopped the pass before the stream was exhausted.
  bool degraded = false;
};

/// One pass of SieveStreaming over a random permutation of the ground set.
SieveStreamingResult sieve_streaming(const GroundSet& ground_set, std::size_t k,
                                     const SieveStreamingConfig& config);

struct SamplePruneConfig {
  ObjectiveParams objective;
  /// Objective kernel; non-owning, must outlive the run and be bound to the
  /// ground set passed to sample_and_prune(). Overrides `objective` when set.
  const ObjectiveKernel* kernel = nullptr;
  /// Elements the coordinating machine can hold per round — the paper's
  /// O(k·n^δ) memory assumption, surfaced as an explicit cap.
  std::size_t machine_capacity = 0;  // 0 -> 4·k
  std::size_t max_rounds = 64;
  std::uint64_t seed = 43;
  /// Wall-clock budget, checked at round boundaries. An expired run returns
  /// the solution extended so far (every round's extension is a valid greedy
  /// prefix), flagged `degraded`, and skips the top-up fill.
  Deadline deadline;
  /// Optional selection constraints (global ids, validated; non-owning).
  /// Infeasible candidates never enter the greedy extension or the top-up;
  /// the run may legally return fewer than k elements.
  const core::ConstraintSet* constraints = nullptr;
};

struct SamplePruneResult {
  std::vector<core::NodeId> selected;  // ascending, min(k, n) ids in practice
                                       // (fewer only if pruning emptied V)
  double objective = 0.0;
  std::size_t rounds = 0;
  /// Elements surviving after each round's prune (monitors convergence).
  std::vector<std::size_t> survivors_per_round;
  /// Peak elements materialized on the coordinating machine.
  std::size_t peak_resident_elements = 0;
  /// Gain-engine footprint: materialized full-ground subproblem + flat kernel
  /// state (0 on the pairwise oracle path).
  std::size_t materialized_bytes = 0;
  std::size_t kernel_state_bytes = 0;
  /// True when the deadline ended the round loop before the budget filled.
  bool degraded = false;
};

/// SAMPLE&PRUNE: per round, draw a uniform sample of the surviving elements
/// onto the coordinating machine, extend the running solution with the
/// centralized greedy, then prune every surviving element whose marginal
/// gain w.r.t. the extended solution falls below the smallest gain the
/// greedy accepted this round (by submodularity such elements can never
/// outrank the accepted ones later).
SamplePruneResult sample_and_prune(const GroundSet& ground_set, std::size_t k,
                                   const SamplePruneConfig& config);

}  // namespace subsel::baselines
