#include "baselines/gain_engine.h"

#include <limits>

namespace subsel::baselines {

MarginalGainEngine::MarginalGainEngine(const core::ObjectiveKernel& kernel)
    : kernel_(&kernel) {
  const std::size_t n = kernel.ground_set().num_points();
  membership_.assign(n, 0);
  if (kernel.pairwise_params() != nullptr) return;  // O(deg) oracle already
  if (n > core::SubproblemArena::kDenseMembershipLimit ||
      n > std::numeric_limits<std::uint32_t>::max()) {
    return;  // too large to materialize as one subproblem; oracle fallback
  }
  state_ = kernel.make_incremental_state(arena_);
  if (state_ == nullptr) return;
  std::vector<core::NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<core::NodeId>(i);
  // Identity member list: sorted ascending, so local id == global id and the
  // baselines can use their NodeIds directly against the state.
  core::Subproblem& sub =
      core::materialize_subproblem_topology(kernel.ground_set(), members, arena_);
  // The baselines evaluate strictly through gain()/gains_batch(); the
  // subproblem priority vector is never read, so skip its O(n·deg) fill.
  state_->reset(sub, nullptr, /*init_priorities=*/false);
  sub_ = &sub;
}

double MarginalGainEngine::gain(core::NodeId v) const {
  if (state_ != nullptr) return state_->gain(static_cast<std::uint32_t>(v));
  return kernel_->marginal_gain(membership_, v);
}

void MarginalGainEngine::gains_batch(std::span<const core::NodeId> candidates,
                                     std::span<double> out) const {
  if (state_ != nullptr) {
    local_scratch_.resize(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      local_scratch_[i] = static_cast<std::uint32_t>(candidates[i]);
    }
    state_->gains_batch(local_scratch_, out);
    return;
  }
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    out[i] = kernel_->marginal_gain(membership_, candidates[i]);
  }
}

void MarginalGainEngine::select(core::NodeId v) {
  membership_[static_cast<std::size_t>(v)] = 1;
  if (state_ != nullptr) state_->select(static_cast<std::uint32_t>(v));
}

}  // namespace subsel::baselines
