#include "baselines/baselines.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/rng.h"

namespace subsel::baselines {
namespace {

ThreadPool& pool_or_global(ThreadPool* pool) {
  return pool != nullptr ? *pool : global_thread_pool();
}

}  // namespace

GreedyResult random_selection(const GroundSet& ground_set, ObjectiveParams params,
                              std::size_t k, std::uint64_t seed) {
  const std::size_t n = ground_set.num_points();
  k = std::min(k, n);
  Rng rng(seed);
  const auto picks = rng.sample_without_replacement(n, k);
  GreedyResult result;
  result.selected.reserve(k);
  for (std::uint64_t index : picks) {
    result.selected.push_back(static_cast<NodeId>(index));
  }
  std::sort(result.selected.begin(), result.selected.end());
  core::PairwiseObjective objective(ground_set, params);
  result.objective = objective.evaluate(result.selected);
  return result;
}

GreeDiResult greedi(const GroundSet& ground_set, std::size_t k,
                    const GreeDiConfig& config) {
  const std::size_t n = ground_set.num_points();
  k = std::min(k, n);
  const std::size_t m = std::max<std::size_t>(1, config.num_machines);

  // Partition the ground set.
  std::vector<NodeId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<NodeId>(i);
  if (config.scheme == PartitionScheme::kRandom) {
    Rng rng(config.seed);
    rng.shuffle(std::span<NodeId>(ids));
  }
  std::vector<std::vector<NodeId>> partitions(m);
  const std::size_t base = n / m;
  const std::size_t extra = n % m;
  std::size_t cursor = 0;
  for (std::size_t p = 0; p < m; ++p) {
    const std::size_t size = base + (p < extra ? 1 : 0);
    partitions[p].assign(ids.begin() + static_cast<std::ptrdiff_t>(cursor),
                         ids.begin() + static_cast<std::ptrdiff_t>(cursor + size));
    cursor += size;
  }

  // Per-partition greedy, selecting k each (capped by partition size), on
  // per-worker reusable arenas.
  core::SubproblemArenaPool arena_pool;
  std::vector<std::vector<NodeId>> partials(m);
  pool_or_global(config.pool).parallel_for(m, [&](std::size_t p) {
    core::SubproblemArenaPool::Lease arena(arena_pool);
    const core::Subproblem& sub = core::materialize_subproblem(
        ground_set, partitions[p], config.objective, nullptr, *arena);
    partials[p] =
        core::greedy_on_subproblem(sub, k, config.objective, *arena).selected;
  });

  // The centralized merge: greedy over the union — the step that needs one
  // machine with Θ(m·k) candidates resident.
  std::vector<NodeId> merge_input;
  for (const auto& partial : partials) {
    merge_input.insert(merge_input.end(), partial.begin(), partial.end());
  }
  GreeDiResult result;
  result.merge_candidates = merge_input.size();
  core::SubproblemArenaPool::Lease merge_arena(arena_pool);
  const core::Subproblem& merge = core::materialize_subproblem(
      ground_set, merge_input, config.objective, nullptr, *merge_arena);
  result.merge_bytes = merge.byte_size();
  GreedyResult merged =
      core::greedy_on_subproblem(merge, k, config.objective, *merge_arena);

  result.selected = std::move(merged.selected);
  std::sort(result.selected.begin(), result.selected.end());
  core::PairwiseObjective objective(ground_set, config.objective);
  result.objective = objective.evaluate(result.selected, config.pool);
  return result;
}

KCenterResult greedy_k_center(const graph::EmbeddingMatrix& embeddings,
                              const GroundSet& ground_set, ObjectiveParams params,
                              std::size_t k, NodeId first_center) {
  const std::size_t n = embeddings.rows();
  k = std::min(k, n);
  KCenterResult result;
  if (k == 0 || n == 0) return result;

  // Cosine distance 1 - <a,b> on normalized rows; track, per point, the
  // distance to its nearest chosen center.
  const auto distance = [&embeddings](std::size_t a, std::size_t b) {
    const auto ra = embeddings.row(a);
    const auto rb = embeddings.row(b);
    double dot = 0.0;
    for (std::size_t d = 0; d < ra.size(); ++d) {
      dot += static_cast<double>(ra[d]) * static_cast<double>(rb[d]);
    }
    return 1.0 - dot;
  };

  std::vector<double> nearest(n, std::numeric_limits<double>::infinity());
  auto center = static_cast<std::size_t>(first_center);
  result.selected.reserve(k);
  for (std::size_t step = 0; step < k; ++step) {
    result.selected.push_back(static_cast<NodeId>(center));
    std::size_t farthest = center;
    double farthest_distance = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      nearest[i] = std::min(nearest[i], distance(i, center));
      if (nearest[i] > farthest_distance) {
        farthest_distance = nearest[i];
        farthest = i;
      }
    }
    result.radius = farthest_distance;
    center = farthest;
  }

  std::sort(result.selected.begin(), result.selected.end());
  core::PairwiseObjective objective(ground_set, params);
  result.objective = objective.evaluate(result.selected);
  return result;
}

GreedyResult lazy_greedy(const GroundSet& ground_set, ObjectiveParams params,
                         std::size_t k) {
  const std::size_t n = ground_set.num_points();
  k = std::min(k, n);
  GreedyResult result;
  result.selected.reserve(k);

  // (stale gain, id, |S| when the gain was computed); outranking = higher
  // gain, smaller id on ties — consistent with the other implementations.
  struct Entry {
    double gain;
    NodeId id;
    std::size_t version;
  };
  auto worse = [](const Entry& a, const Entry& b) {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.id > b.id;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> queue(worse);
  core::PairwiseObjective objective(ground_set, params);
  std::vector<std::uint8_t> in_subset(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    queue.push(Entry{params.alpha * ground_set.utility(static_cast<NodeId>(i)),
                     static_cast<NodeId>(i), 0});
  }
  double total = 0.0;
  while (result.selected.size() < k && !queue.empty()) {
    Entry top = queue.top();
    queue.pop();
    if (top.version == result.selected.size()) {  // gain is fresh: take it
      in_subset[static_cast<std::size_t>(top.id)] = 1;
      result.selected.push_back(top.id);
      total += top.gain;
      continue;
    }
    top.gain = objective.marginal_gain(in_subset, top.id);
    top.version = result.selected.size();
    queue.push(top);
  }
  result.objective = total;
  return result;
}

GreedyResult stochastic_greedy(const GroundSet& ground_set, ObjectiveParams params,
                               std::size_t k, double epsilon, std::uint64_t seed) {
  const std::size_t n = ground_set.num_points();
  k = std::min(k, n);
  GreedyResult result;
  result.selected.reserve(k);
  if (k == 0) return result;

  const std::size_t sample_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(static_cast<double>(n) /
                                            static_cast<double>(k) *
                                            std::log(1.0 / epsilon))));
  Rng rng(seed);
  core::PairwiseObjective objective(ground_set, params);
  std::vector<std::uint8_t> in_subset(n, 0);
  std::vector<NodeId> remaining(n);
  for (std::size_t i = 0; i < n; ++i) remaining[i] = static_cast<NodeId>(i);

  double total = 0.0;
  for (std::size_t step = 0; step < k; ++step) {
    const std::size_t draw = std::min(sample_size, remaining.size());
    // Partial Fisher-Yates: the first `draw` slots become the random sample.
    for (std::size_t i = 0; i < draw; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(
                                    rng.uniform_index(remaining.size() - i));
      std::swap(remaining[i], remaining[j]);
    }
    double best_gain = -std::numeric_limits<double>::infinity();
    std::size_t best_slot = 0;
    for (std::size_t i = 0; i < draw; ++i) {
      const double gain = objective.marginal_gain(in_subset, remaining[i]);
      if (gain > best_gain ||
          (gain == best_gain && remaining[i] < remaining[best_slot])) {
        best_gain = gain;
        best_slot = i;
      }
    }
    const NodeId chosen = remaining[best_slot];
    in_subset[static_cast<std::size_t>(chosen)] = 1;
    result.selected.push_back(chosen);
    total += best_gain;
    std::swap(remaining[best_slot], remaining.back());
    remaining.pop_back();
  }
  result.objective = total;
  return result;
}

}  // namespace subsel::baselines
