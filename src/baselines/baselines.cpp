#include "baselines/baselines.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>
#include <span>

#include "baselines/gain_engine.h"
#include "common/atomic_util.h"
#include "common/rng.h"

namespace subsel::baselines {
namespace {

ThreadPool& pool_or_global(ThreadPool* pool) {
  return pool != nullptr ? *pool : global_thread_pool();
}

}  // namespace

GreedyResult random_selection(const GroundSet& ground_set, ObjectiveParams params,
                              std::size_t k, std::uint64_t seed) {
  return random_selection(core::PairwiseKernel(ground_set, params), k, seed);
}

GreedyResult random_selection(const ObjectiveKernel& kernel, std::size_t k,
                              std::uint64_t seed,
                              const core::ConstraintSet* constraints) {
  const std::size_t n = kernel.ground_set().num_points();
  k = std::min(k, n);
  Rng rng(seed);
  GreedyResult result;
  result.selected.reserve(k);
  if (constraints == nullptr || constraints->empty()) {
    const auto picks = rng.sample_without_replacement(n, k);
    for (std::uint64_t index : picks) {
      result.selected.push_back(static_cast<NodeId>(index));
    }
  } else {
    // Feasible prefix of a uniform random permutation: each element is
    // considered in random order and taken iff the budgets still admit it.
    std::vector<NodeId> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<NodeId>(i);
    rng.shuffle(std::span<NodeId>(order));
    core::ConstraintTracker tracker(*constraints);
    for (const NodeId v : order) {
      if (result.selected.size() >= k) break;
      if (!tracker.feasible(v)) continue;
      tracker.accept(v);
      result.selected.push_back(v);
    }
  }
  std::sort(result.selected.begin(), result.selected.end());
  result.objective = kernel.evaluate(std::span<const NodeId>(result.selected));
  return result;
}

GreeDiResult greedi(const GroundSet& ground_set, std::size_t k,
                    const GreeDiConfig& config) {
  const std::size_t n = ground_set.num_points();
  k = std::min(k, n);
  const std::size_t m = std::max<std::size_t>(1, config.num_machines);

  std::optional<core::PairwiseKernel> local_kernel;
  const ObjectiveKernel& kernel = core::resolve_kernel(
      config.kernel, ground_set, config.objective, local_kernel);

  // Partition the ground set.
  std::vector<NodeId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<NodeId>(i);
  if (config.scheme == PartitionScheme::kRandom) {
    Rng rng(config.seed);
    rng.shuffle(std::span<NodeId>(ids));
  }
  std::vector<std::vector<NodeId>> partitions(m);
  const std::size_t base = n / m;
  const std::size_t extra = n % m;
  std::size_t cursor = 0;
  for (std::size_t p = 0; p < m; ++p) {
    const std::size_t size = base + (p < extra ? 1 : 0);
    partitions[p].assign(ids.begin() + static_cast<std::ptrdiff_t>(cursor),
                         ids.begin() + static_cast<std::ptrdiff_t>(cursor + size));
    cursor += size;
  }

  // Per-partition greedy, selecting k each (capped by partition size), on
  // per-worker reusable arenas. solve_partition dispatches: pairwise kernels
  // take the closed-form arena path, others the batched incremental-state
  // driver (or the scorer fallback).
  core::SubproblemArenaPool arena_pool;
  std::vector<std::vector<NodeId>> partials(m);
  std::atomic<std::size_t> peak_bytes{0};
  std::atomic<std::size_t> peak_state_bytes{0};
  pool_or_global(config.pool).parallel_for(m, [&](std::size_t p) {
    core::SubproblemArenaPool::Lease arena(arena_pool);
    GreedyResult local = core::solve_partition(
        ground_set, partitions[p], k, kernel, nullptr, *arena,
        core::PartitionSolver::kPriorityQueue,
        /*stochastic_epsilon=*/0.1, config.seed, nullptr, nullptr,
        core::GainEngine::kAuto, config.constraints);
    atomic_fetch_max(peak_bytes, local.materialized_bytes);
    atomic_fetch_max(peak_state_bytes, local.kernel_state_bytes);
    partials[p] = std::move(local.selected);
  });

  // The centralized merge: greedy over the union — the step that needs one
  // machine with Θ(m·k) candidates resident.
  std::vector<NodeId> merge_input;
  for (const auto& partial : partials) {
    merge_input.insert(merge_input.end(), partial.begin(), partial.end());
  }
  GreeDiResult result;
  result.merge_candidates = merge_input.size();
  core::SubproblemArenaPool::Lease merge_arena(arena_pool);
  // The merge solve re-enforces the constraints from scratch over the union,
  // so per-partition selections that jointly over-commit a global budget are
  // rounded back down to a feasible final selection.
  GreedyResult merged = core::solve_partition(
      ground_set, merge_input, k, kernel, nullptr, *merge_arena,
      core::PartitionSolver::kPriorityQueue, /*stochastic_epsilon=*/0.1,
      config.seed, &result.merge_bytes, nullptr, core::GainEngine::kAuto,
      config.constraints);
  atomic_fetch_max(peak_bytes, merged.materialized_bytes);
  atomic_fetch_max(peak_state_bytes, merged.kernel_state_bytes);
  result.peak_partition_bytes = peak_bytes.load();
  result.peak_state_bytes = peak_state_bytes.load();

  result.selected = std::move(merged.selected);
  std::sort(result.selected.begin(), result.selected.end());
  result.objective =
      kernel.evaluate(std::span<const NodeId>(result.selected), config.pool);
  return result;
}

KCenterResult greedy_k_center(const graph::EmbeddingMatrix& embeddings,
                              const GroundSet& ground_set, ObjectiveParams params,
                              std::size_t k, NodeId first_center) {
  const std::size_t n = embeddings.rows();
  k = std::min(k, n);
  KCenterResult result;
  if (k == 0 || n == 0) return result;

  // Cosine distance 1 - <a,b> on normalized rows; track, per point, the
  // distance to its nearest chosen center.
  const auto distance = [&embeddings](std::size_t a, std::size_t b) {
    const auto ra = embeddings.row(a);
    const auto rb = embeddings.row(b);
    double dot = 0.0;
    for (std::size_t d = 0; d < ra.size(); ++d) {
      dot += static_cast<double>(ra[d]) * static_cast<double>(rb[d]);
    }
    return 1.0 - dot;
  };

  std::vector<double> nearest(n, std::numeric_limits<double>::infinity());
  auto center = static_cast<std::size_t>(first_center);
  result.selected.reserve(k);
  for (std::size_t step = 0; step < k; ++step) {
    result.selected.push_back(static_cast<NodeId>(center));
    std::size_t farthest = center;
    double farthest_distance = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      nearest[i] = std::min(nearest[i], distance(i, center));
      if (nearest[i] > farthest_distance) {
        farthest_distance = nearest[i];
        farthest = i;
      }
    }
    result.radius = farthest_distance;
    center = farthest;
  }

  std::sort(result.selected.begin(), result.selected.end());
  core::PairwiseObjective objective(ground_set, params);
  result.objective = objective.evaluate(result.selected);
  return result;
}

GreedyResult lazy_greedy(const GroundSet& ground_set, ObjectiveParams params,
                         std::size_t k) {
  // singleton_value(v) is exactly the α·u(v) the pre-kernel implementation
  // seeded its queue with, so this delegation is bit-identical.
  return lazy_greedy(core::PairwiseKernel(ground_set, params), k);
}

namespace {

/// The lazy-greedy loop over any gain callable: (stale gain, id, |S| when the
/// gain was computed); outranking = higher gain, smaller id on ties —
/// consistent with the other implementations. The deadline is checked once
/// per accepted element (not per re-evaluation): every prefix of the greedy
/// sequence is itself the exact answer for its own budget, so stopping there
/// degrades gracefully.
template <typename GainFn, typename SelectFn>
GreedyResult lazy_greedy_loop(const ObjectiveKernel& kernel, std::size_t k,
                              GainFn&& fresh_gain, SelectFn&& commit,
                              Deadline deadline = {},
                              core::ConstraintTracker* tracker = nullptr) {
  const std::size_t n = kernel.ground_set().num_points();
  k = std::min(k, n);
  GreedyResult result;
  result.selected.reserve(k);

  struct Entry {
    double gain;
    NodeId id;
    std::size_t version;
  };
  auto worse = [](const Entry& a, const Entry& b) {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.id > b.id;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> queue(worse);
  for (std::size_t i = 0; i < n; ++i) {
    queue.push(Entry{kernel.singleton_value(static_cast<NodeId>(i)),
                     static_cast<NodeId>(i), 0});
  }
  double total = 0.0;
  while (result.selected.size() < k && !queue.empty()) {
    Entry top = queue.top();
    queue.pop();
    // Infeasible elements are dropped for good: spent cost and group counts
    // only grow, so an element the budgets reject now stays rejected.
    if (tracker != nullptr && !tracker->feasible(top.id)) continue;
    if (top.version == result.selected.size()) {  // gain is fresh: take it
      if (deadline.expired()) {
        result.degraded = true;
        break;
      }
      commit(top.id);
      if (tracker != nullptr) tracker->accept(top.id);
      result.selected.push_back(top.id);
      total += top.gain;
      continue;
    }
    top.gain = fresh_gain(top.id);
    top.version = result.selected.size();
    queue.push(top);
  }
  result.objective = total;
  return result;
}

}  // namespace

GreedyResult lazy_greedy(const ObjectiveKernel& kernel, std::size_t k,
                         Deadline deadline,
                         const core::ConstraintSet* constraints) {
  MarginalGainEngine engine(kernel);
  std::optional<core::ConstraintTracker> tracker;
  if (constraints != nullptr && !constraints->empty()) {
    tracker.emplace(*constraints);
  }
  GreedyResult result = lazy_greedy_loop(
      kernel, k, [&engine](NodeId v) { return engine.gain(v); },
      [&engine](NodeId v) { engine.select(v); }, deadline,
      tracker ? &*tracker : nullptr);
  result.materialized_bytes = engine.materialized_bytes();
  result.kernel_state_bytes = engine.kernel_state_bytes();
  return result;
}

namespace reference {

GreedyResult lazy_greedy(const ObjectiveKernel& kernel, std::size_t k) {
  std::vector<std::uint8_t> in_subset(kernel.ground_set().num_points(), 0);
  return lazy_greedy_loop(
      kernel, k,
      [&](NodeId v) { return kernel.marginal_gain(in_subset, v); },
      [&](NodeId v) { in_subset[static_cast<std::size_t>(v)] = 1; });
}

GreedyResult stochastic_greedy(const ObjectiveKernel& kernel, std::size_t k,
                               double epsilon, std::uint64_t seed) {
  const std::size_t n = kernel.ground_set().num_points();
  k = std::min(k, n);
  GreedyResult result;
  result.selected.reserve(k);
  if (k == 0) return result;

  const std::size_t sample_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(static_cast<double>(n) /
                                            static_cast<double>(k) *
                                            std::log(1.0 / epsilon))));
  Rng rng(seed);
  std::vector<std::uint8_t> in_subset(n, 0);
  std::vector<NodeId> remaining(n);
  for (std::size_t i = 0; i < n; ++i) remaining[i] = static_cast<NodeId>(i);

  double total = 0.0;
  for (std::size_t step = 0; step < k; ++step) {
    const std::size_t draw = std::min(sample_size, remaining.size());
    for (std::size_t i = 0; i < draw; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(
                                    rng.uniform_index(remaining.size() - i));
      std::swap(remaining[i], remaining[j]);
    }
    double best_gain = -std::numeric_limits<double>::infinity();
    std::size_t best_slot = 0;
    for (std::size_t i = 0; i < draw; ++i) {
      const double gain = kernel.marginal_gain(in_subset, remaining[i]);
      if (gain > best_gain ||
          (gain == best_gain && remaining[i] < remaining[best_slot])) {
        best_gain = gain;
        best_slot = i;
      }
    }
    const NodeId chosen = remaining[best_slot];
    in_subset[static_cast<std::size_t>(chosen)] = 1;
    result.selected.push_back(chosen);
    total += best_gain;
    std::swap(remaining[best_slot], remaining.back());
    remaining.pop_back();
  }
  result.objective = total;
  return result;
}

}  // namespace reference

GreedyResult stochastic_greedy(const GroundSet& ground_set, ObjectiveParams params,
                               std::size_t k, double epsilon, std::uint64_t seed) {
  return stochastic_greedy(core::PairwiseKernel(ground_set, params), k, epsilon,
                           seed);
}

GreedyResult stochastic_greedy(const ObjectiveKernel& kernel, std::size_t k,
                               double epsilon, std::uint64_t seed,
                               Deadline deadline,
                               const core::ConstraintSet* constraints) {
  const std::size_t n = kernel.ground_set().num_points();
  k = std::min(k, n);
  GreedyResult result;
  result.selected.reserve(k);
  if (k == 0) return result;

  const std::size_t sample_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(static_cast<double>(n) /
                                            static_cast<double>(k) *
                                            std::log(1.0 / epsilon))));
  Rng rng(seed);
  MarginalGainEngine engine(kernel);
  std::optional<core::ConstraintTracker> tracker;
  if (constraints != nullptr && !constraints->empty()) {
    tracker.emplace(*constraints);
  }
  std::vector<NodeId> remaining(n);
  for (std::size_t i = 0; i < n; ++i) remaining[i] = static_cast<NodeId>(i);
  std::vector<double> gains;

  double total = 0.0;
  for (std::size_t step = 0; step < k; ++step) {
    if (deadline.expired()) {
      result.degraded = true;
      break;
    }
    if (tracker) {
      // Monotone infeasibility: an element the budgets reject now stays
      // rejected forever, so compact the candidate pool once per step.
      std::erase_if(remaining,
                    [&](NodeId v) { return !tracker->feasible(v); });
      if (remaining.empty()) break;
    }
    const std::size_t draw = std::min(sample_size, remaining.size());
    // Partial Fisher-Yates: the first `draw` slots become the random sample.
    for (std::size_t i = 0; i < draw; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(
                                    rng.uniform_index(remaining.size() - i));
      std::swap(remaining[i], remaining[j]);
    }
    // One batched evaluation of the whole sample.
    gains.resize(draw);
    engine.gains_batch(std::span<const NodeId>(remaining.data(), draw), gains);
    double best_gain = -std::numeric_limits<double>::infinity();
    std::size_t best_slot = 0;
    for (std::size_t i = 0; i < draw; ++i) {
      if (gains[i] > best_gain ||
          (gains[i] == best_gain && remaining[i] < remaining[best_slot])) {
        best_gain = gains[i];
        best_slot = i;
      }
    }
    const NodeId chosen = remaining[best_slot];
    engine.select(chosen);
    if (tracker) tracker->accept(chosen);
    result.selected.push_back(chosen);
    total += best_gain;
    std::swap(remaining[best_slot], remaining.back());
    remaining.pop_back();
  }
  result.objective = total;
  result.materialized_bytes = engine.materialized_bytes();
  result.kernel_state_bytes = engine.kernel_state_bytes();
  return result;
}

}  // namespace subsel::baselines
