// Baselines the paper compares against or builds on.
//
//  - random_selection: the floor every normalized score is implicitly
//    measured against.
//  - GreeDi (Mirzasoleiman et al. 2016) and RandGreeDi (Barbosa et al. 2015):
//    partition -> per-partition greedy -> *centralized greedy over the union
//    of the partial results*. That final merge is exactly the step that
//    requires one machine to hold Θ(m·k) candidates (and is what the paper's
//    multi-round algorithm eliminates); the implementation reports the size
//    of that union so benches can quantify the DRAM the merge would need.
//  - lazy_greedy (Minoux 1978) and stochastic_greedy (Mirzasoleiman et al.
//    2015): the classic accelerated centralized variants the paper discusses
//    as orthogonal ("Related optimizations", Section 3).
#pragma once

#include <cstdint>
#include <vector>

#include "common/run_control.h"
#include "common/thread_pool.h"
#include "core/greedy.h"
#include "core/objective_kernel.h"
#include "graph/embedding_matrix.h"
#include "core/objective.h"
#include "graph/ground_set.h"

namespace subsel::baselines {

using core::GreedyResult;
using core::NodeId;
using core::ObjectiveKernel;
using core::ObjectiveParams;
using graph::GroundSet;

// Every baseline exists in two spellings: the historical pairwise one
// (ObjectiveParams) and the kernel one. The pairwise overloads construct a
// PairwiseKernel and delegate, with arithmetic chosen so selections and
// objectives are bit-identical to the pre-kernel implementations.

/// Uniform random subset of size k (without replacement), with its objective.
/// Constrained runs take the feasible prefix of a random permutation instead
/// (still uniform over the sampling order; may return fewer than k elements
/// when the budgets bind). Unconstrained runs are bit-identical to before.
GreedyResult random_selection(const GroundSet& ground_set, ObjectiveParams params,
                              std::size_t k, std::uint64_t seed);
GreedyResult random_selection(const ObjectiveKernel& kernel, std::size_t k,
                              std::uint64_t seed,
                              const core::ConstraintSet* constraints = nullptr);

enum class PartitionScheme : std::uint8_t {
  kContiguous = 0,  // GreeDi: arbitrary (contiguous-range) assignment
  kRandom = 1,      // RandGreeDi: uniform random assignment
};

struct GreeDiConfig {
  ObjectiveParams objective;
  /// Objective kernel; non-owning, must outlive the run and be bound to the
  /// ground set passed to greedi(). When set it overrides `objective`
  /// (pairwise kernels run the identical closed-form per-partition path).
  const ObjectiveKernel* kernel = nullptr;
  std::size_t num_machines = 8;
  PartitionScheme scheme = PartitionScheme::kRandom;
  std::uint64_t seed = 29;
  ThreadPool* pool = nullptr;
  /// Optional selection constraints (global ids, validated; non-owning).
  /// Partition solves enforce them locally; the centralized merge enforces
  /// them globally, so the returned selection is always feasible (and may be
  /// smaller than k when the budgets bind).
  const core::ConstraintSet* constraints = nullptr;
};

struct GreeDiResult {
  std::vector<NodeId> selected;  // ascending, size k
  double objective = 0.0;
  /// |union of per-partition results| = m·k candidates the merge machine must
  /// hold in DRAM — the central-machine requirement the paper removes.
  std::size_t merge_candidates = 0;
  std::size_t merge_bytes = 0;  // materialized subproblem size of the merge
  /// Largest materialized per-partition subproblem (merge included) and the
  /// largest flat kernel state behind one — the report memory numbers.
  std::size_t peak_partition_bytes = 0;
  std::size_t peak_state_bytes = 0;
};

/// GreeDi / RandGreeDi: per-partition greedy selecting k each, then
/// centralized greedy over the union.
GreeDiResult greedi(const GroundSet& ground_set, std::size_t k,
                    const GreeDiConfig& config);

/// Lazy greedy (Minoux): max-heap of stale marginal gains, re-evaluated only
/// when popped. Identical output to Algorithm 1 by submodularity — for any
/// submodular kernel, not just pairwise. Gains run through the
/// MarginalGainEngine: the exact O(deg) oracle for pairwise kernels
/// (bit-identical to the historical implementation), flat incremental state
/// for the coverage-family kernels (O(deg) instead of the O(deg^2) oracle).
/// `deadline` is checked once per accepted element: an expired run returns
/// the valid greedy prefix picked so far with `degraded` set (each prefix is
/// itself the exact lazy-greedy answer for its own size).
/// With `constraints`, an infeasible heap pop is dropped permanently
/// (monotone infeasibility) and the run may legally return fewer than k.
GreedyResult lazy_greedy(const GroundSet& ground_set, ObjectiveParams params,
                         std::size_t k);
GreedyResult lazy_greedy(const ObjectiveKernel& kernel, std::size_t k,
                         Deadline deadline = {},
                         const core::ConstraintSet* constraints = nullptr);

namespace reference {

/// The pre-engine implementations, verbatim: every gain through the kernel's
/// exact oracle (one re-evaluation per candidate per round for the sampled
/// variant). Kept as the equivalence baselines the incremental-state parity
/// tests and the bench --kernel-hotpath harness measure against.
GreedyResult lazy_greedy(const ObjectiveKernel& kernel, std::size_t k);
GreedyResult stochastic_greedy(const ObjectiveKernel& kernel, std::size_t k,
                               double epsilon = 0.1, std::uint64_t seed = 31);

}  // namespace reference

/// Stochastic greedy (lazier-than-lazy): each step evaluates a random sample
/// of size (n/k)·ln(1/epsilon) and takes its best element.
/// `deadline` is checked once per step; an expired run returns the prefix
/// picked so far with `degraded` set.
GreedyResult stochastic_greedy(const GroundSet& ground_set, ObjectiveParams params,
                               std::size_t k, double epsilon = 0.1,
                               std::uint64_t seed = 31);
GreedyResult stochastic_greedy(const ObjectiveKernel& kernel, std::size_t k,
                               double epsilon = 0.1, std::uint64_t seed = 31,
                               Deadline deadline = {},
                               const core::ConstraintSet* constraints = nullptr);

/// Greedy k-center (Gonzalez): repeatedly take the point farthest (in
/// embedding space) from the current centers — the clustering-side baseline
/// the paper situates itself against (Sec. 2: k-medoids, weighted k-center).
/// Pure diversity, no utility term; 2-approximation for the k-center radius.
/// Returns the selected ids plus the covering radius achieved.
struct KCenterResult {
  std::vector<NodeId> selected;  // ascending, size min(k, n)
  /// max over points of the distance to the nearest selected center.
  double radius = 0.0;
  /// f(selected) under `params`, for apples-to-apples score comparisons.
  double objective = 0.0;
};

KCenterResult greedy_k_center(const graph::EmbeddingMatrix& embeddings,
                              const GroundSet& ground_set, ObjectiveParams params,
                              std::size_t k, NodeId first_center = 0);

}  // namespace subsel::baselines
