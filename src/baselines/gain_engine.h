// Marginal-gain engine for the centralized/full-ground-set baselines
// (lazy/stochastic/threshold greedy, SAMPLE&PRUNE).
//
// Those baselines evaluate marginal gains against ONE growing solution over
// the whole ground set. Historically every evaluation went through the
// kernel's exact oracle, which for the coverage-family kernels recomputes
// each neighbor's coverage from scratch — O(deg^2) per gain, the
// 10-80x solve-phase gap recorded in BENCH_objective_matrix.json. This
// engine picks the fastest exact gain machinery the kernel offers:
//
//  - pairwise-family kernels (pairwise_params() != nullptr) keep the exact
//    O(deg) oracle — bit-identical to the historical implementations;
//  - kernels with incremental state get the whole ground set materialized
//    once as a single subproblem (global id == local id) and run flat O(deg)
//    gains + O(deg) delta updates + one-virtual-call batch evaluation over
//    it;
//  - anything else falls back to the exact oracle.
//
// The engine owns the membership bitmap: baselines call select() instead of
// flipping their own bitmap, so the oracle and state paths can never drift.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/greedy.h"
#include "core/objective_kernel.h"

namespace subsel::baselines {

class MarginalGainEngine {
 public:
  /// Binds to `kernel` (non-owning; must outlive the engine) and, on the
  /// incremental path, materializes the full ground set into an internal
  /// arena. The state path is only engaged up to
  /// SubproblemArena::kDenseMembershipLimit points — beyond it (the virtual
  /// multi-billion-point sets) the CSR copy would dominate, so the oracle
  /// path runs instead.
  explicit MarginalGainEngine(const core::ObjectiveKernel& kernel);

  bool is_selected(core::NodeId v) const {
    return membership_[static_cast<std::size_t>(v)] != 0;
  }

  /// Exact marginal gain of v given everything select()ed so far.
  double gain(core::NodeId v) const;

  /// out[i] = gain(candidates[i]); one virtual dispatch total on the
  /// incremental path.
  void gains_batch(std::span<const core::NodeId> candidates,
                   std::span<double> out) const;

  void select(core::NodeId v);

  bool incremental() const noexcept { return state_ != nullptr; }
  std::size_t materialized_bytes() const noexcept {
    return sub_ != nullptr ? sub_->byte_size() : 0;
  }
  std::size_t kernel_state_bytes() const noexcept {
    return state_ != nullptr ? state_->state_bytes() : 0;
  }

 private:
  const core::ObjectiveKernel* kernel_;
  std::vector<std::uint8_t> membership_;
  core::SubproblemArena arena_;
  const core::Subproblem* sub_ = nullptr;
  std::unique_ptr<core::KernelIncrementalState> state_;
  mutable std::vector<std::uint32_t> local_scratch_;  // NodeId -> local gather
};

}  // namespace subsel::baselines
