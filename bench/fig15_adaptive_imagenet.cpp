// Figure 15: adaptive-partitioning heatmaps on ImageNet (the adaptive
// counterpart of Figure 13).
#include "bench_util.h"

using namespace subsel;
using namespace subsel::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const double scale = args.get_double("scale", 0.1);
  const auto dataset = data::imagenet_proxy(scale);
  std::printf("=== Figure 15: ImageNet proxy (%zu points), adaptive ===\n",
              dataset.size());

  CsvWriter csv(results_dir() + "/fig15_adaptive_imagenet.csv", kHeatmapCsvHeader);
  Timer timer;
  for (const double fraction : {0.1, 0.5, 0.8}) {
    for (const double alpha : {0.9, 0.5, 0.1}) {
      HeatmapSpec spec;
      spec.dataset = &dataset;
      spec.alpha = alpha;
      spec.subset_fraction = fraction;
      spec.adaptive = true;
      const auto result = run_heatmap(spec);
      char title[128];
      std::snprintf(title, sizeof(title),
                    "%.0f%% subset, alpha=%.1f (normalized, adaptive)", fraction * 100,
                    alpha);
      print_heatmap(title, spec, result.normalized);
      heatmap_to_csv(csv, "imagenet_proxy", spec, result);
    }
  }
  std::printf("\ntotal time: %s; csv: %s/fig15_adaptive_imagenet.csv\n",
              format_duration(timer.elapsed_seconds()).c_str(), results_dir().c_str());
  return 0;
}
