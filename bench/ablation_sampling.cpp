// Ablation: approximate-bounding sampling rate p (Theorem 4.6 empirically).
// The theorem predicts the quality guarantee 1 / (2(1 + γ(1 − p²))) improves
// monotonically in p, recovering exact bounding at p = 1; lower p trades
// quality for more aggressive grow/shrink decisions (Table 2's behavior).
// This bench sweeps p for uniform and weighted sampling on the CIFAR proxy,
// reporting decisions made, rounds, and the score of bounding + centralized
// completion relative to plain centralized greedy.
//
// Expected shape: decided points fall and score rises toward 100 as p -> 1;
// small p decides half the ground set at a few-percent score cost.
#include "bench_util.h"

#include "core/bounding.h"
#include "core/selection_pipeline.h"

using namespace subsel;
using namespace subsel::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const double scale = args.get_double("scale", 0.2);
  const auto dataset = data::cifar_proxy(scale);
  const std::size_t n = dataset.size();
  const std::size_t k = n / 10;
  const auto params = core::ObjectiveParams::from_alpha(0.9);
  const auto ground_set = dataset.ground_set();

  const double centralized =
      core::centralized_greedy(dataset.graph, dataset.utilities, params, k)
          .objective;

  std::printf("=== Ablation: bounding sampling rate p (CIFAR proxy, %zu points,"
              " k=%zu, alpha=0.9) ===\n", n, k);
  std::printf("%-10s %8s %10s %10s %7s %7s %9s\n", "sampling", "p", "included",
              "excluded", "grow", "shrink", "score%");

  CsvWriter csv(results_dir() + "/ablation_sampling.csv",
                {"sampling", "p", "included", "excluded", "grow_rounds",
                 "shrink_rounds", "objective", "score"});

  for (const auto sampling : {core::BoundingSampling::kUniform,
                              core::BoundingSampling::kWeighted}) {
    const char* name =
        sampling == core::BoundingSampling::kUniform ? "uniform" : "weighted";
    for (const double p : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
      core::SelectionPipelineConfig config;
      config.objective = params;
      config.bounding.sampling =
          p >= 1.0 ? core::BoundingSampling::kNone : sampling;
      config.bounding.sample_fraction = p;
      config.greedy.num_machines = 1;  // centralized completion isolates p
      config.greedy.num_rounds = 1;
      const auto result = core::select_subset(ground_set, k, config);
      const auto& bounding = *result.bounding;
      const double score = 100.0 * result.objective / centralized;
      std::printf("%-10s %8.1f %10zu %10zu %7zu %7zu %8.2f%%\n",
                  p >= 1.0 ? "exact" : name, p, bounding.included,
                  bounding.excluded, bounding.grow_rounds, bounding.shrink_rounds,
                  score);
      csv.row(p >= 1.0 ? "exact" : name, p, bounding.included, bounding.excluded,
              bounding.grow_rounds, bounding.shrink_rounds, result.objective,
              score);
    }
  }

  std::printf("\npaper shape (Theorem 4.6 / Table 2): decisions shrink and the"
              " score approaches 100%% as p grows; p = 1 recovers exact"
              " bounding's conservatism.\n");
  return 0;
}
