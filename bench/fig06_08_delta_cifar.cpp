// Figures 6-8 (Appendix E): Δ-schedule ablation on CIFAR-100. For
// γ ∈ {1, 0.5, 0.25} prints the difference in normalized score to the
// γ = 0.75 default, for 10 % and 50 % subsets, α ∈ {0.9, 0.5, 0.1},
// partitions x rounds ∈ {1..32}², non-adaptive.
//
// Expected shape (paper): γ = 1 is mostly neutral-to-slightly-worse; γ = 0.5
// helps for α = 0.9 (earlier commitment suits utility-dominated objectives,
// gains grow with partition count) and hurts 50 % subsets at small α;
// γ = 0.25 amplifies both effects.
//
// Default --scale=0.1 (5k points) — the grid is 4 γ x 6 α/subset groups x 36
// cells; --scale=1 reproduces the paper's cardinality.
#include "bench_util.h"

using namespace subsel;
using namespace subsel::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const double scale = args.get_double("scale", 0.1);
  const auto dataset = data::cifar_proxy(scale);
  std::printf("=== Figures 6-8: delta ablation, CIFAR-100 proxy (%zu points)"
              " ===\n", dataset.size());

  CsvWriter csv(results_dir() + "/fig06_08_delta_cifar.csv", kHeatmapCsvHeader);
  Timer timer;
  run_delta_ablation(dataset, csv);
  std::printf("\ntotal time: %s; csv: %s/fig06_08_delta_cifar.csv\n",
              format_duration(timer.elapsed_seconds()).c_str(), results_dir().c_str());
  return 0;
}
