// Table 1: maximum subset / ground-set sizes of prior distributed submodular
// selection work vs. this paper (6.5 B / 13 B).
//
// The table itself is documentation; the bench backs the claim behind it by
// running the full pipeline (approximate bounding + multi-round distributed
// greedy) over a *virtual* Perturbed ground set whose materialized form would
// not fit in DRAM, selecting a 50 % subset that would not fit either, and
// reporting (a) the DRAM a materialized run would need and (b) the actual
// peak per-partition bytes, which stay orders of magnitude below it.
//
// Default: 2 M virtual points (5k base x 400 perturbations). --base and
// --perturb scale the ground set arbitrarily; the virtual representation is
// O(base) resident regardless.
#include "bench_util.h"

#include "core/bounding.h"
#include "data/perturbed.h"

using namespace subsel;
using namespace subsel::bench;

namespace {

struct PriorWork {
  const char* work;
  const char* subset;
  const char* ground_set;
};

constexpr PriorWork kTable1[] = {
    {"Barbosa et al. (2015)", "120", "1 M"},
    {"Mirzasoleiman et al. (2016)", "64", "80 M"},
    {"Ramalingam et al. (2021)", "700 k", "1.2 M"},
    {"Kumar et al. (2015)", "500", "1 M"},
    {"this paper", "6.5 B", "13 B"},
};

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  std::printf("=== Table 1: dataset sizes in prior work ===\n");
  std::printf("%-32s %12s %12s\n", "work", "max subset", "ground set");
  for (const PriorWork& row : kTable1) {
    std::printf("%-32s %12s %12s\n", row.work, row.subset, row.ground_set);
  }

  const std::size_t base_points = args.get_size("base", 5000);
  const std::size_t perturbations = args.get_size("perturb", 400);
  const auto base = data::toy_dataset(base_points, 100, 7);

  data::PerturbedConfig perturbed_config;
  perturbed_config.perturbations_per_point = perturbations;
  const data::PerturbedGroundSet ground_set(base, perturbed_config);
  const std::size_t n = ground_set.num_points();
  const auto k = static_cast<std::size_t>(0.5 * static_cast<double>(n));

  std::printf("\nlarger-than-memory demonstration: %zu virtual points, k = %zu"
              " (50%% subset)\n", n, k);
  std::printf("DRAM if materialized (keys, utilities, 10-NN ids+similarities):"
              " %.2f GB\n",
              static_cast<double>(ground_set.bytes_if_materialized()) / 1e9);

  Timer timer;
  core::BoundingConfig bounding_config;
  bounding_config.objective = core::ObjectiveParams::from_alpha(0.9);
  bounding_config.sampling = core::BoundingSampling::kUniform;
  bounding_config.sample_fraction = 0.3;
  auto bounding = core::bound(ground_set, k, bounding_config);
  std::printf("approximate bounding (30%% uniform): included %zu (%.2f%%),"
              " excluded %zu (%.2f%%) in %s\n",
              bounding.included, 100.0 * bounding.included / n, bounding.excluded,
              100.0 * bounding.excluded / n,
              format_duration(timer.elapsed_seconds()).c_str());

  timer.reset();
  core::DistributedGreedyConfig greedy_config;
  greedy_config.objective = bounding_config.objective;
  greedy_config.num_machines = 16;
  greedy_config.num_rounds = 2;
  // When bounding solves the whole instance (it often does at 50 %, Table 2),
  // run the greedy without the bounding state so the peak-partition-memory
  // column still reflects a real multi-round pass over the ground set.
  const core::SelectionState* initial =
      bounding.complete() ? nullptr : &bounding.state;
  const auto result = core::distributed_greedy(ground_set, k, greedy_config, initial);
  std::size_t peak = 0;
  for (const auto& round : result.rounds) {
    peak = std::max(peak, round.peak_partition_bytes);
  }
  std::printf("distributed greedy (16 partitions, 2 rounds): f(S) = %.1f,"
              " peak partition memory %.2f MB, in %s\n",
              result.objective, static_cast<double>(peak) / 1e6,
              format_duration(timer.elapsed_seconds()).c_str());
  std::printf("paper shape: the selected subset (%zu points) exceeds any single"
              " partition's working set; no machine ever held it.\n",
              result.selected.size());

  CsvWriter csv(results_dir() + "/table1_scale.csv",
                {"ground_set", "k", "materialized_bytes", "bounding_included",
                 "bounding_excluded", "objective", "peak_partition_bytes"});
  csv.row(n, k, ground_set.bytes_if_materialized(), bounding.included,
          bounding.excluded, result.objective, peak);
  return 0;
}
