// Table 4 (Appendix D): runtimes of the algorithm combinations on the large
// virtual dataset. The paper reports hours on an internal heterogeneous
// cluster; absolute numbers are not comparable, but the *ordering* is:
//   1 round < 2 rounds < 8 rounds of plain distributed greedy, and
//   bounding + 8 rounds < 8 rounds without bounding (bounding shrinks the
//   ground set the greedy has to chew through).
//
// Default: 1 M virtual points (2k base x 500 perturbations), 10 % subset.
#include "bench_util.h"

#include "core/bounding.h"
#include "data/perturbed.h"

using namespace subsel;
using namespace subsel::bench;

namespace {

double greedy_seconds(const data::PerturbedGroundSet& ground_set, std::size_t k,
                      std::size_t rounds, const core::SelectionState* initial,
                      double* objective_out) {
  Timer timer;
  core::DistributedGreedyConfig config;
  config.objective = core::ObjectiveParams::from_alpha(0.9);
  config.num_machines = 16;
  config.num_rounds = rounds;
  config.adaptive_partitioning = false;
  const auto result = core::distributed_greedy(ground_set, k, config, initial);
  if (objective_out != nullptr) *objective_out = result.objective;
  return timer.elapsed_seconds();
}

core::BoundingResult run_bounding(const data::PerturbedGroundSet& ground_set,
                                  std::size_t k, core::BoundingSampling sampling,
                                  double* seconds_out) {
  Timer timer;
  core::BoundingConfig config;
  config.objective = core::ObjectiveParams::from_alpha(0.9);
  config.sampling = sampling;
  config.sample_fraction = 0.3;
  auto result = core::bound(ground_set, k, config);
  *seconds_out = timer.elapsed_seconds();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const std::size_t base_points = args.get_size("base", 2000);
  const std::size_t perturbations = args.get_size("perturb", 500);

  const auto base = data::toy_dataset(base_points, 100, 13);
  data::PerturbedConfig perturbed_config;
  perturbed_config.perturbations_per_point = perturbations;
  const data::PerturbedGroundSet ground_set(base, perturbed_config);
  const std::size_t n = ground_set.num_points();
  const std::size_t k10 = n / 10;
  const std::size_t k50 = n / 2;

  std::printf("=== Table 4: runtimes on the large virtual dataset (%zu points)"
              " ===\n", n);
  std::printf("%-58s %12s %12s\n", "algorithm", "10% subset", "50% subset");

  CsvWriter csv(results_dir() + "/table4_runtime.csv",
                {"algorithm", "subset_fraction", "seconds", "objective"});

  double seconds = 0.0;
  double objective = 0.0;

  // Approximate bounding alone (10 % subset, as in the paper's table).
  auto uniform = run_bounding(ground_set, k10, core::BoundingSampling::kUniform,
                              &seconds);
  std::printf("%-58s %12s %12s\n", "approximate bounding, uniform sampling",
              format_duration(seconds).c_str(), "-");
  csv.row("bounding_uniform", 0.1, seconds, 0.0);
  const double uniform_bound_seconds = seconds;

  auto weighted = run_bounding(ground_set, k10, core::BoundingSampling::kWeighted,
                               &seconds);
  std::printf("%-58s %12s %12s\n", "approximate bounding, weighted sampling",
              format_duration(seconds).c_str(), "-");
  csv.row("bounding_weighted", 0.1, seconds, 0.0);
  const double weighted_bound_seconds = seconds;

  seconds = greedy_seconds(ground_set, k10, 8, &uniform.state, &objective);
  std::printf("%-58s %12s %12s\n", "8 rounds distributed greedy after uniform bounding",
              format_duration(uniform_bound_seconds + seconds).c_str(), "-");
  csv.row("greedy8_after_uniform", 0.1, uniform_bound_seconds + seconds, objective);

  seconds = greedy_seconds(ground_set, k10, 8, &weighted.state, &objective);
  std::printf("%-58s %12s %12s\n",
              "8 rounds distributed greedy after weighted bounding",
              format_duration(weighted_bound_seconds + seconds).c_str(), "-");
  csv.row("greedy8_after_weighted", 0.1, weighted_bound_seconds + seconds, objective);

  for (const std::size_t rounds : {8, 2, 1}) {
    char label[64];
    std::snprintf(label, sizeof(label), "%zu round(s) distributed greedy, no bounding",
                  rounds);
    const double s10 = greedy_seconds(ground_set, k10, rounds, nullptr, &objective);
    csv.row(label, 0.1, s10, objective);
    const double s50 = greedy_seconds(ground_set, k50, rounds, nullptr, &objective);
    csv.row(label, 0.5, s50, objective);
    std::printf("%-58s %12s %12s\n", label, format_duration(s10).c_str(),
                format_duration(s50).c_str());
  }

  std::printf("\npaper shape: runtime grows with rounds. In the paper's regime"
              " (cluster rounds cost hours) bounding first also makes the"
              " 8-round run cheaper; on this single-server simulator the"
              " greedy is so fast that bounding's passes dominate instead —"
              " see EXPERIMENTS.md, Table 4.\n");
  return 0;
}
