// Section 6.3: the 13-billion-point stress test, on the virtual Perturbed
// dataset (paper: Perturbed-ImageNet, each base point expanded into 10k
// vectors). Reproduced shapes:
//   - 10 % and 50 % subsets: distributed-greedy raw scores strictly increase
//     from 1 -> 2 -> 8 rounds (paper: 1 058 841 312 -> 1 092 474 410 ->
//     1 145 682 717 for 10 %);
//   - exact bounding includes ~0.007 % and excludes ~10 % for the 10 % subset;
//     approximate 30 % bounding includes ~0.7 % and excludes ~60 %;
//   - all bounding variants followed by 8 greedy rounds score slightly above
//     the 8-round run without bounding.
//
// Default ground set: 2k base x 500 perturbations = 1 M virtual points so the
// bench-suite run finishes in minutes; --base/--perturb scale to the paper's
// regime (the representation stays O(base) resident).
#include "bench_util.h"

#include "core/bounding.h"
#include "data/perturbed.h"

using namespace subsel;
using namespace subsel::bench;

namespace {

struct GreedyRun {
  std::size_t rounds;
  double objective;
  double seconds;
};

GreedyRun run_greedy(const data::PerturbedGroundSet& ground_set, std::size_t k,
                     std::size_t rounds, const core::SelectionState* initial) {
  Timer timer;
  core::DistributedGreedyConfig config;
  config.objective = core::ObjectiveParams::from_alpha(0.9);
  config.num_machines = 16;  // the paper's 16 partitions
  config.num_rounds = rounds;
  config.adaptive_partitioning = false;
  const auto result = core::distributed_greedy(ground_set, k, config, initial);
  return {rounds, result.objective, timer.elapsed_seconds()};
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const std::size_t base_points = args.get_size("base", 2000);
  const std::size_t perturbations = args.get_size("perturb", 500);

  const auto base = data::toy_dataset(base_points, 100, 11);
  data::PerturbedConfig perturbed_config;
  perturbed_config.perturbations_per_point = perturbations;
  const data::PerturbedGroundSet ground_set(base, perturbed_config);
  const std::size_t n = ground_set.num_points();

  std::printf("=== Section 6.3: billion-scale stress test (%zu virtual points,"
              " %.2f GB if materialized) ===\n",
              n, static_cast<double>(ground_set.bytes_if_materialized()) / 1e9);

  CsvWriter csv(results_dir() + "/sec63_billion_scale.csv",
                {"ground_set", "subset_fraction", "config", "rounds", "included",
                 "excluded", "objective", "seconds"});

  for (const double fraction : {0.1, 0.5}) {
    const auto k = static_cast<std::size_t>(fraction * static_cast<double>(n));
    std::printf("\n--- %.0f%% subset (k = %zu) ---\n", fraction * 100, k);

    // Distributed greedy without bounding, 1/2/8 rounds (paper Sec. 6.3).
    double best_plain = 0.0;
    for (const std::size_t rounds : {1, 2, 8}) {
      const GreedyRun run = run_greedy(ground_set, k, rounds, nullptr);
      best_plain = std::max(best_plain, run.objective);
      std::printf("distributed greedy, %zu round(s): f(S) = %15.1f  (%s)\n",
                  run.rounds, run.objective, format_duration(run.seconds).c_str());
      csv.row(n, fraction, "greedy", rounds, 0, 0, run.objective, run.seconds);
    }

    // Bounding pre-passes (10 % subset only, as in the paper's write-up).
    if (fraction > 0.25) continue;
    struct BoundingVariant {
      const char* name;
      core::BoundingSampling sampling;
      double p;
    };
    const BoundingVariant variants[] = {
        {"exact bounding", core::BoundingSampling::kNone, 1.0},
        {"30% uniform", core::BoundingSampling::kUniform, 0.3},
        {"30% weighted", core::BoundingSampling::kWeighted, 0.3},
    };
    for (const BoundingVariant& variant : variants) {
      Timer timer;
      core::BoundingConfig config;
      config.objective = core::ObjectiveParams::from_alpha(0.9);
      config.sampling = variant.sampling;
      config.sample_fraction = variant.p;
      auto bounding = core::bound(ground_set, k, config);
      const double bound_seconds = timer.elapsed_seconds();
      std::printf("%-16s included %8zu (%6.3f%%), excluded %8zu (%6.2f%%)  (%s)\n",
                  variant.name, bounding.included, 100.0 * bounding.included / n,
                  bounding.excluded, 100.0 * bounding.excluded / n,
                  format_duration(bound_seconds).c_str());

      const GreedyRun after = run_greedy(ground_set, k, 8, &bounding.state);
      std::printf("%-16s + 8 rounds: f(S) = %15.1f (%.2f%% of plain 8-round)\n",
                  variant.name, after.objective,
                  100.0 * after.objective / best_plain);
      csv.row(n, fraction, variant.name, 8, bounding.included, bounding.excluded,
              after.objective, bound_seconds + after.seconds);
    }
  }

  std::printf("\npaper shape: scores increase monotonically with rounds; bounding"
              " excludes a large fraction up front and lands at or slightly above"
              " the no-bounding score.\n");
  return 0;
}
