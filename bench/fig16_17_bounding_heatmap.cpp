// Figures 16 and 17 (Appendix G): normalized scores of bounding followed by
// the adaptive distributed greedy, for the five bounding configurations
// {regular (none), 30 %/70 % uniform, 30 %/70 % weighted}, subset sizes
// {10, 50, 80} %, α = 0.9, partitions x rounds ∈ {1..32}², on the CIFAR-100
// (Fig. 16) and ImageNet (Fig. 17) proxies.
//
// Expected shape (paper): 30 % sampling shifts the whole 10 %-subset heatmap
// up (half the ground set is pre-excluded, so partitions hurt less); when
// bounding completes the subset on its own (50 %/80 % with aggressive
// sampling) the heatmap is CONSTANT — the greedy has nothing left to do —
// at a score slightly below or above 100.
//
// Normalization is per parameter group (dataset, α, subset size) across all
// five configurations, centralized greedy = 100, minimum observed = 0.
#include <optional>

#include "bench_util.h"
#include "core/bounding.h"

using namespace subsel;
using namespace subsel::bench;

namespace {

struct BoundingType {
  const char* name;
  core::BoundingSampling sampling;
  double fraction;
};

constexpr BoundingType kTypes[] = {
    {"regular", core::BoundingSampling::kNone, 0.0},  // no bounding pre-pass
    {"uniform (30%)", core::BoundingSampling::kUniform, 0.3},
    {"uniform (70%)", core::BoundingSampling::kUniform, 0.7},
    {"weighted (30%)", core::BoundingSampling::kWeighted, 0.3},
    {"weighted (70%)", core::BoundingSampling::kWeighted, 0.7},
};

using Grid = std::vector<std::vector<double>>;

/// Raw objectives for one bounding type over the partitions x rounds grid.
Grid run_grid(const data::Dataset& dataset, std::size_t k, const BoundingType& type,
              std::vector<double>& observed) {
  const auto params = core::ObjectiveParams::from_alpha(0.9);
  const auto ground_set = dataset.ground_set();
  const auto axis = paper_axis();

  std::optional<core::BoundingResult> bounding;
  if (type.fraction > 0.0) {  // "regular" (fraction 0) skips the pre-pass
    core::BoundingConfig config;
    config.objective = params;
    config.sampling = type.sampling;
    config.sample_fraction = type.fraction;
    bounding = core::bound(ground_set, k, config);
  }

  Grid grid(axis.size(), std::vector<double>(axis.size()));
  if (bounding.has_value() && bounding->complete()) {
    // Bounding solved the instance; every cell evaluates the same subset.
    core::PairwiseObjective objective(ground_set, params);
    const double value = objective.evaluate(bounding->state.selected_ids());
    for (auto& row : grid) {
      for (double& cell : row) cell = value;
    }
    observed.push_back(value);
    return grid;
  }

  for (std::size_t p = 0; p < axis.size(); ++p) {
    for (std::size_t r = 0; r < axis.size(); ++r) {
      core::DistributedGreedyConfig config;
      config.objective = params;
      config.num_machines = axis[p];
      config.num_rounds = axis[r];
      config.adaptive_partitioning = true;
      config.seed = 31 + 1000 * p + r;
      const auto run = core::distributed_greedy(
          ground_set, k, config, bounding.has_value() ? &bounding->state : nullptr);
      grid[p][r] = run.objective;
      observed.push_back(run.objective);
    }
  }
  return grid;
}

void run_dataset(const data::Dataset& dataset, CsvWriter& csv) {
  const auto params = core::ObjectiveParams::from_alpha(0.9);
  const auto axis = paper_axis();
  for (const double fraction : {0.1, 0.5, 0.8}) {
    const auto k = static_cast<std::size_t>(fraction * dataset.size());
    const double centralized =
        core::centralized_greedy(dataset.graph, dataset.utilities, params, k)
            .objective;

    std::vector<double> observed;
    std::vector<Grid> grids;
    grids.reserve(std::size(kTypes));
    for (const BoundingType& type : kTypes) {
      grids.push_back(run_grid(dataset, k, type, observed));
    }

    const core::ScoreNormalizer normalizer(centralized, observed);
    for (std::size_t t = 0; t < std::size(kTypes); ++t) {
      char title[160];
      std::snprintf(title, sizeof(title), "%s, %.0f%% subset, %s (adaptive)",
                    dataset.name.c_str(), fraction * 100, kTypes[t].name);
      HeatmapSpec spec;  // axes only, for printing
      std::printf("\n%s\n", title);
      std::printf("%10s", "part\\rnd");
      for (std::size_t rounds : spec.rounds) std::printf("%7zu", rounds);
      std::printf("\n");
      for (std::size_t p = 0; p < axis.size(); ++p) {
        std::printf("%10zu", axis[p]);
        for (std::size_t r = 0; r < axis.size(); ++r) {
          const double score = normalizer.normalize(grids[t][p][r]);
          std::printf("%7.0f", score);
          csv.row(dataset.name, 0.9, fraction, 1, kTypes[t].name, axis[p], axis[r],
                  grids[t][p][r], score, centralized);
        }
        std::printf("\n");
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const double cifar_scale = args.get_double("scale", 0.1);
  std::printf("=== Figures 16/17: heatmaps with bounding pre-pass ===\n");

  CsvWriter csv(results_dir() + "/fig16_17_bounding_heatmap.csv",
                {"dataset", "alpha", "subset_fraction", "adaptive", "bounding",
                 "partitions", "rounds", "objective", "normalized", "centralized"});

  Timer timer;
  const auto cifar = data::cifar_proxy(cifar_scale);
  run_dataset(cifar, csv);
  const auto imagenet = data::imagenet_proxy(cifar_scale / 2.0);
  run_dataset(imagenet, csv);

  std::printf("\ntotal time: %s; csv: %s/fig16_17_bounding_heatmap.csv\n",
              format_duration(timer.elapsed_seconds()).c_str(), results_dir().c_str());
  return 0;
}
