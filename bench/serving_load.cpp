// Open-loop load generator for the selection daemon (`subsel serve`).
//
// Arrivals are Poisson (seeded exponential inter-arrival gaps) and OPEN
// loop: the generator never waits for a response before sending the next
// request, so a server that falls behind faces a growing backlog exactly
// like production traffic — closed-loop generators hide overload by
// self-throttling (coordinated omission). Each sweep point offers a fixed
// arrival rate for a fixed request count, split across the two priority
// classes with per-class deadlines, and reports per-class throughput and
// p50/p95/p99 end-to-end latency plus the server-reported outcome mix.
//
// Two transports, same protocol:
//   default          in-process: SelectionServer::submit on a ground set
//                    registered directly (no socket, no daemon)
//   --socket=PATH    drives a running `subsel serve` daemon through
//                    ServeClient (--dataset names one of its datasets)
//
// Output: BENCH_serving.json (schema subsel.bench_serving.v1), also mirrored
// as one CSV row per (rate, class) to bench_results/serving_load.csv.
//
//   serving_load [--rates=40,80,160] [--requests=N] [--k=N] [--points=N]
//                [--interactive-deadline-ms=N] [--batch-deadline-ms=N]
//                [--interactive-share=F] [--max-concurrent=N]
//                [--queue-capacity=N] [--solver=NAME] [--seed=N]
//                [--socket=PATH --dataset=NAME] [--out=FILE]
#include "bench_util.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <memory>
#include <mutex>
#include <random>
#include <thread>

#include "common/json.h"
#include "common/stats.h"
#include "graph/ground_set.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/wire.h"

using namespace subsel;
using namespace subsel::bench;

namespace {

/// Outcome tallies + latency samples for one (rate, class) cell.
struct ClassResult {
  std::size_t offered = 0;
  std::size_t completed = 0;
  std::size_t degraded = 0;
  std::size_t rejected = 0;
  std::size_t errors = 0;
  std::vector<double> latencies;  // total_seconds of answered requests
};

struct SweepResult {
  double rate_hz = 0.0;
  double elapsed_seconds = 0.0;
  ClassResult per_class[serve::kNumPriorities];
};

/// Collects responses across transports; the generator thread blocks on
/// wait() after the last send.
class Collector {
 public:
  explicit Collector(std::size_t expected) : expected_(expected) {}

  void record(serve::Priority priority, const std::string& status,
              double total_seconds) {
    std::lock_guard lock(mutex_);
    ClassResult& result = per_class_[static_cast<std::size_t>(priority)];
    if (status == "complete") {
      ++result.completed;
      result.latencies.push_back(total_seconds);
    } else if (status == "degraded") {
      ++result.degraded;
      result.latencies.push_back(total_seconds);
    } else if (status == "rejected") {
      ++result.rejected;
    } else {
      ++result.errors;
    }
    if (++received_ == expected_) done_.notify_all();
  }

  void wait() {
    std::unique_lock lock(mutex_);
    done_.wait(lock, [this] { return received_ >= expected_; });
  }

  ClassResult take(serve::Priority priority) {
    std::lock_guard lock(mutex_);
    return std::move(per_class_[static_cast<std::size_t>(priority)]);
  }

 private:
  const std::size_t expected_;
  std::mutex mutex_;
  std::condition_variable done_;
  std::size_t received_ = 0;
  ClassResult per_class_[serve::kNumPriorities];
};

struct SweepSpec {
  double rate_hz = 0.0;
  std::size_t requests = 0;
  double interactive_share = 0.5;
  std::uint64_t interactive_deadline_ms = 0;
  std::uint64_t batch_deadline_ms = 0;
  std::uint64_t seed = 0;
  std::string dataset;
  std::string solver;
  std::size_t k = 0;
};

serve::ServeRequest make_request(const SweepSpec& spec, std::size_t index,
                                 serve::Priority priority) {
  serve::ServeRequest request;
  request.id = "load-" + std::to_string(spec.seed) + "-" + std::to_string(index);
  request.priority = priority;
  request.deadline_ms = priority == serve::Priority::kInteractive
                            ? spec.interactive_deadline_ms
                            : spec.batch_deadline_ms;
  request.dataset = spec.dataset;
  request.k = spec.k;
  request.solver = spec.solver;
  // Identical parameters per class keep responses comparable across the
  // sweep; latency payload stays small with the id echo off.
  request.seed = 23;
  request.return_selection = false;
  return request;
}

/// Offers `spec.requests` arrivals at `spec.rate_hz` and blocks until every
/// response arrived. `send` dispatches one request through the transport.
template <typename Send>
SweepResult run_sweep(const SweepSpec& spec, Send&& send) {
  Collector collector(spec.requests);
  std::mt19937_64 rng(spec.seed);
  std::exponential_distribution<double> gap(spec.rate_hz);
  std::bernoulli_distribution interactive(spec.interactive_share);

  SweepResult result;
  result.rate_hz = spec.rate_hz;
  Timer elapsed;
  auto next_arrival = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < spec.requests; ++i) {
    next_arrival += std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(gap(rng)));
    std::this_thread::sleep_until(next_arrival);
    const auto priority = interactive(rng) ? serve::Priority::kInteractive
                                           : serve::Priority::kBatch;
    ++result.per_class[static_cast<std::size_t>(priority)].offered;
    send(make_request(spec, i, priority), priority, collector);
  }
  collector.wait();
  result.elapsed_seconds = elapsed.elapsed_seconds();
  for (std::size_t c = 0; c < serve::kNumPriorities; ++c) {
    const auto offered = result.per_class[c].offered;
    result.per_class[c] = collector.take(static_cast<serve::Priority>(c));
    result.per_class[c].offered = offered;
  }
  return result;
}

void emit_class_json(JsonWriter& json, const SweepResult& sweep,
                     serve::Priority priority, ClassResult& result) {
  json.begin_object();
  json.key("class").value(serve::priority_name(priority));
  json.key("offered").value(result.offered);
  json.key("completed").value(result.completed);
  json.key("degraded").value(result.degraded);
  json.key("rejected").value(result.rejected);
  json.key("errors").value(result.errors);
  json.key("answered_throughput_hz")
      .value(sweep.elapsed_seconds > 0.0
                 ? static_cast<double>(result.completed + result.degraded) /
                       sweep.elapsed_seconds
                 : 0.0);
  json.key("latency_seconds").begin_object();
  json.key("p50").value(percentile(result.latencies, 50.0));
  json.key("p95").value(percentile(result.latencies, 95.0));
  json.key("p99").value(percentile(result.latencies, 99.0));
  json.key("max").value(result.latencies.empty() ? 0.0
                                                 : result.latencies.back());
  json.end_object();
  json.end_object();
}

std::vector<double> parse_rates(const std::string& spec) {
  std::vector<double> rates;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string token =
        spec.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!token.empty()) rates.push_back(std::atof(token.c_str()));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const auto rates = parse_rates(args.get_string("rates", "40,80,160"));
  const std::size_t requests = args.get_size("requests", 120);
  const std::size_t points = args.get_size("points", 2000);
  const std::size_t k = args.get_size("k", 50);
  const std::string solver = args.get_string("solver", "distributed-greedy");
  const std::uint64_t seed = args.get_size("seed", 7);
  const std::string socket_path = args.get_string("socket", "");
  const std::string out = args.get_string("out", "BENCH_serving.json");

  SweepSpec spec;
  spec.requests = requests;
  spec.interactive_share = args.get_double("interactive-share", 0.5);
  spec.interactive_deadline_ms = args.get_size("interactive-deadline-ms", 400);
  spec.batch_deadline_ms = args.get_size("batch-deadline-ms", 2000);
  spec.solver = solver;
  spec.k = k;

  // In-process mode owns its server + toy ground set; socket mode drives a
  // daemon someone else started.
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<graph::InMemoryGroundSet> ground_set;
  std::unique_ptr<serve::SelectionServer> server;
  std::unique_ptr<serve::ServeClient> client;
  if (socket_path.empty()) {
    spec.dataset = "toy";
    dataset = std::make_unique<data::Dataset>(
        data::toy_dataset(points, 10, 42));
    ground_set = std::make_unique<graph::InMemoryGroundSet>(
        dataset->graph, dataset->utilities);
    serve::ServerConfig config;
    config.queue_capacity = args.get_size("queue-capacity", 256);
    config.max_concurrent = args.get_size("max-concurrent", 2);
    server = std::make_unique<serve::SelectionServer>(config);
    server->register_ground_set(spec.dataset, ground_set.get());
  } else {
    spec.dataset = args.get_string("dataset", "toy");
    client = std::make_unique<serve::ServeClient>(socket_path);
  }

  std::printf("=== Serving load: open-loop Poisson, %zu requests/rate,"
              " %s transport, solver=%s, k=%zu ===\n",
              requests, socket_path.empty() ? "in-process" : "socket",
              solver.c_str(), k);
  std::printf("deadlines: interactive %llu ms, batch %llu ms\n",
              static_cast<unsigned long long>(spec.interactive_deadline_ms),
              static_cast<unsigned long long>(spec.batch_deadline_ms));

  CsvWriter csv(results_dir() + "/serving_load.csv",
                {"rate_hz", "class", "offered", "completed", "degraded",
                 "rejected", "errors", "p50_s", "p95_s", "p99_s"});

  JsonWriter json;
  json.begin_object();
  json.key("schema").value("subsel.bench_serving.v1");
  json.key("schema_version").value(serve::kServeSchemaVersion);
  json.key("config").begin_object();
  json.key("transport").value(socket_path.empty() ? "in-process" : "socket");
  json.key("requests_per_rate").value(requests);
  json.key("points").value(points);
  json.key("k").value(k);
  json.key("solver").value(solver);
  json.key("dataset").value(spec.dataset);
  json.key("interactive_share").value(spec.interactive_share);
  json.key("interactive_deadline_ms").value(spec.interactive_deadline_ms);
  json.key("batch_deadline_ms").value(spec.batch_deadline_ms);
  json.key("seed").value(seed);
  json.end_object();
  json.key("sweeps").begin_array();

  for (std::size_t r = 0; r < rates.size(); ++r) {
    spec.rate_hz = rates[r];
    // Distinct arrival pattern per rate, deterministic across runs.
    spec.seed = seed + 1000 * r;

    SweepResult sweep;
    if (server != nullptr) {
      sweep = run_sweep(spec, [&](serve::ServeRequest request,
                                  serve::Priority priority,
                                  Collector& collector) {
        server->submit(std::move(request),
                       [&collector, priority](serve::ServeResponse response) {
                         collector.record(priority, response.status_name(),
                                          response.latency.total_seconds);
                       });
      });
    } else {
      // One waiter thread per request keeps the generator loop open-loop
      // while futures resolve out of order.
      std::vector<std::thread> waiters;
      waiters.reserve(requests);
      sweep = run_sweep(spec, [&](serve::ServeRequest request,
                                  serve::Priority priority,
                                  Collector& collector) {
        auto future = client->submit(request);
        waiters.emplace_back(
            [future = std::move(future), priority, &collector]() mutable {
              try {
                const auto response = future.get();
                collector.record(priority, response.status,
                                 response.latency.total_seconds);
              } catch (const std::exception&) {
                collector.record(priority, "error", 0.0);
              }
            });
      });
      for (auto& waiter : waiters) waiter.join();
    }

    json.begin_object();
    json.key("rate_hz").value(sweep.rate_hz);
    json.key("elapsed_seconds").value(sweep.elapsed_seconds);
    json.key("classes").begin_array();
    for (std::size_t c = 0; c < serve::kNumPriorities; ++c) {
      const auto priority = static_cast<serve::Priority>(c);
      ClassResult& result = sweep.per_class[c];
      emit_class_json(json, sweep, priority, result);
      std::vector<double> sorted = result.latencies;
      csv.row(sweep.rate_hz, serve::priority_name(priority), result.offered,
              result.completed, result.degraded, result.rejected,
              result.errors, percentile(sorted, 50.0),
              percentile(sorted, 95.0), percentile(sorted, 99.0));
      std::printf("rate %6.1f/s %-12s offered %4zu -> %4zu complete,"
                  " %3zu degraded, %3zu rejected, %2zu errors |"
                  " p50 %s p95 %s p99 %s\n",
                  sweep.rate_hz, serve::priority_name(priority),
                  result.offered, result.completed, result.degraded,
                  result.rejected, result.errors,
                  format_duration(percentile(sorted, 50.0)).c_str(),
                  format_duration(percentile(sorted, 95.0)).c_str(),
                  format_duration(percentile(sorted, 99.0)).c_str());
    }
    json.end_array();
    json.end_object();
  }

  json.end_array();
  json.end_object();

  std::ofstream file(out, std::ios::trunc);
  file << json.str() << '\n';
  file.close();
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 2;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
