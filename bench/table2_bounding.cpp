// Table 2: bounding results for alpha = 0.9 on CIFAR-100 and ImageNet, for
// subset sizes {10, 50, 80} % and bounding types {exact, 30 %/70 % uniform,
// 30 %/70 % weighted}. Reports included/excluded points, grow/shrink rounds,
// and the normalized score of bounding followed by centralized greedy
// completion (1 partition / 1 round), relative to plain centralized greedy.
//
// Expected shape (paper): exact bounding only decides for extreme subset
// sizes (excludes for 10 %, includes for 80 %, nothing at 50 %); 30 %
// sampling makes many more decisions (excluding ~half the set at 10 %,
// often completing the subset alone at 80 %); scores stay near (occasionally
// above) 100 %.
//
// Also reproduces the Section 6.2 finding that alpha in {0.5, 0.1} makes no
// decisions (run with --all-alphas).
#include "bench_util.h"
#include "core/bounding.h"
#include "core/selection_pipeline.h"

using namespace subsel;
using namespace subsel::bench;

namespace {

struct BoundingType {
  const char* name;
  core::BoundingSampling sampling;
  double fraction;
};

constexpr BoundingType kTypes[] = {
    {"exact (no sampling)", core::BoundingSampling::kNone, 1.0},
    {"30% uniform", core::BoundingSampling::kUniform, 0.3},
    {"70% uniform", core::BoundingSampling::kUniform, 0.7},
    {"30% weighted", core::BoundingSampling::kWeighted, 0.3},
    {"70% weighted", core::BoundingSampling::kWeighted, 0.7},
};

void run_dataset(const data::Dataset& dataset, double alpha, CsvWriter& csv) {
  const auto params = core::ObjectiveParams::from_alpha(alpha);
  std::printf("\n--- %s (%zu points), alpha=%.1f ---\n", dataset.name.c_str(),
              dataset.size(), alpha);
  std::printf("%-20s %-10s %10s %10s %6s %7s %9s\n", "type", "subset", "included",
              "excluded", "grow", "shrink", "score%");

  const auto ground_set = dataset.ground_set();
  for (const double fraction : {0.1, 0.5, 0.8}) {
    const auto k = static_cast<std::size_t>(fraction * dataset.size());
    const double centralized =
        core::centralized_greedy(dataset.graph, dataset.utilities, params, k)
            .objective;
    for (const BoundingType& type : kTypes) {
      core::SelectionPipelineConfig config;
      config.objective = params;
      config.use_bounding = true;
      config.bounding.sampling = type.sampling;
      config.bounding.sample_fraction = type.fraction;
      config.greedy.num_machines = 1;  // Table 2 scores vs 1 partition/1 round
      config.greedy.num_rounds = 1;

      const auto result = core::select_subset(ground_set, k, config);
      const auto& bounding = *result.bounding;
      const double score = centralized != 0.0
                               ? 100.0 * result.objective / centralized
                               : 100.0;
      std::printf("%-20s %-10.0f %10zu %10zu %6zu %7zu %8.2f%%\n", type.name,
                  fraction * 100, bounding.included, bounding.excluded,
                  bounding.grow_rounds, bounding.shrink_rounds, score);
      csv.row(dataset.name, alpha, fraction, type.name, bounding.included,
              bounding.excluded, bounding.grow_rounds, bounding.shrink_rounds,
              result.objective, centralized, score);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const double scale = args.get_double("scale", 0.2);
  std::printf("=== Table 2: bounding results ===\n");

  CsvWriter csv(results_dir() + "/table2_bounding.csv",
                {"dataset", "alpha", "subset_fraction", "type", "included", "excluded",
                 "grow_rounds", "shrink_rounds", "objective", "centralized", "score"});

  const auto cifar = data::cifar_proxy(scale);
  const auto imagenet = data::imagenet_proxy(scale / 2.0);

  std::vector<double> alphas{0.9};
  if (args.has_flag("all-alphas")) alphas = {0.9, 0.5, 0.1};
  Timer timer;
  for (double alpha : alphas) {
    run_dataset(cifar, alpha, csv);
    run_dataset(imagenet, alpha, csv);
  }
  std::printf("\ntotal time: %s; csv: %s/table2_bounding.csv\n",
              format_duration(timer.elapsed_seconds()).c_str(), results_dir().c_str());
  return 0;
}
