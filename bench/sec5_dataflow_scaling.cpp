// Section 5 ("Implementing bounding and scoring"): empirical analysis of
// the dataflow configurations. Sweeps the shard ("machine") count for the
// join-based bounding and scoring pipelines and reports wall time plus the
// peak per-shard working set — the quantity a real worker's DRAM must
// cover. Also verifies the engine under progressively tighter per-worker
// budgets: the peak shrinks roughly like 1/shards, so the same pipeline
// runs on "machines" a fraction of the instance's size.
//
// Expected shape: the in-memory reference is faster (no shuffles) but needs
// the whole instance resident; the dataflow path trades constant-factor
// time for a per-worker footprint that falls as shards grow.
#include "bench_util.h"

#include "beam/beam_pipeline.h"
#include "beam/beam_scoring.h"
#include "core/bounding.h"

using namespace subsel;
using namespace subsel::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const double scale = args.get_double("scale", 0.2);
  const auto dataset = data::cifar_proxy(scale);
  const std::size_t n = dataset.size();
  const std::size_t k = n / 10;
  const auto ground_set = dataset.ground_set();

  core::BoundingConfig bounding_config;
  bounding_config.objective = core::ObjectiveParams::from_alpha(0.9);
  bounding_config.sampling = core::BoundingSampling::kUniform;
  bounding_config.sample_fraction = 0.3;

  std::printf("=== Section 5: dataflow configuration analysis (CIFAR proxy,"
              " %zu points, k=%zu) ===\n", n, k);

  CsvWriter csv(results_dir() + "/sec5_dataflow_scaling.csv",
                {"stage", "shards", "seconds", "peak_shard_bytes", "value"});

  // Reference: in-memory bounding (whole instance resident on one machine).
  Timer timer;
  const auto reference = core::bound(ground_set, k, bounding_config);
  const double reference_seconds = timer.elapsed_seconds();
  std::printf("\n%-28s %8s %12s %16s\n", "stage", "shards", "time", "peak/shard");
  std::printf("%-28s %8s %12s %16s\n", "in-memory bounding", "-",
              format_duration(reference_seconds).c_str(), "whole instance");
  csv.row("inmemory_bound", 1, reference_seconds, 0, reference.included);

  for (const std::size_t shards : {std::size_t{4}, std::size_t{16}, std::size_t{64},
                                   std::size_t{256}}) {
    dataflow::PipelineOptions options;
    options.num_shards = shards;
    dataflow::Pipeline pipeline(options);
    timer.reset();
    const auto bounding = beam::beam_bound(pipeline, ground_set, k, bounding_config);
    const double seconds = timer.elapsed_seconds();
    std::printf("%-28s %8zu %12s %13.1f KB\n", "dataflow bounding", shards,
                format_duration(seconds).c_str(),
                static_cast<double>(pipeline.peak_shard_bytes()) / 1e3);
    csv.row("beam_bound", shards, seconds, pipeline.peak_shard_bytes(),
            bounding.included);
    if (bounding.included != reference.included ||
        bounding.excluded != reference.excluded) {
      std::printf("  WARNING: decisions diverged from the in-memory reference\n");
    }
  }

  // Scoring sweep (same join plan, one pass).
  std::vector<core::NodeId> subset;
  for (core::NodeId v = 0; v < static_cast<core::NodeId>(n); v += 10) {
    subset.push_back(v);
  }
  core::PairwiseObjective objective(ground_set, bounding_config.objective);
  timer.reset();
  const double in_memory_score = objective.evaluate(subset);
  std::printf("%-28s %8s %12s %16s\n", "in-memory scoring", "-",
              format_duration(timer.elapsed_seconds()).c_str(), "whole instance");
  for (const std::size_t shards : {std::size_t{16}, std::size_t{256}}) {
    dataflow::PipelineOptions options;
    options.num_shards = shards;
    dataflow::Pipeline pipeline(options);
    timer.reset();
    const double score =
        beam::beam_score(pipeline, ground_set, subset, bounding_config.objective);
    const double seconds = timer.elapsed_seconds();
    std::printf("%-28s %8zu %12s %13.1f KB\n", "dataflow scoring", shards,
                format_duration(seconds).c_str(),
                static_cast<double>(pipeline.peak_shard_bytes()) / 1e3);
    csv.row("beam_score", shards, seconds, pipeline.peak_shard_bytes(), score);
    if (std::abs(score - in_memory_score) > 1e-6 * std::abs(in_memory_score)) {
      std::printf("  WARNING: score diverged (%.6f vs %.6f)\n", score,
                  in_memory_score);
    }
  }

  // Tight budgets: find how little per-worker DRAM still completes the full
  // end-to-end selection at 256 shards.
  std::printf("\nend-to-end selection under per-worker budgets (256 shards):\n");
  core::SelectionPipelineConfig pipeline_config;
  pipeline_config.objective = bounding_config.objective;
  pipeline_config.bounding = bounding_config;
  pipeline_config.greedy.num_machines = 16;
  pipeline_config.greedy.num_rounds = 4;
  for (const std::size_t budget_kb : {std::size_t{0}, std::size_t{1024},
                                      std::size_t{256}, std::size_t{64}}) {
    dataflow::PipelineOptions options;
    options.num_shards = 256;
    options.worker_memory_bytes = budget_kb * 1024;
    dataflow::Pipeline pipeline(options);
    timer.reset();
    try {
      const auto result =
          beam::beam_select_subset(pipeline, ground_set, k, pipeline_config);
      std::printf("  budget %6zu KB: f(S)=%.2f, peak %7.1f KB, %s\n",
                  budget_kb, result.objective,
                  static_cast<double>(pipeline.peak_shard_bytes()) / 1e3,
                  format_duration(timer.elapsed_seconds()).c_str());
      csv.row("budget_run", 256, timer.elapsed_seconds(),
              pipeline.peak_shard_bytes(), result.objective);
    } catch (const dataflow::PipelineMemoryError& e) {
      std::printf("  budget %6zu KB: infeasible (a shard needed %zu bytes)\n",
                  budget_kb, e.needed_bytes);
      csv.row("budget_run", 256, 0.0, e.needed_bytes, -1.0);
    }
  }

  std::printf("\npaper shape: decisions identical across configurations; the"
              " per-shard peak falls with the shard count, which is what lets"
              " the same pipeline run on small machines.\n");
  return 0;
}
