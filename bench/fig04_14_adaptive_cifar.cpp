// Figures 4 and 14: same grid as Figures 3/12 but WITH adaptive partitioning.
//
// Expected shape (paper): scores rise drastically vs. the non-adaptive grid —
// many cells saturate at ~100 because later rounds collapse to few
// partitions; the benefit is largest for small target subsets.
#include "bench_util.h"

using namespace subsel;
using namespace subsel::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const double scale = args.get_double("scale", 0.2);
  const auto dataset = data::cifar_proxy(scale);
  std::printf("=== Figures 4/14: CIFAR-100 proxy (%zu points), adaptive ===\n",
              dataset.size());

  CsvWriter csv(results_dir() + "/fig04_14_adaptive_cifar.csv", kHeatmapCsvHeader);
  Timer timer;
  for (const double fraction : {0.1, 0.5, 0.8}) {
    for (const double alpha : {0.9, 0.5, 0.1}) {
      HeatmapSpec spec;
      spec.dataset = &dataset;
      spec.alpha = alpha;
      spec.subset_fraction = fraction;
      spec.adaptive = true;
      const auto result = run_heatmap(spec);
      char title[128];
      std::snprintf(title, sizeof(title),
                    "%.0f%% subset, alpha=%.1f (normalized, adaptive partitioning)",
                    fraction * 100, alpha);
      print_heatmap(title, spec, result.normalized);
      heatmap_to_csv(csv, "cifar100_proxy", spec, result);
    }
  }
  std::printf("\ntotal time: %s; csv: %s/fig04_14_adaptive_cifar.csv\n",
              format_duration(timer.elapsed_seconds()).c_str(), results_dir().c_str());
  return 0;
}
