// Figure 1: step-by-step visualization of distributed bounding finding a
// 50 % subset of 6 data points. We build a 6-point instance, run grow/shrink
// passes one at a time, and print the Umin/Umax state after each — the same
// walk-through the paper draws.
#include <cstdio>

#include "bench_util.h"
#include "core/bounding.h"
#include "graph/ground_set.h"

using namespace subsel;

namespace {

void print_state(const core::SelectionState& state, const graph::GroundSet& ground_set,
                 const core::BoundingConfig& config, std::uint64_t salt) {
  std::vector<double> u_min, u_max;
  core::detail::compute_utility_bounds(ground_set, state, config, salt, u_min, u_max);
  std::printf("  %-6s %-12s %-10s %-10s\n", "point", "state", "Umin", "Umax");
  for (std::size_t i = 0; i < state.size(); ++i) {
    const auto v = static_cast<core::NodeId>(i);
    const char* label = state.is_selected(v)    ? "selected"
                        : state.is_discarded(v) ? "discarded"
                                                : "unassigned";
    if (state.is_unassigned(v)) {
      std::printf("  %-6zu %-12s %-10.3f %-10.3f\n", i, label, u_min[i], u_max[i]);
    } else {
      std::printf("  %-6zu %-12s %-10s %-10s\n", i, label, "-", "-");
    }
  }
}

}  // namespace

int main() {
  std::printf("=== Figure 1: bounding walk-through (6 points, 50%% subset) ===\n");

  // Two tight pairs plus two independent points; utilities chosen so the
  // bounds make visible decisions in each pass.
  std::vector<graph::NeighborList> lists(6);
  lists[0].edges = {{1, 0.9f}};
  lists[2].edges = {{3, 0.8f}};
  auto graph = graph::SimilarityGraph::from_lists(lists).symmetrized();
  const std::vector<double> utilities{1.0, 0.95, 0.30, 0.25, 0.85, 0.05};
  graph::InMemoryGroundSet ground_set(graph, utilities);

  core::BoundingConfig config;
  config.objective = core::ObjectiveParams{0.5, 0.5};
  const std::size_t k = 3;

  core::SelectionState state(6);
  std::size_t k_remaining = k;
  std::uint64_t salt = 0;

  std::printf("\ninitial bounds (k = %zu):\n", k_remaining);
  print_state(state, ground_set, config, 0);

  for (int pass = 1; pass <= 4 && k_remaining > 0; ++pass) {
    const std::size_t discarded =
        core::shrink_step(ground_set, state, k_remaining, config, ++salt);
    std::printf("\nshrink pass %d: discarded %zu point(s)\n", pass, discarded);
    const std::size_t grown =
        core::grow_step(ground_set, state, k_remaining, config, ++salt);
    std::printf("grow pass %d: selected %zu point(s), k remaining %zu\n", pass, grown,
                k_remaining);
    print_state(state, ground_set, config, salt);
    if (discarded == 0 && grown == 0) break;
  }

  const auto result = core::bound(ground_set, k, config);
  std::printf("\nfull Algorithm 5: included %zu, excluded %zu, grow/shrink rounds"
              " %zu/%zu, complete=%s\n",
              result.included, result.excluded, result.grow_rounds,
              result.shrink_rounds, result.complete() ? "yes" : "no");
  std::printf("paper shape: bounding alternates shrink/grow and settles high-utility"
              " points without any central subset store.\n");
  return 0;
}
