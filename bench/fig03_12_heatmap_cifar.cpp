// Figures 3 and 12: normalized scores of the distributed greedy algorithm on
// CIFAR-100 WITHOUT adaptive partitioning, for subset sizes {10, 50, 80} %,
// alpha in {0.9, 0.5, 0.1}, partitions x rounds in {1..32}^2.
//
// Expected shape (paper): 100 in the first row (1 partition); scores fall as
// partitions grow and rise with more rounds; multi-round gains are largest
// for small subsets.
//
// Default --scale=0.2 (10k points) for bench-suite runtime; --scale=1
// reproduces the paper's 50k cardinality.
#include "bench_util.h"

using namespace subsel;
using namespace subsel::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const double scale = args.get_double("scale", 0.2);
  const auto dataset = data::cifar_proxy(scale);
  std::printf("=== Figures 3/12: CIFAR-100 proxy (%zu points), non-adaptive ===\n",
              dataset.size());

  CsvWriter csv(results_dir() + "/fig03_12_heatmap_cifar.csv", kHeatmapCsvHeader);
  Timer timer;
  for (const double fraction : {0.1, 0.5, 0.8}) {
    for (const double alpha : {0.9, 0.5, 0.1}) {
      HeatmapSpec spec;
      spec.dataset = &dataset;
      spec.alpha = alpha;
      spec.subset_fraction = fraction;
      spec.adaptive = false;
      const auto result = run_heatmap(spec);
      char title[128];
      std::snprintf(title, sizeof(title),
                    "%.0f%% subset, alpha=%.1f (normalized scores, centralized=100)",
                    fraction * 100, alpha);
      print_heatmap(title, spec, result.normalized);
      heatmap_to_csv(csv, "cifar100_proxy", spec, result);
    }
  }
  std::printf("\ntotal time: %s; csv: %s/fig03_12_heatmap_cifar.csv\n",
              format_duration(timer.elapsed_seconds()).c_str(), results_dir().c_str());
  return 0;
}
