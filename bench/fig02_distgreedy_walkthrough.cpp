// Figure 2: the distributed greedy algorithm finding a subset of size 3 out
// of 10 points using 2 rounds with 3 partitions. We print each round's
// partitioning, per-partition selections, and the union.
#include <cstdio>

#include "bench_util.h"
#include "core/distributed_greedy.h"

using namespace subsel;

int main() {
  std::printf("=== Figure 2: distributed greedy walk-through"
              " (10 points, k=3, 2 rounds, 3 partitions) ===\n");

  // A ring of 10 points with mixed utilities.
  std::vector<graph::NeighborList> lists(10);
  for (int i = 0; i < 10; ++i) {
    lists[i].edges.push_back({(i + 1) % 10, 0.5f});
  }
  auto graph = graph::SimilarityGraph::from_lists(lists).symmetrized();
  std::vector<double> utilities{0.9, 0.2, 0.7, 0.4, 0.8, 0.1, 0.6, 0.3, 0.95, 0.5};
  graph::InMemoryGroundSet ground_set(graph, utilities);

  core::DistributedGreedyConfig config;
  config.objective = core::ObjectiveParams{0.9, 0.1};
  config.num_machines = 3;
  config.num_rounds = 2;
  config.adaptive_partitioning = false;
  config.seed = 4;

  const auto result = core::distributed_greedy(ground_set, 3, config);
  for (const auto& round : result.rounds) {
    std::printf("round %zu: |V_in|=%zu, target=%zu, partitions=%zu, |V_out|=%zu\n",
                round.round, round.input_size, round.target_size,
                round.num_partitions, round.output_size);
  }
  std::printf("selected subset:");
  for (auto v : result.selected) std::printf(" %lld", static_cast<long long>(v));
  std::printf("\nobjective f(S) = %.4f\n", result.objective);

  const auto centralized =
      core::centralized_greedy(graph, utilities, config.objective, 3);
  std::printf("centralized greedy objective = %.4f\n", centralized.objective);
  std::printf("paper shape: per-round partition -> per-partition greedy -> union,"
              " no centralized merge.\n");
  return 0;
}
