// Ablation: every selection algorithm in the repo on one workload — quality
// (normalized to centralized greedy = 100), wall time, and the peak number
// of elements a single machine must hold. This is the systems argument of
// Sections 1-2 in one table: the centralized/lazy/stochastic/threshold
// variants need the whole instance resident; SieveStreaming still needs the
// subset resident; GreeDi needs the m·k merge resident; only bounding + the
// multi-round distributed greedy keep every machine's footprint at
// O(|V|/m).
//
// Default --scale=0.2 (10k points), 10 % subset, alpha = 0.9.
#include "bench_util.h"

#include "baselines/baselines.h"
#include "baselines/streaming.h"
#include "core/bounding.h"
#include "core/selection_pipeline.h"

using namespace subsel;
using namespace subsel::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const double scale = args.get_double("scale", 0.2);
  const auto dataset = data::cifar_proxy(scale);
  const std::size_t n = dataset.size();
  const std::size_t k = n / 10;
  const auto params = core::ObjectiveParams::from_alpha(0.9);
  const auto ground_set = dataset.ground_set();
  core::PairwiseObjective objective(ground_set, params);

  std::printf("=== Ablation: selection algorithms (CIFAR proxy, %zu points,"
              " k=%zu, alpha=0.9) ===\n", n, k);
  std::printf("%-36s %8s %10s %16s\n", "algorithm", "score%", "time", "resident");

  CsvWriter csv(results_dir() + "/ablation_baselines.csv",
                {"algorithm", "objective", "score", "seconds", "resident_elements"});

  double centralized_objective = 0.0;
  const auto report = [&](const char* name, const std::vector<core::NodeId>& selected,
                          double seconds, std::size_t resident) {
    const double value = objective.evaluate(selected);
    if (centralized_objective == 0.0) centralized_objective = value;
    const double score = 100.0 * value / centralized_objective;
    std::printf("%-36s %7.2f%% %10s %16zu\n", name, score,
                format_duration(seconds).c_str(), resident);
    csv.row(name, value, score, seconds, resident);
  };

  Timer timer;
  const auto greedy =
      core::centralized_greedy(dataset.graph, dataset.utilities, params, k);
  report("centralized greedy (Alg. 2)", greedy.selected, timer.elapsed_seconds(), n);

  timer.reset();
  const auto lazy = baselines::lazy_greedy(ground_set, params, k);
  report("lazy greedy (Minoux)", lazy.selected, timer.elapsed_seconds(), n);

  timer.reset();
  const auto stochastic = baselines::stochastic_greedy(ground_set, params, k);
  report("stochastic greedy", stochastic.selected, timer.elapsed_seconds(), n);

  timer.reset();
  const auto threshold = baselines::threshold_greedy(ground_set, params, k);
  report("threshold greedy", threshold.selected, timer.elapsed_seconds(), n);

  timer.reset();
  baselines::SieveStreamingConfig sieve_config;
  sieve_config.objective = params;
  const auto sieve = baselines::sieve_streaming(ground_set, k, sieve_config);
  report("SieveStreaming (1 pass)", sieve.selected, timer.elapsed_seconds(),
         sieve.peak_resident_elements);

  timer.reset();
  baselines::SamplePruneConfig sp_config;
  sp_config.objective = params;
  const auto sp = baselines::sample_and_prune(ground_set, k, sp_config);
  report("SAMPLE&PRUNE (Kumar et al.)", sp.selected, timer.elapsed_seconds(),
         sp.peak_resident_elements);

  timer.reset();
  const auto kcenter =
      baselines::greedy_k_center(dataset.embeddings, ground_set, params, k);
  report("greedy k-center (diversity only)", kcenter.selected,
         timer.elapsed_seconds(), n);

  timer.reset();
  baselines::GreeDiConfig greedi_config;
  greedi_config.objective = params;
  greedi_config.num_machines = 8;
  const auto greedi = baselines::greedi(ground_set, k, greedi_config);
  report("RandGreeDi (central merge)", greedi.selected, timer.elapsed_seconds(),
         std::max(n / 8, greedi.merge_candidates));

  timer.reset();
  core::SelectionPipelineConfig pipeline_config;
  pipeline_config.objective = params;
  pipeline_config.bounding.sampling = core::BoundingSampling::kUniform;
  pipeline_config.bounding.sample_fraction = 0.3;
  pipeline_config.greedy.num_machines = 8;
  pipeline_config.greedy.num_rounds = 8;
  const auto ours = core::select_subset(ground_set, k, pipeline_config);
  std::size_t ours_resident = n / 8;  // per-partition ground-set share
  for (const auto& round : ours.greedy_rounds) {
    ours_resident = std::max(ours_resident,
                             round.peak_partition_bytes / (sizeof(core::NodeId) +
                                                           sizeof(double)));
  }
  report("bounding + multi-round (this paper)", ours.selected,
         timer.elapsed_seconds(), ours_resident);

  std::printf("\npaper shape: all methods land within a few percent of greedy;"
              " only the last row caps EVERY machine at a partition-sized"
              " footprint with no central merge.\n");
  return 0;
}
