// Figure 5 / Appendix C: 2-D visualization of the chosen 10 % subset of
// CIFAR-100 as the number of partitions grows (1 round each). The paper uses
// t-SNE; we use a deterministic PCA projection (DESIGN.md §2) — the point of
// the figure is *where* selections fall: the centralized run spreads them
// uniformly over the plane, many partitions create local utility clusters
// because cross-partition edges (diversity information) are lost.
//
// Output: an ASCII raster per partition count ('.': ground set present,
// digits: number of selected points in the cell) plus a quantitative
// dispersion row — the fraction of occupied grid cells covered by the
// selection and the mean pairwise 2-D distance among selected points, both of
// which shrink as partitions grow.
#include <array>
#include <cmath>

#include "bench_util.h"
#include "graph/pca.h"

using namespace subsel;
using namespace subsel::bench;

namespace {

constexpr std::size_t kGridWidth = 64;
constexpr std::size_t kGridHeight = 24;

struct Dispersion {
  double cell_coverage = 0.0;   // occupied selected-cells / occupied cells
  double mean_distance = 0.0;   // mean pairwise distance in PCA space
};

Dispersion rasterize(const graph::Projection2D& projection,
                     const std::vector<core::NodeId>& selected, bool print) {
  float min_x = projection.x[0], max_x = projection.x[0];
  float min_y = projection.y[0], max_y = projection.y[0];
  for (std::size_t i = 0; i < projection.x.size(); ++i) {
    min_x = std::min(min_x, projection.x[i]);
    max_x = std::max(max_x, projection.x[i]);
    min_y = std::min(min_y, projection.y[i]);
    max_y = std::max(max_y, projection.y[i]);
  }
  const float span_x = std::max(max_x - min_x, 1e-9f);
  const float span_y = std::max(max_y - min_y, 1e-9f);

  auto cell_of = [&](std::size_t i) {
    auto cx = static_cast<std::size_t>((projection.x[i] - min_x) / span_x *
                                       (kGridWidth - 1));
    auto cy = static_cast<std::size_t>((projection.y[i] - min_y) / span_y *
                                       (kGridHeight - 1));
    return cy * kGridWidth + cx;
  };

  std::vector<std::uint16_t> base(kGridWidth * kGridHeight, 0);
  std::vector<std::uint16_t> chosen(kGridWidth * kGridHeight, 0);
  for (std::size_t i = 0; i < projection.x.size(); ++i) ++base[cell_of(i)];
  for (core::NodeId v : selected) ++chosen[cell_of(static_cast<std::size_t>(v))];

  if (print) {
    for (std::size_t row = 0; row < kGridHeight; ++row) {
      std::fputs("  ", stdout);
      for (std::size_t col = 0; col < kGridWidth; ++col) {
        const std::size_t cell = row * kGridWidth + col;
        char glyph = ' ';
        if (chosen[cell] > 9) {
          glyph = '#';
        } else if (chosen[cell] > 0) {
          glyph = static_cast<char>('0' + chosen[cell]);
        } else if (base[cell] > 0) {
          glyph = '.';
        }
        std::fputc(glyph, stdout);
      }
      std::fputc('\n', stdout);
    }
  }

  Dispersion dispersion;
  std::size_t occupied = 0, covered = 0;
  for (std::size_t cell = 0; cell < base.size(); ++cell) {
    if (base[cell] > 0) {
      ++occupied;
      if (chosen[cell] > 0) ++covered;
    }
  }
  dispersion.cell_coverage =
      occupied > 0 ? static_cast<double>(covered) / static_cast<double>(occupied)
                   : 0.0;

  // Mean pairwise distance over a bounded sample of the selection.
  const std::size_t sample = std::min<std::size_t>(selected.size(), 512);
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < sample; ++i) {
    for (std::size_t j = i + 1; j < sample; ++j) {
      const auto a = static_cast<std::size_t>(selected[i]);
      const auto b = static_cast<std::size_t>(selected[j]);
      const double dx = projection.x[a] - projection.x[b];
      const double dy = projection.y[a] - projection.y[b];
      total += std::sqrt(dx * dx + dy * dy);
      ++pairs;
    }
  }
  dispersion.mean_distance = pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
  return dispersion;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const double scale = args.get_double("scale", 0.1);
  const bool quiet = args.has_flag("no-raster");
  const auto dataset = data::cifar_proxy(scale);
  const auto k = static_cast<std::size_t>(0.1 * dataset.size());
  std::printf("=== Figure 5: selection visualization (CIFAR proxy, %zu points,"
              " k=%zu) ===\n", dataset.size(), k);

  const auto projection = graph::pca_project_2d(dataset.embeddings);
  const auto ground_set = dataset.ground_set();
  const auto params = core::ObjectiveParams::from_alpha(0.9);

  CsvWriter csv(results_dir() + "/fig05_visualization.csv",
                {"partitions", "node", "x", "y", "label", "selected"});

  for (const std::size_t partitions : {std::size_t{1}, std::size_t{4},
                                       std::size_t{16}, std::size_t{32}}) {
    std::vector<core::NodeId> selected;
    if (partitions == 1) {
      selected =
          core::centralized_greedy(dataset.graph, dataset.utilities, params, k)
              .selected;
    } else {
      core::DistributedGreedyConfig config;
      config.objective = params;
      config.num_machines = partitions;
      config.num_rounds = 1;
      config.adaptive_partitioning = false;
      selected = core::distributed_greedy(ground_set, k, config).selected;
    }

    std::printf("\n--- %zu partition(s), 1 round ---\n", partitions);
    const Dispersion dispersion = rasterize(projection, selected, !quiet);

    // The quantitative core of the figure: with more partitions the
    // selection "clusters locally" = the graph's pairwise similarity mass
    // inside S grows (the per-partition runs cannot see the diversity
    // penalty of edges that crossed partition lines).
    const auto member = core::membership_bitmap(dataset.size(), selected);
    double internal_similarity = 0.0;
    std::size_t internal_edges = 0;
    std::vector<graph::Edge> edges;
    for (core::NodeId v : selected) {
      for (const graph::Edge& e : ground_set.neighbors_span(v, edges)) {
        if (member[static_cast<std::size_t>(e.neighbor)] != 0) {
          internal_similarity += e.weight;
          ++internal_edges;
        }
      }
    }
    internal_similarity /= 2.0;  // both directions counted
    internal_edges /= 2;
    std::printf("cell coverage %.3f, mean pairwise 2-D distance %.3f, internal"
                " similarity %.2f over %zu in-subset edges\n",
                dispersion.cell_coverage, dispersion.mean_distance,
                internal_similarity, internal_edges);

    std::vector<std::uint8_t> membership =
        core::membership_bitmap(dataset.size(), selected);
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      csv.row(partitions, i, projection.x[i], projection.y[i], dataset.labels[i],
              static_cast<int>(membership[i]));
    }
  }

  std::printf("\npaper shape: internal (in-subset) similarity grows with the"
              " number of partitions — the centralized run spreads points to"
              " avoid neighbor pairs, many partitions collapse into local"
              " utility clusters.\n");
  return 0;
}
