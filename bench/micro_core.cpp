// Microbenchmarks (google-benchmark) for the performance-critical building
// blocks: addressable heap operations, centralized greedy throughput,
// kNN-graph construction (brute force and IVF), pairwise objective
// evaluation, utility-bound computation, dataflow shuffle, and virtual
// Perturbed neighbor generation.
//
// These back the complexity claims of Section 4.4:
//   centralized greedy  O(|V| log |V| + k·kg·log |V|),
// and quantify the constant factors of the substrate the figure benches run
// on. Inputs are deliberately small so the whole binary finishes in seconds
// under `for b in build/bench/*; do $b; done`.
//
// In addition to the google-benchmark micros, the binary runs the HOT-PATH
// HARNESS: the per-round partition materialize+solve loop of the distributed
// greedy at (by default) 1M nodes, measured twice — once through the seed
// implementation (core::reference::*: per-edge binary search, fresh
// allocations, per-edge heap sift-downs) and once through the zero-copy
// arena engine (scatter-map membership, reusable subproblem/heap storage,
// batched decrease_many). Results, including the speedup, are written to
// BENCH_micro_core.json so every PR records the perf trajectory.
//
// The binary can additionally run the SOLVER MATRIX: every solver in the
// api::SolverRegistry on one fixed instance, timed and scored through the
// unified SelectionRequest/SelectionReport schema, written to
// BENCH_solver_matrix.json — the cross-solver perf/quality trajectory future
// PRs diff against.
//
// And the OBJECTIVE MATRIX: every registered objective kernel crossed with
// every compatible solver on one fixed instance (objective value + solve
// latency per cell, incompatible combinations recorded as skipped), written
// to BENCH_objective_matrix.json — the pluggable-objective trajectory.
//
// And the KERNEL HOT PATH: the non-pairwise solve phase for the coverage-
// family kernels (facility location, saturated coverage) at 1M nodes,
// measured three ways — the pre-incremental-state exact-oracle path
// (baselines::reference::lazy_greedy: O(deg^2) per gain evaluation, the
// 10-80x gaps of BENCH_objective_matrix.json), the virtual SubproblemScorer
// fallback, and the flat incremental-state + batched-gains path. Selections
// must be identical across all three; the headline solve_speedup is
// oracle/incremental. --min-speedup=X turns the harness into a self-check
// (exit 3 when the minimum solve speedup across kernels falls below X, exit
// 2 when selections diverge) — CI runs it on a small fixture against the
// committed baseline.
//
// And the DISK HOT PATH: the out-of-core read path under worker-thread
// concurrency — the per-partition neighborhood scans of a distributed-greedy
// round, driven from a ThreadPool at (by default) 8 threads against a cache
// far smaller than the adjacency, measured twice: once through the seed
// single-mutex LRU cache (graph::reference::MutexDiskGroundSet: one lock held
// across every pread and edge copy) and once through the sharded, prefetching
// engine (graph::DiskGroundSet). A full distributed-greedy run on the sharded
// disk backend must select the exact same subset as the in-memory ground set
// (exit 2 otherwise); --min-disk-speedup=X turns the harness into a
// self-check like --min-speedup.
//
// Flags (in addition to the standard --benchmark_* ones):
//   --quick            CI mode: hot path only, 200k nodes, 2 iterations
//   --hot-only         skip the google-benchmark micros
//   --hot-nodes=N      hot-path ground set size (default 1000000)
//   --hot-partitions=N partitions per round (default 8)
//   --hot-iters=N      measurement repetitions, best-of (default 3)
//   --json=PATH        output path (default BENCH_micro_core.json)
//   --kernel-hotpath   also run the kernel solve-phase harness
//   --kernel-nodes=N   kernel harness ground set size (default = --hot-nodes)
//   --kernel-k-frac=F  kernel harness budget fraction (default 0.01)
//   --min-speedup=X    exit 3 unless every kernel solve speedup >= X
//   --min-solve-speedup=X
//                      exit 3 unless the pairwise hot-path solve speedup
//                      (arena vs seed reference) >= X — the anti-regression
//                      self-check for the batched heap update path
//   --simd-matrix      also run the vectorized-backend harness: each kernel's
//                      incremental solve phase at the committed (pre-SoA)
//                      scalar baseline vs the new state under forced scalar
//                      and under the native backend (forced-scalar and native
//                      selections must be bit-identical, exit 2 otherwise),
//                      plus the quantized kNN build vs float32; written to
//                      BENCH_simd_kernels.json
//   --simd-nodes=N     simd harness ground set size (default 12000)
//   --simd-degree=N    simd harness directed degree (default 250)
//   --simd-iters=N     simd harness repetitions, best-of (default 4)
//   --simd-points=N    simd harness embedding count for graph build (3000)
//   --simd-dim=N       simd harness embedding width (default 256)
//   --simd-json=PATH   output path (default BENCH_simd_kernels.json)
//   --min-simd-speedup=X
//                      exit 3 unless the coverage-family sampled-solve
//                      speedup over the committed scalar baseline >= X
//                      (skipped when scalar is active; one re-measure before
//                      failing)
//   --min-quant-build-speedup=X
//                      exit 3 unless the best quantized build speedup over
//                      float32 >= X (skipped when scalar is active)
//   --disk-hotpath     also run the out-of-core concurrency harness
//   --disk-nodes=N     disk harness ground set size (default 400000)
//   --disk-threads=N   disk harness worker threads (default 8)
//   --disk-shards=N    sharded-engine cache shards (default 16)
//   --disk-cache-blocks=N
//                      cache budget in blocks (default: 1/4 of the blocks)
//   --failpoint-overhead
//                      also measure the disarmed-failpoint-check cost on a
//                      neighborhood-scan hot loop (the robustness layer's
//                      zero-cost-when-disabled claim)
//   --max-failpoint-overhead=F
//                      exit 3 when the disarmed check costs more than F
//                      (fraction; default 0.01 = the PR's <1% claim; 0 turns
//                      the gate off); implies --failpoint-overhead
//   --min-disk-speedup=X
//                      exit 3 unless the sharded read speedup >= X
//   --solver-matrix    also run every registered solver on a fixed instance
//   --matrix-points=N  solver/objective matrix instance size (default 6000)
//   --matrix-json=PATH output path (default BENCH_solver_matrix.json)
//   --objective-matrix also run every objective x compatible solver
//   --objective-matrix-json=PATH
//                      output path (default BENCH_objective_matrix.json)
//   --constraint-matrix
//                      also run every constrained-capable solver under each
//                      constraint family (knapsack / partition matroid /
//                      blocked / all three) with budgets sized to bind,
//                      against its own unconstrained run — quality retention,
//                      tracker overhead, and per-cell feasibility (exit 2 on
//                      an infeasible selection) to BENCH_constraints.json
//   --constraint-matrix-json=PATH
//                      output path (default BENCH_constraints.json)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>

#include "api/objective_registry.h"
#include "api/solver_registry.h"
#include "baselines/baselines.h"
#include "common/failpoint.h"
#include "common/json.h"
#include "common/simd.h"
#include "common/timer.h"
#include "core/addressable_heap.h"
#include "core/bounding.h"
#include "core/coverage_kernel.h"
#include "core/facility_location_kernel.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "core/objective_kernel.h"
#include "core/distributed_greedy.h"
#include "data/datasets.h"
#include "data/perturbed.h"
#include "dataflow/transforms.h"
#include "graph/disk_ground_set.h"
#include "graph/hnsw.h"
#include "graph/knn.h"
#include "graph/quantized_embedding.h"
#include "graph/reference_disk_ground_set.h"

namespace {

using namespace subsel;

const data::Dataset& shared_dataset(std::size_t points) {
  static data::Dataset small = data::toy_dataset(2000, 20, 5);
  static data::Dataset medium = data::toy_dataset(10000, 50, 6);
  return points <= 2000 ? small : medium;
}

void BM_HeapPushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(17);
  std::vector<double> priorities(n);
  for (double& p : priorities) p = rng.uniform();
  for (auto _ : state) {
    core::AddressableMaxHeap heap(priorities);
    double sink = 0.0;
    while (!heap.empty()) sink += heap.priority(heap.pop_max());
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HeapPushPop)->Arg(1 << 10)->Arg(1 << 14);

void BM_HeapDecreaseWeight(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(18);
  std::vector<double> priorities(n);
  for (double& p : priorities) p = 1.0 + rng.uniform();
  for (auto _ : state) {
    state.PauseTiming();
    core::AddressableMaxHeap heap(priorities);
    state.ResumeTiming();
    for (std::uint32_t i = 0; i < n; ++i) {
      heap.decrease_weight_by(i, 0.5 * rng.uniform());
    }
    benchmark::DoNotOptimize(heap.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HeapDecreaseWeight)->Arg(1 << 10)->Arg(1 << 14);

void BM_HeapDecreaseMany(benchmark::State& state) {
  // Same workload as BM_HeapDecreaseWeight, applied in batches of 16 (one
  // simulated pop's neighborhood) through the single-restore-pass API.
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBatch = 16;
  Rng rng(18);
  std::vector<double> priorities(n);
  for (double& p : priorities) p = 1.0 + rng.uniform();
  std::vector<std::pair<core::AddressableMaxHeap::LocalId, double>> batch;
  core::AddressableMaxHeap heap;
  for (auto _ : state) {
    state.PauseTiming();
    heap.assign(priorities);
    state.ResumeTiming();
    for (std::uint32_t i = 0; i < n; i += kBatch) {
      batch.clear();
      for (std::uint32_t j = i; j < std::min<std::size_t>(i + kBatch, n); ++j) {
        batch.emplace_back(j, 0.5 * rng.uniform());
      }
      heap.decrease_many(batch);
    }
    benchmark::DoNotOptimize(heap.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HeapDecreaseMany)->Arg(1 << 10)->Arg(1 << 14);

void BM_CentralizedGreedy(benchmark::State& state) {
  const auto& dataset = shared_dataset(static_cast<std::size_t>(state.range(0)));
  const auto params = core::ObjectiveParams::from_alpha(0.9);
  const std::size_t k = dataset.size() / 10;
  for (auto _ : state) {
    auto result = core::centralized_greedy(dataset.graph, dataset.utilities,
                                           params, k);
    benchmark::DoNotOptimize(result.objective);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k));
}
BENCHMARK(BM_CentralizedGreedy)->Arg(2000)->Arg(10000);

void BM_ObjectiveEvaluate(benchmark::State& state) {
  const auto& dataset = shared_dataset(static_cast<std::size_t>(state.range(0)));
  const auto ground_set = dataset.ground_set();
  core::PairwiseObjective objective(ground_set,
                                    core::ObjectiveParams::from_alpha(0.9));
  std::vector<core::NodeId> subset;
  for (std::size_t i = 0; i < dataset.size(); i += 2) {
    subset.push_back(static_cast<core::NodeId>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(objective.evaluate(subset));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(subset.size()));
}
BENCHMARK(BM_ObjectiveEvaluate)->Arg(2000)->Arg(10000);

void BM_UtilityBounds(benchmark::State& state) {
  const auto& dataset = shared_dataset(static_cast<std::size_t>(state.range(0)));
  const auto ground_set = dataset.ground_set();
  core::BoundingConfig config;
  config.objective = core::ObjectiveParams::from_alpha(0.9);
  config.sampling = core::BoundingSampling::kUniform;
  config.sample_fraction = 0.3;
  core::SelectionState selection(dataset.size());
  std::vector<double> u_min, u_max;
  for (auto _ : state) {
    core::detail::compute_utility_bounds(ground_set, selection, config, 3, u_min,
                                         u_max);
    benchmark::DoNotOptimize(u_min.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_UtilityBounds)->Arg(2000)->Arg(10000);

void BM_BruteForceKnn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  data::ClusteredEmbeddingConfig config;
  config.num_points = n;
  config.num_classes = 16;
  config.dim = 32;
  const auto embeddings = data::generate_clustered_embeddings(config);
  graph::KnnConfig knn;
  for (auto _ : state) {
    auto lists = graph::brute_force_knn(embeddings.points, knn);
    benchmark::DoNotOptimize(lists.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BruteForceKnn)->Arg(1000)->Arg(2000);

void BM_IvfKnn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  data::ClusteredEmbeddingConfig config;
  config.num_points = n;
  config.num_classes = 32;
  config.dim = 32;
  const auto embeddings = data::generate_clustered_embeddings(config);
  graph::KnnConfig knn;
  for (auto _ : state) {
    graph::IvfIndex index(embeddings.points, knn);
    auto lists = index.knn_graph();
    benchmark::DoNotOptimize(lists.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_IvfKnn)->Arg(4000)->Arg(16000);

void BM_HnswKnn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  data::ClusteredEmbeddingConfig config;
  config.num_points = n;
  config.num_classes = 32;
  config.dim = 32;
  const auto embeddings = data::generate_clustered_embeddings(config);
  for (auto _ : state) {
    graph::HnswIndex index(embeddings.points, graph::HnswConfig{});
    auto lists = index.knn_graph(10);
    benchmark::DoNotOptimize(lists.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HnswKnn)->Arg(4000)->Arg(16000);

void BM_DataflowShuffle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dataflow::Pipeline pipeline;
  for (auto _ : state) {
    auto records = dataflow::from_generator<std::pair<std::uint64_t, std::uint64_t>>(
        pipeline, n, [](std::size_t i) {
          return std::pair<std::uint64_t, std::uint64_t>{i % 977, i};
        });
    auto grouped = dataflow::group_by_key(records);
    auto counts = dataflow::map<std::size_t>(
        grouped, [](const auto& row) { return row.second.size(); });
    benchmark::DoNotOptimize(dataflow::to_vector(counts).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DataflowShuffle)->Arg(1 << 14)->Arg(1 << 17);

void BM_PerturbedNeighbors(benchmark::State& state) {
  static data::Dataset base = data::toy_dataset(500, 10, 9);
  data::PerturbedConfig config;
  config.perturbations_per_point = 1000;
  const data::PerturbedGroundSet ground_set(base, config);
  std::vector<graph::Edge> edges;
  std::uint64_t cursor = 0;
  for (auto _ : state) {
    ground_set.neighbors(
        static_cast<graph::NodeId>(cursor++ % ground_set.num_points()), edges);
    benchmark::DoNotOptimize(edges.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PerturbedNeighbors);

// ---------------------------------------------------------------------------
// Hot-path harness: the distributed-greedy partition materialize+solve loop.
// ---------------------------------------------------------------------------

struct HotPathConfig {
  std::size_t nodes = 1'000'000;
  std::size_t partitions = 8;
  std::size_t iterations = 3;
  std::size_t ring_plus_random_degree = 8;  // directed, pre-symmetrization
  double alpha = 0.9;
  std::uint64_t seed = 2025;
  std::string json_path = "BENCH_micro_core.json";
};

struct StageTimes {
  double materialize_ms = 0.0;
  double solve_ms = 0.0;
  double total_ms() const { return materialize_ms + solve_ms; }
};

/// Synthetic ~paper-shaped graph at arbitrary scale: a ring edge (connectivity)
/// plus random edges per node, symmetrized — average degree lands near the
/// paper's ~16 without paying a kNN build at 1M nodes.
graph::SimilarityGraph hot_path_graph(const HotPathConfig& config) {
  Rng rng(config.seed);
  const std::size_t n = config.nodes;
  std::vector<graph::NeighborList> lists(n);
  for (std::size_t v = 0; v < n; ++v) {
    auto& edges = lists[v].edges;
    edges.reserve(config.ring_plus_random_degree);
    const auto ring = static_cast<graph::NodeId>((v + 1) % n);
    if (ring != static_cast<graph::NodeId>(v)) {
      edges.push_back(graph::Edge{ring, static_cast<float>(rng.uniform(0.01, 1.0))});
    }
    for (std::size_t e = 1; e < config.ring_plus_random_degree; ++e) {
      const auto other = static_cast<graph::NodeId>(rng.uniform_index(n));
      if (other == static_cast<graph::NodeId>(v)) continue;
      bool exists = false;
      for (const graph::Edge& edge : edges) exists |= (edge.neighbor == other);
      if (exists) continue;
      edges.push_back(graph::Edge{other, static_cast<float>(rng.uniform(0.01, 1.0))});
    }
  }
  return graph::SimilarityGraph::from_lists(lists).symmetrized();
}

struct HotPathReport {
  HotPathConfig config;
  std::size_t directed_edges = 0;
  double avg_degree = 0.0;
  StageTimes best_baseline;
  StageTimes best_arena;
  bool equivalent = true;
};

/// One solve regime measured three ways: the pre-incremental-state
/// per-candidate exact-oracle machinery (what every non-pairwise baseline
/// shipped with, O(deg^2) per evaluation), the virtual SubproblemScorer
/// driver (the equivalence oracle), and the flat incremental state.
struct KernelRegime {
  double oracle_ms = 0.0;
  double scorer_ms = 0.0;
  double incremental_ms = 0.0;
  /// Incremental selections == scorer selections. Guaranteed (the state
  /// mirrors the scorer's arithmetic operation-for-operation) — this is what
  /// the exit-2 gate and CI check.
  bool identical = true;
  /// Incremental selections == exact-oracle selections. Holds for facility
  /// location by construction (max is order-independent and exact) and
  /// empirically for saturated coverage, whose oracle sums masses in a
  /// different floating-point order; informational, not gated.
  bool oracle_identical = true;
  double speedup_vs_oracle() const {
    return incremental_ms > 0.0 ? oracle_ms / incremental_ms : 0.0;
  }
  double speedup_vs_scorer() const {
    return incremental_ms > 0.0 ? scorer_ms / incremental_ms : 0.0;
  }
};

/// One kernel's solve-phase comparison in the kernel hot-path harness.
struct KernelHotPathResult {
  std::string objective;
  double materialize_ms = 0.0;  // full-ground topology materialization
  std::size_t state_bytes = 0;
  /// Priority-queue (lazy) solve: refresh-dominated; the scorer was already
  /// O(deg) incremental here, so the win is vs the exact-oracle path.
  KernelRegime lazy;
  /// Sampled solve (the stochastic partition solver): one re-evaluation per
  /// candidate per round — the regime behind the 10-80x objective-matrix
  /// gaps, and the headline speedup.
  KernelRegime sampled;
  double solve_speedup() const { return sampled.speedup_vs_oracle(); }
  bool selections_identical() const {
    return lazy.identical && sampled.identical;
  }
};

struct KernelHotPathConfig {
  std::size_t nodes = 0;  // 0 -> follow the pairwise hot path's node count
  double k_fraction = 0.01;
  std::size_t iterations = 2;
  std::uint64_t seed = 2025;
};

int run_hot_path(HotPathConfig config, HotPathReport& report) {
  // Guard against nonsense flag values (--hot-partitions=0 etc.).
  config.nodes = std::max<std::size_t>(config.nodes, 16);
  config.partitions = std::clamp<std::size_t>(config.partitions, 1, config.nodes);
  config.iterations = std::max<std::size_t>(config.iterations, 1);
  std::printf("\n=== hot path: partition materialize+solve at %zu nodes ===\n",
              config.nodes);
  Timer build_timer;
  const graph::SimilarityGraph graph = hot_path_graph(config);
  Rng rng(config.seed ^ 0xABCDULL);
  std::vector<double> utilities(config.nodes);
  for (double& u : utilities) u = rng.uniform(0.01, 2.0);
  const graph::InMemoryGroundSet ground_set(graph, utilities);
  std::printf("graph: %zu nodes, %zu directed edges (avg degree %.1f), built in %s\n",
              graph.num_nodes(), graph.num_edges(), graph.average_degree(),
              format_duration(build_timer.elapsed_seconds()).c_str());

  // One round's balanced random partition, as in distributed_greedy.
  std::vector<core::NodeId> ids(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i) ids[i] = static_cast<core::NodeId>(i);
  rng.shuffle(std::span<core::NodeId>(ids));
  std::vector<std::vector<core::NodeId>> partitions(config.partitions);
  const std::size_t per_part =
      (config.nodes + config.partitions - 1) / config.partitions;
  for (std::size_t p = 0; p < config.partitions; ++p) {
    const std::size_t begin = p * per_part;
    const std::size_t end = std::min(config.nodes, begin + per_part);
    partitions[p].assign(ids.begin() + static_cast<std::ptrdiff_t>(begin),
                         ids.begin() + static_cast<std::ptrdiff_t>(end));
  }
  const auto params = core::ObjectiveParams::from_alpha(config.alpha);

  StageTimes best_baseline, best_arena;
  bool equivalent = true;
  core::SubproblemArena arena;
  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    // Seed path: binary-search membership, fresh buffers and heap per
    // partition. Member copies are prepared outside the timed region — the
    // seed call sites moved their partition vectors in, so the copy is not
    // part of the measured seed work.
    StageTimes baseline;
    std::vector<core::GreedyResult> baseline_results(config.partitions);
    for (std::size_t p = 0; p < config.partitions; ++p) {
      std::vector<core::NodeId> members = partitions[p];
      const std::size_t k_part = members.size() / 2;
      Timer timer;
      const core::Subproblem sub = core::reference::materialize_subproblem(
          ground_set, std::move(members), params);
      baseline.materialize_ms += timer.elapsed_seconds() * 1e3;
      timer.reset();
      baseline_results[p] = core::reference::greedy_on_subproblem(sub, k_part, params);
      baseline.solve_ms += timer.elapsed_seconds() * 1e3;
    }

    // Arena path: scatter-map membership, reused subproblem/heap storage,
    // batched heap updates.
    StageTimes arena_times;
    for (std::size_t p = 0; p < config.partitions; ++p) {
      const std::size_t k_part = partitions[p].size() / 2;
      Timer timer;
      const core::Subproblem& sub = core::materialize_subproblem(
          ground_set, partitions[p], params, nullptr, arena);
      arena_times.materialize_ms += timer.elapsed_seconds() * 1e3;
      timer.reset();
      core::GreedyResult result = core::greedy_on_subproblem(sub, k_part, params, arena);
      arena_times.solve_ms += timer.elapsed_seconds() * 1e3;
      if (iter == 0) {
        equivalent = equivalent &&
                     result.selected == baseline_results[p].selected &&
                     result.objective == baseline_results[p].objective;
      }
    }

    if (iter == 0 || baseline.total_ms() < best_baseline.total_ms()) {
      best_baseline = baseline;
    }
    if (iter == 0 || arena_times.total_ms() < best_arena.total_ms()) {
      best_arena = arena_times;
    }
    std::printf("iter %zu: baseline %.1f ms (mat %.1f + solve %.1f) | "
                "arena %.1f ms (mat %.1f + solve %.1f)\n",
                iter, baseline.total_ms(), baseline.materialize_ms,
                baseline.solve_ms, arena_times.total_ms(),
                arena_times.materialize_ms, arena_times.solve_ms);
  }

  // Tiny runs can measure a stage at 0.0 ms; keep the ratios finite so the
  // JSON stays parseable.
  const auto ratio = [](double baseline_ms, double arena_ms) {
    return arena_ms > 0.0 ? baseline_ms / arena_ms : 0.0;
  };
  const double speedup = ratio(best_baseline.total_ms(), best_arena.total_ms());
  const double speedup_mat =
      ratio(best_baseline.materialize_ms, best_arena.materialize_ms);
  const double speedup_solve = ratio(best_baseline.solve_ms, best_arena.solve_ms);
  std::printf("best: baseline %.1f ms, arena %.1f ms  ->  %.2fx speedup "
              "(materialize %.2fx, solve %.2fx); selections %s\n",
              best_baseline.total_ms(), best_arena.total_ms(), speedup,
              speedup_mat, speedup_solve,
              equivalent ? "identical" : "DIVERGED");

  report.config = config;
  report.directed_edges = graph.num_edges();
  report.avg_degree = graph.average_degree();
  report.best_baseline = best_baseline;
  report.best_arena = best_arena;
  report.equivalent = equivalent;
  return equivalent ? 0 : 2;
}

// ---------------------------------------------------------------------------
// Kernel hot path: the non-pairwise solve phase, oracle vs scorer vs state.
// ---------------------------------------------------------------------------

/// Guards against nonsense flag values; main applies it before running AND
/// before writing the JSON so the emitted metadata always describes the
/// measured run.
void clamp_kernel_config(KernelHotPathConfig& config) {
  config.nodes = std::max<std::size_t>(config.nodes, 16);
  config.iterations = std::max<std::size_t>(config.iterations, 1);
}

std::size_t kernel_budget(const KernelHotPathConfig& config) {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(config.k_fraction *
                                  static_cast<double>(config.nodes)));
}

std::vector<KernelHotPathResult> run_kernel_hot_path(
    const KernelHotPathConfig& config) {
  const std::size_t k = kernel_budget(config);
  std::printf("\n=== kernel hot path: coverage-family solve phase at %zu nodes,"
              " k=%zu ===\n",
              config.nodes, k);

  HotPathConfig graph_config;
  graph_config.nodes = config.nodes;
  graph_config.seed = config.seed;
  Timer build_timer;
  const graph::SimilarityGraph graph = hot_path_graph(graph_config);
  Rng rng(config.seed ^ 0xABCDULL);
  std::vector<double> utilities(config.nodes);
  for (double& u : utilities) u = rng.uniform(0.01, 2.0);
  const graph::InMemoryGroundSet ground_set(graph, utilities);
  std::printf("graph: %zu nodes, %zu directed edges, built in %s\n",
              graph.num_nodes(), graph.num_edges(),
              format_duration(build_timer.elapsed_seconds()).c_str());

  core::FacilityLocationKernel facility_location(ground_set, {});
  core::SaturatedCoverageParams coverage_params;
  const core::SaturatedCoverageKernel coverage(ground_set, coverage_params);
  const std::vector<const core::ObjectiveKernel*> kernels = {&facility_location,
                                                             &coverage};

  std::vector<core::NodeId> members(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i) {
    members[i] = static_cast<core::NodeId>(i);
  }

  constexpr double kEpsilon = 0.1;  // sampled-regime parameter
  std::vector<KernelHotPathResult> results;
  for (const core::ObjectiveKernel* kernel : kernels) {
    KernelHotPathResult result;
    result.objective = std::string(kernel->name());
    for (std::size_t iter = 0; iter < config.iterations; ++iter) {
      KernelRegime lazy, sampled;
      double materialize_ms = 0.0;

      // Pre-PR machinery: per-candidate exact-oracle evaluation (O(deg^2)
      // each) in both regimes.
      Timer timer;
      const core::GreedyResult lazy_oracle =
          baselines::reference::lazy_greedy(*kernel, k);
      lazy.oracle_ms = timer.elapsed_seconds() * 1e3;
      timer.reset();
      const core::GreedyResult sampled_oracle = baselines::reference::
          stochastic_greedy(*kernel, k, kEpsilon, config.seed);
      sampled.oracle_ms = timer.elapsed_seconds() * 1e3;

      // PR 3 fallback: virtual per-candidate SubproblemScorer (already
      // O(deg) incremental — the equivalence oracle of the parity suite).
      core::SubproblemArena scorer_arena;
      core::Subproblem& scorer_sub = core::materialize_subproblem_topology(
          ground_set, members, scorer_arena);
      const auto scorer = kernel->make_scorer();
      timer.reset();
      scorer->reset(scorer_sub, nullptr);
      const core::GreedyResult lazy_scorer =
          core::lazy_greedy_on_subproblem(scorer_sub, k, *scorer, scorer_arena);
      lazy.scorer_ms = timer.elapsed_seconds() * 1e3;
      timer.reset();
      scorer->reset(scorer_sub, nullptr);
      const core::GreedyResult sampled_scorer = core::stochastic_greedy_on_subproblem(
          scorer_sub, k, *scorer, kEpsilon, config.seed);
      sampled.scorer_ms = timer.elapsed_seconds() * 1e3;

      // This PR: flat incremental state, batched gains.
      core::SubproblemArena state_arena;
      timer.reset();
      core::Subproblem& state_sub = core::materialize_subproblem_topology(
          ground_set, members, state_arena);
      materialize_ms = timer.elapsed_seconds() * 1e3;
      const auto state = kernel->make_incremental_state(state_arena);
      timer.reset();
      state->reset(state_sub, nullptr);
      const core::GreedyResult lazy_incremental =
          core::incremental_greedy_on_subproblem(state_sub, k, *state, state_arena);
      lazy.incremental_ms = timer.elapsed_seconds() * 1e3;
      timer.reset();
      state->reset(state_sub, nullptr, /*init_priorities=*/false);
      const core::GreedyResult sampled_incremental =
          core::stochastic_greedy_on_subproblem(state_sub, k, *state, kEpsilon,
                                                config.seed, state_arena);
      sampled.incremental_ms = timer.elapsed_seconds() * 1e3;

      lazy.identical = lazy_incremental.selected == lazy_scorer.selected;
      lazy.oracle_identical = lazy_incremental.selected == lazy_oracle.selected;
      sampled.identical = sampled_incremental.selected == sampled_scorer.selected;
      sampled.oracle_identical =
          sampled_incremental.selected == sampled_oracle.selected;

      if (iter == 0) {
        result.lazy = lazy;
        result.sampled = sampled;
        result.materialize_ms = materialize_ms;
        result.state_bytes = state->state_bytes();
      } else {
        const auto keep_best = [](KernelRegime& best, const KernelRegime& run) {
          best.oracle_ms = std::min(best.oracle_ms, run.oracle_ms);
          best.scorer_ms = std::min(best.scorer_ms, run.scorer_ms);
          best.incremental_ms = std::min(best.incremental_ms, run.incremental_ms);
          best.identical = best.identical && run.identical;
          best.oracle_identical = best.oracle_identical && run.oracle_identical;
        };
        keep_best(result.lazy, lazy);
        keep_best(result.sampled, sampled);
        result.materialize_ms = std::min(result.materialize_ms, materialize_ms);
      }
      std::printf("%-20s iter %zu: lazy %.0f/%.0f/%.0f ms | sampled "
                  "%.0f/%.0f/%.0f ms (oracle/scorer/incremental)\n",
                  result.objective.c_str(), iter, lazy.oracle_ms, lazy.scorer_ms,
                  lazy.incremental_ms, sampled.oracle_ms, sampled.scorer_ms,
                  sampled.incremental_ms);
    }
    std::printf("%-20s lazy: %.2fx vs oracle (%.2fx vs scorer) | sampled: "
                "%.2fx vs oracle (%.2fx vs scorer) | selections %s\n",
                result.objective.c_str(), result.lazy.speedup_vs_oracle(),
                result.lazy.speedup_vs_scorer(), result.sampled.speedup_vs_oracle(),
                result.sampled.speedup_vs_scorer(),
                result.selections_identical() ? "identical" : "DIVERGED");
    results.push_back(std::move(result));
  }
  return results;
}

// ---------------------------------------------------------------------------
// Disk hot path: the out-of-core read layer under worker-thread concurrency.
// ---------------------------------------------------------------------------

struct DiskHotPathConfig {
  std::size_t nodes = 400'000;
  std::size_t threads = 8;
  std::size_t iterations = 5;
  std::size_t block_edges = 4096;
  std::size_t cache_blocks = 0;  // 0 -> cover the file (steady-state serving)
  std::size_t shards = 16;
  std::size_t prefetch_depth = 2;
  std::uint64_t seed = 2025;
};

struct DiskHotPathReport {
  DiskHotPathConfig config;
  std::size_t total_blocks = 0;
  std::size_t directed_edges = 0;
  double legacy_read_ms = 0.0;   // single-mutex cache (seed implementation)
  double sharded_read_ms = 0.0;  // sharded + prefetching engine
  graph::DiskCacheStats sharded_stats;
  bool selections_identical = true;
  double speedup() const {
    return sharded_read_ms > 0.0 ? legacy_read_ms / sharded_read_ms : 0.0;
  }
};

/// One concurrent "round" of partition-local neighborhood reads — the access
/// pattern of materialize_subproblem: each worker requests its partition's
/// neighborhoods in ascending id order through the neighbors_span path. The
/// seed cache serves every request through its single global mutex plus a
/// full edge copy; the sharded engine serves in-block spans lock-free and
/// zero-copy out of the thread's pinned block.
///
/// `validate` folds EVERY edge (id and weight bits) into the checksum — the
/// warm-up equivalence pass runs with it on, so both engines must serve
/// bit-identical payloads before anything is timed. The timed passes fold
/// only the span geometry: consuming the payload costs the same cache-miss
/// budget on every engine and is the caller's work, so leaving it out is
/// what isolates the serving layer itself (the layer the single mutex
/// collapses onto). The geometry fold still defeats dead-code elimination
/// and catches ranges stitched at the wrong offsets.
std::uint64_t concurrent_partition_scan(
    const graph::GroundSet& ground_set,
    const std::vector<std::vector<core::NodeId>>& partitions, ThreadPool& pool,
    bool validate) {
  std::atomic<std::uint64_t> checksum{0};
  pool.parallel_for(partitions.size(), [&](std::size_t p) {
    std::vector<graph::Edge> scratch;
    std::uint64_t local = 0;
    for (const core::NodeId v : partitions[p]) {
      const auto edges = ground_set.neighbors_span(v, scratch);
      local += edges.size();
      if (validate) {
        for (const graph::Edge& edge : edges) {
          std::uint32_t bits = 0;
          std::memcpy(&bits, &edge.weight, sizeof(bits));
          local = local * 31 + static_cast<std::uint64_t>(edge.neighbor) + bits;
        }
      }
    }
    checksum.fetch_add(local, std::memory_order_relaxed);
  });
  return checksum.load();
}

int run_disk_hot_path(DiskHotPathConfig config, DiskHotPathReport& report) {
  config.nodes = std::max<std::size_t>(config.nodes, 64);
  config.threads = std::clamp<std::size_t>(config.threads, 1, 256);
  config.iterations = std::max<std::size_t>(config.iterations, 1);
  std::printf("\n=== disk hot path: sharded vs single-mutex cache, %zu nodes,"
              " %zu threads ===\n",
              config.nodes, config.threads);

  HotPathConfig graph_config;
  graph_config.nodes = config.nodes;
  graph_config.seed = config.seed;
  Timer build_timer;
  const graph::SimilarityGraph graph = hot_path_graph(graph_config);
  Rng rng(config.seed ^ 0xD15CULL);
  std::vector<double> utilities(config.nodes);
  for (double& u : utilities) u = rng.uniform(0.01, 2.0);

  const auto scratch =
      std::filesystem::temp_directory_path() / "subsel_disk_hotpath";
  std::filesystem::create_directories(scratch);
  const std::string graph_path = (scratch / "graph.bin").string();
  graph.save(graph_path);

  const std::size_t total_blocks =
      (graph.num_edges() + config.block_edges - 1) / config.block_edges;
  if (config.cache_blocks == 0) {
    // Steady-state serving regime: the budget covers the adjacency, so after
    // the warm-up pass the timed scans measure the serving layer itself —
    // the layer the single mutex collapses onto — not the shared pread cost
    // both engines pay identically. The forced-paging regime (budget far
    // below the file) is exercised by the solver-equivalence run below and
    // stress-tested in tests/graph/; pass --disk-cache-blocks to measure it
    // here too.
    config.cache_blocks = total_blocks + config.threads;
  }
  std::printf("graph: %zu nodes, %zu directed edges, %zu blocks of %zu edges,"
              " cache budget %zu blocks, built in %s\n",
              graph.num_nodes(), graph.num_edges(), total_blocks,
              config.block_edges, config.cache_blocks,
              format_duration(build_timer.elapsed_seconds()).c_str());

  // One balanced random partition plan, shared by both engines.
  std::vector<core::NodeId> ids(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i) {
    ids[i] = static_cast<core::NodeId>(i);
  }
  rng.shuffle(std::span<core::NodeId>(ids));
  std::vector<std::vector<core::NodeId>> partitions(config.threads);
  const std::size_t per_part =
      (config.nodes + config.threads - 1) / config.threads;
  for (std::size_t p = 0; p < config.threads; ++p) {
    const std::size_t begin = p * per_part;
    const std::size_t end = std::min(config.nodes, begin + per_part);
    partitions[p].assign(ids.begin() + static_cast<std::ptrdiff_t>(begin),
                         ids.begin() + static_cast<std::ptrdiff_t>(end));
    // materialize_subproblem sorts its members before reading; the scan
    // mirrors that (ascending ids within each random partition).
    std::sort(partitions[p].begin(), partitions[p].end());
  }

  ThreadPool pool(config.threads);

  // One engine instance each, warmed once untimed (the same pass over the
  // plan for both; the sharded engine's warm-up runs through its async
  // prefetcher, which is how the round loops page a plan in). The timed
  // iterations then measure steady-state serving under worker concurrency.
  graph::reference::MutexDiskGroundSetConfig legacy_config;
  legacy_config.block_edges = config.block_edges;
  legacy_config.max_cached_blocks = config.cache_blocks;
  const graph::reference::MutexDiskGroundSet legacy(graph_path, utilities,
                                                    legacy_config);
  graph::DiskGroundSetConfig sharded_config;
  sharded_config.block_edges = config.block_edges;
  sharded_config.max_cached_blocks = config.cache_blocks;
  sharded_config.num_shards = config.shards;
  const graph::DiskGroundSet sharded(graph_path, utilities, sharded_config);

  // Warm until allocator/page-cache steady state, validating the full edge
  // payload bit-for-bit on both engines each pass.
  std::uint64_t legacy_checksum = 0;
  std::uint64_t sharded_checksum = 0;
  for (int warm = 0; warm < 2; ++warm) {
    legacy_checksum =
        concurrent_partition_scan(legacy, partitions, pool, /*validate=*/true);
    for (const auto& part : partitions) {
      sharded.prefetch(std::span<const core::NodeId>(part), &pool);
    }
    sharded.drain_prefetch();
    sharded_checksum =
        concurrent_partition_scan(sharded, partitions, pool, /*validate=*/true);
  }

  // Median-of-N, not best-of-N: lock-convoy stalls are the phenomenon this
  // harness measures, and a minimum would award the single-mutex engine its
  // one luckiest scheduling window while discarding its typical behavior.
  std::vector<double> legacy_runs, sharded_runs;
  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    Timer timer;
    const std::uint64_t legacy_sum =
        concurrent_partition_scan(legacy, partitions, pool, /*validate=*/false);
    legacy_runs.push_back(timer.elapsed_seconds() * 1e3);

    timer.reset();
    const std::uint64_t sharded_sum =
        concurrent_partition_scan(sharded, partitions, pool, /*validate=*/false);
    sharded_runs.push_back(timer.elapsed_seconds() * 1e3);

    if (legacy_sum != sharded_sum) {
      std::fprintf(stderr, "FAIL: disk hot path checksum unstable\n");
      std::filesystem::remove_all(scratch);
      return 2;
    }
    std::printf("iter %zu: single-mutex %.1f ms | sharded %.1f ms\n", iter,
                legacy_runs.back(), sharded_runs.back());
  }
  const auto median = [](std::vector<double> runs) {
    std::sort(runs.begin(), runs.end());
    return runs[runs.size() / 2];
  };
  const double best_legacy = median(legacy_runs);
  const double best_sharded = median(sharded_runs);
  const graph::DiskCacheStats best_stats = sharded.stats();

  if (legacy_checksum != sharded_checksum) {
    std::fprintf(stderr, "FAIL: disk hot path checksum mismatch (%llu vs %llu)\n",
                 static_cast<unsigned long long>(legacy_checksum),
                 static_cast<unsigned long long>(sharded_checksum));
    std::filesystem::remove_all(scratch);
    return 2;
  }

  // Selections through the full solver must be identical out-of-core and
  // in-memory — the equivalence claim behind serving solves from disk. This
  // run uses a forced-paging budget (1/4 of the file) so the solver pages,
  // prefetches, and evicts for real.
  graph::DiskGroundSetConfig paging_config;
  paging_config.block_edges = config.block_edges;
  paging_config.max_cached_blocks = std::max<std::size_t>(8, total_blocks / 4);
  paging_config.num_shards = config.shards;
  const graph::DiskGroundSet disk_set(graph_path, utilities, paging_config);
  const graph::InMemoryGroundSet memory_set(graph, utilities);
  core::DistributedGreedyConfig greedy;
  greedy.objective = core::ObjectiveParams::from_alpha(0.9);
  greedy.num_machines = config.threads;
  greedy.num_rounds = 3;
  greedy.seed = config.seed;
  greedy.prefetch_depth = config.prefetch_depth;
  greedy.pool = &pool;
  const std::size_t k = std::max<std::size_t>(1, config.nodes / 10);
  const auto from_disk = core::distributed_greedy(disk_set, k, greedy);
  const auto from_memory = core::distributed_greedy(memory_set, k, greedy);
  const bool identical = from_disk.selected == from_memory.selected &&
                         from_disk.objective == from_memory.objective;

  report.config = config;
  report.total_blocks = total_blocks;
  report.directed_edges = graph.num_edges();
  report.legacy_read_ms = best_legacy;
  report.sharded_read_ms = best_sharded;
  report.sharded_stats = best_stats;
  report.selections_identical = identical;
  std::printf("median: single-mutex %.1f ms, sharded %.1f ms  ->  %.2fx"
              " speedup at %zu threads; solver selections %s\n",
              best_legacy, best_sharded, report.speedup(), config.threads,
              identical ? "identical" : "DIVERGED");

  std::filesystem::remove_all(scratch);
  return identical ? 0 : 2;
}

// ---------------------------------------------------------------------------
// Failpoint-overhead self-check: the disabled path must be free.
// ---------------------------------------------------------------------------

/// The robustness layer's cost claim, measured: a failpoint check per unit of
/// hot-path work (here one 64-edge neighborhood scan — ~60x LESS work per
/// check than the production sites, which check once per 4096-edge block load
/// or per pool dispatch, so this measurement is strictly conservative).
struct FailpointOverheadReport {
  std::size_t checks = 0;
  std::size_t edges_per_check = 0;
  std::size_t iterations = 0;
  double baseline_ms = 0.0;         // scan loop with no failpoint check
  double disabled_ms = 0.0;         // + SUBSEL_FAILPOINT_TRIGGERED, disarmed
  double armed_other_site_ms = 0.0; // registry armed, but on another site
  double overhead_disabled() const {
    return baseline_ms > 0.0 ? disabled_ms / baseline_ms - 1.0 : 0.0;
  }
  double overhead_armed_other_site() const {
    return baseline_ms > 0.0 ? armed_other_site_ms / baseline_ms - 1.0 : 0.0;
  }
};

int run_failpoint_overhead(FailpointOverheadReport& report) {
  report.checks = 2'000'000;
  report.edges_per_check = 64;
  report.iterations = 5;
  std::printf("\n=== failpoint overhead: %zu checks x %zu-edge scans,"
              " best of %zu ===\n",
              report.checks, report.edges_per_check, report.iterations);

  Rng rng(4242);
  std::vector<graph::Edge> edges(report.edges_per_check);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    edges[e] = graph::Edge{static_cast<graph::NodeId>(rng.uniform_index(1 << 20)),
                           static_cast<float>(rng.uniform(0.01, 1.0))};
  }
  // The sink defeats dead-code elimination without perturbing the loop body.
  std::atomic<double> sink{0.0};
  const auto scan = [&edges] {
    double acc = 0.0;
    for (const graph::Edge& edge : edges) {
      acc += static_cast<double>(edge.weight) * static_cast<double>(edge.neighbor & 0xFF);
    }
    return acc;
  };

  const auto best_of = [&](auto&& body) {
    double best = 0.0;
    for (std::size_t iter = 0; iter < report.iterations; ++iter) {
      Timer timer;
      double acc = 0.0;
      for (std::size_t i = 0; i < report.checks; ++i) acc += body();
      const double ms = timer.elapsed_seconds() * 1e3;
      sink.store(acc, std::memory_order_relaxed);
      if (best == 0.0 || ms < best) best = ms;
    }
    return best;
  };

  failpoint::disarm_all();
  report.baseline_ms = best_of([&] { return scan(); });
  report.disabled_ms = best_of([&] {
    if (SUBSEL_FAILPOINT_TRIGGERED("bench.overhead")) return 0.0;
    return scan();
  });
  // Armed registry, different site: the check takes the slow lookup path —
  // what a targeted fault campaign costs the sites it is NOT aimed at.
  failpoint::arm_from_spec("bench.some-other-site=nth(1)");
  report.armed_other_site_ms = best_of([&] {
    if (SUBSEL_FAILPOINT_TRIGGERED("bench.overhead")) return 0.0;
    return scan();
  });
  failpoint::disarm_all();

  std::printf("baseline %.1f ms | disabled-check %.1f ms (%+.2f%%) |"
              " armed-other-site %.1f ms (%+.2f%%)\n",
              report.baseline_ms, report.disabled_ms,
              100.0 * report.overhead_disabled(), report.armed_other_site_ms,
              100.0 * report.overhead_armed_other_site());
  return 0;
}

int write_micro_core_json(const std::string& path, const HotPathReport& hot,
                          const std::vector<KernelHotPathResult>& kernel_results,
                          const KernelHotPathConfig& kernel_config,
                          std::size_t kernel_k, const DiskHotPathReport* disk,
                          const FailpointOverheadReport* failpoints) {
  JsonWriter json;
  json.begin_object();
  json.key("bench").value("micro_core_hot_path");
  json.key("workload")
      .value("distributed-greedy round: materialize+solve over " +
             std::to_string(hot.config.partitions) +
             " partitions, k=half per partition");
  json.key("nodes").value(hot.config.nodes);
  json.key("directed_edges").value(hot.directed_edges);
  json.key("avg_degree").value(hot.avg_degree);
  json.key("partitions").value(hot.config.partitions);
  json.key("iterations").value(hot.config.iterations);
  const auto stage = [&json](const char* name, const StageTimes& times) {
    json.key(name).begin_object();
    json.key("materialize_ms").value(times.materialize_ms);
    json.key("solve_ms").value(times.solve_ms);
    json.key("total_ms").value(times.total_ms());
    json.end_object();
  };
  stage("baseline", hot.best_baseline);
  stage("arena", hot.best_arena);
  const auto ratio = [](double baseline_ms, double arena_ms) {
    return arena_ms > 0.0 ? baseline_ms / arena_ms : 0.0;
  };
  json.key("speedup_total")
      .value(ratio(hot.best_baseline.total_ms(), hot.best_arena.total_ms()));
  json.key("speedup_materialize")
      .value(ratio(hot.best_baseline.materialize_ms, hot.best_arena.materialize_ms));
  json.key("speedup_solve")
      .value(ratio(hot.best_baseline.solve_ms, hot.best_arena.solve_ms));
  json.key("selections_identical").value(hot.equivalent);

  if (!kernel_results.empty()) {
    json.key("kernel_hotpath").begin_object();
    json.key("workload")
        .value("non-pairwise solve phase, full ground set: per-candidate "
               "exact-oracle machinery vs virtual-scorer fallback vs flat "
               "incremental state + batched gains, in the lazy "
               "(priority-queue) and sampled (stochastic, one re-evaluation "
               "per candidate per round) regimes");
    json.key("nodes").value(kernel_config.nodes);
    json.key("k").value(kernel_k);
    json.key("iterations").value(kernel_config.iterations);
    double min_speedup = 0.0;
    bool identical = true;
    json.key("kernels").begin_array();
    for (const KernelHotPathResult& result : kernel_results) {
      json.begin_object();
      json.key("objective").value(result.objective);
      json.key("materialize_ms").value(result.materialize_ms);
      json.key("state_bytes").value(result.state_bytes);
      const auto regime = [&json](const char* name, const KernelRegime& r) {
        json.key(name).begin_object();
        json.key("oracle_solve_ms").value(r.oracle_ms);
        json.key("scorer_solve_ms").value(r.scorer_ms);
        json.key("incremental_solve_ms").value(r.incremental_ms);
        json.key("speedup_vs_oracle").value(r.speedup_vs_oracle());
        json.key("speedup_vs_scorer").value(r.speedup_vs_scorer());
        json.key("selections_identical").value(r.identical);
        json.key("oracle_selections_identical").value(r.oracle_identical);
        json.end_object();
      };
      regime("lazy", result.lazy);
      regime("sampled", result.sampled);
      json.key("solve_speedup").value(result.solve_speedup());
      json.key("selections_identical").value(result.selections_identical());
      json.end_object();
      min_speedup = min_speedup == 0.0
                        ? result.solve_speedup()
                        : std::min(min_speedup, result.solve_speedup());
      identical = identical && result.selections_identical();
    }
    json.end_array();
    json.key("min_solve_speedup").value(min_speedup);
    json.key("selections_identical").value(identical);
    json.end_object();
  }

  if (disk != nullptr) {
    json.key("disk_hotpath").begin_object();
    json.key("workload")
        .value("out-of-core read path under worker concurrency: one round of "
               "partition-local neighborhood scans from a ThreadPool, "
               "single-mutex LRU cache (seed) vs sharded striped-lock cache "
               "with async prefetch; plus full distributed-greedy disk-vs-"
               "memory selection equivalence");
    json.key("nodes").value(disk->config.nodes);
    json.key("directed_edges").value(disk->directed_edges);
    json.key("threads").value(disk->config.threads);
    json.key("iterations").value(disk->config.iterations);
    json.key("block_edges").value(disk->config.block_edges);
    json.key("total_blocks").value(disk->total_blocks);
    json.key("cache_blocks").value(disk->config.cache_blocks);
    json.key("shards").value(disk->config.shards);
    json.key("prefetch_depth").value(disk->config.prefetch_depth);
    json.key("single_mutex_read_ms").value(disk->legacy_read_ms);
    json.key("sharded_read_ms").value(disk->sharded_read_ms);
    json.key("speedup").value(disk->speedup());
    json.key("cache").begin_object();
    json.key("hits").value(disk->sharded_stats.hits);
    json.key("misses").value(disk->sharded_stats.misses);
    json.key("prefetch_issued").value(disk->sharded_stats.prefetch_issued);
    json.key("prefetch_loaded").value(disk->sharded_stats.prefetch_loaded);
    json.key("resident_blocks_high_water")
        .value(disk->sharded_stats.resident_blocks_high_water);
    json.end_object();
    json.key("selections_identical").value(disk->selections_identical);
    json.end_object();
  }

  if (failpoints != nullptr) {
    json.key("failpoint_overhead").begin_object();
    json.key("workload")
        .value("one disarmed SUBSEL_FAILPOINT_TRIGGERED check per 64-edge "
               "neighborhood scan (conservative: production sites check once "
               "per 4096-edge block load or pool dispatch)");
    json.key("checks").value(failpoints->checks);
    json.key("edges_per_check").value(failpoints->edges_per_check);
    json.key("iterations").value(failpoints->iterations);
    json.key("baseline_ms").value(failpoints->baseline_ms);
    json.key("disabled_check_ms").value(failpoints->disabled_ms);
    json.key("armed_other_site_ms").value(failpoints->armed_other_site_ms);
    json.key("overhead_disabled").value(failpoints->overhead_disabled());
    json.key("overhead_armed_other_site")
        .value(failpoints->overhead_armed_other_site());
    json.end_object();
  }
  json.end_object();

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "%s\n", json.str().c_str());
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// Solver matrix: every registered solver on one fixed instance.
// ---------------------------------------------------------------------------

struct MatrixConfig {
  std::size_t points = 6000;
  double fraction = 0.1;
  std::uint64_t seed = 77;
  std::string json_path = "BENCH_solver_matrix.json";
};

int run_solver_matrix(const MatrixConfig& config) {
  std::printf("\n=== solver matrix: every registered solver at %zu points,"
              " k = %.0f%% ===\n",
              config.points, config.fraction * 100.0);
  const data::Dataset dataset = data::toy_dataset(config.points, 32, config.seed);
  const auto ground_set = dataset.ground_set();
  const std::size_t k =
      static_cast<std::size_t>(config.fraction * static_cast<double>(config.points));

  api::SelectionRequest request;
  request.ground_set = &ground_set;
  request.k = k;
  request.objective = core::ObjectiveParams::from_alpha(0.9);
  request.seed = config.seed;
  // One shared context: the arena pool warms across solvers exactly like a
  // long-lived serving process.
  api::SolverContext context;

  // Run every registered solver once; lazy-greedy's run doubles as the
  // centralized (1-1/e) reference every objective is normalized against.
  std::vector<api::SelectionReport> reports;
  double gold = 0.0;
  for (const auto& info : api::SolverRegistry::instance().list()) {
    request.solver = info.name;
    reports.push_back(api::select(request, context));
    if (info.name == "lazy-greedy") gold = reports.back().objective;
  }

  JsonWriter json;
  json.begin_object();
  json.key("bench").value("solver_matrix");
  json.key("points").value(config.points);
  json.key("k").value(k);
  json.key("alpha").value(0.9);
  json.key("seed").value(config.seed);
  json.key("reference_solver").value("lazy-greedy");
  json.key("reference_objective").value(gold);
  json.key("solvers").begin_array();
  std::printf("%-20s %12s %10s %10s %12s\n", "solver", "f(S)", "vs lazy",
              "solve ms", "|S|");
  for (const api::SelectionReport& report : reports) {
    // Solver latency = the sum of its stage timings; total_seconds would
    // also charge the cross-solver exact rescoring pass to the solver.
    double solve_seconds = 0.0;
    for (const api::StageTiming& timing : report.timings) {
      solve_seconds += timing.seconds;
    }
    const double normalized = gold > 0.0 ? report.objective / gold : 0.0;
    std::printf("%-20s %12.3f %9.1f%% %10.2f %12zu\n", report.solver.c_str(),
                report.objective, 100.0 * normalized, solve_seconds * 1e3,
                report.selected.size());
    json.begin_object();
    json.key("solver").value(report.solver);
    json.key("objective").value(report.objective);
    json.key("normalized_vs_lazy").value(normalized);
    json.key("solve_seconds").value(solve_seconds);
    json.key("total_seconds").value(report.total_seconds);
    json.key("selected_count").value(report.selected.size());
    json.key("peak_partition_bytes").value(report.peak_partition_bytes);
    json.key("peak_resident_elements").value(report.peak_resident_elements);
    json.key("preempted").value(report.preempted);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  std::FILE* out = std::fopen(config.json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", config.json_path.c_str());
    return 1;
  }
  std::fprintf(out, "%s\n", json.str().c_str());
  std::fclose(out);
  std::printf("wrote %s\n", config.json_path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// Objective matrix: every registered objective x every compatible solver.
// ---------------------------------------------------------------------------

struct ObjectiveMatrixConfig {
  std::size_t points = 6000;
  double fraction = 0.1;
  std::uint64_t seed = 77;
  std::string json_path = "BENCH_objective_matrix.json";
};

int run_objective_matrix(const ObjectiveMatrixConfig& config) {
  std::printf("\n=== objective matrix: every objective x compatible solver at"
              " %zu points, k = %.0f%% ===\n",
              config.points, config.fraction * 100.0);
  const data::Dataset dataset = data::toy_dataset(config.points, 32, config.seed);
  const auto ground_set = dataset.ground_set();
  const std::size_t k =
      static_cast<std::size_t>(config.fraction * static_cast<double>(config.points));

  api::SolverContext context;
  JsonWriter json;
  json.begin_object();
  json.key("bench").value("objective_matrix");
  json.key("points").value(config.points);
  json.key("k").value(k);
  json.key("seed").value(config.seed);
  json.key("cells").begin_array();

  std::printf("%-20s %-20s %12s %10s %8s\n", "objective", "solver", "f(S)",
              "solve ms", "|S|");
  for (const api::ObjectiveInfo& objective :
       api::ObjectiveRegistry::instance().list()) {
    // Per-objective reference: lazy-greedy's centralized output, computed up
    // front so every row can be normalized against it.
    double gold = 0.0;
    {
      api::SelectionRequest request;
      request.ground_set = &ground_set;
      request.k = k;
      request.objective_name = objective.name;
      request.objective = core::ObjectiveParams::from_alpha(0.9);
      request.seed = config.seed;
      request.solver = "lazy-greedy";
      gold = api::select(request, context).objective;
    }
    for (const api::SolverInfo& solver : api::SolverRegistry::instance().list()) {
      api::SelectionRequest request;
      request.ground_set = &ground_set;
      request.k = k;
      request.objective_name = objective.name;
      request.objective = core::ObjectiveParams::from_alpha(0.9);
      request.seed = config.seed;
      request.solver = solver.name;
      // The pipeline/dataflow bounding stage is pairwise-only; run those
      // solvers without bounding whenever the objective lacks bound support
      // so the matrix exercises the widest valid surface.
      if (solver.caps.bounding_stage && !objective.caps.utility_bounds) {
        request.bounding.enabled = false;
      }

      json.begin_object();
      json.key("objective").value(objective.name);
      json.key("solver").value(solver.name);
      const std::string reason = api::incompatibility_reason(
          solver.caps, objective.caps, request.bounding.enabled);
      if (!reason.empty()) {
        std::printf("%-20s %-20s %12s\n", objective.name.c_str(),
                    solver.name.c_str(), "(skipped)");
        json.key("supported").value(false);
        json.key("reason").value(reason);
        json.end_object();
        continue;
      }

      const api::SelectionReport report = api::select(request, context);
      double solve_seconds = 0.0;
      for (const api::StageTiming& timing : report.timings) {
        solve_seconds += timing.seconds;
      }
      std::printf("%-20s %-20s %12.3f %10.2f %8zu\n", objective.name.c_str(),
                  solver.name.c_str(), report.objective, solve_seconds * 1e3,
                  report.selected.size());
      json.key("supported").value(true);
      json.key("objective_value").value(report.objective);
      json.key("normalized_vs_lazy")
          .value(gold > 0.0 ? report.objective / gold : 0.0);
      json.key("solve_seconds").value(solve_seconds);
      json.key("selected_count").value(report.selected.size());
      json.key("bounding_enabled").value(request.bounding.enabled);
      json.end_object();
    }
  }
  json.end_array();
  json.end_object();

  std::FILE* out = std::fopen(config.json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", config.json_path.c_str());
    return 1;
  }
  std::fprintf(out, "%s\n", json.str().c_str());
  std::fclose(out);
  std::printf("wrote %s\n", config.json_path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// Constraint matrix: every constrained-capable solver under each constraint
// family (knapsack / partition matroid / blocked / all three), against its
// own unconstrained run — the quality retention and tracker overhead
// trajectory behind BENCH_constraints.json. Budgets are sized to bind: the
// point of the matrix is the constrained acceptance path, not a tracker
// that never says no.
// ---------------------------------------------------------------------------

struct ConstraintMatrixConfig {
  std::size_t points = 6000;
  double fraction = 0.1;
  std::uint64_t seed = 77;
  std::string json_path = "BENCH_constraints.json";
};

int run_constraint_matrix(const ConstraintMatrixConfig& config) {
  std::printf("\n=== constraint matrix: constrained-capable solvers x"
              " constraint family at %zu points, k = %.0f%% ===\n",
              config.points, config.fraction * 100.0);
  const data::Dataset dataset = data::toy_dataset(config.points, 32, config.seed);
  const auto ground_set = dataset.ground_set();
  const std::size_t n = config.points;
  const std::size_t k =
      static_cast<std::size_t>(config.fraction * static_cast<double>(n));

  // Deterministic sidecar vectors (fixed rng stream, independent of backend).
  Rng rng(config.seed ^ 0xc057);
  std::vector<double> costs(n);
  double mean_cost = 0.0;
  for (double& c : costs) {
    c = rng.uniform(0.05, 1.0);
    mean_cost += c;
  }
  mean_cost /= static_cast<double>(n);
  constexpr std::size_t kNumGroups = 8;
  std::vector<std::uint32_t> groups(n);
  for (auto& g : groups) {
    g = static_cast<std::uint32_t>(rng.uniform_index(kNumGroups));
  }
  std::vector<core::NodeId> blocked;
  for (std::size_t i = 0; i < n; i += 5) {
    blocked.push_back(static_cast<core::NodeId>(i));
  }
  // Knapsack budget ~40% of what k mean-cost elements would need and a
  // matroid cap under k / kNumGroups: both families individually bind.
  const double budget = 0.4 * mean_cost * static_cast<double>(k);
  const std::size_t cap = std::max<std::size_t>(1, k / (2 * kNumGroups));

  struct Shape {
    const char* name;
    bool knapsack, matroid, blocks;
  };
  const Shape shapes[] = {
      {"knapsack", true, false, false},
      {"partition-matroid", false, true, false},
      {"blocked", false, false, true},
      {"all-families", true, true, true},
  };

  api::SolverContext context;
  JsonWriter json;
  json.begin_object();
  json.key("bench").value("constraint_matrix");
  json.key("points").value(n);
  json.key("k").value(k);
  json.key("seed").value(config.seed);
  json.key("cost_budget").value(budget);
  json.key("group_cap").value(cap);
  json.key("num_blocked").value(blocked.size());
  json.key("cells").begin_array();

  std::printf("%-20s %-18s %12s %10s %8s %9s\n", "solver", "constraints",
              "f(S)", "solve ms", "|S|", "overhead");
  int status = 0;
  for (const api::SolverInfo& solver : api::SolverRegistry::instance().list()) {
    if (!solver.caps.constrained) continue;

    const auto run_cell = [&](const api::SelectionRequest& request) {
      const api::SelectionReport report = api::select(request, context);
      double seconds = 0.0;
      for (const api::StageTiming& timing : report.timings) {
        seconds += timing.seconds;
      }
      return std::pair<api::SelectionReport, double>(report, seconds);
    };

    api::SelectionRequest base;
    base.ground_set = &ground_set;
    base.k = k;
    base.seed = config.seed;
    base.solver = solver.name;
    base.bounding.enabled = false;  // bounding x constraints is a typed reject
    const auto [unconstrained, unconstrained_seconds] = run_cell(base);

    for (const Shape& shape : shapes) {
      api::SelectionRequest request = base;
      if (shape.knapsack) {
        request.constraints.costs = costs;
        request.constraints.cost_budget = budget;
      }
      if (shape.matroid) {
        request.constraints.groups = groups;
        request.constraints.group_cap = cap;
      }
      if (shape.blocks) request.constraints.blocked = blocked;
      const auto [report, seconds] = run_cell(request);
      const double overhead =
          unconstrained_seconds > 0.0 ? seconds / unconstrained_seconds : 0.0;
      const bool feasible =
          report.constraints.has_value() && report.constraints->feasible;
      if (!feasible) {
        std::fprintf(stderr, "FAIL: %s x %s returned an infeasible selection\n",
                     solver.name.c_str(), shape.name);
        status = 2;
      }
      std::printf("%-20s %-18s %12.3f %10.2f %8zu %8.2fx\n",
                  solver.name.c_str(), shape.name, report.objective,
                  seconds * 1e3, report.selected.size(), overhead);
      json.begin_object();
      json.key("solver").value(solver.name);
      json.key("constraints").value(shape.name);
      json.key("objective_value").value(report.objective);
      json.key("normalized_vs_unconstrained")
          .value(unconstrained.objective > 0.0
                     ? report.objective / unconstrained.objective
                     : 0.0);
      json.key("solve_seconds").value(seconds);
      json.key("constrained_overhead").value(overhead);
      json.key("selected_count").value(report.selected.size());
      json.key("selected_cost")
          .value(report.constraints.has_value()
                     ? report.constraints->selected_cost
                     : 0.0);
      json.key("feasible").value(feasible);
      json.end_object();
    }
  }
  json.end_array();
  json.end_object();

  std::FILE* out = std::fopen(config.json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", config.json_path.c_str());
    return 1;
  }
  std::fprintf(out, "%s\n", json.str().c_str());
  std::fclose(out);
  std::printf("wrote %s\n", config.json_path.c_str());
  return status;
}

// ---------------------------------------------------------------------------
// SIMD matrix: vectorized kernel backends vs forced scalar, and the
// quantized embedding path vs the exact float32 graph build.
// ---------------------------------------------------------------------------

struct SimdMatrixConfig {
  /// Node count × degree are sized so the per-node state arrays stay cache-
  /// resident while the edge slices are long enough for the vector gain loops
  /// to dominate the solve: this harness measures the kernel inner loops, not
  /// DRAM latency on pointer-sized slices. At the pairwise hot path's sparse
  /// geometry (1M nodes, degree 8) both backends are memory-bound and the
  /// harness would only report noise.
  std::size_t nodes = 12'000;
  /// Directed degree pre-symmetrization (average total degree is 2x).
  std::size_t degree = 250;
  double k_fraction = 0.01;
  std::size_t iterations = 4;
  std::size_t graph_points = 3000;
  /// Embedding width for the quantized-build comparison. Sized so the
  /// distance kernel dominates the kNN build (paper-scale embeddings are
  /// 256-1024 wide); at narrow widths neighbor-heap bookkeeping drowns the
  /// dot-product signal on every backend.
  std::size_t graph_dim = 256;
  std::size_t graph_neighbors = 10;
  std::uint64_t seed = 2025;
  std::string json_path = "BENCH_simd_kernels.json";
  /// Coverage-family solve-phase gate: exit 3 unless facility-location and
  /// saturated-coverage reach this speedup over forced scalar. 0 = off.
  /// Skipped (with a note) when the active backend IS scalar.
  double min_kernel_speedup = 0.0;
  /// Quantized graph-build gate: exit 3 unless the best quantized precision
  /// builds this much faster than float32. 0 = off; skipped under scalar.
  double min_graph_speedup = 0.0;
};

// Bench-local replicas of the incremental states this PR's SIMD/data-layout
// pass replaced: array-of-structs CSR walk, per-edge weight multiply, single
// accumulator, no premultiplied columns — the committed scalar baseline the
// acceptance gate measures against (frozen here so the committed baseline
// stays measurable after the src/ classes evolved).

class SeedFacilityLocationState final : public core::KernelIncrementalState {
 public:
  SeedFacilityLocationState(const graph::GroundSet& ground_set,
                            core::FacilityLocationParams params)
      : ground_set_(&ground_set), params_(params) {}

  void reset(core::Subproblem& sub, const core::SelectionState* state,
             bool init_priorities = true) override {
    (void)state;  // the harness never conditions on a global selection
    sub_ = &sub;
    const std::size_t n = sub.size();
    cover_.assign(n, 0.0);
    cover2_.assign(n, 0.0);
    weight_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      weight_[i] = params_.utility_weighted
                       ? ground_set_->utility(sub.global_ids[i])
                       : 1.0;
    }
    if (init_priorities) {
      sub.priorities.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) sub.priorities[i] = gain_of(i);
    }
  }

  double gain(std::uint32_t v) const override { return gain_of(v); }

  void gains_batch(std::span<const std::uint32_t> candidates,
                   std::span<double> out) const override {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      out[i] = gain_of(candidates[i]);
    }
  }

  void select(std::uint32_t v) override {
    raise_cover(v, params_.self_similarity);
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    const core::Subproblem::LocalEdge* edges = sub_->edges.data();
    for (std::size_t e = begin; e < end; ++e) {
      raise_cover(edges[e].neighbor, static_cast<double>(edges[e].weight));
    }
  }

  std::size_t state_bytes() const noexcept override {
    return (cover_.size() + cover2_.size() + weight_.size()) * sizeof(double);
  }

 private:
  double gain_of(std::uint32_t v) const {
    const double* cover = cover_.data();
    const double* weight = weight_.data();
    double total = weight[v] * std::max(0.0, params_.self_similarity - cover[v]);
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    const core::Subproblem::LocalEdge* edges = sub_->edges.data();
    for (std::size_t e = begin; e < end; ++e) {
      const std::uint32_t u = edges[e].neighbor;
      total += weight[u] *
               std::max(0.0, static_cast<double>(edges[e].weight) - cover[u]);
    }
    return total;
  }

  void raise_cover(std::uint32_t u, double value) {
    if (value > cover_[u]) {
      cover2_[u] = cover_[u];
      cover_[u] = value;
    } else if (value > cover2_[u]) {
      cover2_[u] = value;
    }
  }

  const graph::GroundSet* ground_set_;
  core::FacilityLocationParams params_;
  const core::Subproblem* sub_ = nullptr;
  std::vector<double> cover_;
  std::vector<double> cover2_;
  std::vector<double> weight_;
};

class SeedSaturatedCoverageState final : public core::KernelIncrementalState {
 public:
  SeedSaturatedCoverageState(const graph::GroundSet& ground_set,
                             core::SaturatedCoverageParams params)
      : ground_set_(&ground_set), params_(params) {}

  void reset(core::Subproblem& sub, const core::SelectionState* state,
             bool init_priorities = true) override {
    (void)state;
    sub_ = &sub;
    const std::size_t n = sub.size();
    mass_.assign(n, 0.0);
    weight_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      weight_[i] = params_.utility_weighted
                       ? ground_set_->utility(sub.global_ids[i])
                       : 1.0;
    }
    if (init_priorities) {
      sub.priorities.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) sub.priorities[i] = gain_of(i);
    }
  }

  double gain(std::uint32_t v) const override { return gain_of(v); }

  void gains_batch(std::span<const std::uint32_t> candidates,
                   std::span<double> out) const override {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      out[i] = gain_of(candidates[i]);
    }
  }

  void select(std::uint32_t v) override {
    mass_[v] += params_.self_similarity;
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    const core::Subproblem::LocalEdge* edges = sub_->edges.data();
    for (std::size_t e = begin; e < end; ++e) {
      mass_[edges[e].neighbor] += static_cast<double>(edges[e].weight);
    }
  }

  std::size_t state_bytes() const noexcept override {
    return (mass_.size() + weight_.size()) * sizeof(double);
  }

 private:
  double gain_of(std::uint32_t v) const {
    const double tau = params_.saturation;
    const double* mass = mass_.data();
    const double* weight = weight_.data();
    double total = weight[v] * (std::min(tau, mass[v] + params_.self_similarity) -
                                std::min(tau, mass[v]));
    const auto begin = static_cast<std::size_t>(sub_->offsets[v]);
    const auto end = static_cast<std::size_t>(sub_->offsets[v + 1]);
    const core::Subproblem::LocalEdge* edges = sub_->edges.data();
    for (std::size_t e = begin; e < end; ++e) {
      const std::uint32_t u = edges[e].neighbor;
      const double m = mass[u];
      if (m >= tau) continue;
      total += weight[u] *
               (std::min(tau, m + static_cast<double>(edges[e].weight)) -
                std::min(tau, m));
    }
    return total;
  }

  const graph::GroundSet* ground_set_;
  core::SaturatedCoverageParams params_;
  const core::Subproblem* sub_ = nullptr;
  std::vector<double> mass_;
  std::vector<double> weight_;
};

struct SimdKernelRow {
  std::string objective;
  /// Coverage-family rows are held to --min-simd-speedup; the pairwise row
  /// is informational (its solve phase is heap-dominated, not gain-dominated,
  /// and the hot-path harness already tracks it end to end).
  bool gated = false;
  bool has_seed_baseline = false;
  // Best-of merges via std::min, so times start at +inf; every row runs at
  // least one iteration before being reported.
  double seed_lazy_ms = HUGE_VAL;
  double seed_sampled_ms = HUGE_VAL;
  double scalar_lazy_ms = HUGE_VAL;
  double scalar_sampled_ms = HUGE_VAL;
  double native_lazy_ms = HUGE_VAL;
  double native_sampled_ms = HUGE_VAL;
  /// Selections AND objectives bit-identical between the forced-scalar and
  /// native-backend states — the exit-2 invariant (exact backends only ever
  /// reorder lanes the same way; see core/kernel_simd.h).
  bool identical = true;
  /// Native selections match the seed replica's. Informational: the seed
  /// multiplies weights inside the loop with a single accumulator, so its
  /// rounding differs and ties may break differently.
  bool seed_identical = true;
  double seed_ms() const { return seed_lazy_ms + seed_sampled_ms; }
  double scalar_ms() const { return scalar_lazy_ms + scalar_sampled_ms; }
  double native_ms() const { return native_lazy_ms + native_sampled_ms; }
  /// Gated metric: the sampled (stochastic) solve against the committed
  /// scalar baseline this PR replaced. The sampled regime is one gains_batch
  /// per round, so it isolates the gain kernels; the lazy regime is
  /// heap-refresh-bound and is reported for context via total_speedup().
  double speedup() const {
    return has_seed_baseline && native_sampled_ms > 0.0
               ? seed_sampled_ms / native_sampled_ms
               : 0.0;
  }
  double total_speedup() const {
    return has_seed_baseline && native_ms() > 0.0 ? seed_ms() / native_ms()
                                                  : 0.0;
  }
  /// The same state arithmetic under the forced portable fallback — isolates
  /// the vector win from the data-layout win.
  double speedup_vs_scalar() const {
    return native_ms() > 0.0 ? scalar_ms() / native_ms() : 0.0;
  }
};

struct SimdGraphRow {
  std::string precision;
  double build_ms = 0.0;
  double recall = 0.0;          // vs the exact float32 build
  double speedup_vs_float = 0.0;
};

graph::EmbeddingMatrix simd_matrix_embeddings(const SimdMatrixConfig& config) {
  graph::EmbeddingMatrix m(config.graph_points, config.graph_dim);
  Rng rng(config.seed ^ 0x51D5ULL);
  for (std::size_t i = 0; i < config.graph_points; ++i) {
    for (float& v : m.row(i)) v = static_cast<float>(rng.normal());
  }
  m.normalize_rows();
  return m;
}

double knn_recall(const std::vector<graph::NeighborList>& exact,
                  const std::vector<graph::NeighborList>& approx) {
  std::size_t hits = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    total += exact[i].edges.size();
    for (const graph::Edge& truth : exact[i].edges) {
      for (const graph::Edge& candidate : approx[i].edges) {
        if (candidate.neighbor == truth.neighbor) {
          ++hits;
          break;
        }
      }
    }
  }
  return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 1.0;
}

int run_simd_matrix(SimdMatrixConfig config) {
  config.nodes = std::max<std::size_t>(config.nodes, 16);
  config.iterations = std::max<std::size_t>(config.iterations, 1);
  config.graph_points = std::max<std::size_t>(config.graph_points, 64);
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.k_fraction *
                                  static_cast<double>(config.nodes)));
  const bool native_is_vector =
      simd::active_backend() != simd::Backend::kScalar;
  std::printf("\n=== simd matrix: %s backend vs forced scalar at %zu nodes,"
              " k=%zu ===\n",
              simd::active_backend_name(), config.nodes, k);

  HotPathConfig graph_config;
  graph_config.nodes = config.nodes;
  graph_config.ring_plus_random_degree = config.degree;
  graph_config.seed = config.seed;
  const graph::SimilarityGraph graph = hot_path_graph(graph_config);
  Rng rng(config.seed ^ 0xABCDULL);
  std::vector<double> utilities(config.nodes);
  for (double& u : utilities) u = rng.uniform(0.01, 2.0);
  const graph::InMemoryGroundSet ground_set(graph, utilities);
  std::printf("graph: %zu nodes, %zu directed edges (avg degree %.1f)\n",
              graph.num_nodes(), graph.num_edges(), graph.average_degree());

  const auto params = core::ObjectiveParams::from_alpha(0.9);
  const core::PairwiseKernel pairwise(ground_set, params);
  const core::FacilityLocationKernel facility_location(ground_set, {});
  const core::SaturatedCoverageParams coverage_params;
  const core::SaturatedCoverageKernel coverage(ground_set, coverage_params);
  struct KernelCase {
    const core::ObjectiveKernel* kernel;
    bool gated;
    /// Factory for the committed-baseline replica (pre-SoA incremental state
    /// this PR replaced); empty for kernels that had no incremental state at
    /// the baseline (pairwise solved through the closed-form path).
    std::function<std::unique_ptr<core::KernelIncrementalState>()> seed_state;
  };
  const KernelCase cases[] = {
      {&facility_location, true,
       [&ground_set]() -> std::unique_ptr<core::KernelIncrementalState> {
         return std::make_unique<SeedFacilityLocationState>(
             ground_set, core::FacilityLocationParams{});
       }},
      {&coverage, true,
       [&ground_set, coverage_params]()
           -> std::unique_ptr<core::KernelIncrementalState> {
         return std::make_unique<SeedSaturatedCoverageState>(ground_set,
                                                             coverage_params);
       }},
      {&pairwise, false, nullptr}};

  std::vector<core::NodeId> members(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i) {
    members[i] = static_cast<core::NodeId>(i);
  }

  constexpr double kEpsilon = 0.1;
  std::vector<SimdKernelRow> rows;
  int status = 0;
  for (const KernelCase& kernel_case : cases) {
    const core::ObjectiveKernel& kernel = *kernel_case.kernel;
    SimdKernelRow row;
    row.objective = std::string(kernel.name());
    row.gated = kernel_case.gated;

    // One solve-phase measurement: lazy (priority-queue) + sampled
    // (stochastic) greedy through the flat incremental state, identical
    // machinery on both sides — only the backend the state binds differs.
    struct BackendRun {
      double lazy_ms = 0.0;
      double sampled_ms = 0.0;
      core::GreedyResult lazy;
      core::GreedyResult sampled;
    };
    const auto solve_with = [&](core::KernelIncrementalState& state,
                                core::SubproblemArena& arena) {
      BackendRun run;
      core::Subproblem& sub =
          core::materialize_subproblem_topology(ground_set, members, arena);
      Timer timer;
      state.reset(sub, nullptr);
      run.lazy = core::incremental_greedy_on_subproblem(sub, k, state, arena);
      run.lazy_ms = timer.elapsed_seconds() * 1e3;
      timer.reset();
      state.reset(sub, nullptr, /*init_priorities=*/false);
      run.sampled = core::stochastic_greedy_on_subproblem(
          sub, k, state, kEpsilon, config.seed, arena);
      run.sampled_ms = timer.elapsed_seconds() * 1e3;
      return run;
    };
    const auto measure = [&](core::SubproblemArena& arena) {
      const auto state = kernel.make_incremental_state(arena);
      return solve_with(*state, arena);
    };

    row.has_seed_baseline = kernel_case.seed_state != nullptr;
    core::SubproblemArena seed_arena;
    core::SubproblemArena scalar_arena;
    core::SubproblemArena native_arena;
    const auto run_iterations = [&]() {
      for (std::size_t iter = 0; iter < config.iterations; ++iter) {
        BackendRun seed_run;
        if (row.has_seed_baseline) {
          const auto seed_state = kernel_case.seed_state();
          seed_run = solve_with(*seed_state, seed_arena);
        }
        BackendRun scalar_run;
        {
          simd::ScopedBackendOverride forced(simd::Backend::kScalar);
          scalar_run = measure(scalar_arena);
        }
        const BackendRun native_run = measure(native_arena);

        const bool identical =
            scalar_run.lazy.selected == native_run.lazy.selected &&
            scalar_run.lazy.objective == native_run.lazy.objective &&
            scalar_run.sampled.selected == native_run.sampled.selected &&
            scalar_run.sampled.objective == native_run.sampled.objective;
        row.identical = row.identical && identical;
        if (row.has_seed_baseline) {
          row.seed_identical =
              row.seed_identical &&
              seed_run.lazy.selected == native_run.lazy.selected &&
              seed_run.sampled.selected == native_run.sampled.selected;
          row.seed_lazy_ms = std::min(row.seed_lazy_ms, seed_run.lazy_ms);
          row.seed_sampled_ms =
              std::min(row.seed_sampled_ms, seed_run.sampled_ms);
        }
        row.scalar_lazy_ms = std::min(row.scalar_lazy_ms, scalar_run.lazy_ms);
        row.scalar_sampled_ms =
            std::min(row.scalar_sampled_ms, scalar_run.sampled_ms);
        row.native_lazy_ms = std::min(row.native_lazy_ms, native_run.lazy_ms);
        row.native_sampled_ms =
            std::min(row.native_sampled_ms, native_run.sampled_ms);
        if (row.has_seed_baseline) {
          std::printf("%-20s iter %zu: baseline %.0f+%.0f | scalar %.0f+%.0f |"
                      " %s %.0f+%.0f ms (lazy+sampled)\n",
                      row.objective.c_str(), iter, seed_run.lazy_ms,
                      seed_run.sampled_ms, scalar_run.lazy_ms,
                      scalar_run.sampled_ms, simd::active_backend_name(),
                      native_run.lazy_ms, native_run.sampled_ms);
        } else {
          std::printf("%-20s iter %zu: scalar %.0f+%.0f | %s %.0f+%.0f ms "
                      "(lazy+sampled)\n",
                      row.objective.c_str(), iter, scalar_run.lazy_ms,
                      scalar_run.sampled_ms, simd::active_backend_name(),
                      native_run.lazy_ms, native_run.sampled_ms);
        }
      }
    };
    run_iterations();
    // Single-core CI boxes jitter ±20-30%; a gated row that lands under the
    // floor on the first pass gets one extra best-of pass before the gate
    // decides, bounding the cost to 2x iterations in the unlucky case.
    if (row.gated && native_is_vector && config.min_kernel_speedup > 0.0 &&
        row.speedup() < config.min_kernel_speedup) {
      std::printf("%-20s %.2fx below %.2fx floor — re-measuring once\n",
                  row.objective.c_str(), row.speedup(),
                  config.min_kernel_speedup);
      run_iterations();
    }
    if (row.has_seed_baseline) {
      std::printf("%-20s sampled %.1f -> %.1f ms = %.2fx vs committed baseline"
                  " (total %.2fx, %.2fx vs forced scalar); selections %s\n",
                  row.objective.c_str(), row.seed_sampled_ms,
                  row.native_sampled_ms, row.speedup(), row.total_speedup(),
                  row.speedup_vs_scalar(),
                  row.identical ? "identical" : "DIVERGED");
    } else {
      std::printf("%-20s solve %.1f -> %.1f ms = %.2fx vs forced scalar;"
                  " selections %s\n",
                  row.objective.c_str(), row.scalar_ms(), row.native_ms(),
                  row.speedup_vs_scalar(),
                  row.identical ? "identical" : "DIVERGED");
    }
    if (!row.identical) status = 2;
    rows.push_back(std::move(row));
  }

  // Quantized embedding path: kNN graph build at each precision vs the exact
  // float32 build. Build time is the metric; recall is the quality bound.
  std::printf("--- quantized graph build: %zu points, dim %zu, k=%zu ---\n",
              config.graph_points, config.graph_dim, config.graph_neighbors);
  const graph::EmbeddingMatrix embeddings = simd_matrix_embeddings(config);
  graph::KnnConfig knn_config;
  knn_config.num_neighbors = config.graph_neighbors;

  double float_ms = 0.0;
  std::vector<graph::NeighborList> exact;
  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    Timer timer;
    auto lists = graph::brute_force_knn(embeddings, knn_config);
    const double ms = timer.elapsed_seconds() * 1e3;
    if (iter == 0 || ms < float_ms) float_ms = ms;
    if (iter == 0) exact = std::move(lists);
  }
  std::printf("%-10s build %.1f ms (exact reference)\n", "float32", float_ms);

  std::vector<SimdGraphRow> graph_rows;
  for (const graph::EmbeddingPrecision precision :
       {graph::EmbeddingPrecision::kInt8, graph::EmbeddingPrecision::kFloat16}) {
    SimdGraphRow row;
    row.precision = graph::precision_name(precision);
    graph::KnnConfig quant_config = knn_config;
    quant_config.precision = precision;
    std::vector<graph::NeighborList> lists;
    for (std::size_t iter = 0; iter < config.iterations; ++iter) {
      Timer timer;
      auto built = graph::brute_force_knn(embeddings, quant_config);
      const double ms = timer.elapsed_seconds() * 1e3;
      if (iter == 0 || ms < row.build_ms) row.build_ms = ms;
      if (iter == 0) lists = std::move(built);
    }
    row.recall = knn_recall(exact, lists);
    row.speedup_vs_float = row.build_ms > 0.0 ? float_ms / row.build_ms : 0.0;
    std::printf("%-10s build %.1f ms = %.2fx vs float32, recall %.3f\n",
                row.precision.c_str(), row.build_ms, row.speedup_vs_float,
                row.recall);
    graph_rows.push_back(std::move(row));
  }

  JsonWriter json;
  json.begin_object();
  json.key("bench").value("simd_kernels");
  json.key("detected_backend").value(simd::backend_name(simd::detected_backend()));
  json.key("active_backend").value(simd::active_backend_name());
  json.key("nodes").value(config.nodes);
  json.key("degree").value(config.degree);
  json.key("k").value(k);
  json.key("iterations").value(config.iterations);
  json.key("seed").value(config.seed);
  json.key("kernels").begin_array();
  for (const SimdKernelRow& row : rows) {
    json.begin_object();
    json.key("objective").value(row.objective);
    json.key("gated").value(row.gated);
    if (row.has_seed_baseline) {
      json.key("baseline_lazy_ms").value(row.seed_lazy_ms);
      json.key("baseline_sampled_ms").value(row.seed_sampled_ms);
    }
    json.key("scalar_lazy_ms").value(row.scalar_lazy_ms);
    json.key("scalar_sampled_ms").value(row.scalar_sampled_ms);
    json.key("native_lazy_ms").value(row.native_lazy_ms);
    json.key("native_sampled_ms").value(row.native_sampled_ms);
    if (row.has_seed_baseline) {
      json.key("sampled_speedup_vs_baseline").value(row.speedup());
      json.key("total_speedup_vs_baseline").value(row.total_speedup());
      json.key("baseline_selections_match").value(row.seed_identical);
    }
    json.key("speedup_vs_scalar").value(row.speedup_vs_scalar());
    json.key("selections_identical").value(row.identical);
    json.end_object();
  }
  json.end_array();
  json.key("graph_build").begin_object();
  json.key("points").value(config.graph_points);
  json.key("dim").value(config.graph_dim);
  json.key("neighbors").value(config.graph_neighbors);
  json.key("float32_ms").value(float_ms);
  json.key("quantized").begin_array();
  for (const SimdGraphRow& row : graph_rows) {
    json.begin_object();
    json.key("precision").value(row.precision);
    json.key("build_ms").value(row.build_ms);
    json.key("speedup_vs_float").value(row.speedup_vs_float);
    json.key("recall").value(row.recall);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.key("min_kernel_speedup").value(config.min_kernel_speedup);
  json.key("min_graph_speedup").value(config.min_graph_speedup);
  json.end_object();

  std::FILE* out = std::fopen(config.json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", config.json_path.c_str());
    return 1;
  }
  std::fprintf(out, "%s\n", json.str().c_str());
  std::fclose(out);
  std::printf("wrote %s\n", config.json_path.c_str());

  // The speedup gates only make sense when a vector backend is active; under
  // SUBSEL_FORCE_SCALAR (the CI scalar leg) both sides run the same code.
  if (!native_is_vector &&
      (config.min_kernel_speedup > 0.0 || config.min_graph_speedup > 0.0)) {
    std::printf("simd matrix: scalar backend active — speedup gates skipped\n");
    return status;
  }
  if (config.min_kernel_speedup > 0.0) {
    for (const SimdKernelRow& row : rows) {
      if (row.gated && row.speedup() < config.min_kernel_speedup) {
        std::fprintf(stderr,
                     "FAIL: %s sampled solve speedup %.2fx over the committed"
                     " scalar baseline is below --min-simd-speedup=%.2f\n",
                     row.objective.c_str(), row.speedup(),
                     config.min_kernel_speedup);
        status = 3;
      }
    }
  }
  if (config.min_graph_speedup > 0.0) {
    double best = 0.0;
    for (const SimdGraphRow& row : graph_rows) {
      best = std::max(best, row.speedup_vs_float);
    }
    if (best < config.min_graph_speedup) {
      std::fprintf(stderr,
                   "FAIL: quantized graph build speedup %.2fx below"
                   " --min-quant-build-speedup=%.2f\n",
                   best, config.min_graph_speedup);
      status = 3;
    }
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  HotPathConfig hot;
  KernelHotPathConfig kernel;
  DiskHotPathConfig disk;
  MatrixConfig matrix;
  ObjectiveMatrixConfig objective_matrix;
  ConstraintMatrixConfig constraint_matrix;
  SimdMatrixConfig simd_matrix;
  bool run_matrix = false;
  bool run_obj_matrix = false;
  bool run_constraints = false;
  bool run_kernel = false;
  bool run_disk = false;
  bool run_simd = false;
  bool run_gbench = true;
  bool run_failpoints = false;
  double min_speedup = 0.0;
  double min_solve_speedup = 0.0;
  double min_disk_speedup = 0.0;
  double max_failpoint_overhead = 0.01;  // the PR's <1% disabled-path claim
  std::vector<char*> gbench_args;
  gbench_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg]() { return arg.substr(arg.find('=') + 1); };
    if (arg == "--quick") {
      hot.nodes = 200'000;
      hot.iterations = 2;
      disk.nodes = 120'000;
      disk.iterations = 2;
      simd_matrix.graph_points = 1500;
      simd_matrix.iterations = 2;
      run_gbench = false;
    } else if (arg == "--hot-only") {
      run_gbench = false;
    } else if (arg.rfind("--hot-nodes=", 0) == 0) {
      hot.nodes = static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (arg.rfind("--hot-partitions=", 0) == 0) {
      hot.partitions = static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (arg.rfind("--hot-iters=", 0) == 0) {
      hot.iterations = static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (arg.rfind("--json=", 0) == 0) {
      hot.json_path = value();
    } else if (arg == "--kernel-hotpath") {
      run_kernel = true;
    } else if (arg.rfind("--kernel-nodes=", 0) == 0) {
      kernel.nodes = static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (arg.rfind("--kernel-k-frac=", 0) == 0) {
      kernel.k_fraction = std::atof(value().c_str());
    } else if (arg.rfind("--min-speedup=", 0) == 0) {
      min_speedup = std::atof(value().c_str());
    } else if (arg.rfind("--min-solve-speedup=", 0) == 0) {
      min_solve_speedup = std::atof(value().c_str());
    } else if (arg == "--simd-matrix") {
      run_simd = true;
    } else if (arg.rfind("--simd-nodes=", 0) == 0) {
      simd_matrix.nodes = static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (arg.rfind("--simd-degree=", 0) == 0) {
      simd_matrix.degree = static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (arg.rfind("--simd-points=", 0) == 0) {
      simd_matrix.graph_points =
          static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (arg.rfind("--simd-dim=", 0) == 0) {
      simd_matrix.graph_dim =
          static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (arg.rfind("--simd-iters=", 0) == 0) {
      simd_matrix.iterations =
          static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (arg.rfind("--simd-json=", 0) == 0) {
      simd_matrix.json_path = value();
    } else if (arg.rfind("--min-simd-speedup=", 0) == 0) {
      simd_matrix.min_kernel_speedup = std::atof(value().c_str());
    } else if (arg.rfind("--min-quant-build-speedup=", 0) == 0) {
      simd_matrix.min_graph_speedup = std::atof(value().c_str());
    } else if (arg == "--disk-hotpath") {
      run_disk = true;
    } else if (arg.rfind("--disk-nodes=", 0) == 0) {
      disk.nodes = static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (arg.rfind("--disk-threads=", 0) == 0) {
      disk.threads = static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (arg.rfind("--disk-shards=", 0) == 0) {
      disk.shards = static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (arg.rfind("--disk-cache-blocks=", 0) == 0) {
      disk.cache_blocks = static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (arg.rfind("--min-disk-speedup=", 0) == 0) {
      min_disk_speedup = std::atof(value().c_str());
    } else if (arg == "--failpoint-overhead") {
      run_failpoints = true;
    } else if (arg.rfind("--max-failpoint-overhead=", 0) == 0) {
      run_failpoints = true;
      max_failpoint_overhead = std::atof(value().c_str());
    } else if (arg == "--solver-matrix") {
      run_matrix = true;
    } else if (arg == "--objective-matrix") {
      run_obj_matrix = true;
    } else if (arg == "--constraint-matrix") {
      run_constraints = true;
    } else if (arg.rfind("--matrix-points=", 0) == 0) {
      matrix.points = static_cast<std::size_t>(std::atoll(value().c_str()));
      objective_matrix.points = matrix.points;
      constraint_matrix.points = matrix.points;
    } else if (arg.rfind("--matrix-json=", 0) == 0) {
      matrix.json_path = value();
    } else if (arg.rfind("--objective-matrix-json=", 0) == 0) {
      objective_matrix.json_path = value();
    } else if (arg.rfind("--constraint-matrix-json=", 0) == 0) {
      constraint_matrix.json_path = value();
    } else {
      gbench_args.push_back(argv[i]);
    }
  }
  int gbench_argc = static_cast<int>(gbench_args.size());
  benchmark::Initialize(&gbench_argc, gbench_args.data());
  if (run_gbench) benchmark::RunSpecifiedBenchmarks();

  HotPathReport hot_report;
  int hot_status = run_hot_path(hot, hot_report);

  std::vector<KernelHotPathResult> kernel_results;
  if (kernel.nodes == 0) kernel.nodes = hot_report.config.nodes;
  clamp_kernel_config(kernel);
  std::size_t kernel_k = 0;
  if (run_kernel) {
    kernel_results = run_kernel_hot_path(kernel);
    kernel_k = kernel_budget(kernel);
  }

  DiskHotPathReport disk_report;
  int disk_status = 0;
  if (run_disk) disk_status = run_disk_hot_path(disk, disk_report);

  FailpointOverheadReport failpoint_report;
  if (run_failpoints) (void)run_failpoint_overhead(failpoint_report);

  const int write_status = write_micro_core_json(
      hot_report.config.json_path, hot_report, kernel_results, kernel, kernel_k,
      run_disk ? &disk_report : nullptr,
      run_failpoints ? &failpoint_report : nullptr);
  if (write_status != 0) return write_status;

  for (const KernelHotPathResult& result : kernel_results) {
    if (!result.selections_identical()) hot_status = 2;
    if (min_speedup > 0.0 && result.solve_speedup() < min_speedup) {
      std::fprintf(stderr,
                   "FAIL: %s solve speedup %.2fx below --min-speedup=%.2f\n",
                   result.objective.c_str(), result.solve_speedup(), min_speedup);
      hot_status = 3;
    }
  }
  // Satellite self-check for the pairwise solve phase: the arena path must
  // be no slower than the seed reference (the batched decrease_many regressed
  // to 0.91x before decrease_edges; this keeps it from regressing again).
  // Parity sits within timer jitter on shared single-core boxes, so a miss
  // gets one fresh measurement before the gate decides.
  if (min_solve_speedup > 0.0) {
    const auto solve_speedup = [](const HotPathReport& report) {
      return report.best_arena.solve_ms > 0.0
                 ? report.best_baseline.solve_ms / report.best_arena.solve_ms
                 : 0.0;
    };
    double measured = solve_speedup(hot_report);
    if (measured < min_solve_speedup) {
      std::printf("pairwise solve %.2fx below %.2fx floor — re-measuring"
                  " once\n",
                  measured, min_solve_speedup);
      HotPathReport retry_report;
      if (run_hot_path(hot, retry_report) == 0) {
        measured = std::max(measured, solve_speedup(retry_report));
      }
    }
    if (measured < min_solve_speedup) {
      std::fprintf(stderr,
                   "FAIL: pairwise solve speedup %.2fx below"
                   " --min-solve-speedup=%.2f\n",
                   measured, min_solve_speedup);
      hot_status = 3;
    }
  }
  if (disk_status != 0) hot_status = disk_status;
  if (run_disk && min_disk_speedup > 0.0 &&
      disk_report.speedup() < min_disk_speedup) {
    std::fprintf(stderr,
                 "FAIL: disk read speedup %.2fx below --min-disk-speedup=%.2f\n",
                 disk_report.speedup(), min_disk_speedup);
    hot_status = 3;
  }
  if (run_failpoints && max_failpoint_overhead > 0.0 &&
      failpoint_report.overhead_disabled() > max_failpoint_overhead) {
    std::fprintf(stderr,
                 "FAIL: disarmed failpoint check costs %.2f%%, above"
                 " --max-failpoint-overhead=%.2f%%\n",
                 100.0 * failpoint_report.overhead_disabled(),
                 100.0 * max_failpoint_overhead);
    hot_status = 3;
  }

  if (run_matrix) {
    matrix.points = std::max<std::size_t>(matrix.points, 100);
    const int matrix_status = run_solver_matrix(matrix);
    if (matrix_status != 0) return matrix_status;
  }
  if (run_obj_matrix) {
    objective_matrix.points = std::max<std::size_t>(objective_matrix.points, 100);
    const int matrix_status = run_objective_matrix(objective_matrix);
    if (matrix_status != 0) return matrix_status;
  }
  if (run_constraints) {
    constraint_matrix.points =
        std::max<std::size_t>(constraint_matrix.points, 100);
    const int matrix_status = run_constraint_matrix(constraint_matrix);
    if (matrix_status != 0) return matrix_status;
  }
  if (run_simd) {
    const int simd_status = run_simd_matrix(simd_matrix);
    if (simd_status != 0) hot_status = simd_status;
  }
  return hot_status;
}
