// Microbenchmarks (google-benchmark) for the performance-critical building
// blocks: addressable heap operations, centralized greedy throughput,
// kNN-graph construction (brute force and IVF), pairwise objective
// evaluation, utility-bound computation, dataflow shuffle, and virtual
// Perturbed neighbor generation.
//
// These back the complexity claims of Section 4.4:
//   centralized greedy  O(|V| log |V| + k·kg·log |V|),
// and quantify the constant factors of the substrate the figure benches run
// on. Inputs are deliberately small so the whole binary finishes in seconds
// under `for b in build/bench/*; do $b; done`.
#include <benchmark/benchmark.h>

#include "core/addressable_heap.h"
#include "core/bounding.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "data/datasets.h"
#include "data/perturbed.h"
#include "dataflow/transforms.h"
#include "graph/hnsw.h"
#include "graph/knn.h"

namespace {

using namespace subsel;

const data::Dataset& shared_dataset(std::size_t points) {
  static data::Dataset small = data::toy_dataset(2000, 20, 5);
  static data::Dataset medium = data::toy_dataset(10000, 50, 6);
  return points <= 2000 ? small : medium;
}

void BM_HeapPushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(17);
  std::vector<double> priorities(n);
  for (double& p : priorities) p = rng.uniform();
  for (auto _ : state) {
    core::AddressableMaxHeap heap(priorities);
    double sink = 0.0;
    while (!heap.empty()) sink += heap.priority(heap.pop_max());
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HeapPushPop)->Arg(1 << 10)->Arg(1 << 14);

void BM_HeapDecreaseWeight(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(18);
  std::vector<double> priorities(n);
  for (double& p : priorities) p = 1.0 + rng.uniform();
  for (auto _ : state) {
    state.PauseTiming();
    core::AddressableMaxHeap heap(priorities);
    state.ResumeTiming();
    for (std::uint32_t i = 0; i < n; ++i) {
      heap.decrease_weight_by(i, 0.5 * rng.uniform());
    }
    benchmark::DoNotOptimize(heap.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HeapDecreaseWeight)->Arg(1 << 10)->Arg(1 << 14);

void BM_CentralizedGreedy(benchmark::State& state) {
  const auto& dataset = shared_dataset(static_cast<std::size_t>(state.range(0)));
  const auto params = core::ObjectiveParams::from_alpha(0.9);
  const std::size_t k = dataset.size() / 10;
  for (auto _ : state) {
    auto result = core::centralized_greedy(dataset.graph, dataset.utilities,
                                           params, k);
    benchmark::DoNotOptimize(result.objective);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k));
}
BENCHMARK(BM_CentralizedGreedy)->Arg(2000)->Arg(10000);

void BM_ObjectiveEvaluate(benchmark::State& state) {
  const auto& dataset = shared_dataset(static_cast<std::size_t>(state.range(0)));
  const auto ground_set = dataset.ground_set();
  core::PairwiseObjective objective(ground_set,
                                    core::ObjectiveParams::from_alpha(0.9));
  std::vector<core::NodeId> subset;
  for (std::size_t i = 0; i < dataset.size(); i += 2) {
    subset.push_back(static_cast<core::NodeId>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(objective.evaluate(subset));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(subset.size()));
}
BENCHMARK(BM_ObjectiveEvaluate)->Arg(2000)->Arg(10000);

void BM_UtilityBounds(benchmark::State& state) {
  const auto& dataset = shared_dataset(static_cast<std::size_t>(state.range(0)));
  const auto ground_set = dataset.ground_set();
  core::BoundingConfig config;
  config.objective = core::ObjectiveParams::from_alpha(0.9);
  config.sampling = core::BoundingSampling::kUniform;
  config.sample_fraction = 0.3;
  core::SelectionState selection(dataset.size());
  std::vector<double> u_min, u_max;
  for (auto _ : state) {
    core::detail::compute_utility_bounds(ground_set, selection, config, 3, u_min,
                                         u_max);
    benchmark::DoNotOptimize(u_min.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_UtilityBounds)->Arg(2000)->Arg(10000);

void BM_BruteForceKnn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  data::ClusteredEmbeddingConfig config;
  config.num_points = n;
  config.num_classes = 16;
  config.dim = 32;
  const auto embeddings = data::generate_clustered_embeddings(config);
  graph::KnnConfig knn;
  for (auto _ : state) {
    auto lists = graph::brute_force_knn(embeddings.points, knn);
    benchmark::DoNotOptimize(lists.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BruteForceKnn)->Arg(1000)->Arg(2000);

void BM_IvfKnn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  data::ClusteredEmbeddingConfig config;
  config.num_points = n;
  config.num_classes = 32;
  config.dim = 32;
  const auto embeddings = data::generate_clustered_embeddings(config);
  graph::KnnConfig knn;
  for (auto _ : state) {
    graph::IvfIndex index(embeddings.points, knn);
    auto lists = index.knn_graph();
    benchmark::DoNotOptimize(lists.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_IvfKnn)->Arg(4000)->Arg(16000);

void BM_HnswKnn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  data::ClusteredEmbeddingConfig config;
  config.num_points = n;
  config.num_classes = 32;
  config.dim = 32;
  const auto embeddings = data::generate_clustered_embeddings(config);
  for (auto _ : state) {
    graph::HnswIndex index(embeddings.points, graph::HnswConfig{});
    auto lists = index.knn_graph(10);
    benchmark::DoNotOptimize(lists.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HnswKnn)->Arg(4000)->Arg(16000);

void BM_DataflowShuffle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dataflow::Pipeline pipeline;
  for (auto _ : state) {
    auto records = dataflow::from_generator<std::pair<std::uint64_t, std::uint64_t>>(
        pipeline, n, [](std::size_t i) {
          return std::pair<std::uint64_t, std::uint64_t>{i % 977, i};
        });
    auto grouped = dataflow::group_by_key(records);
    auto counts = dataflow::map<std::size_t>(
        grouped, [](const auto& row) { return row.second.size(); });
    benchmark::DoNotOptimize(dataflow::to_vector(counts).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DataflowShuffle)->Arg(1 << 14)->Arg(1 << 17);

void BM_PerturbedNeighbors(benchmark::State& state) {
  static data::Dataset base = data::toy_dataset(500, 10, 9);
  data::PerturbedConfig config;
  config.perturbations_per_point = 1000;
  const data::PerturbedGroundSet ground_set(base, config);
  std::vector<graph::Edge> edges;
  std::uint64_t cursor = 0;
  for (auto _ : state) {
    ground_set.neighbors(
        static_cast<graph::NodeId>(cursor++ % ground_set.num_points()), edges);
    benchmark::DoNotOptimize(edges.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PerturbedNeighbors);

}  // namespace

BENCHMARK_MAIN();
