// Figures 9-11 (Appendix E): Δ-schedule ablation on ImageNet — the ImageNet
// counterpart of Figures 6-8; see fig06_08_delta_cifar.cpp for the expected
// shape (the paper finds the same trends on both datasets).
//
// Default --scale=0.05 (6k points) to keep the 4-γ grid fast; --scale=10
// reproduces the paper's 1.2M cardinality.
#include "bench_util.h"

using namespace subsel;
using namespace subsel::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const double scale = args.get_double("scale", 0.05);
  const auto dataset = data::imagenet_proxy(scale);
  std::printf("=== Figures 9-11: delta ablation, ImageNet proxy (%zu points)"
              " ===\n", dataset.size());

  CsvWriter csv(results_dir() + "/fig09_11_delta_imagenet.csv", kHeatmapCsvHeader);
  Timer timer;
  run_delta_ablation(dataset, csv);
  std::printf("\ntotal time: %s; csv: %s/fig09_11_delta_imagenet.csv\n",
              format_duration(timer.elapsed_seconds()).c_str(), results_dir().c_str());
  return 0;
}
