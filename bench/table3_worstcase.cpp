// Table 3: worst-case partitioning ablation on CIFAR-100 (10 % subset,
// alpha = 0.9). Round 1 either partitions randomly or packs the whole
// centralized solution into one partition; scores for {1, 8, 16, 32} rounds,
// non-adaptive / adaptive, 10 partitions.
//
// Expected shape (paper): a one-round run loses ~17 points under worst-case
// packing, but with >= 8 rounds the penalty shrinks to a few points — the
// multi-round algorithm is robust to adversarial initial assignment.
#include "bench_util.h"

using namespace subsel;
using namespace subsel::bench;

namespace {

double run_once(const data::Dataset& dataset, std::size_t k, std::size_t rounds,
                bool adaptive, const std::vector<core::NodeId>* forced,
                std::uint64_t seed) {
  core::DistributedGreedyConfig config;
  config.objective = core::ObjectiveParams::from_alpha(0.9);
  config.num_machines = 10;  // the paper's setup: 10 partitions for a 10 % subset
  config.num_rounds = rounds;
  config.adaptive_partitioning = adaptive;
  config.seed = seed;
  if (forced != nullptr) config.forced_first_partition = *forced;
  const auto ground_set = dataset.ground_set();
  return core::distributed_greedy(ground_set, k, config).objective;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const double scale = args.get_double("scale", 0.2);
  const std::size_t trials = args.get_size("trials", 3);
  const auto dataset = data::cifar_proxy(scale);
  const auto k = static_cast<std::size_t>(0.1 * dataset.size());
  std::printf("=== Table 3: worst-case partitioning (CIFAR proxy, %zu points, k=%zu)"
              " ===\n", dataset.size(), k);

  const auto params = core::ObjectiveParams::from_alpha(0.9);
  auto centralized =
      core::centralized_greedy(dataset.graph, dataset.utilities, params, k);
  std::sort(centralized.selected.begin(), centralized.selected.end());

  const std::vector<std::size_t> round_axis{1, 8, 16, 32};
  CsvWriter csv(results_dir() + "/table3_worstcase.csv",
                {"partitioning", "rounds", "adaptive", "objective", "normalized"});

  // Collect all objectives first for the shared normalization group.
  struct Cell {
    bool worst;
    std::size_t rounds;
    bool adaptive;
    double objective;
  };
  std::vector<Cell> cells;
  std::vector<double> observed;
  Timer timer;
  for (const bool worst : {false, true}) {
    for (const std::size_t rounds : round_axis) {
      for (const bool adaptive : {false, true}) {
        double total = 0.0;
        for (std::size_t trial = 0; trial < trials; ++trial) {
          total += run_once(dataset, k, rounds, adaptive,
                            worst ? &centralized.selected : nullptr,
                            91 + trial * 37 + rounds);
        }
        const double objective = total / static_cast<double>(trials);
        cells.push_back({worst, rounds, adaptive, objective});
        observed.push_back(objective);
      }
    }
  }

  core::ScoreNormalizer normalizer(centralized.objective, observed);
  std::printf("%-26s", "partitioning");
  for (std::size_t rounds : round_axis) std::printf("  %zu rounds (na/ad)", rounds);
  std::printf("\n");
  for (const bool worst : {false, true}) {
    std::printf("%-26s", worst ? "solution in one partition" : "random partitioning");
    for (const std::size_t rounds : round_axis) {
      double non_adaptive = 0.0, adaptive = 0.0;
      for (const Cell& cell : cells) {
        if (cell.worst == worst && cell.rounds == rounds) {
          (cell.adaptive ? adaptive : non_adaptive) = cell.objective;
        }
      }
      std::printf("      %3.0f%% / %3.0f%%", normalizer.normalize(non_adaptive),
                  normalizer.normalize(adaptive));
    }
    std::printf("\n");
  }
  for (const Cell& cell : cells) {
    csv.row(cell.worst ? "worst_case" : "random", cell.rounds, cell.adaptive ? 1 : 0,
            cell.objective, normalizer.normalize(cell.objective));
  }
  std::printf("\ntotal time: %s; csv: %s/table3_worstcase.csv\n",
              format_duration(timer.elapsed_seconds()).c_str(), results_dir().c_str());
  return 0;
}
